/**
 * @file
 * The defender's playbook (paper Secs. 7-8): deploy a resilient HMD
 * — a pool of diverse base detectors switched stochastically — and
 * check its accuracy, its resistance to reverse-engineering and
 * evasion, its theoretical (Theorem 1) guarantees, and its hardware
 * cost.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/hardware_model.hh"
#include "core/pac.hh"
#include "core/reverse_engineer.hh"
#include "core/rhmd.hh"

using namespace rhmd;

int
main()
{
    core::ExperimentConfig config;
    config.benignCount = 90;
    config.malwareCount = 180;
    config.periods = {5000, 10000};
    config.traceInsts = 100000;
    const core::Experiment exp = core::Experiment::build(config);

    // Six base detectors: three feature families x two collection
    // periods, all low-complexity LR (the paper's recommendation:
    // randomize cheap diverse detectors rather than deploying one
    // expensive one).
    std::vector<features::FeatureSpec> specs;
    for (std::uint32_t period : {10000u, 5000u}) {
        for (auto kind : {features::FeatureKind::Instructions,
                          features::FeatureKind::Memory,
                          features::FeatureKind::Architectural}) {
            features::FeatureSpec spec;
            spec.kind = kind;
            spec.period = period;
            specs.push_back(spec);
        }
    }
    auto pool = core::buildRhmd("LR", specs, exp.corpus(),
                                exp.split().victimTrain, 16, 2017);
    std::printf("deployed RHMD with %zu base detectors, epoch %u "
                "instructions:\n",
                pool->poolSize(), pool->decisionPeriod());
    for (const auto &det : pool->detectors())
        std::printf("  %s\n", det->describe().c_str());

    // Accuracy under no attack.
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const auto test_ben = exp.benignOf(exp.split().attackerTest);
    std::printf("\nbaseline: sensitivity %.1f%%, false positives "
                "%.1f%%\n",
                100.0 * exp.detectionRateOn(*pool, test_mal),
                100.0 * exp.detectionRateOn(*pool, test_ben));

    // An attacker's best effort against the pool.
    core::ProxyConfig proxy_config;
    proxy_config.algorithm = "NN";
    features::FeatureSpec hyp;
    hyp.kind = features::FeatureKind::Instructions;
    hyp.period = 10000;
    proxy_config.specs = {hyp};
    const auto proxy = core::buildProxy(
        *pool, exp.corpus(), exp.split().attackerTrain, proxy_config);
    std::printf("attacker's reverse-engineering agreement: %.1f%%\n",
                100.0 * core::proxyAgreement(*pool, *proxy,
                                             exp.corpus(),
                                             exp.split().attackerTest));

    core::EvasionPlan plan;
    plan.strategy = core::EvasionStrategy::LeastWeight;
    plan.count = 5;
    const auto evasive =
        exp.extractEvasive(test_mal, plan, proxy.get());
    std::printf("detection of the attacker's evasive malware: "
                "%.1f%%\n",
                100.0 * core::Experiment::detectionRate(*pool,
                                                        evasive));

    // Theorem-1 guarantees.
    const core::PacReport report =
        core::computePac(*pool, exp.corpus(), exp.split().attackerTest);
    std::printf("\nTheorem 1: attacker error is at least %.1f%% "
                "(weighted pool disagreement);\nbaseline pool error "
                "%.1f%%, upper bound %.1f%%\n",
                100.0 * report.lowerBound,
                100.0 * report.baselinePoolError,
                100.0 * report.upperBound);

    // What the hardware costs (cf. the paper's FPGA prototype).
    const core::HwEstimate hw = core::estimateHardware(specs, "LR");
    std::printf("\nhardware estimate: %.0f logic elements, %.0f "
                "weight-SRAM bits,\n+%.2f%% core area, +%.2f%% core "
                "power\n",
                hw.logicElements, hw.sramBits, hw.areaOverheadPct,
                hw.powerOverheadPct);
    return 0;
}
