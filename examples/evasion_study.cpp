/**
 * @file
 * The attacker's playbook (paper Secs. 4-5), end to end: query a
 * deployed detector, reverse-engineer it, recover the malware's
 * dynamic CFG, pick injection opcodes from the reversed weights,
 * rewrite the malware, and verify it now slips past the victim at
 * low overhead.
 */

#include <algorithm>
#include <cstdio>

#include "core/evasion.hh"
#include "core/experiment.hh"
#include "core/reverse_engineer.hh"
#include "trace/dcfg.hh"

using namespace rhmd;

int
main()
{
    core::ExperimentConfig config;
    config.benignCount = 90;
    config.malwareCount = 180;
    config.periods = {10000};
    config.traceInsts = 100000;
    const core::Experiment exp = core::Experiment::build(config);

    // The victim: an LR detector, deployed and queryable.
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    std::printf("victim deployed: %s\n", victim->describe().c_str());

    // Step 1 — reverse-engineer it with attacker-owned programs.
    core::ProxyConfig proxy_config;
    proxy_config.algorithm = "NN";
    features::FeatureSpec hyp;
    hyp.kind = features::FeatureKind::Instructions;
    hyp.period = 10000;
    proxy_config.specs = {hyp};
    const auto proxy = core::buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain, proxy_config);
    std::printf("reverse-engineered proxy agrees with the victim on "
                "%.1f%% of decisions\n",
                100.0 * core::proxyAgreement(*victim, *proxy,
                                             exp.corpus(),
                                             exp.split().attackerTest));

    // Step 2 — pick a malware sample and recover its dynamic CFG
    //          (the paper does this with Pin; we observe the stream).
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const trace::Program &malware = exp.programs()[test_mal.front()];
    trace::DcfgBuilder dcfg;
    trace::Executor(malware, 99).run(100000, dcfg);
    std::printf("malware '%s': recovered %zu blocks, %zu edges, %zu "
                "ret blocks\n",
                malware.name.c_str(), dcfg.nodes().size(),
                dcfg.edgeCount(), dcfg.retBlockCount());

    // Step 3 — what should we inject? The reversed detector's most
    //          negative-weight (most benign-looking) opcodes.
    std::printf("injection candidates (opcode : |negative weight|):\n");
    const auto candidates = proxy->negativeWeightOpcodes();
    for (std::size_t i = 0; i < std::min<std::size_t>(5,
                                                      candidates.size());
         ++i) {
        std::printf("  %-10s %.3f\n",
                    std::string(trace::opName(candidates[i].first))
                        .c_str(),
                    candidates[i].second);
    }

    // Step 4 — rewrite and re-measure.
    std::printf("\n%-28s %-12s %-10s %-10s\n", "variant",
                "victim says", "static oh", "dynamic oh");
    for (std::size_t count : {0, 1, 2, 5}) {
        core::EvasionPlan plan;
        plan.strategy = core::EvasionStrategy::LeastWeight;
        plan.level = trace::InjectLevel::Block;
        plan.count = count;
        const trace::Program rewritten =
            core::evadeRewrite(malware, plan, proxy.get());
        const auto feats =
            features::extractProgram(rewritten, exp.extractConfig());
        const char *verdict =
            victim->programDecision(feats) ? "MALWARE" : "benign";
        std::printf("%-28s %-12s %9.1f%% %9.1f%%\n",
                    count == 0
                        ? "original"
                        : ("least-weight x" + std::to_string(count))
                              .c_str(),
                    verdict,
                    100.0 * trace::staticOverhead(malware, rewritten),
                    count == 0 ? 0.0
                               : 100.0 * trace::dynamicOverhead(
                                     rewritten, 50000, 7));
    }
    std::printf("\nThe malware keeps its full functionality (the "
                "original instruction stream is\nuntouched) yet "
                "crosses the detector's boundary at ~10%% overhead — "
                "the paper's\nSec. 5 result.\n");
    return 0;
}
