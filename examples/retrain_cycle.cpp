/**
 * @file
 * The arms race (paper Sec. 6): retrain a detector as evasive
 * malware appears, watch the attacker re-reverse-engineer and
 * re-evade it, and see why retraining alone is not a durable
 * defense.
 */

#include <cstdio>

#include "core/retrainer.hh"

using namespace rhmd;

int
main()
{
    core::ExperimentConfig config;
    config.benignCount = 72;
    config.malwareCount = 144;
    config.periods = {10000};
    config.traceInsts = 80000;
    const core::Experiment exp = core::Experiment::build(config);

    // Part 1 — mixing evasive samples into LR's training data trades
    // away sensitivity on unmodified malware (Fig. 11a's lesson).
    core::RetrainConfig retrain;
    retrain.algorithm = "LR";
    retrain.fractions = {0.0, 0.10, 0.25};
    std::printf("retraining the linear detector:\n");
    std::printf("%-10s %-16s %-18s %-12s\n", "evasive%",
                "sens(evasive)", "sens(unmodified)", "specificity");
    for (const auto &point : core::retrainSweep(exp, retrain)) {
        std::printf("%-10.0f %-16.1f %-18.1f %-12.1f\n",
                    100.0 * point.evasiveFrac,
                    100.0 * point.sensEvasive,
                    100.0 * point.sensUnmodified,
                    100.0 * point.specificity);
    }

    // Part 2 — the NN detector retrains successfully, but each
    // generation is reverse-engineered and evaded again (Fig. 13).
    core::GameConfig game;
    game.algorithm = "NN";
    game.generations = 4;
    std::printf("\nthe evade-retrain game (NN):\n");
    std::printf("%-4s %-12s %-18s %-18s %-18s\n", "gen", "specificity",
                "sens(unmodified)", "sens(current gen)",
                "sens(previous gen)");
    for (const auto &point : core::evadeRetrainGame(exp, game)) {
        std::printf("%-4d %-12.1f %-18.1f %-18.1f ",
                    point.generation, 100.0 * point.specificity,
                    100.0 * point.sensUnmodified,
                    100.0 * point.sensCurrentGen);
        if (point.sensPreviousGen < 0.0)
            std::printf("%-18s\n", "-");
        else
            std::printf("%-18.1f\n", 100.0 * point.sensPreviousGen);
    }
    std::printf("\nEach generation catches the last generation's "
                "evasive malware but is evaded\nafresh — the reason "
                "the paper moves to randomized (resilient) "
                "detection;\nsee examples/resilient_deployment.\n");
    return 0;
}
