/**
 * @file
 * Degraded deployment: run an RHMD pool through the online runtime
 * while one base detector is broken and the sensor path drops and
 * perturbs windows. Shows the health monitor quarantining the
 * failing detector, the switching policy renormalizing over the
 * survivors, and corrupt model bytes surfacing as a recoverable
 * Status instead of a crash.
 */

#include <cstdio>
#include <sstream>

#include "core/experiment.hh"
#include "ml/serialize.hh"
#include "runtime/runtime.hh"

using namespace rhmd;

int
main()
{
    // 1. A small experiment and a three-detector pool: the paper's
    //    resilience comes from diversity across feature families.
    core::ExperimentConfig config;
    config.benignCount = 40;
    config.malwareCount = 80;
    config.periods = {10000};
    config.traceInsts = 100000;
    const core::Experiment exp = core::Experiment::build(config);

    std::vector<features::FeatureSpec> specs;
    for (auto kind : {features::FeatureKind::Instructions,
                      features::FeatureKind::Memory,
                      features::FeatureKind::Architectural}) {
        features::FeatureSpec spec;
        spec.kind = kind;
        spec.period = 10000;
        specs.push_back(spec);
    }
    auto pool = core::buildRhmd("LR", specs, exp.corpus(),
                                exp.split().victimTrain, 16, 99);
    std::printf("deployed pool: %zu detectors, epoch %u insts\n",
                pool->poolSize(), pool->decisionPeriod());

    // 2. A hostile deployment: detector 0 returns NaN scores, 10%% of
    //    windows are dropped by the sensor path, and counter reads
    //    carry 10%% relative Gaussian noise.
    runtime::RuntimeConfig rt;
    rt.faults.brokenDetectors = {0};
    rt.faults.dropWindowProb = 0.10;
    rt.faults.counterNoiseSigma = 0.10;
    rt.faults.seed = 42;
    runtime::DetectionRuntime deployed(*pool, rt);

    // 3. Stream the held-out programs through the runtime. Nothing
    //    aborts: lost epochs are skipped, the broken detector is
    //    quarantined, and the survivors keep classifying.
    std::size_t epochs = 0;
    std::size_t classified = 0;
    std::size_t dropped = 0;
    std::size_t detected = 0;
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    for (std::size_t idx : test_mal) {
        const auto report =
            deployed.processProgram(exp.corpus().programs[idx]);
        if (!report.isOk()) {
            std::printf("program lost: %s\n",
                        report.status().toString().c_str());
            continue;
        }
        epochs += report->epochs;
        classified += report->classified;
        dropped += report->dropped;
        detected += report->programDecision == 1 ? 1 : 0;
    }
    std::printf("classified %zu / %zu epochs (%zu dropped); "
                "detected %zu / %zu malware programs\n",
                classified, epochs, dropped, detected,
                test_mal.size());

    // 4. The structured degradation log tells the operator what
    //    happened and when.
    std::printf("\nhealth event log:\n");
    for (const auto &event : deployed.health().events()) {
        if (event.kind == runtime::HealthEvent::Kind::Failure)
            continue; // one line per state change, not per NaN
        std::printf("  epoch %4llu  detector %zu  %-10s  %s\n",
                    static_cast<unsigned long long>(event.epoch),
                    event.detector,
                    std::string(healthEventName(event.kind)).c_str(),
                    event.detail.c_str());
    }
    for (std::size_t d = 0; d < pool->poolSize(); ++d) {
        std::printf("  detector %zu: %-11s (%zu failures, "
                    "%zu selections)\n",
                    d,
                    std::string(
                        healthName(deployed.health().health(d)))
                        .c_str(),
                    deployed.health().failureCount(d),
                    deployed.selectionCounts()[d]);
    }

    // 5. Corrupt model bytes are a recoverable error, not a crash:
    //    a deployment can fall back to the last good model.
    std::stringstream good;
    ml::saveModel(pool->detectors()[1]->classifier(), good);
    runtime::FaultConfig corrupt;
    corrupt.byteFlipRate = 0.05;
    corrupt.seed = 7;
    runtime::FaultInjector injector(corrupt);
    std::stringstream damaged(injector.corruptText(good.str()));
    const auto reloaded = ml::tryLoadModel(damaged);
    std::printf("\ncorrupted model reload -> %s\n",
                reloaded.isOk()
                    ? "parsed (flips missed the structure)"
                    : reloaded.status().toString().c_str());
    return 0;
}
