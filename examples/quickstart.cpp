/**
 * @file
 * Quickstart: build a corpus, train a hardware malware detector,
 * evaluate it, and serialize the model — the five-minute tour of the
 * library's public API.
 */

#include <cstdio>
#include <sstream>

#include "core/experiment.hh"
#include "ml/serialize.hh"
#include "support/table.hh"

using namespace rhmd;

int
main()
{
    // 1. Build an experiment: synthetic benign + malware programs,
    //    executed through the microarchitectural model, features
    //    extracted per 10K-instruction collection window, and split
    //    60/20/20 into victim-train / attacker-train / attacker-test.
    core::ExperimentConfig config;
    config.benignCount = 60;
    config.malwareCount = 120;
    config.periods = {10000};
    config.traceInsts = 100000;
    const core::Experiment exp = core::Experiment::build(config);
    std::printf("corpus: %zu programs (%zu malware), %zu-way split\n",
                exp.corpus().programs.size(),
                exp.corpus().malwareCount(),
                exp.split().victimTrain.size());

    // 2. Train a detector: logistic regression over the Instructions
    //    feature family (top-16 delta opcode frequencies).
    const auto detector = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    std::printf("trained %s, threshold %.3f\n",
                detector->describe().c_str(), detector->threshold());

    // 3. Evaluate on held-out programs.
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const auto test_ben = exp.benignOf(exp.split().attackerTest);
    std::printf("sensitivity %.1f%%   false-positive rate %.1f%%\n",
                100.0 * exp.detectionRateOn(*detector, test_mal),
                100.0 * exp.detectionRateOn(*detector, test_ben));

    // 4. Classify one program the way deployed hardware would:
    //    a decision per collection window, majority vote overall.
    const auto &sample = exp.corpus().programs[test_mal.front()];
    const std::vector<int> decisions = detector->decide(sample);
    std::printf("program '%s': %zu window decisions, verdict %s\n",
                sample.name.c_str(), decisions.size(),
                detector->programDecision(sample) ? "MALWARE"
                                                  : "benign");

    // 5. Serialize the trained model (what a deployment would flash
    //    into the detector's weight SRAM) and load it back.
    std::stringstream stream;
    ml::saveModel(detector->classifier(), stream);
    const auto restored = ml::loadModel(stream);
    std::printf("model round-trip OK (algorithm %s)\n",
                restored->name().c_str());
    return 0;
}
