file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_weighted.dir/bench_fig10_weighted.cc.o"
  "CMakeFiles/bench_fig10_weighted.dir/bench_fig10_weighted.cc.o.d"
  "bench_fig10_weighted"
  "bench_fig10_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
