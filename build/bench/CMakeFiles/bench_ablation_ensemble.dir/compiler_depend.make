# Empty compiler generated dependencies file for bench_ablation_ensemble.
# This may be replaced when dependencies are built.
