file(REMOVE_RECURSE
  "CMakeFiles/bench_sec83_known_config.dir/bench_sec83_known_config.cc.o"
  "CMakeFiles/bench_sec83_known_config.dir/bench_sec83_known_config.cc.o.d"
  "bench_sec83_known_config"
  "bench_sec83_known_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec83_known_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
