# Empty compiler generated dependencies file for bench_sec83_known_config.
# This may be replaced when dependencies are built.
