# Empty compiler generated dependencies file for bench_fig04_reveng_accuracy.
# This may be replaced when dependencies are built.
