file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_retraining.dir/bench_fig11_retraining.cc.o"
  "CMakeFiles/bench_fig11_retraining.dir/bench_fig11_retraining.cc.o.d"
  "bench_fig11_retraining"
  "bench_fig11_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
