# Empty dependencies file for bench_fig11_retraining.
# This may be replaced when dependencies are built.
