file(REMOVE_RECURSE
  "CMakeFiles/bench_pac_bounds.dir/bench_pac_bounds.cc.o"
  "CMakeFiles/bench_pac_bounds.dir/bench_pac_bounds.cc.o.d"
  "bench_pac_bounds"
  "bench_pac_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pac_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
