# Empty compiler generated dependencies file for bench_pac_bounds.
# This may be replaced when dependencies are built.
