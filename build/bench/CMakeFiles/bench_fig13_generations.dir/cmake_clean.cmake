file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_generations.dir/bench_fig13_generations.cc.o"
  "CMakeFiles/bench_fig13_generations.dir/bench_fig13_generations.cc.o.d"
  "bench_fig13_generations"
  "bench_fig13_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
