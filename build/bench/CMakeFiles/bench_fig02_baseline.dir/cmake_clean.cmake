file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_baseline.dir/bench_fig02_baseline.cc.o"
  "CMakeFiles/bench_fig02_baseline.dir/bench_fig02_baseline.cc.o.d"
  "bench_fig02_baseline"
  "bench_fig02_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
