# Empty dependencies file for bench_fig14_rhmd_reveng.
# This may be replaced when dependencies are built.
