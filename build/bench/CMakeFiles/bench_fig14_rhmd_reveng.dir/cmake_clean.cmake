file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rhmd_reveng.dir/bench_fig14_rhmd_reveng.cc.o"
  "CMakeFiles/bench_fig14_rhmd_reveng.dir/bench_fig14_rhmd_reveng.cc.o.d"
  "bench_fig14_rhmd_reveng"
  "bench_fig14_rhmd_reveng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rhmd_reveng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
