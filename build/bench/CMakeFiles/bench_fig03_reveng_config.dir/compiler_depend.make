# Empty compiler generated dependencies file for bench_fig03_reveng_config.
# This may be replaced when dependencies are built.
