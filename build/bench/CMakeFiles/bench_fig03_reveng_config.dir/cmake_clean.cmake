file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_reveng_config.dir/bench_fig03_reveng_config.cc.o"
  "CMakeFiles/bench_fig03_reveng_config.dir/bench_fig03_reveng_config.cc.o.d"
  "bench_fig03_reveng_config"
  "bench_fig03_reveng_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_reveng_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
