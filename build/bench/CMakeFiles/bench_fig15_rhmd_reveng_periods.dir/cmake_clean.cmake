file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_rhmd_reveng_periods.dir/bench_fig15_rhmd_reveng_periods.cc.o"
  "CMakeFiles/bench_fig15_rhmd_reveng_periods.dir/bench_fig15_rhmd_reveng_periods.cc.o.d"
  "bench_fig15_rhmd_reveng_periods"
  "bench_fig15_rhmd_reveng_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_rhmd_reveng_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
