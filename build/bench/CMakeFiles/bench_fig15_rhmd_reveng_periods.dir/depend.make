# Empty dependencies file for bench_fig15_rhmd_reveng_periods.
# This may be replaced when dependencies are built.
