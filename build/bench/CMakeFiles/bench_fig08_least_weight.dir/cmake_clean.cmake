file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_least_weight.dir/bench_fig08_least_weight.cc.o"
  "CMakeFiles/bench_fig08_least_weight.dir/bench_fig08_least_weight.cc.o.d"
  "bench_fig08_least_weight"
  "bench_fig08_least_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_least_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
