# Empty compiler generated dependencies file for bench_fig08_least_weight.
# This may be replaced when dependencies are built.
