# Empty compiler generated dependencies file for bench_fig06_random_injection.
# This may be replaced when dependencies are built.
