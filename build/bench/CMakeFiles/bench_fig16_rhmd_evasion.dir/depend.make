# Empty dependencies file for bench_fig16_rhmd_evasion.
# This may be replaced when dependencies are built.
