file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_rhmd_evasion.dir/bench_fig16_rhmd_evasion.cc.o"
  "CMakeFiles/bench_fig16_rhmd_evasion.dir/bench_fig16_rhmd_evasion.cc.o.d"
  "bench_fig16_rhmd_evasion"
  "bench_fig16_rhmd_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_rhmd_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
