file(REMOVE_RECURSE
  "librhmd.a"
)
