# Empty compiler generated dependencies file for rhmd.
# This may be replaced when dependencies are built.
