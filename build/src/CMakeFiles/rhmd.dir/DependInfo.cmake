
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ensemble.cc" "src/CMakeFiles/rhmd.dir/core/ensemble.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/ensemble.cc.o.d"
  "/root/repo/src/core/evasion.cc" "src/CMakeFiles/rhmd.dir/core/evasion.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/evasion.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/rhmd.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/hardware_model.cc" "src/CMakeFiles/rhmd.dir/core/hardware_model.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/hardware_model.cc.o.d"
  "/root/repo/src/core/hmd.cc" "src/CMakeFiles/rhmd.dir/core/hmd.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/hmd.cc.o.d"
  "/root/repo/src/core/pac.cc" "src/CMakeFiles/rhmd.dir/core/pac.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/pac.cc.o.d"
  "/root/repo/src/core/retrainer.cc" "src/CMakeFiles/rhmd.dir/core/retrainer.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/retrainer.cc.o.d"
  "/root/repo/src/core/reverse_engineer.cc" "src/CMakeFiles/rhmd.dir/core/reverse_engineer.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/reverse_engineer.cc.o.d"
  "/root/repo/src/core/rhmd.cc" "src/CMakeFiles/rhmd.dir/core/rhmd.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/core/rhmd.cc.o.d"
  "/root/repo/src/features/corpus.cc" "src/CMakeFiles/rhmd.dir/features/corpus.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/features/corpus.cc.o.d"
  "/root/repo/src/features/extractor.cc" "src/CMakeFiles/rhmd.dir/features/extractor.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/features/extractor.cc.o.d"
  "/root/repo/src/features/spec.cc" "src/CMakeFiles/rhmd.dir/features/spec.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/features/spec.cc.o.d"
  "/root/repo/src/features/window.cc" "src/CMakeFiles/rhmd.dir/features/window.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/features/window.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/rhmd.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/rhmd.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/rhmd.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/rhmd.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/rhmd.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/rhmd.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/CMakeFiles/rhmd.dir/ml/serialize.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/serialize.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/CMakeFiles/rhmd.dir/ml/svm.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/ml/svm.cc.o.d"
  "/root/repo/src/support/csv.cc" "src/CMakeFiles/rhmd.dir/support/csv.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/support/csv.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/rhmd.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/support/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/rhmd.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/rhmd.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/rhmd.dir/support/table.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/support/table.cc.o.d"
  "/root/repo/src/trace/basic_block.cc" "src/CMakeFiles/rhmd.dir/trace/basic_block.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/basic_block.cc.o.d"
  "/root/repo/src/trace/dcfg.cc" "src/CMakeFiles/rhmd.dir/trace/dcfg.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/dcfg.cc.o.d"
  "/root/repo/src/trace/execution.cc" "src/CMakeFiles/rhmd.dir/trace/execution.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/execution.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/rhmd.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/injection.cc" "src/CMakeFiles/rhmd.dir/trace/injection.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/injection.cc.o.d"
  "/root/repo/src/trace/isa.cc" "src/CMakeFiles/rhmd.dir/trace/isa.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/isa.cc.o.d"
  "/root/repo/src/trace/profiles.cc" "src/CMakeFiles/rhmd.dir/trace/profiles.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/profiles.cc.o.d"
  "/root/repo/src/trace/program.cc" "src/CMakeFiles/rhmd.dir/trace/program.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/trace/program.cc.o.d"
  "/root/repo/src/uarch/branch_predictor.cc" "src/CMakeFiles/rhmd.dir/uarch/branch_predictor.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/uarch/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/CMakeFiles/rhmd.dir/uarch/cache.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/uarch/cache.cc.o.d"
  "/root/repo/src/uarch/cpi_model.cc" "src/CMakeFiles/rhmd.dir/uarch/cpi_model.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/uarch/cpi_model.cc.o.d"
  "/root/repo/src/uarch/perf_counters.cc" "src/CMakeFiles/rhmd.dir/uarch/perf_counters.cc.o" "gcc" "src/CMakeFiles/rhmd.dir/uarch/perf_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
