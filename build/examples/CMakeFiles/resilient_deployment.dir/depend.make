# Empty dependencies file for resilient_deployment.
# This may be replaced when dependencies are built.
