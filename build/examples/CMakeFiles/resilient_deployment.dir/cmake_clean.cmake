file(REMOVE_RECURSE
  "CMakeFiles/resilient_deployment.dir/resilient_deployment.cpp.o"
  "CMakeFiles/resilient_deployment.dir/resilient_deployment.cpp.o.d"
  "resilient_deployment"
  "resilient_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
