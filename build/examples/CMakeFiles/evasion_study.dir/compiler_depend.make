# Empty compiler generated dependencies file for evasion_study.
# This may be replaced when dependencies are built.
