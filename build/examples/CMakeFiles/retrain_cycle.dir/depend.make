# Empty dependencies file for retrain_cycle.
# This may be replaced when dependencies are built.
