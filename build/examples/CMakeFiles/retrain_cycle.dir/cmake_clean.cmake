file(REMOVE_RECURSE
  "CMakeFiles/retrain_cycle.dir/retrain_cycle.cpp.o"
  "CMakeFiles/retrain_cycle.dir/retrain_cycle.cpp.o.d"
  "retrain_cycle"
  "retrain_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrain_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
