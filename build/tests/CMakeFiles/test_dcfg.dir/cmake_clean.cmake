file(REMOVE_RECURSE
  "CMakeFiles/test_dcfg.dir/test_dcfg.cc.o"
  "CMakeFiles/test_dcfg.dir/test_dcfg.cc.o.d"
  "test_dcfg"
  "test_dcfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
