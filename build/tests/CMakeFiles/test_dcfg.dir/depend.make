# Empty dependencies file for test_dcfg.
# This may be replaced when dependencies are built.
