file(REMOVE_RECURSE
  "CMakeFiles/test_retrainer.dir/test_retrainer.cc.o"
  "CMakeFiles/test_retrainer.dir/test_retrainer.cc.o.d"
  "test_retrainer"
  "test_retrainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
