# Empty dependencies file for test_dt.
# This may be replaced when dependencies are built.
