file(REMOVE_RECURSE
  "CMakeFiles/test_dt.dir/test_dt.cc.o"
  "CMakeFiles/test_dt.dir/test_dt.cc.o.d"
  "test_dt"
  "test_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
