file(REMOVE_RECURSE
  "CMakeFiles/test_pac.dir/test_pac.cc.o"
  "CMakeFiles/test_pac.dir/test_pac.cc.o.d"
  "test_pac"
  "test_pac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
