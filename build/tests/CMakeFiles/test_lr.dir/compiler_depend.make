# Empty compiler generated dependencies file for test_lr.
# This may be replaced when dependencies are built.
