file(REMOVE_RECURSE
  "CMakeFiles/test_lr.dir/test_lr.cc.o"
  "CMakeFiles/test_lr.dir/test_lr.cc.o.d"
  "test_lr"
  "test_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
