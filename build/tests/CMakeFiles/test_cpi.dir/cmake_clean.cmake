file(REMOVE_RECURSE
  "CMakeFiles/test_cpi.dir/test_cpi.cc.o"
  "CMakeFiles/test_cpi.dir/test_cpi.cc.o.d"
  "test_cpi"
  "test_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
