# Empty dependencies file for test_cpi.
# This may be replaced when dependencies are built.
