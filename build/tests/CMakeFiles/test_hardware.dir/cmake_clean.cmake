file(REMOVE_RECURSE
  "CMakeFiles/test_hardware.dir/test_hardware.cc.o"
  "CMakeFiles/test_hardware.dir/test_hardware.cc.o.d"
  "test_hardware"
  "test_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
