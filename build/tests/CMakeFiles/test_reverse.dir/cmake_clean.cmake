file(REMOVE_RECURSE
  "CMakeFiles/test_reverse.dir/test_reverse.cc.o"
  "CMakeFiles/test_reverse.dir/test_reverse.cc.o.d"
  "test_reverse"
  "test_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
