# Empty dependencies file for test_reverse.
# This may be replaced when dependencies are built.
