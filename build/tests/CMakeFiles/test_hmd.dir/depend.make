# Empty dependencies file for test_hmd.
# This may be replaced when dependencies are built.
