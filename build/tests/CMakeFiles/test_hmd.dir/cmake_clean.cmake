file(REMOVE_RECURSE
  "CMakeFiles/test_hmd.dir/test_hmd.cc.o"
  "CMakeFiles/test_hmd.dir/test_hmd.cc.o.d"
  "test_hmd"
  "test_hmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
