# Empty dependencies file for test_rhmd.
# This may be replaced when dependencies are built.
