file(REMOVE_RECURSE
  "CMakeFiles/test_rhmd.dir/test_rhmd.cc.o"
  "CMakeFiles/test_rhmd.dir/test_rhmd.cc.o.d"
  "test_rhmd"
  "test_rhmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
