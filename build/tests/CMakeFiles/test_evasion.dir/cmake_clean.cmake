file(REMOVE_RECURSE
  "CMakeFiles/test_evasion.dir/test_evasion.cc.o"
  "CMakeFiles/test_evasion.dir/test_evasion.cc.o.d"
  "test_evasion"
  "test_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
