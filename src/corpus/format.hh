/**
 * @file
 * The RHMD-CORPUS on-disk format: layout constants, little-endian
 * field codecs, and the FNV-1a section checksum.
 *
 * A corpus file holds the extracted feature windows of a whole
 * program population so experiments can replay extraction instead of
 * re-executing every synthetic CFG. The file is written in one
 * forward pass (the writer never seeks, so windows stream to disk as
 * they are extracted) and laid out so a reader can validate every
 * byte before trusting any of it:
 *
 *   [header]   magic, format version, config key        (32 bytes)
 *   [data]     packed fixed-size window records, one run
 *              per (program, period), runs tiling the
 *              section in index order
 *   [index]    periods, per-program metadata, and the
 *              (offset, count) of every window run
 *   [trailer]  section directory with per-section FNV-1a
 *              checksums and the trailer magic           (72 bytes)
 *
 * Versioning follows the RHMD-MODEL discipline (ml/serialize.hh):
 * the magic rejects foreign files with InvalidArgument, an
 * unsupported version is FailedPrecondition, and any truncation or
 * checksum mismatch is DataLoss — never undefined behaviour. All
 * multi-byte fields are little-endian regardless of host order;
 * doubles travel as their IEEE-754 bit patterns so a round trip is
 * bit-exact.
 */

#ifndef RHMD_CORPUS_FORMAT_HH
#define RHMD_CORPUS_FORMAT_HH

#include <bit>
#include <cstdint>
#include <cstddef>

#include "features/window.hh"
#include "trace/isa.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::corpus
{

/** Magic opening every corpus file (11 chars + NUL pad). */
inline constexpr char kCorpusMagic[12] = "RHMD-CORPUS";

/** Current corpus format version. */
inline constexpr std::uint32_t kCorpusFormatVersion = 1;

/** Magic closing the trailer ("RHMDCPS1" as little-endian bytes). */
inline constexpr std::uint64_t kTrailerMagic = 0x31535043444d4852ULL;

/** Fixed header size: magic + version + config key + reserved. */
inline constexpr std::size_t kHeaderBytes = 32;

/**
 * Fixed trailer size: data/index (offset, bytes, checksum) triples,
 * header checksum, total window count, trailer magic.
 */
inline constexpr std::size_t kTrailerBytes = 72;

/**
 * Size of one packed window record: instCount, cycles bits,
 * injectedFrac bits, flags (bit 0 = truncated), the architectural
 * event counts, the opcode-class histogram, and the address-delta
 * histogram, in that order.
 */
inline constexpr std::size_t kWindowRecordBytes =
    8 * 4 + 8 * uarch::kNumEvents + 4 * trace::kNumOpClasses +
    4 * features::kNumMemBins;

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/**
 * One FNV-1a step per byte. Each step is a bijection of the running
 * state for a fixed byte, so any single-byte difference in a section
 * is guaranteed to change the final checksum (the property the
 * corruption tests lean on).
 */
inline std::uint64_t
fnv1a(std::uint64_t hash, const unsigned char *bytes, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

/** Fold one little-endian u64 into a running FNV-1a hash. */
inline std::uint64_t
fnv1aU64(std::uint64_t hash, std::uint64_t value)
{
    for (int b = 0; b < 8; ++b) {
        hash ^= (value >> (8 * b)) & 0xffU;
        hash *= kFnvPrime;
    }
    return hash;
}

/** Store a u32 little-endian (host-order independent). */
inline void
storeLe32(std::uint32_t v, unsigned char *p)
{
    p[0] = static_cast<unsigned char>(v & 0xffU);
    p[1] = static_cast<unsigned char>((v >> 8) & 0xffU);
    p[2] = static_cast<unsigned char>((v >> 16) & 0xffU);
    p[3] = static_cast<unsigned char>((v >> 24) & 0xffU);
}

/** Store a u64 little-endian. */
inline void
storeLe64(std::uint64_t v, unsigned char *p)
{
    for (int b = 0; b < 8; ++b)
        p[b] = static_cast<unsigned char>((v >> (8 * b)) & 0xffU);
}

/** Load a little-endian u32. */
inline std::uint32_t
loadLe32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

/** Load a little-endian u64. */
inline std::uint64_t
loadLe64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
    return v;
}

/** Encode one window into @p out (kWindowRecordBytes bytes). */
inline void
encodeWindow(const features::RawWindow &window, unsigned char *out)
{
    unsigned char *p = out;
    storeLe64(window.instCount, p);
    p += 8;
    storeLe64(std::bit_cast<std::uint64_t>(window.cycles), p);
    p += 8;
    storeLe64(std::bit_cast<std::uint64_t>(window.injectedFrac), p);
    p += 8;
    storeLe64(window.truncated ? 1 : 0, p);
    p += 8;
    for (std::uint64_t event : window.events) {
        storeLe64(event, p);
        p += 8;
    }
    for (std::uint32_t count : window.opcodeCounts) {
        storeLe32(count, p);
        p += 4;
    }
    for (std::uint32_t bin : window.memDeltaBins) {
        storeLe32(bin, p);
        p += 4;
    }
}

/**
 * Decode one window record from @p in (kWindowRecordBytes bytes,
 * bounds already validated by the reader) into @p out. The inverse
 * of encodeWindow(); doubles are restored bit-exactly.
 */
inline void
decodeWindow(const unsigned char *in, features::RawWindow &out)
{
    const unsigned char *p = in;
    out.instCount = loadLe64(p);
    p += 8;
    out.cycles = std::bit_cast<double>(loadLe64(p));
    p += 8;
    out.injectedFrac = std::bit_cast<double>(loadLe64(p));
    p += 8;
    out.truncated = (loadLe64(p) & 1U) != 0;
    p += 8;
    for (std::uint64_t &event : out.events) {
        event = loadLe64(p);
        p += 8;
    }
    for (std::uint32_t &count : out.opcodeCounts) {
        count = loadLe32(p);
        p += 4;
    }
    for (std::uint32_t &bin : out.memDeltaBins) {
        bin = loadLe32(p);
        p += 4;
    }
}

/**
 * The content identity stamped into run manifests: format version,
 * config key, and both section checksums folded into one FNV-1a
 * value. Two corpora agree on it iff their bytes agree.
 */
inline std::uint64_t
contentHashOf(std::uint32_t version, std::uint64_t config_key,
              std::uint64_t data_checksum, std::uint64_t index_checksum)
{
    std::uint64_t hash = kFnvOffset;
    hash = fnv1aU64(hash, version);
    hash = fnv1aU64(hash, config_key);
    hash = fnv1aU64(hash, data_checksum);
    hash = fnv1aU64(hash, index_checksum);
    return hash;
}

} // namespace rhmd::corpus

#endif // RHMD_CORPUS_FORMAT_HH
