/**
 * @file
 * Streaming corpus writer.
 *
 * CorpusWriter emits an RHMD-CORPUS file in one forward pass: the
 * header goes out at create(), every appended program's window runs
 * stream straight into the data section (records are encoded into a
 * small stack buffer, never a whole-corpus staging area), and
 * finalize() writes the index and checksummed trailer. Peak memory
 * is one program's windows plus the index entries, independent of
 * corpus size.
 */

#ifndef RHMD_CORPUS_WRITER_HH
#define RHMD_CORPUS_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "features/corpus.hh"
#include "support/status.hh"

namespace rhmd::corpus
{

/** Streams an RHMD-CORPUS file; see the format spec in format.hh. */
class CorpusWriter
{
  public:
    /**
     * Open @p path for writing and emit the header. @p periods fixes
     * the period set every appended program must carry (in this
     * order), and @p config_key is the caller's identity for the
     * generating configuration (see cache.hh). Returns Unavailable
     * when the file cannot be created, InvalidArgument for an empty
     * or duplicate period list.
     */
    static support::StatusOr<CorpusWriter>
    create(const std::string &path, std::uint64_t config_key,
           std::vector<std::uint32_t> periods);

    CorpusWriter(CorpusWriter &&) = default;
    CorpusWriter &operator=(CorpusWriter &&) = default;

    /**
     * Append one program's windows (one run per configured period,
     * in period order). Returns FailedPrecondition when the program
     * lacks a configured period or the writer is already finalized;
     * Unavailable on write failure.
     */
    support::Status append(const features::ProgramFeatures &program);

    /**
     * Write the index and trailer and flush. Returns Unavailable on
     * write failure. No appends are accepted afterwards.
     */
    support::Status finalize();

    /** Programs appended so far. */
    std::size_t programCount() const { return index_.size(); }

    /** Windows appended so far, all periods. */
    std::uint64_t windowTotal() const { return windowTotal_; }

    /** Bytes emitted so far (the final file size after finalize()). */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** Corpus content hash; meaningful only after finalize(). */
    std::uint64_t contentHash() const { return contentHash_; }

  private:
    CorpusWriter() = default;

    /** Write @p n bytes, folding them into @p checksum. */
    support::Status put(const unsigned char *bytes, std::size_t n,
                        std::uint64_t &checksum);

    struct ProgramEntry
    {
        std::string name;
        bool malware = false;
        std::uint32_t family = 0;
        /** Per period (in periods_ order): window count, offset. */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
    };

    std::ofstream out_;
    std::vector<std::uint32_t> periods_;
    std::uint64_t configKey_ = 0;
    std::uint64_t dataChecksum_ = 0;
    std::uint64_t headerChecksum_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t windowTotal_ = 0;
    std::uint64_t contentHash_ = 0;
    std::vector<ProgramEntry> index_;
    bool finalized_ = false;
};

} // namespace rhmd::corpus

#endif // RHMD_CORPUS_WRITER_HH
