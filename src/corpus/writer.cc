/**
 * @file
 * Streaming corpus writer implementation.
 */

#include "corpus/writer.hh"

#include <algorithm>
#include <limits>

#include "corpus/format.hh"

namespace rhmd::corpus
{

support::StatusOr<CorpusWriter>
CorpusWriter::create(const std::string &path, std::uint64_t config_key,
                     std::vector<std::uint32_t> periods)
{
    if (periods.empty())
        return support::invalidArgumentError(
            "corpus writer needs at least one period");
    std::vector<std::uint32_t> sorted = periods;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        return support::invalidArgumentError(
            "corpus writer periods must be unique");
    if (sorted.front() == 0)
        return support::invalidArgumentError(
            "corpus writer periods must be positive");

    CorpusWriter writer;
    writer.out_.open(path, std::ios::binary | std::ios::trunc);
    if (!writer.out_)
        return support::unavailableError("cannot create corpus file '",
                                         path, "'");
    writer.periods_ = std::move(periods);
    writer.configKey_ = config_key;

    unsigned char header[kHeaderBytes] = {};
    static_assert(sizeof(kCorpusMagic) == 12);
    for (std::size_t i = 0; i < sizeof(kCorpusMagic); ++i)
        header[i] = static_cast<unsigned char>(kCorpusMagic[i]);
    storeLe32(kCorpusFormatVersion, header + 12);
    storeLe64(config_key, header + 16);
    storeLe64(0, header + 24); // reserved
    writer.headerChecksum_ = kFnvOffset;
    const support::Status st =
        writer.put(header, sizeof(header), writer.headerChecksum_);
    if (!st.isOk())
        return st;
    writer.dataChecksum_ = kFnvOffset;
    return writer;
}

support::Status
CorpusWriter::put(const unsigned char *bytes, std::size_t n,
                  std::uint64_t &checksum)
{
    out_.write(reinterpret_cast<const char *>(bytes),
               static_cast<std::streamsize>(n));
    if (!out_)
        return support::unavailableError(
            "corpus write failed after ", bytesWritten_, " bytes");
    checksum = fnv1a(checksum, bytes, n);
    bytesWritten_ += n;
    return support::Status();
}

support::Status
CorpusWriter::append(const features::ProgramFeatures &program)
{
    if (finalized_)
        return support::failedPreconditionError(
            "append on a finalized corpus writer");
    ProgramEntry entry;
    entry.name = program.name;
    entry.malware = program.malware;
    entry.family = program.family;
    unsigned char record[kWindowRecordBytes];
    for (std::uint32_t period : periods_) {
        const auto it = program.byPeriod.find(period);
        if (it == program.byPeriod.end())
            return support::failedPreconditionError(
                "program '", program.name, "' has no windows for "
                "period ", period);
        entry.runs.emplace_back(it->second.size(), bytesWritten_);
        for (const features::RawWindow &window : it->second) {
            encodeWindow(window, record);
            const support::Status st =
                put(record, sizeof(record), dataChecksum_);
            if (!st.isOk())
                return st;
        }
        windowTotal_ += it->second.size();
    }
    index_.push_back(std::move(entry));
    return support::Status();
}

support::Status
CorpusWriter::finalize()
{
    if (finalized_)
        return support::failedPreconditionError(
            "finalize on a finalized corpus writer");
    finalized_ = true;

    const std::uint64_t data_offset = kHeaderBytes;
    const std::uint64_t data_bytes = bytesWritten_ - kHeaderBytes;
    const std::uint64_t index_offset = bytesWritten_;

    // Index section: periods, program count, then per program the
    // name, labels, and one (count, offset) run per period.
    std::uint64_t index_checksum = kFnvOffset;
    unsigned char buf[8];
    const auto put32 = [&](std::uint32_t v) {
        storeLe32(v, buf);
        return put(buf, 4, index_checksum);
    };
    const auto put64 = [&](std::uint64_t v) {
        storeLe64(v, buf);
        return put(buf, 8, index_checksum);
    };
    support::Status st =
        put32(static_cast<std::uint32_t>(periods_.size()));
    for (std::uint32_t period : periods_) {
        if (st.isOk())
            st = put32(period);
    }
    if (st.isOk())
        st = put64(index_.size());
    for (const ProgramEntry &entry : index_) {
        if (!st.isOk())
            break;
        st = put32(static_cast<std::uint32_t>(entry.name.size()));
        if (st.isOk() && !entry.name.empty())
            st = put(
                reinterpret_cast<const unsigned char *>(
                    entry.name.data()),
                entry.name.size(), index_checksum);
        if (st.isOk())
            st = put32(entry.malware ? 1U : 0U);
        if (st.isOk())
            st = put32(entry.family);
        for (const auto &[count, offset] : entry.runs) {
            if (st.isOk())
                st = put64(count);
            if (st.isOk())
                st = put64(offset);
        }
    }
    if (!st.isOk())
        return st;
    const std::uint64_t index_bytes = bytesWritten_ - index_offset;

    // Trailer: section directory + checksums + window total + magic.
    // The trailer itself is not checksummed; every one of its fields
    // is instead validated structurally by the reader (offsets must
    // tile the file exactly, checksums must match, the window total
    // must equal the index sum), so any corrupt trailer byte is still
    // a detected DataLoss.
    unsigned char trailer[kTrailerBytes];
    storeLe64(data_offset, trailer + 0);
    storeLe64(data_bytes, trailer + 8);
    storeLe64(dataChecksum_, trailer + 16);
    storeLe64(index_offset, trailer + 24);
    storeLe64(index_bytes, trailer + 32);
    storeLe64(index_checksum, trailer + 40);
    storeLe64(headerChecksum_, trailer + 48);
    storeLe64(windowTotal_, trailer + 56);
    storeLe64(kTrailerMagic, trailer + 64);
    std::uint64_t scratch = kFnvOffset;
    st = put(trailer, sizeof(trailer), scratch);
    if (!st.isOk())
        return st;
    out_.flush();
    if (!out_)
        return support::unavailableError("corpus flush failed");
    contentHash_ = contentHashOf(kCorpusFormatVersion, configKey_,
                                 dataChecksum_, index_checksum);
    return support::Status();
}

} // namespace rhmd::corpus
