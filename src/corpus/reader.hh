/**
 * @file
 * Zero-copy corpus reader.
 *
 * CorpusReader maps an RHMD-CORPUS file (mmap on POSIX hosts, an
 * arena buffered read as the fallback) and validates every byte up
 * front — magic, version, section tiling, and the per-section FNV-1a
 * checksums — before exposing any data, so downstream iteration can
 * trust offsets unconditionally. Window access goes through
 * WindowStream, which decodes fixed-size records straight out of the
 * mapping into a caller-owned RawWindow: no per-window allocation
 * and no materialized copy of the corpus, so iterating a corpus of
 * any size holds O(1) memory beyond the mapping itself.
 *
 * Error taxonomy (mirrors ml/serialize.hh): wrong magic is
 * InvalidArgument, an unsupported format version is
 * FailedPrecondition, and truncation or any checksum mismatch is
 * DataLoss. open() never aborts the process on bad bytes.
 */

#ifndef RHMD_CORPUS_READER_HH
#define RHMD_CORPUS_READER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "features/corpus.hh"
#include "features/spec.hh"
#include "features/window.hh"
#include "ml/dataset.hh"
#include "support/status.hh"

namespace rhmd::corpus
{

/**
 * Forward iteration over one (program, period) run of window
 * records. Obtained from CorpusReader::stream(); decodes each record
 * on demand into the caller's RawWindow, allocation-free.
 */
class WindowStream
{
  public:
    /** Decode the next window into @p out; false when exhausted. */
    bool next(features::RawWindow &out);

    /** Windows not yet consumed. */
    std::size_t remaining() const { return remaining_; }

  private:
    friend class CorpusReader;
    WindowStream(const unsigned char *cursor, std::size_t count)
        : cursor_(cursor), remaining_(count)
    {
    }

    const unsigned char *cursor_;
    std::size_t remaining_;
};

/** Validated read-only view of one RHMD-CORPUS file. */
class CorpusReader
{
  public:
    /** Per-program metadata from the index section. */
    struct ProgramMeta
    {
        std::string name;
        bool malware = false;
        std::uint32_t family = 0;
    };

    /**
     * Map and validate @p path. See the file comment for the error
     * taxonomy; an OK result guarantees every section checksum
     * matched and every window run lies inside the data section.
     */
    static support::StatusOr<CorpusReader> open(const std::string &path);

    CorpusReader(CorpusReader &&) noexcept;
    CorpusReader &operator=(CorpusReader &&) noexcept;
    ~CorpusReader();

    std::uint32_t formatVersion() const;
    std::uint64_t configKey() const;

    /** Content identity (format.hh contentHashOf) for manifests. */
    std::uint64_t contentHash() const;

    /** Total file size in bytes. */
    std::uint64_t fileBytes() const;

    /** True when backed by mmap, false on the arena fallback. */
    bool mapped() const;

    const std::vector<std::uint32_t> &periods() const;
    std::size_t programCount() const;
    const ProgramMeta &meta(std::size_t program) const;

    /** Windows recorded for (program, period); total over periods(). */
    std::size_t windowCount(std::size_t program,
                            std::uint32_t period) const;
    std::uint64_t windowTotal() const;

    /**
     * Stream the windows of one (program, period) run. Panics on an
     * out-of-range program or unknown period (caller bug; the file's
     * own consistency was proven at open()).
     */
    WindowStream stream(std::size_t program, std::uint32_t period) const;

    /**
     * Decode the whole corpus into the in-memory FeatureCorpus the
     * experiment pipeline consumes — the replay path. This is the
     * one deliberately materializing accessor; everything else stays
     * streaming.
     */
    features::FeatureCorpus materialize() const;

    /**
     * Walk every window run end to end with a streaming decode and
     * re-count; O(1) memory. The integrity pass behind
     * `rhmd-corpus verify` (open() already proved the checksums, so
     * this exercises record decoding and the run directory).
     */
    support::Status verify() const;

  private:
    struct Impl;
    explicit CorpusReader(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

/**
 * Stream one dataset row per window of @p period into @p out, labels
 * taken from each program's malware flag and rows assembled with the
 * combined vector of @p specs — the streaming replacement for
 * materializing a FeatureCorpus just to build an ml::Dataset. Rows
 * land in (program, window) order, matching an in-memory build over
 * materialize(). Panics if @p period is not in the corpus.
 */
void appendWindows(const CorpusReader &reader, std::uint32_t period,
                   const std::vector<features::FeatureSpec> &specs,
                   ml::Dataset &out);

} // namespace rhmd::corpus

#endif // RHMD_CORPUS_READER_HH
