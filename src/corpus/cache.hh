/**
 * @file
 * Corpus cache plumbing: configuration keys, the shared bench/tool
 * experiment presets, $RHMD_CORPUS_DIR resolution, and the chunked
 * streaming corpus build behind `rhmd-corpus generate`.
 *
 * A corpus file is only replayable for the exact configuration that
 * generated it, so cached corpora are addressed by a 64-bit config
 * key derived from (format version, seed, corpus sizes, hardness
 * blends, periods, trace length). Experiment::build refuses a
 * key-mismatched file; the CI corpus-cache stage keys its
 * actions/cache entries the same way.
 */

#ifndef RHMD_CORPUS_CACHE_HH
#define RHMD_CORPUS_CACHE_HH

#include <cstdint>
#include <string>

#include "core/experiment.hh"
#include "support/status.hh"

namespace rhmd::corpus
{

/**
 * The 64-bit identity of everything that determines a corpus file's
 * bytes: the corpus format version plus every ExperimentConfig field
 * the generator and extractor consume (seed, program counts,
 * hardness blends, periods, trace length). Training-side fields
 * (opcodeTopK) and the replay path itself are excluded.
 */
std::uint64_t configKey(const core::ExperimentConfig &config);

/** Canonical cache file name: "corpus-<16-hex-key>.rhmdc". */
std::string cacheFileName(std::uint64_t key);

/**
 * Resolve the replay path for @p config: when $RHMD_CORPUS_DIR names
 * a directory containing cacheFileName(configKey(config)), return
 * that path; otherwise return "" (callers fall back to fresh
 * generation). An explicit ExperimentConfig::corpusPath bypasses
 * this lookup entirely.
 */
std::string resolveReplayPath(const core::ExperimentConfig &config);

/**
 * The experiment configurations the benches run, shared with
 * `rhmd-corpus generate` so pre-generated corpora key-match the
 * bench runs exactly:
 *
 *   "standard"  bench_common standardConfig(): the fig02/fig16/
 *               micro_perf corpus
 *   "fig13"     standard, with the full-size program counts
 *               bench_fig13_generations uses (same as standard in
 *               smoke mode)
 *   "serve"     standard with the short 40k-instruction traces the
 *               serving benches extract
 *
 * Fatal on an unknown preset name (config-time error).
 */
core::ExperimentConfig presetConfig(const std::string &preset,
                                    bool smoke);

/** Every preset name, for CLI help and generate-all loops. */
const std::vector<std::string> &presetNames();

/**
 * Process-wide record of the corpus replay the experiment pipeline
 * performed, stamped into bench manifests (bench_common) so a
 * BENCH_*.json from a corpus-backed run names the corpus it replayed.
 * Set by Experiment::build when it replays; never cleared.
 */
struct ReplayInfo
{
    bool active = false;
    std::string path;
    std::uint32_t formatVersion = 0;
    std::uint64_t contentHash = 0;
};

ReplayInfo &replayInfo();

/** What writeExperimentCorpus() produced. */
struct WriteSummary
{
    std::string path;
    std::uint64_t configKey = 0;
    std::uint64_t contentHash = 0;
    std::size_t programs = 0;
    std::uint64_t windows = 0;
    std::uint64_t bytes = 0;
};

/**
 * Generate @p config's program population and stream its extracted
 * windows into an RHMD-CORPUS file at @p path. Extraction runs in
 * bounded-size chunks on the global thread pool (parallel across
 * programs, appended in program order), so peak memory stays at one
 * chunk of windows regardless of corpus size, and the resulting
 * bytes are identical at every thread count. The file replays
 * bit-identically through Experiment::build for the same @p config.
 */
support::StatusOr<WriteSummary>
writeExperimentCorpus(const core::ExperimentConfig &config,
                      const std::string &path);

} // namespace rhmd::corpus

#endif // RHMD_CORPUS_CACHE_HH
