/**
 * @file
 * Corpus reader implementation: mapping, validation, streaming.
 */

#include "corpus/reader.hh"

#include <cstdio>
#include <cstring>
#include <utility>

#include "corpus/format.hh"
#include "support/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define RHMD_CORPUS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rhmd::corpus
{

namespace
{

/** Bounds-checked forward cursor over the index section. */
struct Cursor
{
    const unsigned char *p;
    const unsigned char *end;

    bool take(std::size_t n, const unsigned char *&out)
    {
        if (static_cast<std::size_t>(end - p) < n)
            return false;
        out = p;
        p += n;
        return true;
    }

    bool u32(std::uint32_t &out)
    {
        const unsigned char *bytes = nullptr;
        if (!take(4, bytes))
            return false;
        out = loadLe32(bytes);
        return true;
    }

    bool u64(std::uint64_t &out)
    {
        const unsigned char *bytes = nullptr;
        if (!take(8, bytes))
            return false;
        out = loadLe64(bytes);
        return true;
    }
};

} // namespace

struct CorpusReader::Impl
{
    std::string path;
    const unsigned char *data = nullptr;
    std::size_t size = 0;
    bool isMmap = false;
    std::vector<unsigned char> arena;

    std::uint32_t version = 0;
    std::uint64_t configKey = 0;
    std::uint64_t contentHash = 0;
    std::uint64_t windowTotal = 0;
    std::vector<std::uint32_t> periods;
    std::vector<ProgramMeta> metas;
    /** runs[program][periodIndex] = (absolute offset, window count) */
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        runs;

    ~Impl()
    {
#ifdef RHMD_CORPUS_HAVE_MMAP
        if (isMmap && data != nullptr)
            ::munmap(const_cast<unsigned char *>(data), size);
#endif
    }

    support::Status mapFile();
};

/**
 * Map this->path read-only: mmap where available, falling back to an
 * arena read when mmap is unsupported or fails (e.g. a pseudo-file
 * a filesystem refuses to map). Fills data/size/isMmap/arena.
 */
support::Status
CorpusReader::Impl::mapFile()
{
    Impl &impl = *this;
#ifdef RHMD_CORPUS_HAVE_MMAP
    const int fd = ::open(impl.path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st = {};
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            const std::size_t size =
                static_cast<std::size_t>(st.st_size);
            void *mapping =
                ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            if (mapping != MAP_FAILED) {
                ::close(fd);
                impl.data =
                    static_cast<const unsigned char *>(mapping);
                impl.size = size;
                impl.isMmap = true;
                return support::Status();
            }
        }
        ::close(fd);
    }
#endif
    // Arena fallback: buffered read of the whole file.
    std::FILE *file = std::fopen(impl.path.c_str(), "rb");
    if (file == nullptr)
        return support::unavailableError("cannot open corpus file '",
                                         impl.path, "'");
    std::fseek(file, 0, SEEK_END);
    const long where = std::ftell(file);
    if (where < 0) {
        std::fclose(file);
        return support::unavailableError("cannot size corpus file '",
                                         impl.path, "'");
    }
    std::fseek(file, 0, SEEK_SET);
    impl.arena.resize(static_cast<std::size_t>(where));
    const std::size_t got = impl.arena.empty()
                                ? 0
                                : std::fread(impl.arena.data(), 1,
                                             impl.arena.size(), file);
    std::fclose(file);
    if (got != impl.arena.size())
        return support::dataLossError("short read of corpus file '",
                                      impl.path, "'");
    impl.data = impl.arena.data();
    impl.size = impl.arena.size();
    impl.isMmap = false;
    return support::Status();
}

CorpusReader::CorpusReader(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

CorpusReader::CorpusReader(CorpusReader &&) noexcept = default;
CorpusReader &CorpusReader::operator=(CorpusReader &&) noexcept =
    default;
CorpusReader::~CorpusReader() = default;

support::StatusOr<CorpusReader>
CorpusReader::open(const std::string &path)
{
    auto impl = std::make_unique<Impl>();
    impl->path = path;
    support::Status st = impl->mapFile();
    if (!st.isOk())
        return st;
    const unsigned char *data = impl->data;
    const std::size_t size = impl->size;

    if (size < kHeaderBytes + kTrailerBytes)
        return support::dataLossError(
            "corpus file '", path, "' truncated: ", size,
            " bytes, need at least ", kHeaderBytes + kTrailerBytes);
    if (std::memcmp(data, kCorpusMagic, sizeof(kCorpusMagic)) != 0)
        return support::invalidArgumentError(
            "'", path, "' is not an RHMD-CORPUS file (bad magic)");
    impl->version = loadLe32(data + 12);
    if (impl->version != kCorpusFormatVersion)
        return support::failedPreconditionError(
            "corpus file '", path, "' has format version ",
            impl->version, "; this build reads version ",
            kCorpusFormatVersion);
    impl->configKey = loadLe64(data + 16);

    // Trailer directory, then prove the sections tile the file.
    const unsigned char *trailer = data + size - kTrailerBytes;
    const std::uint64_t data_offset = loadLe64(trailer + 0);
    const std::uint64_t data_bytes = loadLe64(trailer + 8);
    const std::uint64_t data_checksum = loadLe64(trailer + 16);
    const std::uint64_t index_offset = loadLe64(trailer + 24);
    const std::uint64_t index_bytes = loadLe64(trailer + 32);
    const std::uint64_t index_checksum = loadLe64(trailer + 40);
    const std::uint64_t header_checksum = loadLe64(trailer + 48);
    impl->windowTotal = loadLe64(trailer + 56);
    if (loadLe64(trailer + 64) != kTrailerMagic)
        return support::dataLossError(
            "corpus file '", path, "' has a corrupt trailer magic");
    if (data_offset != kHeaderBytes ||
        index_offset != data_offset + data_bytes ||
        index_offset + index_bytes != size - kTrailerBytes)
        return support::dataLossError(
            "corpus file '", path,
            "' section directory does not tile the file");
    if (data_bytes % kWindowRecordBytes != 0)
        return support::dataLossError(
            "corpus file '", path, "' data section is not a whole "
            "number of window records");

    // Checksums before any parsing: the index decode below only ever
    // sees bytes that already proved authentic.
    if (fnv1a(kFnvOffset, data, kHeaderBytes) != header_checksum)
        return support::dataLossError("corpus file '", path,
                                      "' header checksum mismatch");
    if (fnv1a(kFnvOffset, data + data_offset,
              static_cast<std::size_t>(data_bytes)) != data_checksum)
        return support::dataLossError("corpus file '", path,
                                      "' data checksum mismatch");
    if (fnv1a(kFnvOffset, data + index_offset,
              static_cast<std::size_t>(index_bytes)) != index_checksum)
        return support::dataLossError("corpus file '", path,
                                      "' index checksum mismatch");
    impl->contentHash = contentHashOf(impl->version, impl->configKey,
                                      data_checksum, index_checksum);

    // Index decode, bounds-checked (defense in depth — a writer bug
    // must surface as DataLoss here, never as UB downstream).
    Cursor cur{data + index_offset,
               data + index_offset + index_bytes};
    const auto truncated = [&]() {
        return support::dataLossError("corpus file '", path,
                                      "' index section truncated");
    };
    std::uint32_t n_periods = 0;
    if (!cur.u32(n_periods))
        return truncated();
    if (n_periods == 0 || n_periods > 1024)
        return support::dataLossError(
            "corpus file '", path, "' has an implausible period "
            "count ", n_periods);
    impl->periods.reserve(n_periods);
    for (std::uint32_t i = 0; i < n_periods; ++i) {
        std::uint32_t period = 0;
        if (!cur.u32(period))
            return truncated();
        if (period == 0)
            return support::dataLossError(
                "corpus file '", path, "' declares a zero period");
        impl->periods.push_back(period);
    }
    std::uint64_t n_programs = 0;
    if (!cur.u64(n_programs))
        return truncated();

    std::uint64_t expected_offset = data_offset;
    std::uint64_t window_sum = 0;
    impl->metas.reserve(static_cast<std::size_t>(n_programs));
    impl->runs.reserve(static_cast<std::size_t>(n_programs));
    for (std::uint64_t i = 0; i < n_programs; ++i) {
        ProgramMeta meta;
        std::uint32_t name_len = 0;
        if (!cur.u32(name_len))
            return truncated();
        const unsigned char *name = nullptr;
        if (!cur.take(name_len, name))
            return truncated();
        meta.name.assign(reinterpret_cast<const char *>(name),
                         name_len);
        std::uint32_t flags = 0;
        if (!cur.u32(flags))
            return truncated();
        meta.malware = (flags & 1U) != 0;
        if (!cur.u32(meta.family))
            return truncated();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> prog_runs;
        prog_runs.reserve(impl->periods.size());
        for (std::size_t pd = 0; pd < impl->periods.size(); ++pd) {
            std::uint64_t count = 0;
            std::uint64_t offset = 0;
            if (!cur.u64(count) || !cur.u64(offset))
                return truncated();
            // Runs must tile the data section in index order: this
            // pins every data byte to exactly one window record.
            if (offset != expected_offset ||
                count > (data_offset + data_bytes - offset) /
                            kWindowRecordBytes)
                return support::dataLossError(
                    "corpus file '", path, "' window run for "
                    "program ", i, " lies outside the data section");
            expected_offset = offset + count * kWindowRecordBytes;
            window_sum += count;
            prog_runs.emplace_back(offset, count);
        }
        impl->metas.push_back(std::move(meta));
        impl->runs.push_back(std::move(prog_runs));
    }
    if (cur.p != cur.end)
        return support::dataLossError(
            "corpus file '", path, "' has ",
            static_cast<std::size_t>(cur.end - cur.p),
            " unparsed index bytes");
    if (expected_offset != data_offset + data_bytes)
        return support::dataLossError(
            "corpus file '", path, "' window runs do not cover the "
            "data section");
    if (window_sum != impl->windowTotal)
        return support::dataLossError(
            "corpus file '", path, "' trailer window total ",
            impl->windowTotal, " != index sum ", window_sum);
    return CorpusReader(std::move(impl));
}

std::uint32_t
CorpusReader::formatVersion() const
{
    return impl_->version;
}

std::uint64_t
CorpusReader::configKey() const
{
    return impl_->configKey;
}

std::uint64_t
CorpusReader::contentHash() const
{
    return impl_->contentHash;
}

std::uint64_t
CorpusReader::fileBytes() const
{
    return impl_->size;
}

bool
CorpusReader::mapped() const
{
    return impl_->isMmap;
}

const std::vector<std::uint32_t> &
CorpusReader::periods() const
{
    return impl_->periods;
}

std::size_t
CorpusReader::programCount() const
{
    return impl_->metas.size();
}

const CorpusReader::ProgramMeta &
CorpusReader::meta(std::size_t program) const
{
    panic_if(program >= impl_->metas.size(),
             "corpus program index out of range");
    return impl_->metas[program];
}

std::uint64_t
CorpusReader::windowTotal() const
{
    return impl_->windowTotal;
}

namespace
{

std::size_t
periodIndexOf(const std::vector<std::uint32_t> &periods,
              std::uint32_t period)
{
    for (std::size_t i = 0; i < periods.size(); ++i) {
        if (periods[i] == period)
            return i;
    }
    rhmd_panic("corpus has no windows for period ", period);
}

} // namespace

std::size_t
CorpusReader::windowCount(std::size_t program,
                          std::uint32_t period) const
{
    panic_if(program >= impl_->runs.size(),
             "corpus program index out of range");
    const std::size_t pd = periodIndexOf(impl_->periods, period);
    return static_cast<std::size_t>(impl_->runs[program][pd].second);
}

WindowStream
CorpusReader::stream(std::size_t program, std::uint32_t period) const
{
    panic_if(program >= impl_->runs.size(),
             "corpus program index out of range");
    const std::size_t pd = periodIndexOf(impl_->periods, period);
    const auto &[offset, count] = impl_->runs[program][pd];
    return WindowStream(impl_->data + offset,
                        static_cast<std::size_t>(count));
}

bool
WindowStream::next(features::RawWindow &out)
{
    if (remaining_ == 0)
        return false;
    decodeWindow(cursor_, out);
    cursor_ += kWindowRecordBytes;
    --remaining_;
    return true;
}

features::FeatureCorpus
CorpusReader::materialize() const
{
    features::FeatureCorpus corpus;
    corpus.periods = impl_->periods;
    corpus.programs.resize(impl_->metas.size());
    for (std::size_t i = 0; i < impl_->metas.size(); ++i) {
        features::ProgramFeatures &prog = corpus.programs[i];
        const ProgramMeta &meta = impl_->metas[i];
        prog.name = meta.name;
        prog.malware = meta.malware;
        prog.family = meta.family;
        for (std::uint32_t period : impl_->periods) {
            std::vector<features::RawWindow> &windows =
                prog.byPeriod[period];
            windows.resize(windowCount(i, period));
            WindowStream ws = stream(i, period);
            for (features::RawWindow &window : windows)
                ws.next(window);
        }
    }
    return corpus;
}

support::Status
CorpusReader::verify() const
{
    std::uint64_t walked = 0;
    features::RawWindow window;
    for (std::size_t i = 0; i < programCount(); ++i) {
        for (std::uint32_t period : impl_->periods) {
            WindowStream ws = stream(i, period);
            while (ws.next(window)) {
                if (window.instCount == 0)
                    return support::dataLossError(
                        "corpus file '", impl_->path, "' program ", i,
                        " period ", period,
                        " contains an empty window");
                ++walked;
            }
        }
    }
    if (walked != impl_->windowTotal)
        return support::internalError(
            "corpus walk visited ", walked, " windows, trailer "
            "promised ", impl_->windowTotal);
    return support::Status();
}

void
appendWindows(const CorpusReader &reader, std::uint32_t period,
              const std::vector<features::FeatureSpec> &specs,
              ml::Dataset &out)
{
    const std::size_t dim = features::combinedDim(specs);
    std::vector<double> row(dim);
    features::RawWindow window;
    for (std::size_t i = 0; i < reader.programCount(); ++i) {
        const int label = reader.meta(i).malware ? 1 : 0;
        WindowStream ws = reader.stream(i, period);
        while (ws.next(window)) {
            features::fillCombined(specs, window, row.data());
            out.add(row.data(), dim, label);
        }
    }
}

} // namespace rhmd::corpus
