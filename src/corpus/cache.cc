/**
 * @file
 * Corpus cache implementation.
 */

#include "corpus/cache.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "corpus/format.hh"
#include "corpus/writer.hh"
#include "features/corpus.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "trace/generator.hh"

namespace rhmd::corpus
{

std::uint64_t
configKey(const core::ExperimentConfig &config)
{
    std::uint64_t key = kFnvOffset;
    key = fnv1aU64(key, kCorpusFormatVersion);
    key = fnv1aU64(key, config.seed);
    key = fnv1aU64(key, config.benignCount);
    key = fnv1aU64(key, config.malwareCount);
    key = fnv1aU64(key, std::bit_cast<std::uint64_t>(config.commonBlend));
    key = fnv1aU64(key, std::bit_cast<std::uint64_t>(config.hardBlend));
    key = fnv1aU64(key, std::bit_cast<std::uint64_t>(config.hardFrac));
    key = fnv1aU64(key, config.periods.size());
    for (std::uint32_t period : config.periods)
        key = fnv1aU64(key, period);
    key = fnv1aU64(key, config.traceInsts);
    return key;
}

std::string
cacheFileName(std::uint64_t key)
{
    char name[40];
    std::snprintf(name, sizeof(name), "corpus-%016llx.rhmdc",
                  static_cast<unsigned long long>(key));
    return name;
}

std::string
resolveReplayPath(const core::ExperimentConfig &config)
{
    const char *dir = std::getenv("RHMD_CORPUS_DIR");
    if (dir == nullptr || *dir == '\0')
        return "";
    const std::string path =
        std::string(dir) + "/" + cacheFileName(configKey(config));
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        // The caller asked for replay (the env var is set) but the
        // cache holds no key-matching file: fresh extraction will run
        // instead. Silent fallback hides CI cache misconfiguration —
        // say so once per lookup and count it (the replay CI leg
        // asserts this counter never appears).
        static support::Counter &misses = support::metrics().counter(
            "corpus.replay_miss",
            "RHMD_CORPUS_DIR lookups that found no key-matching "
            "corpus and fell back to fresh extraction");
        misses.add(1);
        warn(rhmd::detail::concat(
            "RHMD_CORPUS_DIR is set but '", path,
            "' does not exist; falling back to fresh extraction"));
        return "";
    }
    std::fclose(file);
    return path;
}

core::ExperimentConfig
presetConfig(const std::string &preset, bool smoke)
{
    // The "standard" numbers must stay in lockstep with what the
    // benches run (bench/bench_common.hh delegates here), or cached
    // corpora stop key-matching bench configurations.
    core::ExperimentConfig config;
    config.seed = 20171014; // MICRO-50 opening day
    config.benignCount = 180;
    config.malwareCount = 360;
    config.periods = {5000, 10000};
    config.traceInsts = 120000;
    if (smoke) {
        config.benignCount = 60;
        config.malwareCount = 120;
        config.traceInsts = 80000;
    }
    if (preset == "standard")
        return config;
    if (preset == "fig13") {
        if (!smoke) {
            config.benignCount = 120;
            config.malwareCount = 240;
        }
        return config;
    }
    if (preset == "serve") {
        config.traceInsts = 40000;
        return config;
    }
    rhmd_fatal("unknown corpus preset '", preset,
               "' (known: standard, fig13, serve)");
}

const std::vector<std::string> &
presetNames()
{
    static const std::vector<std::string> names = {"standard", "fig13",
                                                   "serve"};
    return names;
}

ReplayInfo &
replayInfo()
{
    static ReplayInfo info;
    return info;
}

support::StatusOr<WriteSummary>
writeExperimentCorpus(const core::ExperimentConfig &config,
                      const std::string &path)
{
    const trace::GeneratorConfig gen = core::generatorConfigOf(config);
    const std::vector<trace::Program> programs =
        trace::ProgramGenerator(gen).generateCorpus();
    const features::ExtractConfig extract =
        core::extractConfigOf(config);

    auto writer =
        CorpusWriter::create(path, configKey(config), extract.periods);
    if (!writer.isOk())
        return writer.status();

    // Chunked extraction: parallel across the chunk's programs,
    // appended in program order, chunk windows freed before the next
    // chunk starts — bounded memory at any corpus size, and the same
    // bytes at every thread count (extraction is per-program seeded).
    constexpr std::size_t kChunk = 32;
    for (std::size_t start = 0; start < programs.size();
         start += kChunk) {
        const std::size_t n =
            std::min(kChunk, programs.size() - start);
        std::vector<features::ProgramFeatures> chunk =
            support::parallelMap<features::ProgramFeatures>(
                n, [&](std::size_t i) {
                    return features::extractProgram(
                        programs[start + i], extract);
                });
        for (const features::ProgramFeatures &prog : chunk) {
            const support::Status st = writer->append(prog);
            if (!st.isOk())
                return st;
        }
    }
    const support::Status st = writer->finalize();
    if (!st.isOk())
        return st;

    WriteSummary summary;
    summary.path = path;
    summary.configKey = configKey(config);
    summary.contentHash = writer->contentHash();
    summary.programs = writer->programCount();
    summary.windows = writer->windowTotal();
    summary.bytes = writer->bytesWritten();
    return summary;
}

} // namespace rhmd::corpus
