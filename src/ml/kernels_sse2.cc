/**
 * @file
 * SSE2 kernel table: 2-lane instantiations of the shared bodies.
 *
 * SSE2 is the x86-64 baseline, so this file needs no extra compile
 * flags. The tree kernels stay on the scalar traversal — 2-lane
 * gathers do not exist below AVX2 and emulating them buys nothing.
 */

#include "ml/kernels_impl.hh"

#if defined(__SSE2__)

namespace rhmd::ml::detail
{

const KernelTable &
sse2Table()
{
    static const KernelTable table = [] {
        KernelTable t = scalarTable();
        t.target = simd::Target::Sse2;
        t.linearMargin = linearMarginVec<simd::VecSse2>;
        t.standardizeRow = standardizeRowVec<simd::VecSse2>;
        t.rateConvertU32 = rateConvertU32Vec<simd::VecSse2>;
        t.rateAccumulateU32 = rateAccumulateU32Vec<simd::VecSse2>;
        t.rateConvertF64 = rateConvertF64Vec<simd::VecSse2>;
        return t;
    }();
    return table;
}

} // namespace rhmd::ml::detail

#endif // __SSE2__
