/**
 * @file
 * Labeled datasets and feature standardization.
 */

#ifndef RHMD_ML_DATASET_HH
#define RHMD_ML_DATASET_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace rhmd::ml
{

/**
 * A dense binary-labeled dataset. Label 1 means "malware" (the
 * detector's positive class) throughout the library.
 */
struct Dataset
{
    std::vector<std::vector<double>> x;
    std::vector<int> y;

    /** Append one example. */
    void add(std::vector<double> features, int label);

    /**
     * Append one example from a caller-owned row of @p n doubles —
     * the form streaming producers (corpus replay) use so the source
     * buffer can be reused across rows.
     */
    void add(const double *features, std::size_t n, int label);

    /** Number of examples. */
    std::size_t size() const { return x.size(); }

    bool empty() const { return x.empty(); }

    /** Feature dimensionality (0 when empty). */
    std::size_t dim() const { return x.empty() ? 0 : x.front().size(); }

    /** Count of label-1 examples. */
    std::size_t positives() const;

    /** Concatenate another dataset (dims must match). */
    void append(const Dataset &other);

    /** A new dataset with examples permuted by @p rng. */
    Dataset shuffled(Rng &rng) const;

    /** Panic unless all rows share the same dimensionality. */
    void validate() const;
};

/**
 * Per-feature z-score standardizer. Fitted on training data; the
 * same transform must be applied to every vector scored later.
 * Features with (near-)zero variance get scale 1 so they pass
 * through centred but unscaled.
 */
struct Standardizer
{
    std::vector<double> mean;
    std::vector<double> scale;

    /** Fit on a dataset (requires at least one example). */
    static Standardizer fit(const Dataset &data);

    /** Transform one vector. */
    std::vector<double> apply(const std::vector<double> &v) const;

    /**
     * Transform @p row (@p n doubles) in place — the allocation-free
     * form of apply() used when filling feature-matrix rows. Values
     * are bit-identical to apply() on every simd target. Panics
     * unless @p n == dim(): the caller's buffer length is part of
     * the call so a short row can never be standardized off its end.
     */
    void applyInPlace(double *row, std::size_t n) const;

    /** Transform a whole dataset. */
    Dataset transform(const Dataset &data) const;

    std::size_t dim() const { return mean.size(); }
};

} // namespace rhmd::ml

#endif // RHMD_ML_DATASET_HH
