/**
 * @file
 * Linear support vector machine — the third attacker-side algorithm
 * in the paper's reverse-engineering experiments.
 */

#ifndef RHMD_ML_SVM_HH
#define RHMD_ML_SVM_HH

#include "ml/classifier.hh"

namespace rhmd::ml
{

/** Pegasos training hyperparameters. */
struct SvmConfig
{
    double lambda = 1e-4;   ///< regularization strength
    std::size_t epochs = 60;
    /** Scale applied to the margin inside the sigmoid for score(). */
    double scoreSharpness = 2.0;
};

/**
 * Linear SVM trained with the Pegasos stochastic sub-gradient
 * solver. score() squashes the signed margin through a sigmoid so
 * the common [0, 1] threshold machinery applies.
 */
class LinearSvm : public Classifier
{
  public:
    explicit LinearSvm(SvmConfig config = {});

    void train(const Dataset &data, Rng &rng) override;
    double score(const std::vector<double> &x) const override;
    std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string name() const override { return "SVM"; }

    /** Signed margin w.x + b. */
    double margin(const std::vector<double> &x) const;

    const std::vector<double> &weights() const { return weights_; }
    double bias() const { return bias_; }

    /** Sigmoid sharpness applied to the margin in score(). */
    double scoreSharpness() const { return config_.scoreSharpness; }

    /** Directly install parameters (testing / serialization). */
    void setParams(std::vector<double> weights, double bias);

  private:
    SvmConfig config_;
    std::vector<double> weights_;
    double bias_ = 0.0;
};

} // namespace rhmd::ml

#endif // RHMD_ML_SVM_HH
