/**
 * @file
 * Pegasos linear SVM implementation.
 */

#include "ml/svm.hh"

#include <cmath>

#include "ml/kernels.hh"
#include "ml/logistic_regression.hh"  // for sigmoid()
#include "support/logging.hh"
#include "support/stats.hh"

namespace rhmd::ml
{

LinearSvm::LinearSvm(SvmConfig config)
    : config_(config)
{
}

void
LinearSvm::train(const Dataset &data, Rng &rng)
{
    fatal_if(data.empty(), "cannot train SVM on empty data");
    data.validate();
    const std::size_t d = data.dim();
    weights_.assign(d, 0.0);
    bias_ = 0.0;

    std::size_t t = 0;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const std::vector<std::size_t> order =
            rng.permutation(data.size());
        for (std::size_t i : order) {
            ++t;
            const double eta =
                1.0 / (config_.lambda * static_cast<double>(t));
            const double label = data.y[i] == 1 ? 1.0 : -1.0;
            const double m = (dot(weights_, data.x[i]) + bias_) * label;

            // w <- (1 - eta*lambda) w  [+ eta*y*x on margin violation]
            const double shrink = 1.0 - eta * config_.lambda;
            for (double &w : weights_)
                w *= shrink;
            if (m < 1.0) {
                axpy(weights_, eta * label, data.x[i]);
                bias_ += eta * label * 0.1;  // lightly-regularized bias
            }
        }
    }
}

double
LinearSvm::margin(const std::vector<double> &x) const
{
    panic_if(weights_.empty(), "SVM scored before training");
    return dot(weights_, x) + bias_;
}

double
LinearSvm::score(const std::vector<double> &x) const
{
    return sigmoid(config_.scoreSharpness * margin(x));
}

std::vector<double>
LinearSvm::scoreBatch(const features::FeatureMatrix &x) const
{
    panic_if(weights_.empty(), "SVM scored before training");
    panic_if(x.rows() > 0 && x.cols() != weights_.size(),
             "SVM batch dim mismatch: ", x.cols(), " vs ",
             weights_.size());
    const std::size_t d = weights_.size();
    const double *w = weights_.data();
    const KernelTable &k = kernels();
    if (k.target == simd::Target::Scalar) {
        // Reference path: margin() via support::dot's accumulation
        // order, so batch scores are bit-identical to score().
        std::vector<double> out(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double *row = x.row(r);
            double z = 0.0;
            for (std::size_t j = 0; j < d; ++j)
                z += w[j] * row[j];
            out[r] = sigmoid(config_.scoreSharpness * (z + bias_));
        }
        return out;
    }
    // Kernel path: SoA margins with the reference accumulation
    // order, sharpness and sigmoid applied per real row.
    std::vector<double> out = scoreSpan(x);
    k.linearMargin(x, w, bias_, out.data());
    out.resize(x.rows());  // drop padding lanes: they are not windows
    for (double &z : out)
        z = sigmoid(config_.scoreSharpness * z);
    return out;
}

std::unique_ptr<Classifier>
LinearSvm::clone() const
{
    return std::make_unique<LinearSvm>(*this);
}

void
LinearSvm::setParams(std::vector<double> weights, double bias)
{
    weights_ = std::move(weights);
    bias_ = bias;
}

} // namespace rhmd::ml
