/**
 * @file
 * The classifier interface every learning algorithm implements.
 */

#ifndef RHMD_ML_CLASSIFIER_HH
#define RHMD_ML_CLASSIFIER_HH

#include <memory>
#include <string>
#include <vector>

#include "features/matrix.hh"
#include "ml/dataset.hh"
#include "support/rng.hh"

namespace rhmd::ml
{

/**
 * A binary classifier. score() returns the positive-class (malware)
 * probability-like value in [0, 1]; callers choose the operating
 * threshold (typically via metrics::bestAccuracyThreshold to match
 * the paper's "point on the ROC which maximizes the accuracy").
 */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /**
     * Fit to the (already standardized) training data. @p rng drives
     * initialization and example ordering, making training fully
     * deterministic for a given seed.
     */
    virtual void train(const Dataset &data, Rng &rng) = 0;

    /** Positive-class score in [0, 1]. */
    virtual double score(const std::vector<double> &x) const = 0;

    /**
     * Positive-class scores for every row of @p x, in row order.
     *
     * The base implementation is the serial fallback: copy each row
     * out and call score(). Overrides walk the contiguous rows with
     * allocation-free inner loops, but MUST keep the per-row
     * accumulation order of score() exactly — batch scores are
     * required to be bit-identical to the per-window path by the
     * determinism gates (DESIGN.md §11), and that holds across every
     * simd dispatch target (DESIGN.md §14).
     *
     * Exactly rows() scores come back, in row order, whether or not
     * the matrix carries a padded SoA view: padding lanes exist only
     * inside the kernels and never surface as scores or decisions.
     * The serial fallback reads rows [0, rows()) of the row-major
     * block only, so a batch whose tail rows came from truncated
     * windows is scored on those rows' real features, never on
     * out-of-row memory or padding.
     */
    virtual std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const
    {
        std::vector<double> out;
        out.reserve(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r)
            out.push_back(score(x.rowVector(r)));
        return out;
    }

    /** Deep copy (used to stamp out detector pools). */
    virtual std::unique_ptr<Classifier> clone() const = 0;

    /** Algorithm name, e.g. "LR", "NN", "DT", "SVM". */
    virtual std::string name() const = 0;

    /** Hard decision at a threshold. */
    int
    predict(const std::vector<double> &x, double threshold = 0.5) const
    {
        return score(x) >= threshold ? 1 : 0;
    }
};

} // namespace rhmd::ml

#endif // RHMD_ML_CLASSIFIER_HH
