/**
 * @file
 * Dataset and standardizer implementation.
 */

#include "ml/dataset.hh"

#include <cmath>

#include "ml/kernels.hh"
#include "support/logging.hh"

namespace rhmd::ml
{

void
Dataset::add(std::vector<double> features, int label)
{
    panic_if(label != 0 && label != 1, "labels must be 0 or 1");
    panic_if(!x.empty() && features.size() != x.front().size(),
             "feature dimensionality mismatch: ", features.size(),
             " vs ", x.front().size());
    x.push_back(std::move(features));
    y.push_back(label);
}

void
Dataset::add(const double *features, std::size_t n, int label)
{
    add(std::vector<double>(features, features + n), label);
}

std::size_t
Dataset::positives() const
{
    std::size_t count = 0;
    for (int label : y)
        count += label;
    return count;
}

void
Dataset::append(const Dataset &other)
{
    panic_if(!empty() && !other.empty() && dim() != other.dim(),
             "cannot append dataset of dim ", other.dim(), " to dim ",
             dim());
    x.insert(x.end(), other.x.begin(), other.x.end());
    y.insert(y.end(), other.y.begin(), other.y.end());
}

Dataset
Dataset::shuffled(Rng &rng) const
{
    const std::vector<std::size_t> perm = rng.permutation(size());
    Dataset out;
    out.x.reserve(size());
    out.y.reserve(size());
    for (std::size_t i : perm) {
        out.x.push_back(x[i]);
        out.y.push_back(y[i]);
    }
    return out;
}

void
Dataset::validate() const
{
    panic_if(x.size() != y.size(), "dataset x/y size mismatch");
    for (const auto &row : x)
        panic_if(row.size() != dim(), "ragged dataset rows");
}

Standardizer
Standardizer::fit(const Dataset &data)
{
    fatal_if(data.empty(), "cannot fit a standardizer on empty data");
    const std::size_t d = data.dim();
    const auto n = static_cast<double>(data.size());

    Standardizer out;
    out.mean.assign(d, 0.0);
    out.scale.assign(d, 1.0);

    for (const auto &row : data.x) {
        for (std::size_t j = 0; j < d; ++j)
            out.mean[j] += row[j];
    }
    for (double &m : out.mean)
        m /= n;

    std::vector<double> var(d, 0.0);
    for (const auto &row : data.x) {
        for (std::size_t j = 0; j < d; ++j) {
            const double delta = row[j] - out.mean[j];
            var[j] += delta * delta;
        }
    }
    for (std::size_t j = 0; j < d; ++j) {
        const double sd = std::sqrt(var[j] / n);
        out.scale[j] = sd > 1e-12 ? sd : 1.0;
    }
    return out;
}

std::vector<double>
Standardizer::apply(const std::vector<double> &v) const
{
    panic_if(v.size() != mean.size(),
             "standardizer dim mismatch: ", v.size(), " vs ",
             mean.size());
    std::vector<double> out(v.size());
    for (std::size_t j = 0; j < v.size(); ++j)
        out[j] = (v[j] - mean[j]) / scale[j];
    return out;
}

void
Standardizer::applyInPlace(double *row, std::size_t n) const
{
    panic_if(n != mean.size(),
             "standardizer dim mismatch: ", n, " vs ", mean.size());
    kernels().standardizeRow(row, mean.data(), scale.data(), n);
}

Dataset
Standardizer::transform(const Dataset &data) const
{
    Dataset out;
    out.x.reserve(data.size());
    out.y = data.y;
    for (const auto &row : data.x)
        out.x.push_back(apply(row));
    return out;
}

} // namespace rhmd::ml
