/**
 * @file
 * NEON kernel table: 2-lane instantiations of the shared bodies.
 *
 * NEON is the aarch64 baseline, so this file needs no extra compile
 * flags. Tree kernels stay on the scalar traversal (no gathers).
 */

#include "ml/kernels_impl.hh"

#if defined(__ARM_NEON) && defined(__aarch64__)

namespace rhmd::ml::detail
{

const KernelTable &
neonTable()
{
    static const KernelTable table = [] {
        KernelTable t = scalarTable();
        t.target = simd::Target::Neon;
        t.linearMargin = linearMarginVec<simd::VecNeon>;
        t.standardizeRow = standardizeRowVec<simd::VecNeon>;
        t.rateConvertU32 = rateConvertU32Vec<simd::VecNeon>;
        t.rateAccumulateU32 = rateAccumulateU32Vec<simd::VecNeon>;
        t.rateConvertF64 = rateConvertF64Vec<simd::VecNeon>;
        return t;
    }();
    return table;
}

} // namespace rhmd::ml::detail

#endif // __ARM_NEON && __aarch64__
