/**
 * @file
 * Structure-of-arrays decision-tree layout for the traversal kernels.
 */

#ifndef RHMD_ML_FLAT_TREE_HH
#define RHMD_ML_FLAT_TREE_HH

#include <cstdint>
#include <vector>

namespace rhmd::ml
{

/**
 * One decision tree flattened into structure-of-arrays node fields
 * so traversal kernels can gather per-lane node state. Leaves carry
 * feature = -1 and self-referential children, which makes a masked
 * multi-lane traversal idempotent once a lane lands on its leaf: the
 * lane keeps re-selecting itself while the others finish.
 */
struct FlatTree
{
    std::vector<std::int64_t> feature;  ///< split feature, -1 = leaf
    std::vector<double> threshold;      ///< go left when x[f] <= t
    std::vector<std::int64_t> left;     ///< child ids (leaf: self)
    std::vector<std::int64_t> right;
    std::vector<double> value;          ///< leaf positive fraction

    std::size_t size() const { return feature.size(); }
    bool empty() const { return feature.empty(); }
};

} // namespace rhmd::ml

#endif // RHMD_ML_FLAT_TREE_HH
