/**
 * @file
 * Random forest implementation.
 */

#include "ml/random_forest.hh"

#include <cmath>
#include <utility>

#include "ml/kernels.hh"
#include "support/logging.hh"
#include "support/parallel.hh"

namespace rhmd::ml
{

RandomForest::RandomForest(ForestConfig config)
    : config_(config)
{
    fatal_if(config_.trees == 0, "a forest needs at least one tree");
    fatal_if(config_.sampleFrac <= 0.0 || config_.sampleFrac > 1.0,
             "sampleFrac must be in (0, 1]");
}

void
RandomForest::train(const Dataset &data, Rng &rng)
{
    fatal_if(data.empty(), "cannot train RF on empty data");
    data.validate();
    trees_.clear();
    featureSel_.clear();
    trees_.reserve(config_.trees);
    featureSel_.reserve(config_.trees);

    const std::size_t d = data.dim();
    const auto features_per_tree = std::min<std::size_t>(
        d, std::max<std::size_t>(
               1, static_cast<std::size_t>(
                      std::ceil(std::sqrt(static_cast<double>(d)) *
                                config_.featureFactor))));
    const auto samples_per_tree = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               config_.sampleFrac * static_cast<double>(data.size())));

    // One draw from the caller's generator roots a SplitRng; each
    // tree then trains from its own (root, tree index) stream, so
    // trees are independent of each other and of the thread that
    // builds them — the forest is identical at any thread count.
    const SplitRng split(rng.next());

    struct TreeResult
    {
        DecisionTree tree;
        std::vector<std::size_t> sel;
    };
    std::vector<TreeResult> grown =
        support::parallelMap<TreeResult>(
            config_.trees, [&](std::size_t t) {
                Rng tree_rng = split.at(t);
                // Feature subset for this tree.
                const std::vector<std::size_t> perm =
                    tree_rng.permutation(d);
                TreeResult result;
                result.sel.assign(perm.begin(),
                                  perm.begin() + features_per_tree);
                // Bootstrap sample projected onto the subset.
                Dataset sample;
                for (std::size_t k = 0; k < samples_per_tree; ++k) {
                    const std::size_t i = tree_rng.below(data.size());
                    std::vector<double> row;
                    row.reserve(result.sel.size());
                    for (std::size_t f : result.sel)
                        row.push_back(data.x[i][f]);
                    sample.add(std::move(row), data.y[i]);
                }
                result.tree = DecisionTree(config_.tree);
                result.tree.train(sample, tree_rng);
                return result;
            });
    for (TreeResult &result : grown) {
        trees_.push_back(std::move(result.tree));
        featureSel_.push_back(std::move(result.sel));
    }

    flat_.clear();
    flat_.reserve(trees_.size());
    for (std::size_t t = 0; t < trees_.size(); ++t)
        flat_.push_back(flattenTree(trees_[t].nodes(), &featureSel_[t]));
}

double
RandomForest::score(const std::vector<double> &x) const
{
    panic_if(trees_.empty(), "RF scored before training");
    double total = 0.0;
    std::vector<double> projected;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        projected.clear();
        projected.reserve(featureSel_[t].size());
        for (std::size_t f : featureSel_[t])
            projected.push_back(x[f]);
        total += trees_[t].score(projected);
    }
    return total / static_cast<double>(trees_.size());
}

std::vector<double>
RandomForest::scoreBatch(const features::FeatureMatrix &x) const
{
    panic_if(trees_.empty(), "RF scored before training");
    const KernelTable &k = kernels();
    if (k.target == simd::Target::Scalar) {
        // Reference path: one projection buffer reused across every
        // (row, tree) pair; tree order and the running sum match
        // score() exactly.
        std::vector<double> out(x.rows());
        std::vector<double> projected;
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double *row = x.row(r);
            double total = 0.0;
            for (std::size_t t = 0; t < trees_.size(); ++t) {
                projected.clear();
                projected.reserve(featureSel_[t].size());
                for (std::size_t f : featureSel_[t])
                    projected.push_back(row[f]);
                total += trees_[t].scoreRow(projected.data());
            }
            out[r] = total / static_cast<double>(trees_.size());
        }
        return out;
    }
    // Kernel path: splits were remapped through featureSel_ when the
    // trees were flattened, so traversal reads full-width rows — the
    // same comparisons against the same thresholds, reaching the
    // same leaves, summed in the same tree order.
    std::vector<double> out = scoreSpan(x);
    k.forestScore(flat_.data(), flat_.size(), x, out.data());
    out.resize(x.rows());  // drop padding lanes: they are not windows
    return out;
}

std::unique_ptr<Classifier>
RandomForest::clone() const
{
    return std::make_unique<RandomForest>(*this);
}

} // namespace rhmd::ml
