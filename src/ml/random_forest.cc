/**
 * @file
 * Random forest implementation.
 */

#include "ml/random_forest.hh"

#include <cmath>

#include "support/logging.hh"

namespace rhmd::ml
{

RandomForest::RandomForest(ForestConfig config)
    : config_(config)
{
    fatal_if(config_.trees == 0, "a forest needs at least one tree");
    fatal_if(config_.sampleFrac <= 0.0 || config_.sampleFrac > 1.0,
             "sampleFrac must be in (0, 1]");
}

void
RandomForest::train(const Dataset &data, Rng &rng)
{
    fatal_if(data.empty(), "cannot train RF on empty data");
    data.validate();
    trees_.clear();
    featureSel_.clear();
    trees_.reserve(config_.trees);
    featureSel_.reserve(config_.trees);

    const std::size_t d = data.dim();
    const auto features_per_tree = std::min<std::size_t>(
        d, std::max<std::size_t>(
               1, static_cast<std::size_t>(
                      std::ceil(std::sqrt(static_cast<double>(d)) *
                                config_.featureFactor))));
    const auto samples_per_tree = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               config_.sampleFrac * static_cast<double>(data.size())));

    for (std::size_t t = 0; t < config_.trees; ++t) {
        // Feature subset for this tree.
        const std::vector<std::size_t> perm = rng.permutation(d);
        std::vector<std::size_t> sel(perm.begin(),
                                     perm.begin() + features_per_tree);
        // Bootstrap sample projected onto the subset.
        Dataset sample;
        for (std::size_t k = 0; k < samples_per_tree; ++k) {
            const std::size_t i = rng.below(data.size());
            std::vector<double> row;
            row.reserve(sel.size());
            for (std::size_t f : sel)
                row.push_back(data.x[i][f]);
            sample.add(std::move(row), data.y[i]);
        }
        DecisionTree tree(config_.tree);
        tree.train(sample, rng);
        trees_.push_back(std::move(tree));
        featureSel_.push_back(std::move(sel));
    }
}

double
RandomForest::score(const std::vector<double> &x) const
{
    panic_if(trees_.empty(), "RF scored before training");
    double total = 0.0;
    std::vector<double> projected;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        projected.clear();
        projected.reserve(featureSel_[t].size());
        for (std::size_t f : featureSel_[t])
            projected.push_back(x[f]);
        total += trees_[t].score(projected);
    }
    return total / static_cast<double>(trees_.size());
}

std::unique_ptr<Classifier>
RandomForest::clone() const
{
    return std::make_unique<RandomForest>(*this);
}

} // namespace rhmd::ml
