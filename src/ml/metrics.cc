/**
 * @file
 * Metrics implementation.
 */

#include "ml/metrics.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rhmd::ml
{

double
Confusion::accuracy() const
{
    const std::size_t n = total();
    if (n == 0)
        return 0.0;
    return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double
Confusion::sensitivity() const
{
    const std::size_t positives = tp + fn;
    if (positives == 0)
        return 0.0;
    return static_cast<double>(tp) / static_cast<double>(positives);
}

double
Confusion::specificity() const
{
    const std::size_t negatives = tn + fp;
    if (negatives == 0)
        return 0.0;
    return static_cast<double>(tn) / static_cast<double>(negatives);
}

Confusion
confusionAt(const std::vector<double> &scores,
            const std::vector<int> &labels, double threshold)
{
    panic_if(scores.size() != labels.size(),
             "confusionAt: size mismatch");
    Confusion c;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        const bool positive = scores[i] >= threshold;
        if (labels[i] == 1) {
            positive ? ++c.tp : ++c.fn;
        } else {
            positive ? ++c.fp : ++c.tn;
        }
    }
    return c;
}

RocCurve
rocCurve(const std::vector<double> &scores, const std::vector<int> &labels)
{
    panic_if(scores.size() != labels.size(), "rocCurve: size mismatch");
    fatal_if(scores.empty(), "rocCurve: empty input");

    std::size_t n_pos = 0;
    for (int label : labels)
        n_pos += label;
    const std::size_t n_neg = labels.size() - n_pos;
    fatal_if(n_pos == 0 || n_neg == 0,
             "rocCurve requires both classes present");

    // Sort by descending score; sweep the threshold across the
    // distinct score values.
    std::vector<std::size_t> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return scores[a] > scores[b];
    });

    RocCurve roc;
    roc.points.reserve(scores.size() + 2);

    std::size_t tp = 0;
    std::size_t fp = 0;
    double prev_fpr = 0.0;
    double prev_tpr = 0.0;
    double area = 0.0;

    // Threshold above every score: nothing flagged.
    roc.points.push_back({scores[order.front()] + 1.0, 0.0, 0.0,
                          static_cast<double>(n_neg) /
                              static_cast<double>(labels.size())});
    roc.bestAccuracy = roc.points.front().accuracy;
    roc.bestThreshold = roc.points.front().threshold;
    roc.bestBalancedAccuracy = 0.5;  // flag-nothing: TPR 0, TNR 1
    roc.bestBalancedThreshold = roc.points.front().threshold;

    std::size_t i = 0;
    while (i < order.size()) {
        const double value = scores[order[i]];
        // Consume ties together so the curve has one point per
        // distinct threshold.
        while (i < order.size() && scores[order[i]] == value) {
            if (labels[order[i]] == 1)
                ++tp;
            else
                ++fp;
            ++i;
        }
        const double tpr =
            static_cast<double>(tp) / static_cast<double>(n_pos);
        const double fpr =
            static_cast<double>(fp) / static_cast<double>(n_neg);
        const double accuracy =
            static_cast<double>(tp + (n_neg - fp)) /
            static_cast<double>(labels.size());

        area += (fpr - prev_fpr) * (tpr + prev_tpr) * 0.5;
        prev_fpr = fpr;
        prev_tpr = tpr;

        roc.points.push_back({value, tpr, fpr, accuracy});
        if (accuracy > roc.bestAccuracy) {
            roc.bestAccuracy = accuracy;
            roc.bestThreshold = value;
        }
        const double balanced = (tpr + (1.0 - fpr)) / 2.0;
        if (balanced > roc.bestBalancedAccuracy) {
            roc.bestBalancedAccuracy = balanced;
            roc.bestBalancedThreshold = value;
        }
    }

    roc.auc = area;
    return roc;
}

double
auc(const std::vector<double> &scores, const std::vector<int> &labels)
{
    return rocCurve(scores, labels).auc;
}

double
bestAccuracyThreshold(const std::vector<double> &scores,
                      const std::vector<int> &labels)
{
    return rocCurve(scores, labels).bestThreshold;
}

double
bestBalancedThreshold(const std::vector<double> &scores,
                      const std::vector<int> &labels)
{
    return rocCurve(scores, labels).bestBalancedThreshold;
}

double
agreement(const std::vector<int> &a, const std::vector<int> &b)
{
    panic_if(a.size() != b.size(), "agreement: size mismatch");
    fatal_if(a.empty(), "agreement: empty input");
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i] == b[i] ? 1 : 0;
    return static_cast<double>(same) / static_cast<double>(a.size());
}

} // namespace rhmd::ml
