/**
 * @file
 * Classifier factory and simple text serialization.
 *
 * Serialization covers the parametric models (LR, SVM, MLP) whose
 * weights a hardware deployment would flash into detector SRAM; the
 * format is line-oriented text so tests and humans can read it.
 * Every stream starts with a magic word and a format version
 * ("RHMD-MODEL 2") so corrupt or wrong-version files are rejected
 * up front with a recoverable error instead of being half-parsed.
 */

#ifndef RHMD_ML_SERIALIZE_HH
#define RHMD_ML_SERIALIZE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "ml/classifier.hh"
#include "support/status.hh"

namespace rhmd::ml
{

/** Magic word opening every serialized model stream. */
inline constexpr std::string_view kModelMagic = "RHMD-MODEL";

/** Current serialization format version. */
inline constexpr int kModelFormatVersion = 2;

/**
 * Construct a fresh (untrained) classifier by algorithm name:
 * "LR", "NN", "DT", "SVM", or "RF".
 */
std::unique_ptr<Classifier> makeClassifier(const std::string &name);

/**
 * Serialize a trained LR, SVM, or MLP to text. Returns
 * InvalidArgument for non-parametric classifiers (DT, RF).
 */
support::Status trySaveModel(const Classifier &model, std::ostream &os);

/**
 * Deserialize a model previously written by saveModel(). Returns
 * InvalidArgument for a wrong magic word, unsupported version, or
 * unknown model kind; DataLoss for truncated or corrupt parameter
 * data (including non-finite weights). Never aborts the process.
 */
support::StatusOr<std::unique_ptr<Classifier>>
tryLoadModel(std::istream &is);

/** trySaveModel(), but fatal on error (config-time convenience). */
void saveModel(const Classifier &model, std::ostream &os);

/** tryLoadModel(), but fatal on error (config-time convenience). */
std::unique_ptr<Classifier> loadModel(std::istream &is);

} // namespace rhmd::ml

#endif // RHMD_ML_SERIALIZE_HH
