/**
 * @file
 * Classifier factory and simple text serialization.
 *
 * Serialization covers the parametric models (LR, SVM, MLP) whose
 * weights a hardware deployment would flash into detector SRAM; the
 * format is line-oriented text so tests and humans can read it.
 */

#ifndef RHMD_ML_SERIALIZE_HH
#define RHMD_ML_SERIALIZE_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.hh"

namespace rhmd::ml
{

/**
 * Construct a fresh (untrained) classifier by algorithm name:
 * "LR", "NN", "DT", or "SVM".
 */
std::unique_ptr<Classifier> makeClassifier(const std::string &name);

/**
 * Serialize a trained LR, SVM, or MLP to text. Fatal for
 * non-parametric classifiers (DT).
 */
void saveModel(const Classifier &model, std::ostream &os);

/** Deserialize a model previously written by saveModel(). */
std::unique_ptr<Classifier> loadModel(std::istream &is);

} // namespace rhmd::ml

#endif // RHMD_ML_SERIALIZE_HH
