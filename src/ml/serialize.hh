/**
 * @file
 * Classifier factory and simple text serialization.
 *
 * Serialization covers the parametric models (LR, SVM, MLP) whose
 * weights a hardware deployment would flash into detector SRAM; the
 * format is line-oriented text so tests and humans can read it.
 * Every stream starts with a magic word and a format version
 * ("RHMD-MODEL 2") so corrupt or wrong-version files are rejected
 * up front with a recoverable error instead of being half-parsed.
 */

#ifndef RHMD_ML_SERIALIZE_HH
#define RHMD_ML_SERIALIZE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "ml/classifier.hh"
#include "ml/dataset.hh"
#include "support/status.hh"

namespace rhmd::ml
{

/** Magic word opening every serialized model stream. */
inline constexpr std::string_view kModelMagic = "RHMD-MODEL";

/** Current serialization format version. */
inline constexpr int kModelFormatVersion = 2;

/** Magic word opening every serialized standardizer stream. */
inline constexpr std::string_view kStandardizerMagic = "RHMD-STD";

/** Current standardizer serialization format version. */
inline constexpr int kStandardizerFormatVersion = 1;

/**
 * Construct a fresh (untrained) classifier by algorithm name:
 * "LR", "NN", "DT", "SVM", or "RF".
 */
std::unique_ptr<Classifier> makeClassifier(const std::string &name);

/**
 * Serialize a trained LR, SVM, or MLP to text. Returns
 * InvalidArgument for non-parametric classifiers (DT, RF).
 */
support::Status trySaveModel(const Classifier &model, std::ostream &os);

/**
 * Deserialize a model previously written by saveModel(). Returns
 * InvalidArgument for a wrong magic word, unsupported version, or
 * unknown model kind; DataLoss for truncated or corrupt parameter
 * data (including non-finite weights). Never aborts the process.
 */
support::StatusOr<std::unique_ptr<Classifier>>
tryLoadModel(std::istream &is);

/**
 * Serialize a fitted standardizer ("RHMD-STD 1"). A model flashed to
 * detector SRAM is useless without the z-score transform it was
 * trained behind, so the two travel as a pair of streams. Returns
 * InvalidArgument when mean/scale lengths disagree.
 */
support::Status trySaveStandardizer(const Standardizer &standardizer,
                                    std::ostream &os);

/**
 * Deserialize a standardizer written by trySaveStandardizer(). Returns
 * InvalidArgument for a wrong magic word; FailedPrecondition for an
 * unsupported version; DataLoss for truncated data, non-finite
 * mean/scale entries, non-positive scale entries (a zero scale would
 * turn apply() into NaN/Inf factories), or mismatched lengths. Never
 * aborts the process.
 */
support::StatusOr<Standardizer> tryLoadStandardizer(std::istream &is);

/** trySaveModel(), but fatal on error (config-time convenience). */
void saveModel(const Classifier &model, std::ostream &os);

/** tryLoadModel(), but fatal on error (config-time convenience). */
std::unique_ptr<Classifier> loadModel(std::istream &is);

} // namespace rhmd::ml

#endif // RHMD_ML_SERIALIZE_HH
