/**
 * @file
 * Runtime-dispatched scoring kernels over the SoA feature layout.
 *
 * Every hot loop of the scoring path — the LR/SVM/MLP affine
 * margins, decision-tree and forest traversal, the standardizer, and
 * the per-window count-to-rate conversions — is reachable through
 * one KernelTable of function pointers. kernels() returns the table
 * for simd::activeTarget(): the "scalar" table holds the reference
 * implementations (byte-for-byte the historical serial loops), and
 * each vector table (sse2/avx2/neon) holds kernels that vectorize
 * ACROSS independent elements only, so their results are
 * bit-identical to the scalar siblings on every input — including
 * NaN/Inf propagation — not merely close (DESIGN.md section 14).
 *
 * Output-buffer contract: kernels that score a FeatureMatrix write
 * results for rows [0, x.rows()) and may also store garbage into
 * [x.rows(), x.paddedRows()) when the SoA view exists, so callers
 * must size output buffers to paddedRows() (scoreSpan() below) and
 * must never read past rows(): padding lanes are not windows and
 * carry no decisions. Vector kernels fall back to the scalar
 * reference when the matrix has no SoA view.
 */

#ifndef RHMD_ML_KERNELS_HH
#define RHMD_ML_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/matrix.hh"
#include "ml/flat_tree.hh"
#include "support/simd.hh"

namespace rhmd::ml
{

/** Per-target kernel bundle; all functions share the scalar
 *  reference's bit-exact semantics. */
struct KernelTable
{
    simd::Target target;

    /**
     * out[r] = (sum_j w[j] * x[r][j]) + bias for r < x.rows(), with
     * the sum accumulated in ascending-j order per row (the
     * support::dot order score() uses). w has x.cols() entries.
     */
    void (*linearMargin)(const features::FeatureMatrix &x,
                         const double *w, double bias, double *out);

    /** row[j] = (row[j] - mean[j]) / scale[j] for j < n. */
    void (*standardizeRow)(double *row, const double *mean,
                           const double *scale, std::size_t n);

    /** out[r] = leaf value reached by row r in @p tree. */
    void (*treeScore)(const FlatTree &tree,
                      const features::FeatureMatrix &x, double *out);

    /**
     * out[r] = (sum over trees, ascending, of the leaf reached by
     * row r) / nTrees — the RandomForest::score accumulation order.
     */
    void (*forestScore)(const FlatTree *trees, std::size_t nTrees,
                        const features::FeatureMatrix &x, double *out);

    /** out[k] = counts[k] / insts for k < n (exact u32 convert). */
    void (*rateConvertU32)(const std::uint32_t *counts, std::size_t n,
                           double insts, double *out);

    /** accum[k] += counts[k] / insts for k < n. */
    void (*rateAccumulateU32)(const std::uint32_t *counts,
                              std::size_t n, double insts,
                              double *accum);

    /** out[k] = num[k] / denom for k < n. */
    void (*rateConvertF64)(const double *num, std::size_t n,
                           double denom, double *out);
};

/** The kernel table for simd::activeTarget(). */
const KernelTable &kernels();

/** The kernel table for a specific target (fatal if unsupported). */
const KernelTable &kernelsFor(simd::Target target);

/**
 * A scoring scratch buffer sized for @p x: paddedRows() when the SoA
 * view exists (full-width kernel stores), else rows().
 */
inline std::vector<double>
scoreSpan(const features::FeatureMatrix &x)
{
    return std::vector<double>(
        x.hasSoa() ? x.paddedRows() : x.rows(), 0.0);
}

} // namespace rhmd::ml

#endif // RHMD_ML_KERNELS_HH
