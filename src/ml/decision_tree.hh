/**
 * @file
 * CART decision tree — one of the attacker-side algorithms the paper
 * uses to reverse-engineer victims (Figs. 3 and 4).
 */

#ifndef RHMD_ML_DECISION_TREE_HH
#define RHMD_ML_DECISION_TREE_HH

#include "ml/classifier.hh"
#include "ml/flat_tree.hh"

namespace rhmd::ml
{

/** Tree growth limits. */
struct TreeConfig
{
    std::size_t maxDepth = 8;
    std::size_t minSamplesLeaf = 8;
    std::size_t minSamplesSplit = 16;
};

/**
 * Binary CART trained by greedy Gini-impurity splitting on axis-
 * aligned thresholds; score() returns the leaf's positive fraction.
 */
class DecisionTree : public Classifier
{
  public:
    /**
     * One tree node. Exposed read-only so static analyses (the
     * certify pass's threshold-distance traversal) can walk the
     * grown tree without re-deriving it from probe queries.
     */
    struct Node
    {
        bool leaf = true;
        double value = 0.5;       ///< leaf positive fraction
        std::size_t feature = 0;
        double threshold = 0.0;   ///< go left when x[f] <= threshold
        std::int32_t left = -1;
        std::int32_t right = -1;
    };

    explicit DecisionTree(TreeConfig config = {});

    void train(const Dataset &data, Rng &rng) override;
    double score(const std::vector<double> &x) const override;
    std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string name() const override { return "DT"; }

    /** Tree walk on a raw feature row (batch scoring hot path). */
    double scoreRow(const double *row) const;

    /** Number of nodes in the grown tree. */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Depth of the grown tree. */
    std::size_t depth() const;

    /** The grown node array (root at index 0; empty before train). */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** The grown tree in kernel layout (rebuilt by train()). */
    const FlatTree &flat() const { return flat_; }

  private:
    std::int32_t build(const Dataset &data,
                       std::vector<std::size_t> &indices,
                       std::size_t depth);

    TreeConfig config_;
    std::vector<Node> nodes_;
    FlatTree flat_;
};

/**
 * Flatten a grown node array into the kernel layout. @p map, when
 * non-null, rewrites each split's feature index through
 * (*map)[feature] — the random forest uses its per-tree feature
 * selection here so the traversal kernels read full-width rows
 * directly instead of copying a projected row per (row, tree) pair.
 * Thresholds, structure, and leaf values are untouched, so the
 * flattened walk reaches exactly the leaves the Node walk reaches.
 */
FlatTree flattenTree(const std::vector<DecisionTree::Node> &nodes,
                     const std::vector<std::size_t> *map);

} // namespace rhmd::ml

#endif // RHMD_ML_DECISION_TREE_HH
