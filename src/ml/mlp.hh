/**
 * @file
 * Multi-layer perceptron — the paper's NN detector: "a single hidden
 * layer that has a number of neurons equal to the number of features
 * in the feature vector" with tanh activations.
 */

#ifndef RHMD_ML_MLP_HH
#define RHMD_ML_MLP_HH

#include "ml/classifier.hh"

namespace rhmd::ml
{

/** Training hyperparameters for the MLP. */
struct MlpConfig
{
    /** Hidden neurons; 0 means "equal to the input dimension". */
    std::size_t hidden = 0;
    double learningRate = 0.01;
    double l2 = 0.02;
    std::size_t epochs = 200;
    double momentum = 0.95;
    double initScale = 0.5;  ///< weight init: N(0, initScale/sqrt(d))
};

/**
 * One-hidden-layer tanh MLP with a sigmoid output, trained with
 * momentum SGD on log loss. Exposes its weight matrices so the
 * evasion framework can apply the paper's weight-collapse heuristic
 * (Fig. 7): w_j = sum_i w1_ji * wout_i.
 */
class Mlp : public Classifier
{
  public:
    explicit Mlp(MlpConfig config = {});

    void train(const Dataset &data, Rng &rng) override;
    double score(const std::vector<double> &x) const override;
    std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string name() const override { return "NN"; }

    /** Hidden-layer weights, [hidden][input]. */
    const std::vector<std::vector<double>> &hiddenWeights() const
    {
        return w1_;
    }

    /** Hidden-layer biases, [hidden]. */
    const std::vector<double> &hiddenBias() const { return b1_; }

    /** Output weights, [hidden]. */
    const std::vector<double> &outputWeights() const { return w2_; }

    /** Output bias. */
    double outputBias() const { return b2_; }

    /**
     * The paper's Fig. 7 collapse: per-input effective weight
     * w_j = sum_i w1_ij * wout_i.
     */
    std::vector<double> collapsedWeights() const;

    /** Directly install parameters (testing / serialization). */
    void setParams(std::vector<std::vector<double>> w1,
                   std::vector<double> b1, std::vector<double> w2,
                   double b2);

  private:
    MlpConfig config_;
    std::size_t inputDim_ = 0;
    std::vector<std::vector<double>> w1_;  ///< [hidden][input]
    std::vector<double> b1_;
    std::vector<double> w2_;               ///< [hidden]
    double b2_ = 0.0;
};

} // namespace rhmd::ml

#endif // RHMD_ML_MLP_HH
