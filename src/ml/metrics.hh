/**
 * @file
 * Classification metrics: confusion counts, sensitivity/specificity,
 * ROC curves, AUC, and the accuracy-optimal threshold the paper uses
 * as its HMD operating point.
 */

#ifndef RHMD_ML_METRICS_HH
#define RHMD_ML_METRICS_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace rhmd::ml
{

/** Binary confusion counts. */
struct Confusion
{
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t tn = 0;
    std::size_t fn = 0;

    std::size_t total() const { return tp + fp + tn + fn; }

    /** Fraction of all decisions that are correct. */
    double accuracy() const;

    /** True-positive rate (malware detected). */
    double sensitivity() const;

    /** True-negative rate (benign passed). */
    double specificity() const;
};

/** Confusion of scores vs labels at a threshold. */
Confusion confusionAt(const std::vector<double> &scores,
                      const std::vector<int> &labels, double threshold);

/** One ROC operating point. */
struct RocPoint
{
    double threshold;
    double tpr;
    double fpr;
    double accuracy;
};

/** ROC curve plus summary statistics. */
struct RocCurve
{
    std::vector<RocPoint> points;  ///< descending threshold
    double auc = 0.0;
    double bestThreshold = 0.5;    ///< maximizes accuracy
    double bestAccuracy = 0.0;
    /** Maximizes balanced accuracy (TPR - FPR, Youden's J). */
    double bestBalancedThreshold = 0.5;
    double bestBalancedAccuracy = 0.0;  ///< (TPR + TNR) / 2 there
};

/**
 * Build the full ROC from scores and labels. Requires both classes
 * present. AUC is computed by the trapezoid rule over the exact
 * operating points (equivalently, the Mann-Whitney statistic).
 */
RocCurve rocCurve(const std::vector<double> &scores,
                  const std::vector<int> &labels);

/** Convenience: AUC only. */
double auc(const std::vector<double> &scores,
           const std::vector<int> &labels);

/** Convenience: the accuracy-maximizing threshold. */
double bestAccuracyThreshold(const std::vector<double> &scores,
                             const std::vector<int> &labels);

/**
 * Convenience: the balanced-accuracy-maximizing threshold. Detectors
 * operate here so a class-imbalanced training corpus does not push
 * the operating point into flagging everything.
 */
double bestBalancedThreshold(const std::vector<double> &scores,
                             const std::vector<int> &labels);

/**
 * Agreement rate between two decision vectors — the paper's
 * reverse-engineering success metric ("percentage of equivalent
 * decisions made by the two detectors").
 */
double agreement(const std::vector<int> &a, const std::vector<int> &b);

} // namespace rhmd::ml

#endif // RHMD_ML_METRICS_HH
