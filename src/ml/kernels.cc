/**
 * @file
 * Scalar reference kernels and the per-target dispatch registry.
 *
 * The scalar table below is the semantic ground truth: each function
 * is the historical serial loop the classifiers ran before the SoA
 * kernels existed, lifted verbatim. Vector tables register here via
 * the detail::*Table() accessors defined in their own translation
 * units; this file is compiled without any extra ISA flags so the
 * reference path runs on any machine.
 */

#include "ml/kernels.hh"

#include "ml/kernels_impl.hh"
#include "support/logging.hh"

namespace rhmd::ml
{

namespace
{

void
scalarLinearMargin(const features::FeatureMatrix &x, const double *w,
                   double bias, double *out)
{
    const std::size_t d = x.cols();
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.row(r);
        // Same left-to-right accumulation as support::dot, so batch
        // margins are bit-identical to the per-row score() path.
        double z = 0.0;
        for (std::size_t j = 0; j < d; ++j)
            z += w[j] * row[j];
        out[r] = z + bias;
    }
}

void
scalarStandardizeRow(double *row, const double *mean,
                     const double *scale, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        row[j] = (row[j] - mean[j]) / scale[j];
}

/** DecisionTree::scoreRow on the flattened layout: NaN features
 *  compare false against the threshold and go right, like the
 *  original `x[f] <= t` select. */
double
flatTreeLeaf(const FlatTree &tree, const double *row)
{
    std::size_t node = 0;
    while (tree.feature[node] >= 0) {
        const auto f = static_cast<std::size_t>(tree.feature[node]);
        node = row[f] <= tree.threshold[node]
            ? static_cast<std::size_t>(tree.left[node])
            : static_cast<std::size_t>(tree.right[node]);
    }
    return tree.value[node];
}

void
scalarTreeScore(const FlatTree &tree, const features::FeatureMatrix &x,
                double *out)
{
    panic_if(tree.empty(), "tree kernel on an untrained tree");
    for (std::size_t r = 0; r < x.rows(); ++r)
        out[r] = flatTreeLeaf(tree, x.row(r));
}

void
scalarForestScore(const FlatTree *trees, std::size_t nTrees,
                  const features::FeatureMatrix &x, double *out)
{
    panic_if(nTrees == 0, "forest kernel on an untrained forest");
    // Per row: ascending-tree running sum, then one divide — the
    // RandomForest::score accumulation order.
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const double *row = x.row(r);
        double total = 0.0;
        for (std::size_t t = 0; t < nTrees; ++t)
            total += flatTreeLeaf(trees[t], row);
        out[r] = total / static_cast<double>(nTrees);
    }
}

void
scalarRateConvertU32(const std::uint32_t *counts, std::size_t n,
                     double insts, double *out)
{
    for (std::size_t k = 0; k < n; ++k)
        out[k] = static_cast<double>(counts[k]) / insts;
}

void
scalarRateAccumulateU32(const std::uint32_t *counts, std::size_t n,
                        double insts, double *accum)
{
    for (std::size_t k = 0; k < n; ++k)
        accum[k] += static_cast<double>(counts[k]) / insts;
}

void
scalarRateConvertF64(const double *num, std::size_t n, double denom,
                     double *out)
{
    for (std::size_t k = 0; k < n; ++k)
        out[k] = num[k] / denom;
}

} // namespace

namespace detail
{

const KernelTable &
scalarTable()
{
    static const KernelTable table{
        simd::Target::Scalar,
        scalarLinearMargin,
        scalarStandardizeRow,
        scalarTreeScore,
        scalarForestScore,
        scalarRateConvertU32,
        scalarRateAccumulateU32,
        scalarRateConvertF64,
    };
    return table;
}

} // namespace detail

const KernelTable &
kernelsFor(simd::Target target)
{
    switch (target) {
      case simd::Target::Scalar:
        return detail::scalarTable();
      case simd::Target::Sse2:
#if defined(__SSE2__)
        return detail::sse2Table();
#else
        break;
#endif
      case simd::Target::Avx2:
#if defined(RHMD_SIMD_HAVE_AVX2)
        return detail::avx2Table();
#else
        break;
#endif
      case simd::Target::Neon:
#if defined(__ARM_NEON) && defined(__aarch64__)
        return detail::neonTable();
#else
        break;
#endif
    }
    rhmd_fatal("no kernels compiled for simd target '",
               simd::targetName(target), "'");
}

const KernelTable &
kernels()
{
    return kernelsFor(simd::activeTarget());
}

} // namespace rhmd::ml
