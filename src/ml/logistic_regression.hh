/**
 * @file
 * Logistic regression — the paper's low-complexity HMD classifier,
 * chosen there because it "performs well and has low complexity,
 * facilitating hardware implementations".
 */

#ifndef RHMD_ML_LOGISTIC_REGRESSION_HH
#define RHMD_ML_LOGISTIC_REGRESSION_HH

#include "ml/classifier.hh"

namespace rhmd::ml
{

/** Numerically safe logistic function. */
double sigmoid(double z);

/** Training hyperparameters for logistic regression. */
struct LrConfig
{
    double learningRate = 0.15;
    double l2 = 1e-4;          ///< ridge penalty
    std::size_t epochs = 80;
    std::size_t batchSize = 32;
};

/**
 * L2-regularized logistic regression trained with mini-batch SGD
 * (decaying step size). Exposes its weight vector, which the evasion
 * framework reads to pick injection opcodes.
 */
class LogisticRegression : public Classifier
{
  public:
    explicit LogisticRegression(LrConfig config = {});

    void train(const Dataset &data, Rng &rng) override;
    double score(const std::vector<double> &x) const override;
    std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string name() const override { return "LR"; }

    /** Per-feature weights (valid after train()). */
    const std::vector<double> &weights() const { return weights_; }

    /** Intercept term. */
    double bias() const { return bias_; }

    /** Directly install parameters (testing / serialization). */
    void setParams(std::vector<double> weights, double bias);

  private:
    LrConfig config_;
    std::vector<double> weights_;
    double bias_ = 0.0;
};

} // namespace rhmd::ml

#endif // RHMD_ML_LOGISTIC_REGRESSION_HH
