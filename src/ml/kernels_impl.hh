/**
 * @file
 * Vec-templated kernel bodies shared by every per-target translation
 * unit (kernels_sse2.cc, kernels_avx2.cc, kernels_neon.cc).
 *
 * Each body is the scalar reference loop with its independent-element
 * dimension strip-mined to Vec::kLanes: linearMargin runs one batch
 * row per lane with the per-row j-ascending accumulation untouched,
 * and the element-wise kernels (standardize, rate conversion) split
 * into a full-vector body plus a scalar tail that is literally the
 * reference loop. No body ever reassociates a reduction, so results
 * are bit-identical to the scalar table on every input (DESIGN.md
 * section 14).
 *
 * Only for inclusion by kernel TUs; not part of the public surface.
 */

#ifndef RHMD_ML_KERNELS_IMPL_HH
#define RHMD_ML_KERNELS_IMPL_HH

#include <cstddef>
#include <cstdint>

#include "ml/kernels.hh"

namespace rhmd::ml::detail
{

/** The scalar reference table (defined in kernels.cc). */
const KernelTable &scalarTable();

#if defined(__SSE2__)
const KernelTable &sse2Table();
#endif
#if defined(RHMD_SIMD_HAVE_AVX2)
const KernelTable &avx2Table();
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
const KernelTable &neonTable();
#endif

/**
 * out[r] = sum_j w[j] * x[r][j] + bias over the SoA view, one row
 * per lane. Lane r's accumulation is exactly the scalar reference's:
 * acc starts at +0.0, adds w[j] * x[r][j] in ascending j, then adds
 * bias last. Stores every padded row (callers size for paddedRows()).
 */
template <typename Vec>
void
linearMarginVec(const features::FeatureMatrix &x, const double *w,
                double bias, double *out)
{
    if (!x.hasSoa()) {
        scalarTable().linearMargin(x, w, bias, out);
        return;
    }
    const std::size_t pr = x.paddedRows();
    const std::size_t d = x.cols();
    // Columns are one contiguous block; hoist the base pointer so the
    // hot loop never calls the (out-of-line, bounds-checked) col().
    const double *soa = x.col(0);
    const Vec vbias = Vec::broadcast(bias);
    // Two row-blocks per pass: the per-row j-ascending add chain is
    // latency-bound, and a second independent accumulator doubles the
    // ILP without reassociating any row's reduction (each lane still
    // sums in exactly the scalar order). paddedRows() is a multiple
    // of kMaxLanes, which 2 * kLanes always divides.
    std::size_t r = 0;
    for (; r + 2 * Vec::kLanes <= pr; r += 2 * Vec::kLanes) {
        Vec acc0 = Vec::zero();
        Vec acc1 = Vec::zero();
        const double *p = soa + r;
        for (std::size_t j = 0; j < d; ++j) {
            const Vec vw = Vec::broadcast(w[j]);
            acc0 = acc0 + vw * Vec::load(p + j * pr);
            acc1 = acc1 + vw * Vec::load(p + j * pr + Vec::kLanes);
        }
        (acc0 + vbias).store(out + r);
        (acc1 + vbias).store(out + r + Vec::kLanes);
    }
    for (; r < pr; r += Vec::kLanes) {
        Vec acc = Vec::zero();
        const double *p = soa + r;
        for (std::size_t j = 0; j < d; ++j)
            acc = acc + Vec::broadcast(w[j]) * Vec::load(p + j * pr);
        (acc + vbias).store(out + r);
    }
}

/** row[j] = (row[j] - mean[j]) / scale[j], vector body + scalar tail. */
template <typename Vec>
void
standardizeRowVec(double *row, const double *mean, const double *scale,
                  std::size_t n)
{
    std::size_t j = 0;
    for (; j + Vec::kLanes <= n; j += Vec::kLanes) {
        ((Vec::load(row + j) - Vec::load(mean + j)) /
         Vec::load(scale + j))
            .store(row + j);
    }
    for (; j < n; ++j)
        row[j] = (row[j] - mean[j]) / scale[j];
}

/** out[k] = counts[k] / insts (exact u32 -> double convert). */
template <typename Vec>
void
rateConvertU32Vec(const std::uint32_t *counts, std::size_t n,
                  double insts, double *out)
{
    const Vec vinsts = Vec::broadcast(insts);
    std::size_t k = 0;
    for (; k + Vec::kLanes <= n; k += Vec::kLanes)
        (Vec::fromU32(counts + k) / vinsts).store(out + k);
    for (; k < n; ++k)
        out[k] = static_cast<double>(counts[k]) / insts;
}

/** accum[k] += counts[k] / insts. */
template <typename Vec>
void
rateAccumulateU32Vec(const std::uint32_t *counts, std::size_t n,
                     double insts, double *accum)
{
    const Vec vinsts = Vec::broadcast(insts);
    std::size_t k = 0;
    for (; k + Vec::kLanes <= n; k += Vec::kLanes) {
        (Vec::load(accum + k) + Vec::fromU32(counts + k) / vinsts)
            .store(accum + k);
    }
    for (; k < n; ++k)
        accum[k] += static_cast<double>(counts[k]) / insts;
}

/** out[k] = num[k] / denom. */
template <typename Vec>
void
rateConvertF64Vec(const double *num, std::size_t n, double denom,
                  double *out)
{
    const Vec vdenom = Vec::broadcast(denom);
    std::size_t k = 0;
    for (; k + Vec::kLanes <= n; k += Vec::kLanes)
        (Vec::load(num + k) / vdenom).store(out + k);
    for (; k < n; ++k)
        out[k] = num[k] / denom;
}

} // namespace rhmd::ml::detail

#endif // RHMD_ML_KERNELS_IMPL_HH
