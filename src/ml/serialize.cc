/**
 * @file
 * Classifier factory and text serialization implementation.
 */

#include "ml/serialize.hh"

#include <istream>
#include <ostream>

#include "ml/decision_tree.hh"
#include "ml/logistic_regression.hh"
#include "ml/mlp.hh"
#include "ml/random_forest.hh"
#include "ml/svm.hh"
#include "support/logging.hh"

namespace rhmd::ml
{

std::unique_ptr<Classifier>
makeClassifier(const std::string &name)
{
    if (name == "LR")
        return std::make_unique<LogisticRegression>();
    if (name == "NN")
        return std::make_unique<Mlp>();
    if (name == "DT")
        return std::make_unique<DecisionTree>();
    if (name == "SVM")
        return std::make_unique<LinearSvm>();
    if (name == "RF")
        return std::make_unique<RandomForest>();
    rhmd_fatal("unknown classifier algorithm '", name, "'");
}

namespace
{

void
writeVector(std::ostream &os, const std::vector<double> &v)
{
    os << v.size();
    for (double x : v)
        os << ' ' << x;
    os << '\n';
}

std::vector<double>
readVector(std::istream &is)
{
    std::size_t n = 0;
    fatal_if(!(is >> n), "corrupt model stream: missing vector size");
    std::vector<double> v(n);
    for (double &x : v)
        fatal_if(!(is >> x), "corrupt model stream: short vector");
    return v;
}

} // namespace

void
saveModel(const Classifier &model, std::ostream &os)
{
    if (const auto *lr =
            dynamic_cast<const LogisticRegression *>(&model)) {
        os << "LR\n";
        writeVector(os, lr->weights());
        os << lr->bias() << '\n';
        return;
    }
    if (const auto *svm = dynamic_cast<const LinearSvm *>(&model)) {
        os << "SVM\n";
        writeVector(os, svm->weights());
        os << svm->bias() << '\n';
        return;
    }
    if (const auto *mlp = dynamic_cast<const Mlp *>(&model)) {
        os << "NN\n";
        os << mlp->hiddenWeights().size() << '\n';
        for (const auto &row : mlp->hiddenWeights())
            writeVector(os, row);
        writeVector(os, mlp->hiddenBias());
        writeVector(os, mlp->outputWeights());
        os << mlp->outputBias() << '\n';
        return;
    }
    rhmd_fatal("model '", model.name(),
               "' does not support serialization");
}

std::unique_ptr<Classifier>
loadModel(std::istream &is)
{
    std::string kind;
    fatal_if(!(is >> kind), "corrupt model stream: missing header");
    if (kind == "LR") {
        auto weights = readVector(is);
        double bias = 0.0;
        fatal_if(!(is >> bias), "corrupt LR model: missing bias");
        auto model = std::make_unique<LogisticRegression>();
        model->setParams(std::move(weights), bias);
        return model;
    }
    if (kind == "SVM") {
        auto weights = readVector(is);
        double bias = 0.0;
        fatal_if(!(is >> bias), "corrupt SVM model: missing bias");
        auto model = std::make_unique<LinearSvm>();
        model->setParams(std::move(weights), bias);
        return model;
    }
    if (kind == "NN") {
        std::size_t hidden = 0;
        fatal_if(!(is >> hidden), "corrupt NN model: missing size");
        std::vector<std::vector<double>> w1(hidden);
        for (auto &row : w1)
            row = readVector(is);
        auto b1 = readVector(is);
        auto w2 = readVector(is);
        double b2 = 0.0;
        fatal_if(!(is >> b2), "corrupt NN model: missing bias");
        auto model = std::make_unique<Mlp>();
        model->setParams(std::move(w1), std::move(b1), std::move(w2),
                         b2);
        return model;
    }
    rhmd_fatal("unknown model kind '", kind, "' in stream");
}

} // namespace rhmd::ml
