/**
 * @file
 * Classifier factory and text serialization implementation.
 */

#include "ml/serialize.hh"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "ml/decision_tree.hh"
#include "ml/logistic_regression.hh"
#include "ml/mlp.hh"
#include "ml/random_forest.hh"
#include "ml/svm.hh"
#include "support/logging.hh"

namespace rhmd::ml
{

std::unique_ptr<Classifier>
makeClassifier(const std::string &name)
{
    if (name == "LR")
        return std::make_unique<LogisticRegression>();
    if (name == "NN")
        return std::make_unique<Mlp>();
    if (name == "DT")
        return std::make_unique<DecisionTree>();
    if (name == "SVM")
        return std::make_unique<LinearSvm>();
    if (name == "RF")
        return std::make_unique<RandomForest>();
    rhmd_fatal("unknown classifier algorithm '", name, "'");
}

namespace
{

/**
 * Upper bound on any serialized vector length; anything larger is a
 * corrupt size field, not a real model (the largest real feature
 * vector is tens of entries).
 */
constexpr std::size_t kMaxVectorSize = 1u << 20;

void
writeVector(std::ostream &os, const std::vector<double> &v)
{
    os << v.size();
    for (double x : v)
        os << ' ' << x;
    os << '\n';
}

support::StatusOr<std::vector<double>>
readVector(std::istream &is)
{
    std::size_t n = 0;
    if (!(is >> n))
        return support::dataLossError(
            "corrupt model stream: missing vector size");
    if (n > kMaxVectorSize)
        return support::dataLossError(
            "corrupt model stream: absurd vector size ", n);
    std::vector<double> v(n);
    for (double &x : v) {
        if (!(is >> x))
            return support::dataLossError(
                "corrupt model stream: short vector");
        if (!std::isfinite(x))
            return support::dataLossError(
                "corrupt model stream: non-finite parameter");
    }
    return v;
}

support::StatusOr<double>
readScalar(std::istream &is, const char *what)
{
    double x = 0.0;
    if (!(is >> x))
        return support::dataLossError("corrupt model stream: missing ",
                                      what);
    if (!std::isfinite(x))
        return support::dataLossError("corrupt model stream: non-finite ",
                                      what);
    return x;
}

} // namespace

support::Status
trySaveModel(const Classifier &model, std::ostream &os)
{
    // Full round-trip precision: a reloaded model must score
    // identically to the one that was saved.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << kModelMagic << ' ' << kModelFormatVersion << '\n';
    if (const auto *lr =
            dynamic_cast<const LogisticRegression *>(&model)) {
        os << "LR\n";
        writeVector(os, lr->weights());
        os << lr->bias() << '\n';
        return {};
    }
    if (const auto *svm = dynamic_cast<const LinearSvm *>(&model)) {
        os << "SVM\n";
        writeVector(os, svm->weights());
        os << svm->bias() << '\n';
        return {};
    }
    if (const auto *mlp = dynamic_cast<const Mlp *>(&model)) {
        os << "NN\n";
        os << mlp->hiddenWeights().size() << '\n';
        for (const auto &row : mlp->hiddenWeights())
            writeVector(os, row);
        writeVector(os, mlp->hiddenBias());
        writeVector(os, mlp->outputWeights());
        os << mlp->outputBias() << '\n';
        return {};
    }
    return support::invalidArgumentError(
        "model '", model.name(), "' does not support serialization");
}

support::StatusOr<std::unique_ptr<Classifier>>
tryLoadModel(std::istream &is)
{
    std::string magic;
    if (!(is >> magic))
        return support::dataLossError(
            "corrupt model stream: empty stream");
    if (magic != kModelMagic)
        return support::invalidArgumentError(
            "not an RHMD model stream: bad magic '", magic, "'");
    int version = 0;
    if (!(is >> version))
        return support::dataLossError(
            "corrupt model stream: missing format version");
    if (version != kModelFormatVersion)
        return support::failedPreconditionError(
            "unsupported model format version ", version, " (expected ",
            kModelFormatVersion, ")");

    std::string kind;
    if (!(is >> kind))
        return support::dataLossError(
            "corrupt model stream: missing model kind");
    if (kind == "LR" || kind == "SVM") {
        auto weights = readVector(is);
        if (!weights.isOk())
            return weights.status();
        auto bias = readScalar(is, "bias");
        if (!bias.isOk())
            return bias.status();
        if (kind == "LR") {
            auto model = std::make_unique<LogisticRegression>();
            model->setParams(std::move(weights).value(), *bias);
            return std::unique_ptr<Classifier>(std::move(model));
        }
        auto model = std::make_unique<LinearSvm>();
        model->setParams(std::move(weights).value(), *bias);
        return std::unique_ptr<Classifier>(std::move(model));
    }
    if (kind == "NN") {
        std::size_t hidden = 0;
        if (!(is >> hidden))
            return support::dataLossError(
                "corrupt NN model: missing hidden size");
        if (hidden > kMaxVectorSize)
            return support::dataLossError(
                "corrupt NN model: absurd hidden size ", hidden);
        std::vector<std::vector<double>> w1(hidden);
        for (auto &row : w1) {
            auto parsed = readVector(is);
            if (!parsed.isOk())
                return parsed.status();
            row = std::move(parsed).value();
        }
        auto b1 = readVector(is);
        if (!b1.isOk())
            return b1.status();
        auto w2 = readVector(is);
        if (!w2.isOk())
            return w2.status();
        auto b2 = readScalar(is, "output bias");
        if (!b2.isOk())
            return b2.status();
        if (b1->size() != hidden || w2->size() != hidden)
            return support::dataLossError(
                "corrupt NN model: layer size mismatch");
        for (const auto &row : w1) {
            if (row.size() != w1.front().size())
                return support::dataLossError(
                    "corrupt NN model: ragged hidden weights");
        }
        auto model = std::make_unique<Mlp>();
        model->setParams(std::move(w1), std::move(b1).value(),
                         std::move(w2).value(), *b2);
        return std::unique_ptr<Classifier>(std::move(model));
    }
    return support::invalidArgumentError("unknown model kind '", kind,
                                         "' in stream");
}

support::Status
trySaveStandardizer(const Standardizer &standardizer, std::ostream &os)
{
    if (standardizer.mean.size() != standardizer.scale.size())
        return support::invalidArgumentError(
            "standardizer mean/scale length mismatch: ",
            standardizer.mean.size(), " vs ",
            standardizer.scale.size());
    os.precision(std::numeric_limits<double>::max_digits10);
    os << kStandardizerMagic << ' ' << kStandardizerFormatVersion
       << '\n';
    writeVector(os, standardizer.mean);
    writeVector(os, standardizer.scale);
    return {};
}

support::StatusOr<Standardizer>
tryLoadStandardizer(std::istream &is)
{
    std::string magic;
    if (!(is >> magic))
        return support::dataLossError(
            "corrupt standardizer stream: empty stream");
    if (magic != kStandardizerMagic)
        return support::invalidArgumentError(
            "not an RHMD standardizer stream: bad magic '", magic, "'");
    int version = 0;
    if (!(is >> version))
        return support::dataLossError(
            "corrupt standardizer stream: missing format version");
    if (version != kStandardizerFormatVersion)
        return support::failedPreconditionError(
            "unsupported standardizer format version ", version,
            " (expected ", kStandardizerFormatVersion, ")");

    auto mean = readVector(is);
    if (!mean.isOk())
        return mean.status();
    auto scale = readVector(is);
    if (!scale.isOk())
        return scale.status();
    if (mean->size() != scale->size())
        return support::dataLossError(
            "corrupt standardizer stream: mean/scale length mismatch");
    // readVector() already rejected NaN/Inf; a non-positive scale is
    // equally unusable — apply() would divide by zero or flip signs.
    for (double s : *scale) {
        if (s <= 0.0)
            return support::dataLossError(
                "corrupt standardizer stream: non-positive scale ", s);
    }
    Standardizer standardizer;
    standardizer.mean = std::move(mean).value();
    standardizer.scale = std::move(scale).value();
    return standardizer;
}

void
saveModel(const Classifier &model, std::ostream &os)
{
    const support::Status status = trySaveModel(model, os);
    fatal_if(!status.isOk(), status.message());
}

std::unique_ptr<Classifier>
loadModel(std::istream &is)
{
    auto model = tryLoadModel(is);
    fatal_if(!model.isOk(), model.status().message());
    return std::move(model).value();
}

} // namespace rhmd::ml
