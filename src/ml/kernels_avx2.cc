/**
 * @file
 * AVX2 kernel table: 4-lane instantiations plus the masked gather
 * tree traversal.
 *
 * This is the only translation unit compiled with -mavx2 (and
 * -ffp-contract=off so no multiply-add ever fuses — fusion would
 * round differently from the scalar reference and break the
 * bit-equality gate). It is linked unconditionally but only ever
 * called when runtime dispatch selected the avx2 target, which
 * requires __builtin_cpu_supports("avx2").
 *
 * The forest kernel traverses four batch rows per vector: node ids
 * live in a 64-bit lane each, per-node fields come in through
 * i64 gathers, and the `x[f] <= t` select is a _CMP_LE_OQ compare
 * (NaN -> false -> right child, exactly the scalar walk). Finished
 * lanes spin on their self-referential leaf until the block drains.
 * A forest overlaps many independent per-tree gather chains, which
 * hides the gather latency; a single shallow tree cannot, and the
 * lockstep walk (every lane steps to the deepest lane's depth)
 * measures well below the plain scalar descent — so treeScore
 * deliberately stays the scalar reference in this table.
 */

#include "ml/kernels_impl.hh"

#if defined(__AVX2__)

#include <immintrin.h>

#include "support/logging.hh"

namespace rhmd::ml::detail
{

namespace
{

const long long *
asI64(const std::int64_t *p)
{
    return reinterpret_cast<const long long *>(p);
}

/** Leaf values reached by rows [r, r+4) of the SoA view. */
__m256d
traverseBlock(const FlatTree &tree, const double *soaBase,
              std::int64_t paddedRows, std::int64_t r)
{
    const __m256i rowIdx =
        _mm256_set_epi64x(r + 3, r + 2, r + 1, r);
    const __m256i prVec = _mm256_set1_epi64x(paddedRows);
    const __m256i zero = _mm256_setzero_si256();
    __m256i node = zero;

    // Each pass advances every non-leaf lane one level while leaf
    // lanes re-select themselves. A well-formed tree never needs
    // more passes than it has nodes; more means a cycle.
    const std::size_t maxSteps = tree.size();
    for (std::size_t step = 0;; ++step) {
        const __m256i feat =
            _mm256_i64gather_epi64(asI64(tree.feature.data()), node, 8);
        const __m256i isLeaf = _mm256_cmpgt_epi64(zero, feat);
        if (_mm256_movemask_pd(_mm256_castsi256_pd(isLeaf)) == 0xF)
            break;
        panic_if(step > maxSteps, "cyclic flat tree");

        // Clamp leaf lanes' feature to 0 so their (discarded) value
        // gather stays in bounds; their child select is self anyway.
        const __m256i featIdx = _mm256_andnot_si256(isLeaf, feat);
        // offset = feature * paddedRows + row. Both factors fit in
        // 32 bits, so the unsigned 32x32->64 multiply is exact.
        const __m256i offset = _mm256_add_epi64(
            _mm256_mul_epu32(featIdx, prVec), rowIdx);
        const __m256d fval = _mm256_i64gather_pd(soaBase, offset, 8);
        const __m256d thr =
            _mm256_i64gather_pd(tree.threshold.data(), node, 8);
        const __m256d goLeft = _mm256_cmp_pd(fval, thr, _CMP_LE_OQ);

        const __m256i left =
            _mm256_i64gather_epi64(asI64(tree.left.data()), node, 8);
        const __m256i right =
            _mm256_i64gather_epi64(asI64(tree.right.data()), node, 8);
        node = _mm256_blendv_epi8(right, left,
                                  _mm256_castpd_si256(goLeft));
    }
    return _mm256_i64gather_pd(tree.value.data(), node, 8);
}

void
forestScoreAvx2(const FlatTree *trees, std::size_t nTrees,
                const features::FeatureMatrix &x, double *out)
{
    if (!x.hasSoa() || x.rows() == 0) {
        scalarTable().forestScore(trees, nTrees, x, out);
        return;
    }
    panic_if(nTrees == 0, "forest kernel on an untrained forest");
    const double *base = x.col(0);
    const auto pr = static_cast<std::int64_t>(x.paddedRows());
    const __m256d vn =
        _mm256_set1_pd(static_cast<double>(nTrees));
    for (std::int64_t r = 0; r < pr; r += 4) {
        // Ascending-tree running sum per lane, then one divide —
        // the RandomForest::score accumulation order, bit for bit.
        __m256d total = _mm256_setzero_pd();
        for (std::size_t t = 0; t < nTrees; ++t)
            total = _mm256_add_pd(total,
                                  traverseBlock(trees[t], base, pr, r));
        _mm256_storeu_pd(out + r, _mm256_div_pd(total, vn));
    }
}

} // namespace

const KernelTable &
avx2Table()
{
    static const KernelTable table = [] {
        KernelTable t = scalarTable();
        t.target = simd::Target::Avx2;
        t.linearMargin = linearMarginVec<simd::VecAvx2>;
        t.standardizeRow = standardizeRowVec<simd::VecAvx2>;
        // treeScore stays the scalar walk (see the file comment).
        t.forestScore = forestScoreAvx2;
        t.rateConvertU32 = rateConvertU32Vec<simd::VecAvx2>;
        t.rateAccumulateU32 = rateAccumulateU32Vec<simd::VecAvx2>;
        t.rateConvertF64 = rateConvertF64Vec<simd::VecAvx2>;
        return t;
    }();
    return table;
}

} // namespace rhmd::ml::detail

#endif // __AVX2__
