/**
 * @file
 * MLP implementation (per-example momentum SGD on log loss).
 */

#include "ml/mlp.hh"

#include <cmath>

#include "ml/kernels.hh"
#include "ml/logistic_regression.hh"  // for sigmoid()
#include "support/logging.hh"
#include "support/stats.hh"

namespace rhmd::ml
{

Mlp::Mlp(MlpConfig config)
    : config_(config)
{
}

void
Mlp::train(const Dataset &data, Rng &rng)
{
    fatal_if(data.empty(), "cannot train MLP on empty data");
    data.validate();
    inputDim_ = data.dim();
    const std::size_t hidden =
        config_.hidden == 0 ? inputDim_ : config_.hidden;

    const double init_sd =
        config_.initScale / std::sqrt(static_cast<double>(inputDim_));
    w1_.assign(hidden, std::vector<double>(inputDim_));
    b1_.assign(hidden, 0.0);
    w2_.assign(hidden, 0.0);
    b2_ = 0.0;
    for (auto &row : w1_) {
        for (double &w : row)
            w = rng.gaussian(0.0, init_sd);
    }
    const double out_sd =
        config_.initScale / std::sqrt(static_cast<double>(hidden));
    for (double &w : w2_)
        w = rng.gaussian(0.0, out_sd);

    std::vector<std::vector<double>> v1(
        hidden, std::vector<double>(inputDim_, 0.0));
    std::vector<double> vb1(hidden, 0.0);
    std::vector<double> v2(hidden, 0.0);
    double vb2 = 0.0;

    std::vector<double> act(hidden);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const double step = config_.learningRate /
                            (1.0 + 0.03 * static_cast<double>(epoch));
        const std::vector<std::size_t> order =
            rng.permutation(data.size());

        for (std::size_t i : order) {
            const std::vector<double> &x = data.x[i];
            const double target = static_cast<double>(data.y[i]);

            // Forward.
            double z_out = b2_;
            for (std::size_t h = 0; h < hidden; ++h) {
                act[h] = std::tanh(dot(w1_[h], x) + b1_[h]);
                z_out += w2_[h] * act[h];
            }
            const double p = sigmoid(z_out);

            // Backward: dLoss/dz_out for log loss is (p - y).
            const double delta_out = p - target;

            for (std::size_t h = 0; h < hidden; ++h) {
                const double delta_h =
                    delta_out * w2_[h] * (1.0 - act[h] * act[h]);

                v2[h] = config_.momentum * v2[h] -
                        step * (delta_out * act[h] +
                                config_.l2 * w2_[h]);
                w2_[h] += v2[h];

                auto &w_row = w1_[h];
                auto &v_row = v1[h];
                for (std::size_t j = 0; j < inputDim_; ++j) {
                    v_row[j] = config_.momentum * v_row[j] -
                               step * (delta_h * x[j] +
                                       config_.l2 * w_row[j]);
                    w_row[j] += v_row[j];
                }
                vb1[h] = config_.momentum * vb1[h] - step * delta_h;
                b1_[h] += vb1[h];
            }
            vb2 = config_.momentum * vb2 - step * delta_out;
            b2_ += vb2;
        }
    }
}

double
Mlp::score(const std::vector<double> &x) const
{
    panic_if(w1_.empty(), "MLP scored before training");
    panic_if(x.size() != inputDim_, "MLP input dim mismatch");
    double z_out = b2_;
    for (std::size_t h = 0; h < w1_.size(); ++h)
        z_out += w2_[h] * std::tanh(dot(w1_[h], x) + b1_[h]);
    return sigmoid(z_out);
}

std::vector<double>
Mlp::scoreBatch(const features::FeatureMatrix &x) const
{
    panic_if(w1_.empty(), "MLP scored before training");
    panic_if(x.rows() > 0 && x.cols() != inputDim_,
             "MLP batch dim mismatch: ", x.cols(), " vs ", inputDim_);
    const KernelTable &k = kernels();
    if (k.target == simd::Target::Scalar) {
        // Reference path: inline dot with score()'s accumulation
        // order so batch and serial activations are bit-identical.
        std::vector<double> out(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double *row = x.row(r);
            double z_out = b2_;
            for (std::size_t h = 0; h < w1_.size(); ++h) {
                const double *wh = w1_[h].data();
                double z = 0.0;
                for (std::size_t j = 0; j < inputDim_; ++j)
                    z += wh[j] * row[j];
                z_out += w2_[h] * std::tanh(z + b1_[h]);
            }
            out[r] = sigmoid(z_out);
        }
        return out;
    }
    // Kernel path: one affine kernel sweep per hidden unit, with the
    // tanh and output accumulation kept as scalar per-row steps —
    // the h-ascending z_out sum and every libm call match the
    // reference exactly.
    std::vector<double> hidden = scoreSpan(x);
    std::vector<double> out(x.rows(), b2_);
    for (std::size_t h = 0; h < w1_.size(); ++h) {
        k.linearMargin(x, w1_[h].data(), b1_[h], hidden.data());
        for (std::size_t r = 0; r < x.rows(); ++r)
            out[r] += w2_[h] * std::tanh(hidden[r]);
    }
    for (double &z : out)
        z = sigmoid(z);
    return out;
}

std::unique_ptr<Classifier>
Mlp::clone() const
{
    return std::make_unique<Mlp>(*this);
}

void
Mlp::setParams(std::vector<std::vector<double>> w1,
               std::vector<double> b1, std::vector<double> w2, double b2)
{
    panic_if(w1.empty() || w1.size() != b1.size() ||
             w1.size() != w2.size(),
             "inconsistent MLP parameter shapes");
    inputDim_ = w1.front().size();
    for (const auto &row : w1)
        panic_if(row.size() != inputDim_, "ragged MLP weight matrix");
    w1_ = std::move(w1);
    b1_ = std::move(b1);
    w2_ = std::move(w2);
    b2_ = b2;
}

std::vector<double>
Mlp::collapsedWeights() const
{
    panic_if(w1_.empty(), "MLP collapsed before training");
    std::vector<double> collapsed(inputDim_, 0.0);
    for (std::size_t h = 0; h < w1_.size(); ++h)
        axpy(collapsed, w2_[h], w1_[h]);
    return collapsed;
}

} // namespace rhmd::ml
