/**
 * @file
 * Logistic regression implementation.
 */

#include "ml/logistic_regression.hh"

#include <cmath>

#include "ml/kernels.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace rhmd::ml
{

double
sigmoid(double z)
{
    if (z >= 0.0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

LogisticRegression::LogisticRegression(LrConfig config)
    : config_(config)
{
}

void
LogisticRegression::train(const Dataset &data, Rng &rng)
{
    fatal_if(data.empty(), "cannot train LR on empty data");
    data.validate();
    const std::size_t d = data.dim();
    weights_.assign(d, 0.0);
    bias_ = 0.0;

    std::vector<double> grad(d, 0.0);
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        const double step = config_.learningRate /
                            (1.0 + 0.05 * static_cast<double>(epoch));
        const std::vector<std::size_t> order =
            rng.permutation(data.size());

        std::size_t cursor = 0;
        while (cursor < data.size()) {
            const std::size_t end =
                std::min(cursor + config_.batchSize, data.size());
            std::fill(grad.begin(), grad.end(), 0.0);
            double bias_grad = 0.0;
            for (std::size_t k = cursor; k < end; ++k) {
                const std::size_t i = order[k];
                const double p = sigmoid(dot(weights_, data.x[i]) + bias_);
                const double err = p - static_cast<double>(data.y[i]);
                axpy(grad, err, data.x[i]);
                bias_grad += err;
            }
            const double inv =
                1.0 / static_cast<double>(end - cursor);
            for (std::size_t j = 0; j < d; ++j) {
                weights_[j] -= step * (grad[j] * inv +
                                       config_.l2 * weights_[j]);
            }
            bias_ -= step * bias_grad * inv;
            cursor = end;
        }
    }
}

double
LogisticRegression::score(const std::vector<double> &x) const
{
    panic_if(weights_.empty(), "LR scored before training");
    return sigmoid(dot(weights_, x) + bias_);
}

std::vector<double>
LogisticRegression::scoreBatch(const features::FeatureMatrix &x) const
{
    panic_if(weights_.empty(), "LR scored before training");
    panic_if(x.rows() > 0 && x.cols() != weights_.size(),
             "LR batch dim mismatch: ", x.cols(), " vs ",
             weights_.size());
    const std::size_t d = weights_.size();
    const double *w = weights_.data();
    const KernelTable &k = kernels();
    if (k.target == simd::Target::Scalar) {
        // Reference path: same left-to-right accumulation as
        // support::dot, so the batch score is bit-identical to
        // score().
        std::vector<double> out(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double *row = x.row(r);
            double z = 0.0;
            for (std::size_t j = 0; j < d; ++j)
                z += w[j] * row[j];
            out[r] = sigmoid(z + bias_);
        }
        return out;
    }
    // Kernel path: one margin per SoA lane with the reference's
    // per-row accumulation order; the link function stays a scalar
    // libm call per real row so every target shares its rounding.
    std::vector<double> out = scoreSpan(x);
    k.linearMargin(x, w, bias_, out.data());
    out.resize(x.rows());  // drop padding lanes: they are not windows
    for (double &z : out)
        z = sigmoid(z);
    return out;
}

std::unique_ptr<Classifier>
LogisticRegression::clone() const
{
    return std::make_unique<LogisticRegression>(*this);
}

void
LogisticRegression::setParams(std::vector<double> weights, double bias)
{
    weights_ = std::move(weights);
    bias_ = bias;
}

} // namespace rhmd::ml
