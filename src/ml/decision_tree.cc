/**
 * @file
 * CART implementation.
 */

#include "ml/decision_tree.hh"

#include <algorithm>
#include <functional>

#include "ml/kernels.hh"
#include "support/logging.hh"

namespace rhmd::ml
{

DecisionTree::DecisionTree(TreeConfig config)
    : config_(config)
{
}

std::int32_t
DecisionTree::build(const Dataset &data,
                    std::vector<std::size_t> &indices, std::size_t depth)
{
    const auto node_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    std::size_t positives = 0;
    for (std::size_t i : indices)
        positives += data.y[i];
    const double frac = indices.empty()
        ? 0.5
        : static_cast<double>(positives) /
              static_cast<double>(indices.size());
    nodes_[node_id].value = frac;

    const bool pure = positives == 0 || positives == indices.size();
    if (pure || depth >= config_.maxDepth ||
        indices.size() < config_.minSamplesSplit) {
        return node_id;
    }

    // Greedy best Gini split across all features.
    const std::size_t d = data.dim();
    double best_gini = 2.0;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;

    std::vector<std::pair<double, int>> column(indices.size());
    for (std::size_t f = 0; f < d; ++f) {
        for (std::size_t k = 0; k < indices.size(); ++k) {
            column[k] = {data.x[indices[k]][f], data.y[indices[k]]};
        }
        std::sort(column.begin(), column.end());

        std::size_t left_n = 0;
        std::size_t left_pos = 0;
        const std::size_t total_n = column.size();
        const std::size_t total_pos = positives;
        for (std::size_t k = 0; k + 1 < total_n; ++k) {
            ++left_n;
            left_pos += column[k].second;
            if (column[k].first == column[k + 1].first)
                continue;  // no threshold between equal values
            const std::size_t right_n = total_n - left_n;
            if (left_n < config_.minSamplesLeaf ||
                right_n < config_.minSamplesLeaf) {
                continue;
            }
            const double lp = static_cast<double>(left_pos) /
                              static_cast<double>(left_n);
            const double rp =
                static_cast<double>(total_pos - left_pos) /
                static_cast<double>(right_n);
            const double gini_left = 2.0 * lp * (1.0 - lp);
            const double gini_right = 2.0 * rp * (1.0 - rp);
            const double weighted =
                (gini_left * static_cast<double>(left_n) +
                 gini_right * static_cast<double>(right_n)) /
                static_cast<double>(total_n);
            if (weighted < best_gini) {
                best_gini = weighted;
                best_feature = f;
                best_threshold =
                    0.5 * (column[k].first + column[k + 1].first);
            }
        }
    }

    if (best_gini >= 2.0)
        return node_id;  // no admissible split

    std::vector<std::size_t> left_idx;
    std::vector<std::size_t> right_idx;
    for (std::size_t i : indices) {
        if (data.x[i][best_feature] <= best_threshold)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    panic_if(left_idx.empty() || right_idx.empty(),
             "degenerate decision-tree split");

    indices.clear();
    indices.shrink_to_fit();

    const std::int32_t left = build(data, left_idx, depth + 1);
    const std::int32_t right = build(data, right_idx, depth + 1);
    nodes_[node_id].leaf = false;
    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
}

void
DecisionTree::train(const Dataset &data, Rng &rng)
{
    (void)rng;  // CART is deterministic
    fatal_if(data.empty(), "cannot train DT on empty data");
    data.validate();
    nodes_.clear();
    std::vector<std::size_t> indices(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        indices[i] = i;
    build(data, indices, 0);
    flat_ = flattenTree(nodes_, nullptr);
}

FlatTree
flattenTree(const std::vector<DecisionTree::Node> &nodes,
            const std::vector<std::size_t> *map)
{
    FlatTree out;
    out.feature.reserve(nodes.size());
    out.threshold.reserve(nodes.size());
    out.left.reserve(nodes.size());
    out.right.reserve(nodes.size());
    out.value.reserve(nodes.size());
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const DecisionTree::Node &node = nodes[n];
        if (node.leaf) {
            out.feature.push_back(-1);
            out.threshold.push_back(0.0);
            out.left.push_back(static_cast<std::int64_t>(n));
            out.right.push_back(static_cast<std::int64_t>(n));
        } else {
            panic_if(map != nullptr && node.feature >= map->size(),
                     "tree split feature ", node.feature,
                     " outside its feature selection (", map->size(),
                     " entries)");
            const std::size_t f =
                map == nullptr ? node.feature : (*map)[node.feature];
            out.feature.push_back(static_cast<std::int64_t>(f));
            out.threshold.push_back(node.threshold);
            out.left.push_back(node.left);
            out.right.push_back(node.right);
        }
        out.value.push_back(node.value);
    }
    return out;
}

double
DecisionTree::score(const std::vector<double> &x) const
{
    panic_if(nodes_.empty(), "DT scored before training");
    return scoreRow(x.data());
}

double
DecisionTree::scoreRow(const double *row) const
{
    std::int32_t node = 0;
    while (!nodes_[node].leaf) {
        node = row[nodes_[node].feature] <= nodes_[node].threshold
            ? nodes_[node].left
            : nodes_[node].right;
    }
    return nodes_[node].value;
}

std::vector<double>
DecisionTree::scoreBatch(const features::FeatureMatrix &x) const
{
    panic_if(nodes_.empty(), "DT scored before training");
    const KernelTable &k = kernels();
    if (k.target == simd::Target::Scalar) {
        // Reference path: the historical per-row walk over nodes_.
        std::vector<double> out(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r)
            out[r] = scoreRow(x.row(r));
        return out;
    }
    std::vector<double> out = scoreSpan(x);
    k.treeScore(flat_, x, out.data());
    out.resize(x.rows());  // drop padding lanes: they are not windows
    return out;
}

std::unique_ptr<Classifier>
DecisionTree::clone() const
{
    return std::make_unique<DecisionTree>(*this);
}

std::size_t
DecisionTree::depth() const
{
    if (nodes_.empty())
        return 0;
    std::function<std::size_t(std::int32_t)> walk =
        [&](std::int32_t node) -> std::size_t {
        if (nodes_[node].leaf)
            return 1;
        return 1 + std::max(walk(nodes_[node].left),
                            walk(nodes_[node].right));
    };
    return walk(0);
}

} // namespace rhmd::ml
