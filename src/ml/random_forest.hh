/**
 * @file
 * Random forest — the "single high-complexity, high-accuracy
 * classifier" the paper's Sec. 8 discussion contrasts with pools of
 * low-complexity randomized detectors. Included so that contrast can
 * be measured, and as a stronger attacker-side algorithm.
 */

#ifndef RHMD_ML_RANDOM_FOREST_HH
#define RHMD_ML_RANDOM_FOREST_HH

#include "ml/classifier.hh"
#include "ml/decision_tree.hh"

namespace rhmd::ml
{

/** Forest hyperparameters. */
struct ForestConfig
{
    std::size_t trees = 30;
    /** Bootstrap sample fraction per tree. */
    double sampleFrac = 0.8;
    /**
     * Features considered per tree: each tree sees a random subset
     * of ceil(sqrt(d)) * featureFactor features.
     */
    double featureFactor = 2.0;
    TreeConfig tree{};
};

/**
 * Bagged CART ensemble with per-tree feature subsampling; score() is
 * the mean of the trees' leaf scores.
 */
class RandomForest : public Classifier
{
  public:
    explicit RandomForest(ForestConfig config = {});

    void train(const Dataset &data, Rng &rng) override;
    double score(const std::vector<double> &x) const override;
    std::vector<double>
    scoreBatch(const features::FeatureMatrix &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string name() const override { return "RF"; }

    /** Number of trained trees. */
    std::size_t treeCount() const { return trees_.size(); }

    /** The trained trees (for static analyses over the forest). */
    const std::vector<DecisionTree> &trees() const { return trees_; }

    /**
     * Feature indices tree @p t was trained on: tree t's input j is
     * the full feature vector's featureSelections()[t][j].
     */
    const std::vector<std::vector<std::size_t>> &
    featureSelections() const
    {
        return featureSel_;
    }

  private:
    ForestConfig config_;
    std::vector<DecisionTree> trees_;
    /** Per-tree selected feature indices. */
    std::vector<std::vector<std::size_t>> featureSel_;
    /**
     * Trees in kernel layout with splits remapped through
     * featureSel_, so the traversal kernels read full-width feature
     * rows directly (no per-(row, tree) projection copies).
     */
    std::vector<FlatTree> flat_;
};

} // namespace rhmd::ml

#endif // RHMD_ML_RANDOM_FOREST_HH
