/**
 * @file
 * Drift/evasion detection over the serving stream.
 *
 * The paper's attacker (Sec. 6) does not announce itself: evasive
 * variants are crafted to score *just* on the benign side of the
 * decision boundary, so the first observable symptom is not a wrong
 * label (there is no ground truth online) but a statistical change in
 * how the pool scores recent traffic — benign-decided requests whose
 * mean score margin collapses toward the threshold, and rising
 * detector fail-over rates (echoing the anomaly-signal framing of
 * Tang et al., PAPERS.md). DriftDetector watches a sliding window of
 * per-request observations derived from ServeReport and fires when
 * either signal crosses its configured rate.
 *
 * Everything here is a pure function of the observation sequence: no
 * clocks, no randomness, no thread state. Fed the same reports in the
 * same order, it fires at the same request at any worker count —
 * which is what lets pipeline.* metrics sit in the Deterministic
 * domain and the retrain-loop bench diff its tables across threads.
 */

#ifndef RHMD_PIPELINE_DRIFT_HH
#define RHMD_PIPELINE_DRIFT_HH

#include <cstddef>
#include <cstdint>
#include <deque>

namespace rhmd::pipeline
{

/** Drift thresholds; defaults suit the serve-preset corpus. */
struct DriftConfig
{
    /** Sliding window of recent requests the rates are measured on. */
    std::size_t window = 64;

    /**
     * Minimum observations before drift can fire — a handful of
     * borderline requests after a pool swap must not immediately
     * retrigger retraining.
     */
    std::size_t minObservations = 32;

    /**
     * A benign-decided request whose mean score margin is below this
     * is a suspect: it sat close enough to the boundary to be an
     * evasive variant rather than ordinary benign traffic.
     */
    double marginFloor = 0.05;

    /** Suspect share of the window at which drift fires. */
    double suspectRateThreshold = 0.20;

    /**
     * Mean detector fail-overs per request at which drift fires
     * (the rising-failover signal, independent of margins).
     */
    double failureRateThreshold = 0.25;
};

/** One served request, reduced to the drift-relevant signals. */
struct DriftObservation
{
    /** Majority program decision (0 benign, 1 malware). */
    int programDecision = 0;

    /** ServeReport::meanMargin of the classified epochs. */
    double meanMargin = 0.0;

    /** Detector fail-overs spent serving the request. */
    std::size_t detectorFailures = 0;

    /** True for fail-open pass-throughs (never suspects). */
    bool degraded = false;
};

/** Windowed rates behind the last drifted() verdict. */
struct DriftStats
{
    std::size_t observations = 0;   ///< requests in the window
    std::size_t suspects = 0;       ///< margin-collapsed benigns
    double suspectRate = 0.0;
    double failureRate = 0.0;       ///< mean fail-overs per request
};

/**
 * Sliding-window drift detector. Not thread-safe; the pipeline
 * serializes access under its own mutex.
 */
class DriftDetector
{
  public:
    explicit DriftDetector(DriftConfig config);

    /**
     * Would @p obs count as a suspect under this configuration?
     * Stateless; the pipeline uses it to decide which programs to
     * hand to the flight recorder.
     */
    bool suspect(const DriftObservation &obs) const;

    /** Fold one served request into the window. */
    void observe(const DriftObservation &obs);

    /**
     * True when the window holds at least minObservations and either
     * the suspect rate or the fail-over rate crossed its threshold.
     */
    bool drifted() const;

    /** Current windowed rates (for step reports and tests). */
    DriftStats stats() const;

    /**
     * Forget the window — called after a retrain cycle resolves, so
     * the next verdict is about traffic served by the new incumbent,
     * not the traffic that triggered the cycle.
     */
    void reset();

    const DriftConfig &config() const { return config_; }

  private:
    DriftConfig config_;

    struct Entry
    {
        bool suspect = false;
        std::size_t failures = 0;
    };
    std::deque<Entry> window_;
    std::size_t suspects_ = 0;
    std::size_t failures_ = 0;
};

} // namespace rhmd::pipeline

#endif // RHMD_PIPELINE_DRIFT_HH
