/**
 * @file
 * Flight recorder implementation.
 */

#include "pipeline/recorder.hh"

#include "corpus/format.hh"
#include "corpus/reader.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rhmd::pipeline
{

namespace
{

/**
 * Spool identity: live capture has no generating ExperimentConfig, so
 * the key binds the format version and period set under a fixed tag.
 * drain() reopens its own spool, so the key only guards against a
 * stale file from a different period configuration.
 */
std::uint64_t
spoolKey(const std::vector<std::uint32_t> &periods)
{
    std::uint64_t key = corpus::kFnvOffset;
    key = corpus::fnv1aU64(key, corpus::kCorpusFormatVersion);
    key = corpus::fnv1aU64(key, 0xf117dec0'7de2ULL); // flight-recorder tag
    key = corpus::fnv1aU64(key, periods.size());
    for (std::uint32_t period : periods)
        key = corpus::fnv1aU64(key, period);
    return key;
}

// Capture volume is driven by the drift detector's deterministic
// verdicts, so the counters sit in the Deterministic domain.

struct RecorderCounters
{
    support::Counter &programs = support::metrics().counter(
        "pipeline.programs_flagged",
        "suspect programs captured into the flight-recorder spool");
    support::Counter &windows = support::metrics().counter(
        "pipeline.windows_buffered",
        "feature windows captured into the flight-recorder spool");
    support::Counter &dropped = support::metrics().counter(
        "pipeline.programs_dropped",
        "suspect programs dropped over the capture ceiling");
    support::Counter &drains = support::metrics().counter(
        "pipeline.spool_drains",
        "flight-recorder spools drained for retraining");
};

RecorderCounters &
recorderCounters()
{
    static RecorderCounters counters;
    return counters;
}

} // namespace

FlightRecorder::FlightRecorder(RecorderConfig config)
    : config_(std::move(config))
{
    fatal_if(config_.path.empty(), "FlightRecorder needs a spool path");
    fatal_if(config_.periods.empty(),
             "FlightRecorder needs at least one capture period");
    fatal_if(config_.maxPrograms == 0,
             "FlightRecorder maxPrograms must be > 0");
}

support::Status
FlightRecorder::openSpool()
{
    auto writer = corpus::CorpusWriter::create(
        config_.path, spoolKey(config_.periods), config_.periods);
    if (!writer.isOk())
        return writer.status();
    writer_.emplace(std::move(*writer));
    return support::Status();
}

support::Status
FlightRecorder::flag(const features::ProgramFeatures &prog)
{
    RecorderCounters &counters = recorderCounters();
    if (programs_ >= config_.maxPrograms) {
        ++dropped_;
        counters.dropped.add(1);
        return support::unavailableError(
            "flight recorder full (", config_.maxPrograms,
            " programs this cycle); suspect '", prog.name,
            "' dropped");
    }
    if (!writer_.has_value()) {
        const support::Status opened = openSpool();
        if (!opened.isOk())
            return opened;
    }
    const std::uint64_t before = writer_->windowTotal();
    const support::Status appended = writer_->append(prog);
    if (!appended.isOk())
        return appended;
    ++programs_;
    const std::uint64_t captured = writer_->windowTotal() - before;
    windowsCaptured_ += captured;
    counters.programs.add(1);
    counters.windows.add(captured);
    return support::Status();
}

support::StatusOr<features::FeatureCorpus>
FlightRecorder::drain()
{
    if (empty())
        return support::failedPreconditionError(
            "flight recorder drain with no captured programs");

    const support::Status finalized = writer_->finalize();
    if (!finalized.isOk())
        return finalized;

    // Replay through the same mmap path every corpus consumer uses:
    // what the retrainer trains on is the decoded image of the bytes
    // the serving path flagged, not a parallel in-memory copy.
    auto reader = corpus::CorpusReader::open(config_.path);
    if (!reader.isOk())
        return reader.status();
    if (reader->configKey() != spoolKey(config_.periods))
        return support::dataLossError(
            "flight-recorder spool '", config_.path,
            "' has a foreign config key");
    features::FeatureCorpus flagged = reader->materialize();
    lastHash_ = reader->contentHash();

    recorderCounters().drains.add(1);
    programs_ = 0;
    dropped_ = 0;
    writer_.reset();
    return flagged;
}

} // namespace rhmd::pipeline
