/**
 * @file
 * Retrain-pipeline orchestrator implementation.
 */

#include "pipeline/pipeline.hh"

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace rhmd::pipeline
{

namespace
{

// Loop outcomes are pure functions of the observation sequence, the
// retrain seed, and the gate corpus (see the pipeline.hh determinism
// note), so all of these are Deterministic-domain.

struct PipelineCounters
{
    support::Counter &driftFired = support::metrics().counter(
        "pipeline.drift_fired",
        "drift verdicts that opened a retrain cycle");
    support::Counter &retrains = support::metrics().counter(
        "pipeline.retrains", "candidate pools retrained");
    support::Counter &promotions = support::metrics().counter(
        "pipeline.promotions",
        "candidates promoted to serving through swapPool");
    support::Counter &rejectedGate = support::metrics().counter(
        "pipeline.rejected_gate",
        "candidates rejected by the PAC/certified promotion gate");
    support::Counter &rejectedShadow = support::metrics().counter(
        "pipeline.rejected_shadow",
        "candidates discarded by the shadow-agreement floor");
};

PipelineCounters &
pipelineCounters()
{
    static PipelineCounters counters;
    return counters;
}

} // namespace

RetrainPipeline::RetrainPipeline(serve::DetectionService &service,
                                 const features::FeatureCorpus &base,
                                 std::vector<std::size_t> train_idx,
                                 PipelineConfig config)
    : service_(service), base_(base), trainIdx_(std::move(train_idx)),
      config_(std::move(config)), drift_(config_.drift),
      recorder_(config_.recorder)
{
    fatal_if(trainIdx_.empty(),
             "RetrainPipeline needs training programs");
    fatal_if(config_.retrain.specs.empty(),
             "RetrainPipeline needs retrain detector specs");
    fatal_if(config_.shadowMinRequests == 0,
             "RetrainPipeline shadowMinRequests must be > 0");
    // Every retrain period must be capturable, or the candidate would
    // train on ground truth while the suspects silently vanish.
    for (const features::FeatureSpec &spec : config_.retrain.specs) {
        bool covered = false;
        for (std::uint32_t period : config_.recorder.periods)
            covered = covered || period == spec.period;
        fatal_if(!covered, "retrain spec period ", spec.period,
                 " is not captured by the flight recorder");
    }
}

void
RetrainPipeline::observe(const features::ProgramFeatures &prog,
                         const serve::ServeReport &report)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    DriftObservation obs;
    obs.programDecision = report.programDecision;
    obs.meanMargin = report.meanMargin;
    obs.detectorFailures = report.detectorFailures;
    obs.degraded = report.degraded;
    drift_.observe(obs);
    if (!drift_.suspect(obs))
        return;
    const support::Status captured = recorder_.flag(prog);
    // A full recorder is expected under a suspect flood (the ceiling
    // exists exactly for that); anything else is spool I/O trouble
    // worth a line.
    if (!captured.isOk() && recorder_.droppedPrograms() == 0)
        warn("flight recorder capture failed: " + captured.toString());
}

support::StatusOr<StepReport>
RetrainPipeline::step()
{
    const support::ScopedSpan span("pipeline_step");
    PipelineCounters &counters = pipelineCounters();
    const std::lock_guard<std::mutex> lock(mutex_);

    StepReport report;
    report.poolVersion = service_.poolVersion();

    if (phase_ == Phase::Monitoring) {
        bool drifted = drift_.drifted();
        if (!drifted && config_.driftOnQuarantine)
            drifted = service_.healthSnapshot().quarantinedCount() > 0;
        if (!drifted)
            return report;
        report.driftFired = true;
        counters.driftFired.add(1);

        if (recorder_.empty()) {
            // Drift without captured suspects (pure fail-over or
            // quarantine churn): nothing to retrain *on* yet. Clear
            // the window so the verdict re-arms on fresh traffic.
            drift_.reset();
            report.gate = support::failedPreconditionError(
                "drift fired with no captured suspects; retrain "
                "skipped");
            return report;
        }

        support::StatusOr<features::FeatureCorpus> flagged =
            recorder_.drain();
        if (!flagged.isOk())
            return flagged.status();
        report.flaggedPrograms = flagged->programs.size();
        candidateFlagged_ = flagged->programs.size();

        core::PoolRetrainConfig retrain = config_.retrain;
        retrain.generation = ++generation_;
        support::StatusOr<std::unique_ptr<core::Rhmd>> candidate =
            core::retrainPool(base_, trainIdx_, flagged->programs,
                              retrain);
        if (!candidate.isOk())
            return candidate.status();
        counters.retrains.add(1);
        report.retrained = true;

        candidate_ = std::shared_ptr<core::Rhmd>(
            std::move(*candidate));
        const support::Status installed =
            service_.installShadow(candidate_);
        if (!installed.isOk())
            return installed;
        phase_ = Phase::Shadowing;
        return report;
    }

    // Shadowing: wait for enough live traffic, then judge.
    const serve::ShadowStats shadow = service_.shadowStats();
    if (shadow.requests < config_.shadowMinRequests)
        return report;

    report.shadowEvaluated = true;
    report.shadowAgreement =
        static_cast<double>(shadow.agreements) /
        static_cast<double>(shadow.requests);
    service_.clearShadow();

    if (report.shadowAgreement < config_.shadowMinAgreement) {
        counters.rejectedShadow.add(1);
        report.gate = support::failedPreconditionError(
            "candidate discarded: shadow agreement ",
            report.shadowAgreement, " below the ",
            config_.shadowMinAgreement, " floor over ",
            shadow.requests, " requests");
        drift_.reset();
        phase_ = Phase::Monitoring;
        return report;
    }

    const support::StatusOr<std::uint64_t> promoted =
        service_.swapPool(candidate_);
    if (promoted.isOk()) {
        counters.promotions.add(1);
        report.promoted = true;
        report.poolVersion = *promoted;
    } else {
        counters.rejectedGate.add(1);
        report.gate = promoted.status();
        report.poolVersion = service_.poolVersion();
    }
    drift_.reset();
    phase_ = Phase::Monitoring;
    return report;
}

RetrainPipeline::Phase
RetrainPipeline::phase() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return phase_;
}

std::uint64_t
RetrainPipeline::generation() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

std::shared_ptr<core::Rhmd>
RetrainPipeline::candidatePool() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return candidate_;
}

DriftStats
RetrainPipeline::driftStats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return drift_.stats();
}

std::size_t
RetrainPipeline::capturedPrograms() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return recorder_.programCount();
}

} // namespace rhmd::pipeline
