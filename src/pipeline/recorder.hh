/**
 * @file
 * Flight recorder: suspect-window capture over the RHMD-CORPUS
 * format.
 *
 * When the drift detector marks a served request as a suspect, its
 * program's feature windows must survive until the next retrain round
 * — but buffering decoded windows in memory scales with attack
 * volume, and retraining wants the same zero-copy replay path every
 * other corpus consumer uses. FlightRecorder therefore streams each
 * flagged program straight into an RHMD-CORPUS spool file through
 * CorpusWriter (bounded memory: one program's windows at a time), and
 * drain() closes the spool, reopens it through the mmap-backed
 * CorpusReader, and materializes the flagged set for the retrainer —
 * the identical encode/verify/decode path DESIGN.md §15 proves
 * bit-exact, so a retrain round sees precisely the windows the
 * serving path scored.
 *
 * The spool's config key is derived from the period set alone (it is
 * live capture, not a generated corpus), and each drain cycle
 * truncates and restarts the spool file.
 */

#ifndef RHMD_PIPELINE_RECORDER_HH
#define RHMD_PIPELINE_RECORDER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "corpus/writer.hh"
#include "features/corpus.hh"
#include "support/status.hh"

namespace rhmd::pipeline
{

/** Flight-recorder spool parameters. */
struct RecorderConfig
{
    /** Spool file path; truncated at each capture cycle. */
    std::string path;

    /**
     * Periods captured per program (must cover every period the
     * retrain specs score at; flagged programs lacking one are
     * rejected at flag()).
     */
    std::vector<std::uint32_t> periods;

    /**
     * Capture ceiling per cycle: programs flagged beyond it are
     * dropped (counted, not buffered) so a flood of suspects cannot
     * grow the spool without bound before a retrain round drains it.
     */
    std::size_t maxPrograms = 256;
};

/** Streams flagged programs to a corpus spool and replays them. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(RecorderConfig config);

    /**
     * Capture @p prog into the current spool (windows for every
     * configured period, encoded immediately — no in-memory window
     * buffering). Returns Unavailable once the cycle's maxPrograms
     * ceiling is hit (the program is counted dropped), or the
     * writer's error.
     */
    support::Status flag(const features::ProgramFeatures &prog);

    /** Programs captured in the current cycle. */
    std::size_t programCount() const { return programs_; }

    /** Programs dropped over the ceiling in the current cycle. */
    std::size_t droppedPrograms() const { return dropped_; }

    /** True when nothing was captured this cycle. */
    bool empty() const { return programs_ == 0; }

    /**
     * Finalize the spool, reopen it zero-copy through CorpusReader,
     * and return the flagged programs; the recorder then starts a
     * fresh cycle. Returns FailedPrecondition when the cycle is
     * empty, or the reader/writer error.
     */
    support::StatusOr<features::FeatureCorpus> drain();

    /** Content hash of the last drained spool (0 before any drain). */
    std::uint64_t lastContentHash() const { return lastHash_; }

    /** Windows captured across all cycles (metrics mirror). */
    std::uint64_t windowsCaptured() const { return windowsCaptured_; }

  private:
    /** Open a fresh spool writer, truncating the file. */
    support::Status openSpool();

    RecorderConfig config_;
    std::optional<corpus::CorpusWriter> writer_;
    std::size_t programs_ = 0;
    std::size_t dropped_ = 0;
    std::uint64_t lastHash_ = 0;
    std::uint64_t windowsCaptured_ = 0;
};

} // namespace rhmd::pipeline

#endif // RHMD_PIPELINE_RECORDER_HH
