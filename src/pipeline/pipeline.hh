/**
 * @file
 * The closed-loop online retraining pipeline: the paper's Sec. 6
 * evade→retrain game run as a service (DESIGN.md §16).
 *
 * Offline, Figs. 11/13 show that retraining on evasive variants
 * restores RHMD's resilience. RetrainPipeline closes that loop
 * against live traffic in five stages:
 *
 *   1. detect  — a DriftDetector watches every served request's
 *                margin/fail-over signals (drift.hh), plus the
 *                current snapshot's quarantine count;
 *   2. capture — suspect programs stream into an RHMD-CORPUS spool
 *                via the FlightRecorder (recorder.hh) so retraining
 *                replays exactly the windows serving scored;
 *   3. retrain — core::retrainPool rebuilds a candidate pool on
 *                ground truth plus the drained suspects, in the
 *                background on the deterministic thread pool;
 *   4. shadow  — the candidate is installed on the service's shadow
 *                lane and scored against live traffic on a
 *                non-serving pool until it has seen enough requests;
 *   5. promote — the candidate goes through PoolManager::swapPool(),
 *                gated on core::checkPacFloor (Theorem 1) and, when
 *                configured, the certified evasion floor — it serves
 *                only if its provable floor did not regress.
 *
 * Determinism domains: stages 1–3 are pure functions of the
 * observation sequence and the retrain seed — same reports in the
 * same order give the same drift verdicts, the same spool bytes, and
 * (SplitRng per-detector streams) a bit-identical candidate at any
 * thread count. Stage 4's verdict is deterministic in the *set* of
 * (key, program) pairs shadow-scored; stage 5 is deterministic given
 * the candidate and gate corpus. The pipeline.* counters therefore
 * sit in the Deterministic metrics domain, and the retrain-loop
 * bench byte-diffs its generation table across thread counts.
 *
 * Captured suspects are labeled malware when retraining — the
 * operating assumption of the paper's game is that margin-collapsed
 * benign-decided traffic *is* the attacker's evasive output. The
 * PAC/certified gate is what keeps a mislabeled capture from
 * shipping: a candidate degraded by bad labels fails the floor
 * comparison and the incumbent keeps serving.
 */

#ifndef RHMD_PIPELINE_PIPELINE_HH
#define RHMD_PIPELINE_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/retrainer.hh"
#include "pipeline/drift.hh"
#include "pipeline/recorder.hh"
#include "serve/service.hh"
#include "support/status.hh"

namespace rhmd::pipeline
{

/** Closed-loop knobs. */
struct PipelineConfig
{
    DriftConfig drift{};

    /** Candidate-pool shape; generation is managed by the pipeline. */
    core::PoolRetrainConfig retrain{};

    /** Flight-recorder spool (path + capture periods). */
    RecorderConfig recorder{};

    /** Live requests the shadow lane must score before a verdict. */
    std::size_t shadowMinRequests = 32;

    /**
     * Minimum live-vs-candidate program-decision agreement. A
     * retrained candidate is *supposed* to disagree on the evasive
     * slice (that is the point), so this is a sanity floor against
     * degenerate candidates (e.g. flag-everything), not a similarity
     * requirement.
     */
    double shadowMinAgreement = 0.5;

    /** Also treat a quarantined detector in the serving snapshot as
     *  a drift signal. */
    bool driftOnQuarantine = true;
};

/** What one step() of the loop did (fields in stage order). */
struct StepReport
{
    bool driftFired = false;       ///< drift verdict this step
    bool retrained = false;        ///< a candidate was built
    std::size_t flaggedPrograms = 0; ///< suspects drained into it
    bool shadowEvaluated = false;  ///< shadow verdict reached
    double shadowAgreement = -1.0; ///< live-vs-candidate agreement
    bool promoted = false;         ///< candidate now serving
    support::Status gate; ///< rejection reason
    std::uint64_t poolVersion = 0; ///< serving version after the step
};

/**
 * Drives the detect→capture→retrain→shadow→promote loop over one
 * DetectionService. The caller feeds every answered request through
 * observe() and calls step() at its own cadence (per wave, per
 * timer); the pipeline never blocks serving — retraining runs on the
 * caller's step() thread via the deterministic pool, and promotion
 * uses the service's zero-downtime swap.
 *
 * Thread-safe: observe() and step() may race; both serialize on an
 * internal mutex. step() holds it through a retrain, so observers
 * stall for that step's duration — serving itself never does, since
 * workers don't touch the pipeline.
 */
class RetrainPipeline
{
  public:
    /**
     * @param service   the serving front end to watch and promote
     *                  into; must outlive the pipeline.
     * @param base      ground-truth corpus retraining starts from;
     *                  must outlive the pipeline.
     * @param train_idx programs of @p base to train candidates on.
     * @param config    loop knobs; recorder.periods must cover every
     *                  retrain spec period.
     */
    RetrainPipeline(serve::DetectionService &service,
                    const features::FeatureCorpus &base,
                    std::vector<std::size_t> train_idx,
                    PipelineConfig config);

    /** Loop state: watching traffic, or evaluating a candidate. */
    enum class Phase
    {
        Monitoring,
        Shadowing,
    };

    /**
     * Feed one answered request: folds the report into the drift
     * window and, when it is a suspect, captures @p prog into the
     * flight recorder. @p prog and @p report must be the submit()
     * arguments and its resolved report.
     */
    void observe(const features::ProgramFeatures &prog,
                 const serve::ServeReport &report);

    /**
     * Advance the loop one step. Monitoring: when drift fired and
     * suspects were captured, drain the recorder, retrain a
     * candidate, and install it on the shadow lane. Shadowing: once
     * the shadow lane saw shadowMinRequests, evaluate agreement and
     * either promote through swapPool() or discard the candidate.
     * Always returns a report (gate carries any rejection); only
     * infrastructure failures (spool I/O, invalid retrain config)
     * surface as an error status.
     */
    support::StatusOr<StepReport> step();

    Phase phase() const;

    /** Retrain rounds started so far. */
    std::uint64_t generation() const;

    /**
     * The most recent candidate (mutable — callers may need
     * Detector access for offline evaluation or reverse-engineering
     * studies; the service only ever sees it const). Null before the
     * first retrain.
     */
    std::shared_ptr<core::Rhmd> candidatePool() const;

    /** Drift window snapshot (stats of the current window). */
    DriftStats driftStats() const;

    /** Suspects captured in the current recorder cycle. */
    std::size_t capturedPrograms() const;

  private:
    serve::DetectionService &service_;
    const features::FeatureCorpus &base_;
    std::vector<std::size_t> trainIdx_;
    PipelineConfig config_;

    mutable std::mutex mutex_;
    DriftDetector drift_;
    FlightRecorder recorder_;
    Phase phase_ = Phase::Monitoring;
    std::uint64_t generation_ = 0;
    std::shared_ptr<core::Rhmd> candidate_;
    std::size_t candidateFlagged_ = 0;
};

} // namespace rhmd::pipeline

#endif // RHMD_PIPELINE_PIPELINE_HH
