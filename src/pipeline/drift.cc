/**
 * @file
 * Drift detector implementation.
 */

#include "pipeline/drift.hh"

#include "support/logging.hh"

namespace rhmd::pipeline
{

DriftDetector::DriftDetector(DriftConfig config) : config_(config)
{
    fatal_if(config_.window == 0, "DriftDetector window must be > 0");
    fatal_if(config_.minObservations == 0,
             "DriftDetector minObservations must be > 0");
    fatal_if(config_.minObservations > config_.window,
             "DriftDetector minObservations (", config_.minObservations,
             ") cannot exceed the window (", config_.window, ")");
}

bool
DriftDetector::suspect(const DriftObservation &obs) const
{
    return !obs.degraded && obs.programDecision == 0 &&
           obs.meanMargin < config_.marginFloor;
}

void
DriftDetector::observe(const DriftObservation &obs)
{
    Entry entry;
    entry.suspect = suspect(obs);
    entry.failures = obs.detectorFailures;
    window_.push_back(entry);
    suspects_ += entry.suspect ? 1 : 0;
    failures_ += entry.failures;
    if (window_.size() > config_.window) {
        const Entry &old = window_.front();
        suspects_ -= old.suspect ? 1 : 0;
        failures_ -= old.failures;
        window_.pop_front();
    }
}

bool
DriftDetector::drifted() const
{
    if (window_.size() < config_.minObservations)
        return false;
    const double n = static_cast<double>(window_.size());
    if (static_cast<double>(suspects_) / n >=
        config_.suspectRateThreshold)
        return true;
    return static_cast<double>(failures_) / n >=
           config_.failureRateThreshold;
}

DriftStats
DriftDetector::stats() const
{
    DriftStats stats;
    stats.observations = window_.size();
    stats.suspects = suspects_;
    if (!window_.empty()) {
        const double n = static_cast<double>(window_.size());
        stats.suspectRate = static_cast<double>(suspects_) / n;
        stats.failureRate = static_cast<double>(failures_) / n;
    }
    return stats;
}

void
DriftDetector::reset()
{
    window_.clear();
    suspects_ = 0;
    failures_ = 0;
}

} // namespace rhmd::pipeline
