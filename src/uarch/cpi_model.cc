/**
 * @file
 * Cycle model implementation.
 */

#include "uarch/cpi_model.hh"

#include <algorithm>

namespace rhmd::uarch
{

CpiModel::CpiModel(const CpiConfig &config)
    : config_(config)
{
}

void
CpiModel::account(const trace::DynInst &inst, const StepOutcome &outcome)
{
    ++instructions_;
    const auto &info = trace::opInfo(inst.op);

    // Issue-limited baseline; long-latency ops are modelled as
    // partially overlapped (half their latency exposed).
    const double base = 1.0 / config_.issueWidth;
    const double latency =
        info.latency > 2 ? static_cast<double>(info.latency) * 0.5 : 0.0;
    double stall = 0.0;
    stall += outcome.dcacheMisses * config_.dcacheMissPenalty;
    stall += outcome.icacheMisses * config_.icacheMissPenalty;
    if (outcome.mispredicted)
        stall += config_.mispredictPenalty;
    if (outcome.unaligned)
        stall += config_.unalignedPenalty;

    cycles_ += std::max(base, latency) + stall;
}

double
CpiModel::cpi() const
{
    if (instructions_ == 0)
        return 0.0;
    return cycles_ / static_cast<double>(instructions_);
}

void
CpiModel::reset()
{
    cycles_ = 0.0;
    instructions_ = 0;
}

} // namespace rhmd::uarch
