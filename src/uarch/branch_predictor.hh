/**
 * @file
 * Branch predictor models (bimodal and gshare), supplying the
 * branch-misprediction events of the Architectural feature family.
 */

#ifndef RHMD_UARCH_BRANCH_PREDICTOR_HH
#define RHMD_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace rhmd::uarch
{

/** Interface for conditional-branch direction predictors. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) const = 0;

    /** Train with the resolved direction. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Clear all state. */
    virtual void reset() = 0;
};

/**
 * Bimodal predictor: a table of 2-bit saturating counters indexed by
 * the low bits of the branch pc.
 */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param table_bits log2 of the counter-table size. */
    explicit BimodalPredictor(std::uint32_t table_bits = 12);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    std::size_t index(std::uint64_t pc) const;

    std::uint32_t tableBits_;
    std::vector<std::uint8_t> counters_;
};

/**
 * Gshare predictor: 2-bit counters indexed by pc xor global branch
 * history.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param table_bits   log2 of the counter-table size.
     * @param history_bits global-history length (<= table_bits).
     */
    explicit GsharePredictor(std::uint32_t table_bits = 12,
                             std::uint32_t history_bits = 12);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;

  private:
    std::size_t index(std::uint64_t pc) const;

    std::uint32_t tableBits_;
    std::uint32_t historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_;
};

} // namespace rhmd::uarch

#endif // RHMD_UARCH_BRANCH_PREDICTOR_HH
