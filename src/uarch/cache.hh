/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Supplies the cache-miss events of the Architectural feature family
 * (the paper collects these from the hardware performance-monitoring
 * unit; we model the unit itself).
 */

#ifndef RHMD_UARCH_CACHE_HH
#define RHMD_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace rhmd::uarch
{

/** Geometry of a cache. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
};

/**
 * A single-level set-associative cache with true-LRU replacement.
 * Tracks hit/miss counts; accesses spanning a line boundary touch
 * every covered line (that is what makes unaligned accesses cost
 * extra in the CPI model).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one line. @return true on hit; on miss the line is
     * filled (allocate-on-miss for both reads and writes).
     */
    bool accessLine(std::uint64_t addr);

    /**
     * Access @p size bytes at @p addr, touching every covered line.
     * @return number of misses among the covered lines.
     */
    std::uint32_t access(std::uint64_t addr, std::uint32_t size);

    /** Invalidate all contents and zero statistics. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const CacheConfig &config() const { return config_; }

    /** Number of sets (derived from the geometry). */
    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::vector<Way> ways_;  ///< numSets_ * assoc, set-major
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace rhmd::uarch

#endif // RHMD_UARCH_CACHE_HH
