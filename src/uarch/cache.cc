/**
 * @file
 * Set-associative LRU cache implementation.
 */

#include "uarch/cache.hh"

#include <bit>

#include "support/logging.hh"

namespace rhmd::uarch
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    fatal_if(config_.lineBytes == 0 ||
             !std::has_single_bit(config_.lineBytes),
             "cache line size must be a power of two");
    fatal_if(config_.assoc == 0, "cache associativity must be positive");
    const std::uint32_t lines = config_.sizeBytes / config_.lineBytes;
    fatal_if(lines == 0 || lines % config_.assoc != 0,
             "cache size must be a multiple of assoc * line size");
    numSets_ = lines / config_.assoc;
    fatal_if(!std::has_single_bit(numSets_),
             "cache set count must be a power of two");
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    ways_.assign(static_cast<std::size_t>(numSets_) * config_.assoc, {});
}

bool
Cache::accessLine(std::uint64_t addr)
{
    ++tick_;
    const std::uint64_t line = addr >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line & (numSets_ - 1));
    const std::uint64_t tag = line >> std::countr_zero(numSets_);

    Way *base = &ways_[static_cast<std::size_t>(set) * config_.assoc];
    Way *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    return false;
}

std::uint32_t
Cache::access(std::uint64_t addr, std::uint32_t size)
{
    if (size == 0)
        size = 1;
    const std::uint64_t first = addr >> lineShift_;
    const std::uint64_t last = (addr + size - 1) >> lineShift_;
    std::uint32_t line_misses = 0;
    for (std::uint64_t line = first; line <= last; ++line) {
        if (!accessLine(line << lineShift_))
            ++line_misses;
    }
    return line_misses;
}

void
Cache::reset()
{
    for (Way &way : ways_)
        way = {};
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace rhmd::uarch
