/**
 * @file
 * Branch predictor implementations.
 */

#include "uarch/branch_predictor.hh"

#include "support/logging.hh"

namespace rhmd::uarch
{

namespace
{

/** Saturating 2-bit counter update. */
void
train(std::uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(std::uint32_t table_bits)
    : tableBits_(table_bits)
{
    fatal_if(table_bits == 0 || table_bits > 24,
             "unreasonable bimodal table size");
    counters_.assign(std::size_t{1} << tableBits_, 1);  // weakly NT
}

std::size_t
BimodalPredictor::index(std::uint64_t pc) const
{
    // Drop the low 2 bits (branch alignment) before indexing.
    return (pc >> 2) & ((std::size_t{1} << tableBits_) - 1);
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return counters_[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    train(counters_[index(pc)], taken);
}

void
BimodalPredictor::reset()
{
    counters_.assign(counters_.size(), 1);
}

GsharePredictor::GsharePredictor(std::uint32_t table_bits,
                                 std::uint32_t history_bits)
    : tableBits_(table_bits), historyBits_(history_bits)
{
    fatal_if(table_bits == 0 || table_bits > 24,
             "unreasonable gshare table size");
    fatal_if(history_bits > table_bits,
             "gshare history cannot exceed table index width");
    counters_.assign(std::size_t{1} << tableBits_, 1);
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    const std::uint64_t mask = (std::uint64_t{1} << tableBits_) - 1;
    const std::uint64_t hist_mask =
        (std::uint64_t{1} << historyBits_) - 1;
    return static_cast<std::size_t>(
        ((pc >> 2) ^ (history_ & hist_mask)) & mask);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    train(counters_[index(pc)], taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::reset()
{
    counters_.assign(counters_.size(), 1);
    history_ = 0;
}

} // namespace rhmd::uarch
