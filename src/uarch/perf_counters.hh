/**
 * @file
 * The performance-monitoring unit model: drives the cache and branch
 * predictor models with the committed instruction stream and counts
 * the architectural events the paper's Architectural feature family
 * collects.
 */

#ifndef RHMD_UARCH_PERF_COUNTERS_HH
#define RHMD_UARCH_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>

#include "trace/execution.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"

namespace rhmd::uarch
{

/** Architectural event identifiers (indices into EventCounts). */
enum class Event : std::uint8_t
{
    Loads,
    Stores,
    CondBranches,
    TakenBranches,
    Mispredicts,
    DCacheMisses,
    ICacheMisses,
    Unaligned,
    Calls,
    Returns,
    Syscalls,
    Atomics,
    NumEvents
};

/** Number of architectural events tracked. */
constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(Event::NumEvents);

/** Display name of an event. */
std::string_view eventName(Event event);

/** Per-window event counters. */
using EventCounts = std::array<std::uint64_t, kNumEvents>;

/**
 * out[e] = cumulative[e] - base[e], saturating at zero. A noisy
 * sensor read can report fewer events than the previous snapshot; a
 * real counter delta never goes negative, so clamp instead of
 * wrapping (the window-boundary rule in FeatureSession).
 */
void saturatingDelta(const EventCounts &cumulative,
                     const EventCounts &base, EventCounts &out);

/**
 * out[e] = double(counts[e]) / insts for all kNumEvents events —
 * the Architectural feature family's count-to-rate conversion,
 * dispatched through the active simd kernel table. Bit-identical on
 * every target: the u64 -> double converts stay scalar and only the
 * independent per-event divides are vectorized.
 */
void eventRates(const EventCounts &counts, double insts, double *out);

/**
 * Mutating hook applied to every counter read on the sensor path.
 * The fault-injection layer (src/runtime/) installs hooks that model
 * hardware-induced read noise, quantized counters, and stuck-at
 * faults; production reads leave the hook empty.
 */
using CounterReadHook = std::function<void(EventCounts &)>;

/** Per-instruction microarchitectural outcome (feeds the CPI model). */
struct StepOutcome
{
    std::uint32_t dcacheMisses = 0;
    std::uint32_t icacheMisses = 0;
    bool mispredicted = false;
    bool unaligned = false;
};

/** Configuration of the modelled monitoring hardware. */
struct PmuConfig
{
    CacheConfig icache{32 * 1024, 8, 64};
    CacheConfig dcache{32 * 1024, 8, 64};
    std::uint32_t predictorTableBits = 12;
    bool useGshare = true;
};

/**
 * The monitoring unit: one instance per executing program. step()
 * consumes each committed instruction, updates the structural models,
 * and bumps the event counters. The feature extractor snapshots and
 * clears the counters at collection-window boundaries.
 */
class PerfMonitor
{
  public:
    explicit PerfMonitor(const PmuConfig &config = {});

    /** Account one committed instruction. */
    StepOutcome step(const trace::DynInst &inst);

    /** Current window's counters, as maintained internally. */
    const EventCounts &counts() const { return counts_; }

    /**
     * Counter snapshot as the sensor path observes it: the raw
     * counts passed through the read hook when one is installed.
     * This is what the feature extractor consumes, so an installed
     * fault model perturbs every downstream feature window.
     */
    EventCounts read() const;

    /** Install (or clear, with {}) the counter-read fault hook. */
    void setReadHook(CounterReadHook hook)
    {
        readHook_ = std::move(hook);
    }

    /** Zero the window counters (structural state persists). */
    void clearCounts() { counts_.fill(0); }

    /** Full reset: counters and structural state. */
    void reset();

  private:
    void bump(Event event, std::uint64_t n = 1);

    PmuConfig config_;
    Cache icache_;
    Cache dcache_;
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    EventCounts counts_{};
    CounterReadHook readHook_;
};

} // namespace rhmd::uarch

#endif // RHMD_UARCH_PERF_COUNTERS_HH
