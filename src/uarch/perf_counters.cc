/**
 * @file
 * Performance-monitoring unit implementation.
 */

#include "uarch/perf_counters.hh"

#include "ml/kernels.hh"
#include "support/logging.hh"

namespace rhmd::uarch
{

void
saturatingDelta(const EventCounts &cumulative, const EventCounts &base,
                EventCounts &out)
{
    for (std::size_t e = 0; e < kNumEvents; ++e)
        out[e] = cumulative[e] >= base[e] ? cumulative[e] - base[e] : 0;
}

void
eventRates(const EventCounts &counts, double insts, double *out)
{
    double widened[kNumEvents];
    for (std::size_t e = 0; e < kNumEvents; ++e)
        widened[e] = static_cast<double>(counts[e]);
    ml::kernels().rateConvertF64(widened, kNumEvents, insts, out);
}

std::string_view
eventName(Event event)
{
    switch (event) {
      case Event::Loads: return "loads";
      case Event::Stores: return "stores";
      case Event::CondBranches: return "cond_branches";
      case Event::TakenBranches: return "taken_branches";
      case Event::Mispredicts: return "mispredicts";
      case Event::DCacheMisses: return "dcache_misses";
      case Event::ICacheMisses: return "icache_misses";
      case Event::Unaligned: return "unaligned";
      case Event::Calls: return "calls";
      case Event::Returns: return "returns";
      case Event::Syscalls: return "syscalls";
      case Event::Atomics: return "atomics";
      case Event::NumEvents: break;
    }
    rhmd_panic("bad event id");
}

PerfMonitor::PerfMonitor(const PmuConfig &config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      bimodal_(config.predictorTableBits),
      gshare_(config.predictorTableBits, config.predictorTableBits)
{
    counts_.fill(0);
}

void
PerfMonitor::bump(Event event, std::uint64_t n)
{
    counts_[static_cast<std::size_t>(event)] += n;
}

StepOutcome
PerfMonitor::step(const trace::DynInst &inst)
{
    StepOutcome outcome;

    // Instruction fetch.
    outcome.icacheMisses = icache_.access(inst.pc, inst.size);
    bump(Event::ICacheMisses, outcome.icacheMisses);

    // Data access.
    if (inst.isLoad || inst.isStore) {
        if (inst.isLoad)
            bump(Event::Loads);
        if (inst.isStore)
            bump(Event::Stores);
        outcome.dcacheMisses = dcache_.access(inst.addr, inst.accessSize);
        bump(Event::DCacheMisses, outcome.dcacheMisses);
        if (inst.accessSize > 1 &&
            (inst.addr % inst.accessSize) != 0) {
            outcome.unaligned = true;
            bump(Event::Unaligned);
        }
    }

    // Control flow.
    if (inst.isCondBranch) {
        bump(Event::CondBranches);
        BranchPredictor &pred = config_.useGshare
            ? static_cast<BranchPredictor &>(gshare_)
            : static_cast<BranchPredictor &>(bimodal_);
        outcome.mispredicted = pred.predict(inst.pc) != inst.taken;
        if (outcome.mispredicted)
            bump(Event::Mispredicts);
        pred.update(inst.pc, inst.taken);
    }
    if (inst.isBranch && inst.taken)
        bump(Event::TakenBranches);

    switch (inst.op) {
      case trace::OpClass::Call:
        bump(Event::Calls);
        break;
      case trace::OpClass::Ret:
        bump(Event::Returns);
        break;
      case trace::OpClass::SystemOp:
        bump(Event::Syscalls);
        break;
      case trace::OpClass::Xchg:
        bump(Event::Atomics);
        break;
      default:
        break;
    }

    return outcome;
}

EventCounts
PerfMonitor::read() const
{
    EventCounts snapshot = counts_;
    if (readHook_)
        readHook_(snapshot);
    return snapshot;
}

void
PerfMonitor::reset()
{
    counts_.fill(0);
    icache_.reset();
    dcache_.reset();
    bimodal_.reset();
    gshare_.reset();
}

} // namespace rhmd::uarch
