/**
 * @file
 * A simple analytic cycle model: converts a committed instruction
 * stream plus its microarchitectural outcomes into estimated cycles.
 * Used to report Fig. 9's dynamic (time) overhead of injected
 * instructions, and by anyone who wants collection windows measured
 * in cycles rather than instructions.
 */

#ifndef RHMD_UARCH_CPI_MODEL_HH
#define RHMD_UARCH_CPI_MODEL_HH

#include <cstdint>

#include "trace/execution.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::uarch
{

/** Penalty/throughput parameters of the modelled core. */
struct CpiConfig
{
    double issueWidth = 2.0;         ///< sustained instructions/cycle
    double dcacheMissPenalty = 20.0; ///< cycles per L1D miss
    double icacheMissPenalty = 12.0; ///< cycles per L1I miss
    double mispredictPenalty = 14.0; ///< cycles per branch mispredict
    double unalignedPenalty = 2.0;   ///< extra cycles per split access
};

/**
 * Accumulates an estimated cycle count. Long-latency opcodes
 * contribute their latency; everything else is bounded by issue
 * width; stall events add their penalties.
 */
class CpiModel
{
  public:
    explicit CpiModel(const CpiConfig &config = {});

    /** Account one instruction and its outcomes. */
    void account(const trace::DynInst &inst, const StepOutcome &outcome);

    /** Estimated cycles so far. */
    double cycles() const { return cycles_; }

    /** Committed instructions so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** Cycles per instruction so far (0 when empty). */
    double cpi() const;

    /** Zero the accumulators. */
    void reset();

  private:
    CpiConfig config_;
    double cycles_ = 0.0;
    std::uint64_t instructions_ = 0;
};

} // namespace rhmd::uarch

#endif // RHMD_UARCH_CPI_MODEL_HH
