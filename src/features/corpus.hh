/**
 * @file
 * Feature corpus: per-program, per-period window features for a
 * whole program population, plus the paper's 60/20/20
 * victim-train / attacker-train / attacker-test split.
 */

#ifndef RHMD_FEATURES_CORPUS_HH
#define RHMD_FEATURES_CORPUS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "features/window.hh"
#include "trace/program.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::features
{

/** All extracted windows of one program. */
struct ProgramFeatures
{
    std::string name;
    bool malware = false;
    std::uint32_t family = 0;

    /** period (instructions) -> completed windows */
    std::map<std::uint32_t, std::vector<RawWindow>> byPeriod;

    const std::vector<RawWindow> &windows(std::uint32_t period) const;
};

/** Extraction parameters. */
struct ExtractConfig
{
    std::vector<std::uint32_t> periods{10000};
    std::uint64_t traceInsts = 120000;  ///< committed per program
    uarch::PmuConfig pmu{};
    /** Mixed into each program's seed for the execution-level RNG. */
    std::uint64_t execSalt = 0x5eedULL;
    /**
     * When true, the trailing partial window of each period is
     * flushed (flagged truncated) instead of discarded, so programs
     * shorter than a period — or not a multiple of it — keep their
     * tail data. Off by default to match the paper's steady-state
     * methodology.
     */
    bool emitPartialWindows = false;
};

/** Feature windows for an entire corpus. */
struct FeatureCorpus
{
    std::vector<ProgramFeatures> programs;
    std::vector<std::uint32_t> periods;

    std::size_t malwareCount() const;
    std::size_t benignCount() const;
};

/** Execute one program and extract its windows. */
ProgramFeatures extractProgram(const trace::Program &program,
                               const ExtractConfig &config);

/** Execute and extract every program of a corpus. */
FeatureCorpus extractCorpus(const std::vector<trace::Program> &programs,
                            const ExtractConfig &config);

/**
 * The paper's data split: 60% victim training, 20% attacker
 * training, 20% attacker testing — stratified so "each set includes
 * a randomly selected subset of malware samples from each type of
 * malware" (we stratify by family for both classes).
 */
struct SplitIndices
{
    std::vector<std::size_t> victimTrain;
    std::vector<std::size_t> attackerTrain;
    std::vector<std::size_t> attackerTest;
};

/** Build the stratified 60/20/20 split. */
SplitIndices stratifiedSplit(const FeatureCorpus &corpus,
                             std::uint64_t seed);

} // namespace rhmd::features

#endif // RHMD_FEATURES_CORPUS_HH
