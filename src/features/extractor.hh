/**
 * @file
 * Single-pass feature extraction: a TraceSink that drives the
 * monitoring-unit model and slices the stream into collection
 * windows for any number of periods simultaneously.
 */

#ifndef RHMD_FEATURES_EXTRACTOR_HH
#define RHMD_FEATURES_EXTRACTOR_HH

#include <cstdint>
#include <vector>

#include "features/window.hh"
#include "trace/execution.hh"
#include "uarch/cpi_model.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::features
{

/**
 * Consumes one program's committed stream and produces RawWindows
 * for every requested collection period in a single pass. Trailing
 * partial windows are discarded, as in the paper's methodology.
 */
class FeatureSession : public trace::TraceSink
{
  public:
    /**
     * @param periods window sizes in instructions (e.g. {5000, 10000});
     *                must be unique and positive.
     * @param pmu     monitoring hardware configuration.
     */
    explicit FeatureSession(std::vector<std::uint32_t> periods,
                            const uarch::PmuConfig &pmu = {});

    void consume(const trace::DynInst &inst) override;

    /** Completed windows for one of the configured periods. */
    const std::vector<RawWindow> &windows(std::uint32_t period) const;

    /** Estimated whole-trace cycles (CPI model). */
    double totalCycles() const { return cpi_.cycles(); }

    /** Total committed instructions consumed. */
    std::uint64_t totalInsts() const { return totalInsts_; }

    /**
     * The monitoring unit, exposed so a fault model can install a
     * counter-read hook (see uarch::CounterReadHook).
     */
    uarch::PerfMonitor &monitor() { return monitor_; }

  private:
    struct PeriodAccum
    {
        std::uint32_t period = 0;
        RawWindow current;
        std::vector<RawWindow> done;
        uarch::EventCounts eventBase{};  ///< cumulative snapshot
        double cycleBase = 0.0;
        std::uint64_t injectedInWindow = 0;
    };

    uarch::PerfMonitor monitor_;
    uarch::CpiModel cpi_;
    std::vector<PeriodAccum> accums_;
    bool haveLastAddr_ = false;
    std::uint64_t lastAddr_ = 0;
    std::uint64_t totalInsts_ = 0;
};

} // namespace rhmd::features

#endif // RHMD_FEATURES_EXTRACTOR_HH
