/**
 * @file
 * Single-pass feature extraction: a TraceSink that drives the
 * monitoring-unit model and slices the stream into collection
 * windows for any number of periods simultaneously.
 */

#ifndef RHMD_FEATURES_EXTRACTOR_HH
#define RHMD_FEATURES_EXTRACTOR_HH

#include <cstdint>
#include <vector>

#include "features/window.hh"
#include "trace/execution.hh"
#include "uarch/cpi_model.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::features
{

/**
 * Consumes one program's committed stream and produces RawWindows
 * for every requested collection period in a single pass. Trailing
 * partial windows are discarded by default, as in the paper's
 * steady-state methodology; call finish() to flush them as windows
 * flagged truncated (short programs and traces whose length is not a
 * multiple of the period otherwise lose their tail data).
 */
class FeatureSession : public trace::TraceSink
{
  public:
    /**
     * @param periods window sizes in instructions (e.g. {5000, 10000});
     *                must be unique and positive.
     * @param pmu     monitoring hardware configuration.
     */
    explicit FeatureSession(std::vector<std::uint32_t> periods,
                            const uarch::PmuConfig &pmu = {});

    void consume(const trace::DynInst &inst) override;

    /**
     * Flush the in-progress partial window of every period as a
     * final window with truncated = true (periods whose stream ended
     * exactly on a boundary emit nothing). Idempotent; call after
     * the trace ends and before reading windows()/takeWindows().
     */
    void finish();

    /** Completed windows for one of the configured periods. */
    const std::vector<RawWindow> &windows(std::uint32_t period) const;

    /**
     * Move the completed windows of @p period out of the session
     * (the corpus-extraction hot loop uses this instead of deep-
     * copying every program's windows). The session's vector for
     * that period is left empty.
     */
    std::vector<RawWindow> takeWindows(std::uint32_t period);

    /** Estimated whole-trace cycles (CPI model). */
    double totalCycles() const { return cpi_.cycles(); }

    /** Total committed instructions consumed. */
    std::uint64_t totalInsts() const { return totalInsts_; }

    /**
     * The monitoring unit, exposed so a fault model can install a
     * counter-read hook (see uarch::CounterReadHook).
     */
    uarch::PerfMonitor &monitor() { return monitor_; }

  private:
    struct PeriodAccum
    {
        std::uint32_t period = 0;
        RawWindow current;
        std::vector<RawWindow> done;
        uarch::EventCounts eventBase{};  ///< cumulative snapshot
        double cycleBase = 0.0;
        std::uint64_t injectedInWindow = 0;
    };

    /** Finalize the in-progress window of @p accum and push it. */
    void closeWindow(PeriodAccum &accum, bool truncated);

    uarch::PerfMonitor monitor_;
    uarch::CpiModel cpi_;
    std::vector<PeriodAccum> accums_;
    bool haveLastAddr_ = false;
    std::uint64_t lastAddr_ = 0;
    std::uint64_t totalInsts_ = 0;
};

} // namespace rhmd::features

#endif // RHMD_FEATURES_EXTRACTOR_HH
