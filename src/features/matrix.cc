/**
 * @file
 * FeatureMatrix implementation.
 */

#include "features/matrix.hh"

#include "support/logging.hh"

namespace rhmd::features
{

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    panic_if(cols == 0 && rows != 0,
             "a feature matrix with rows needs at least one column");
}

std::vector<double>
FeatureMatrix::rowVector(std::size_t r) const
{
    panic_if(r >= rows_, "matrix row ", r, " out of range (", rows_,
             " rows)");
    return std::vector<double>(row(r), row(r) + cols_);
}

void
FeatureMatrix::buildSoa()
{
    if (rows_ == 0) {
        paddedRows_ = 0;
        soa_.clear();
        return;
    }
    const std::size_t pad = simd::kMaxLanes;
    paddedRows_ = (rows_ + pad - 1) / pad * pad;
    soa_.assign(paddedRows_ * cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *src = row(r);
        for (std::size_t j = 0; j < cols_; ++j)
            soa_[j * paddedRows_ + r] = src[j];
    }
}

const double *
FeatureMatrix::col(std::size_t j) const
{
    panic_if(!hasSoa(),
             "SoA column requested before buildSoa() (", rows_,
             " rows)");
    panic_if(j >= cols_, "matrix column ", j, " out of range (", cols_,
             " cols)");
    return soa_.data() + j * paddedRows_;
}

} // namespace rhmd::features
