/**
 * @file
 * FeatureMatrix implementation.
 */

#include "features/matrix.hh"

#include "support/logging.hh"

namespace rhmd::features
{

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    panic_if(cols == 0 && rows != 0,
             "a feature matrix with rows needs at least one column");
}

std::vector<double>
FeatureMatrix::rowVector(std::size_t r) const
{
    panic_if(r >= rows_, "matrix row ", r, " out of range (", rows_,
             " rows)");
    return std::vector<double>(row(r), row(r) + cols_);
}

} // namespace rhmd::features
