/**
 * @file
 * Single-pass multi-period feature extraction implementation.
 */

#include "features/extractor.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rhmd::features
{

FeatureSession::FeatureSession(std::vector<std::uint32_t> periods,
                               const uarch::PmuConfig &pmu)
    : monitor_(pmu)
{
    fatal_if(periods.empty(), "FeatureSession needs at least one period");
    std::sort(periods.begin(), periods.end());
    fatal_if(std::adjacent_find(periods.begin(), periods.end()) !=
                 periods.end(),
             "FeatureSession periods must be unique");
    accums_.resize(periods.size());
    for (std::size_t i = 0; i < periods.size(); ++i) {
        fatal_if(periods[i] == 0, "collection period must be positive");
        accums_[i].period = periods[i];
    }
}

void
FeatureSession::consume(const trace::DynInst &inst)
{
    const uarch::StepOutcome outcome = monitor_.step(inst);
    cpi_.account(inst, outcome);
    ++totalInsts_;

    // Memory-delta bin, computed once and shared by every period.
    std::size_t delta_bin = kNumMemBins;  // sentinel: no access
    if (inst.isLoad || inst.isStore) {
        if (haveLastAddr_)
            delta_bin = memDeltaBin(lastAddr_, inst.addr);
        lastAddr_ = inst.addr;
        haveLastAddr_ = true;
    }

    const auto op_index = static_cast<std::size_t>(inst.op);
    for (PeriodAccum &accum : accums_) {
        RawWindow &win = accum.current;
        ++win.opcodeCounts[op_index];
        if (delta_bin < kNumMemBins)
            ++win.memDeltaBins[delta_bin];
        if (inst.injected)
            ++accum.injectedInWindow;
        if (++win.instCount < accum.period)
            continue;
        closeWindow(accum, /*truncated=*/false);
    }
}

void
FeatureSession::closeWindow(PeriodAccum &accum, bool truncated)
{
    RawWindow &win = accum.current;
    // Window boundary: architectural events and cycles are the
    // cumulative monitor/CPI state minus the previous snapshot.
    // read() routes through the counter fault hook (if any), so
    // sensor-path noise lands in the extracted windows.
    const uarch::EventCounts cumulative = monitor_.read();
    uarch::saturatingDelta(cumulative, accum.eventBase, win.events);
    accum.eventBase = cumulative;
    win.cycles = cpi_.cycles() - accum.cycleBase;
    accum.cycleBase = cpi_.cycles();
    win.injectedFrac =
        static_cast<double>(accum.injectedInWindow) /
        static_cast<double>(win.instCount);
    accum.injectedInWindow = 0;
    win.truncated = truncated;

    accum.done.push_back(win);
    win = RawWindow{};
}

void
FeatureSession::finish()
{
    for (PeriodAccum &accum : accums_) {
        if (accum.current.instCount == 0)
            continue;  // the stream ended exactly on a boundary
        closeWindow(accum, /*truncated=*/true);
    }
}

const std::vector<RawWindow> &
FeatureSession::windows(std::uint32_t period) const
{
    for (const PeriodAccum &accum : accums_) {
        if (accum.period == period)
            return accum.done;
    }
    rhmd_panic("period ", period, " was not configured");
}

std::vector<RawWindow>
FeatureSession::takeWindows(std::uint32_t period)
{
    for (PeriodAccum &accum : accums_) {
        if (accum.period == period)
            return std::move(accum.done);
    }
    rhmd_panic("period ", period, " was not configured");
}

} // namespace rhmd::features
