/**
 * @file
 * Window helpers.
 */

#include "features/window.hh"

#include <bit>

namespace rhmd::features
{

std::size_t
memDeltaBin(std::uint64_t prev_addr, std::uint64_t addr)
{
    const std::uint64_t delta =
        addr > prev_addr ? addr - prev_addr : prev_addr - addr;
    if (delta == 0)
        return 0;
    const std::size_t bin = std::bit_width(delta);  // 1 + floor(log2)
    return bin < kNumMemBins ? bin : kNumMemBins - 1;
}

} // namespace rhmd::features
