/**
 * @file
 * Corpus extraction and splitting implementation.
 */

#include "features/corpus.hh"

#include <map>

#include "features/extractor.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/tracing.hh"
#include "trace/execution.hh"

namespace rhmd::features
{

namespace
{

support::Counter &
programsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "corpus.programs", "programs run through feature extraction");
    return c;
}

support::Counter &
windowsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "corpus.windows", "feature windows extracted, all periods");
    return c;
}

} // namespace

const std::vector<RawWindow> &
ProgramFeatures::windows(std::uint32_t period) const
{
    const auto it = byPeriod.find(period);
    panic_if(it == byPeriod.end(), "program '", name,
             "' has no windows for period ", period);
    return it->second;
}

std::size_t
FeatureCorpus::malwareCount() const
{
    std::size_t count = 0;
    for (const ProgramFeatures &prog : programs)
        count += prog.malware ? 1 : 0;
    return count;
}

std::size_t
FeatureCorpus::benignCount() const
{
    return programs.size() - malwareCount();
}

ProgramFeatures
extractProgram(const trace::Program &program, const ExtractConfig &config)
{
    FeatureSession session(config.periods, config.pmu);
    trace::Executor executor(program, program.seed ^ config.execSalt);
    executor.run(config.traceInsts, session);
    if (config.emitPartialWindows)
        session.finish();

    ProgramFeatures out;
    out.name = program.name;
    out.malware = program.malware;
    out.family = program.family;
    std::uint64_t n_windows = 0;
    for (std::uint32_t period : config.periods) {
        // Move the windows out of the session: programs with many
        // windows per period would otherwise be deep-copied here.
        out.byPeriod[period] = session.takeWindows(period);
        n_windows += out.byPeriod[period].size();
    }
    programsCounter().add(1);
    windowsCounter().add(n_windows);
    return out;
}

FeatureCorpus
extractCorpus(const std::vector<trace::Program> &programs,
              const ExtractConfig &config)
{
    const support::ScopedSpan span("extract_corpus");
    FeatureCorpus corpus;
    corpus.periods = config.periods;
    // Each program executes with its own (program.seed ^ execSalt)
    // stream, so extraction is index-independent and parallelizes
    // with results collected in program order.
    corpus.programs = support::parallelMap<ProgramFeatures>(
        programs.size(), [&](std::size_t i) {
            return extractProgram(programs[i], config);
        });
    return corpus;
}

SplitIndices
stratifiedSplit(const FeatureCorpus &corpus, std::uint64_t seed)
{
    // Group program indices by (class, family) so each stratum is
    // spread proportionally over the three sets.
    std::map<std::pair<bool, std::uint32_t>, std::vector<std::size_t>>
        strata;
    for (std::size_t i = 0; i < corpus.programs.size(); ++i) {
        const ProgramFeatures &prog = corpus.programs[i];
        strata[{prog.malware, prog.family}].push_back(i);
    }

    Rng rng(seed);
    SplitIndices split;

    // Assign each program to the subset with the largest deficit
    // against the global 60/20/20 target. Walking the strata in
    // order keeps every (class, family) stratum spread across the
    // subsets, while the global deficit tracking keeps the overall
    // proportions exact even when strata are tiny.
    const double targets[3] = {0.6, 0.2, 0.2};
    std::size_t counts[3] = {0, 0, 0};
    std::size_t assigned = 0;
    std::vector<std::size_t> *subsets[3] = {&split.victimTrain,
                                            &split.attackerTrain,
                                            &split.attackerTest};
    for (auto &[key, members] : strata) {
        const std::vector<std::size_t> perm =
            rng.permutation(members.size());
        for (std::size_t i : perm) {
            ++assigned;
            std::size_t best = 0;
            double best_deficit = -1e18;
            for (std::size_t s = 0; s < 3; ++s) {
                const double deficit =
                    targets[s] * static_cast<double>(assigned) -
                    static_cast<double>(counts[s]);
                if (deficit > best_deficit) {
                    best_deficit = deficit;
                    best = s;
                }
            }
            subsets[best]->push_back(members[i]);
            ++counts[best];
        }
    }
    return split;
}

} // namespace rhmd::features
