/**
 * @file
 * Feature specification implementation.
 */

#include "features/spec.hh"

#include <algorithm>
#include <cmath>

#include "ml/kernels.hh"
#include "support/logging.hh"

namespace rhmd::features
{

const char *
featureKindName(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::Instructions:
        return "instructions";
      case FeatureKind::Memory:
        return "memory";
      case FeatureKind::Architectural:
        return "architectural";
    }
    rhmd_panic("bad feature kind");
}

std::size_t
FeatureSpec::dim() const
{
    switch (kind) {
      case FeatureKind::Instructions:
        return opcodeSel.size();
      case FeatureKind::Memory:
        return kNumMemBins;
      case FeatureKind::Architectural:
        return uarch::kNumEvents;
    }
    rhmd_panic("bad feature kind");
}

std::vector<double>
FeatureSpec::toVector(const RawWindow &window) const
{
    std::vector<double> out(dim(), 0.0);
    appendTo(window, out.data());
    return out;
}

void
FeatureSpec::appendTo(const RawWindow &window, double *out) const
{
    const double insts =
        std::max<double>(1.0, static_cast<double>(window.instCount));
    switch (kind) {
      case FeatureKind::Instructions: {
        panic_if(opcodeSel.empty(),
                 "Instructions spec has no selected opcodes; run "
                 "selectTopDeltaOpcodes first");
        for (std::size_t sel : opcodeSel) {
            panic_if(sel >= trace::kNumOpClasses,
                     "bad opcode selection index");
            *out++ = window.opcodeCounts[sel] / insts;
        }
        return;
      }
      case FeatureKind::Memory: {
        // Contiguous u32 bins -> per-instruction rates, through the
        // active simd kernel (bit-identical to the scalar loop).
        ml::kernels().rateConvertU32(window.memDeltaBins.data(),
                                     kNumMemBins, insts, out);
        return;
      }
      case FeatureKind::Architectural: {
        uarch::eventRates(window.events, insts, out);
        return;
      }
    }
    rhmd_panic("bad feature kind");
}

std::string
FeatureSpec::describe() const
{
    std::string label = featureKindName(kind);
    label += "@";
    if (period % 1000 == 0) {
        label += std::to_string(period / 1000);
        label += "k";
    } else {
        label += std::to_string(period);
    }
    return label;
}

std::vector<std::size_t>
selectTopDeltaOpcodes(const std::vector<const RawWindow *> &windows,
                      const std::vector<bool> &labels, std::size_t k)
{
    panic_if(windows.size() != labels.size(),
             "selectTopDeltaOpcodes: size mismatch");
    fatal_if(k == 0 || k > trace::kNumOpClasses,
             "opcode selection size must be in [1, ",
             trace::kNumOpClasses, "]");

    std::array<double, trace::kNumOpClasses> malware_mean{};
    std::array<double, trace::kNumOpClasses> benign_mean{};
    std::size_t n_malware = 0;
    std::size_t n_benign = 0;

    for (std::size_t i = 0; i < windows.size(); ++i) {
        const RawWindow &window = *windows[i];
        const double insts = std::max<double>(
            1.0, static_cast<double>(window.instCount));
        auto &accum = labels[i] ? malware_mean : benign_mean;
        (labels[i] ? n_malware : n_benign) += 1;
        ml::kernels().rateAccumulateU32(window.opcodeCounts.data(),
                                        trace::kNumOpClasses, insts,
                                        accum.data());
    }
    fatal_if(n_malware == 0 || n_benign == 0,
             "opcode selection requires both classes in training data");

    std::vector<std::pair<double, std::size_t>> deltas;
    deltas.reserve(trace::kNumOpClasses);
    for (std::size_t op = 0; op < trace::kNumOpClasses; ++op) {
        const double delta =
            std::abs(malware_mean[op] / static_cast<double>(n_malware) -
                     benign_mean[op] / static_cast<double>(n_benign));
        deltas.emplace_back(delta, op);
    }
    std::sort(deltas.begin(), deltas.end(), [](auto &a, auto &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;  // deterministic tie-break
    });

    std::vector<std::size_t> selected;
    selected.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
        selected.push_back(deltas[i].second);
    return selected;
}

std::vector<double>
combinedVector(const std::vector<FeatureSpec> &specs,
               const RawWindow &window)
{
    std::vector<double> out(combinedDim(specs), 0.0);
    fillCombined(specs, window, out.data());
    return out;
}

void
fillCombined(const std::vector<FeatureSpec> &specs,
             const RawWindow &window, double *out)
{
    for (const FeatureSpec &spec : specs) {
        spec.appendTo(window, out);
        out += spec.dim();
    }
}

std::size_t
combinedDim(const std::vector<FeatureSpec> &specs)
{
    std::size_t total = 0;
    for (const FeatureSpec &spec : specs)
        total += spec.dim();
    return total;
}

} // namespace rhmd::features
