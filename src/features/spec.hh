/**
 * @file
 * Feature specifications: which family a detector uses, at which
 * collection period, and (for the Instructions family) which opcode
 * classes were selected — plus the conversion from raw windows to
 * numeric feature vectors.
 */

#ifndef RHMD_FEATURES_SPEC_HH
#define RHMD_FEATURES_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "features/window.hh"

namespace rhmd::features
{

/** The paper's three feature families. */
enum class FeatureKind : std::uint8_t
{
    Instructions,  ///< top-K delta opcode frequencies
    Memory,        ///< address-delta histogram
    Architectural, ///< performance-counter event rates
};

/** Display name of a feature family. */
const char *featureKindName(FeatureKind kind);

/**
 * A complete feature specification. Detectors own one; attackers
 * hypothesize them during reverse-engineering.
 */
struct FeatureSpec
{
    FeatureKind kind = FeatureKind::Instructions;
    std::uint32_t period = 10000;  ///< collection window, instructions

    /**
     * Instructions family: indices of the selected opcode classes
     * (the paper tracks "the instructions that show the most
     * different frequency between normal programs and malware in
     * the training set").
     */
    std::vector<std::size_t> opcodeSel;

    /** Dimensionality of vectors this spec produces. */
    std::size_t dim() const;

    /** Convert one raw window into the numeric feature vector. */
    std::vector<double> toVector(const RawWindow &window) const;

    /**
     * Write this spec's dim() feature values for @p window into
     * @p out. The allocation-free form of toVector() used by the
     * batch scoring path; values and computation order are identical.
     */
    void appendTo(const RawWindow &window, double *out) const;

    /** Human-readable description, e.g. "instructions@10k". */
    std::string describe() const;

    /**
     * Combined (union) spec used by the paper's "combined"
     * reverse-engineering attacker: concatenates the vectors of
     * several specs. Implemented as a free function below since the
     * result is not itself a FeatureSpec.
     */
};

/**
 * Rank opcode classes by |mean frequency in malware - mean frequency
 * in benign| over the given training windows and return the top @p k
 * indices (descending delta). This is the paper's Instructions
 * feature-selection step.
 *
 * @param windows  training windows
 * @param labels   per-window ground truth (true = malware)
 * @param k        number of opcode classes to keep
 */
std::vector<std::size_t> selectTopDeltaOpcodes(
    const std::vector<const RawWindow *> &windows,
    const std::vector<bool> &labels, std::size_t k);

/** Concatenate the vectors of several specs for one window. */
std::vector<double> combinedVector(const std::vector<FeatureSpec> &specs,
                                   const RawWindow &window);

/**
 * Write the combined vector of @p specs for one window into @p out
 * (combinedDim(specs) doubles), without allocating.
 */
void fillCombined(const std::vector<FeatureSpec> &specs,
                  const RawWindow &window, double *out);

/** Total dimensionality of a combined spec list. */
std::size_t combinedDim(const std::vector<FeatureSpec> &specs);

} // namespace rhmd::features

#endif // RHMD_FEATURES_SPEC_HH
