/**
 * @file
 * Raw per-window measurements collected over one detection period.
 *
 * A "window" is the paper's collection period: a fixed number of
 * committed instructions (typically 10K) over which the monitoring
 * hardware accumulates counts, after which the detector classifies
 * and the counters restart. RawWindow keeps everything all three
 * feature families need, so one execution pass serves any
 * feature/period combination.
 */

#ifndef RHMD_FEATURES_WINDOW_HH
#define RHMD_FEATURES_WINDOW_HH

#include <array>
#include <cstdint>

#include "trace/isa.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::features
{

/** Number of address-delta histogram bins (log2 magnitude). */
constexpr std::size_t kNumMemBins = 20;

/**
 * Bin index of the distance between two consecutive data addresses:
 * bin 0 is delta 0, bin k covers [2^(k-1), 2^k) for k >= 1, with the
 * final bin absorbing everything larger.
 */
std::size_t memDeltaBin(std::uint64_t prev_addr, std::uint64_t addr);

/** Raw measurements of one collection window. */
struct RawWindow
{
    /** Committed-instruction histogram by opcode class. */
    std::array<std::uint32_t, trace::kNumOpClasses> opcodeCounts{};

    /** Consecutive-access address-delta histogram. */
    std::array<std::uint32_t, kNumMemBins> memDeltaBins{};

    /** Architectural event counts. */
    uarch::EventCounts events{};

    /** Window length in committed instructions. */
    std::uint64_t instCount = 0;

    /** Estimated cycles the window took (CPI model). */
    double cycles = 0.0;

    /** Fraction of this window's instructions that were injected. */
    double injectedFrac = 0.0;

    /**
     * True when this is a partial tail window emitted by
     * FeatureSession::finish() (instCount < the collection period).
     * Full windows from the paper's steady-state methodology are
     * never truncated.
     */
    bool truncated = false;
};

} // namespace rhmd::features

#endif // RHMD_FEATURES_WINDOW_HH
