/**
 * @file
 * Contiguous feature matrix for batched scoring: row-major rows plus
 * an optional padded column-major (SoA) view.
 *
 * The per-window scoring path hands every classifier a fresh
 * std::vector<double>, which is fine for one window but allocates and
 * pointer-chases per row when a batch of requests is scored together.
 * FeatureMatrix lays a whole batch out as one contiguous row-major
 * block so the ml scoreBatch() implementations can walk rows with a
 * plain pointer loop while keeping the exact per-row accumulation
 * order of the serial path — batch scores must stay bit-identical to
 * score() for the determinism gates.
 *
 * buildSoa() adds the structure-of-arrays view the vector kernels
 * (src/ml/kernels.hh) consume: each feature column is a contiguous
 * run of paddedRows() doubles, with rows padded up to a multiple of
 * simd::kMaxLanes so any lane width can run full vectors over the
 * tail. Padding rows are zero-filled and are NOT windows: kernels
 * may compute garbage lanes over them, but no score or decision for
 * a padding row ever leaves the kernel — callers read exactly
 * rows() outputs (DESIGN.md section 14).
 */

#ifndef RHMD_FEATURES_MATRIX_HH
#define RHMD_FEATURES_MATRIX_HH

#include <cstddef>
#include <vector>

#include "support/simd.hh"

namespace rhmd::features
{

/** Dense row-major matrix of feature vectors (rows = windows). */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    /** A zero-initialized rows x cols matrix. */
    FeatureMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0; }

    /** Mutable pointer to row @p r (cols() contiguous doubles). */
    double *row(std::size_t r) { return data_.data() + r * cols_; }

    /** Const pointer to row @p r. */
    const double *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Copy row @p r out into an owning vector (serial fallback). */
    std::vector<double> rowVector(std::size_t r) const;

    /** The whole backing block, rows * cols doubles. */
    const std::vector<double> &data() const { return data_; }

    /**
     * Materialize (or refresh) the padded column-major view from the
     * current row-major contents. Call after the rows are fully
     * filled; mutating rows afterwards leaves the view stale until
     * the next buildSoa(). Idempotent.
     */
    void buildSoa();

    /** True once buildSoa() has run (also true for an empty matrix). */
    bool hasSoa() const { return rows_ == 0 || !soa_.empty(); }

    /**
     * Row count of the SoA view: rows() rounded up to a multiple of
     * simd::kMaxLanes (0 for an empty matrix). Kernel output buffers
     * are sized to this so full-width stores never trample memory,
     * but entries past rows() are padding, never results.
     */
    std::size_t paddedRows() const { return paddedRows_; }

    /**
     * Column @p j of the SoA view: paddedRows() contiguous doubles,
     * zero-filled past rows(). Panics unless buildSoa() has run.
     */
    const double *col(std::size_t j) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
    std::size_t paddedRows_ = 0;
    std::vector<double> soa_;
};

} // namespace rhmd::features

#endif // RHMD_FEATURES_MATRIX_HH
