/**
 * @file
 * Contiguous row-major feature matrix for batched scoring.
 *
 * The per-window scoring path hands every classifier a fresh
 * std::vector<double>, which is fine for one window but allocates and
 * pointer-chases per row when a batch of requests is scored together.
 * FeatureMatrix lays a whole batch out as one contiguous row-major
 * block so the ml scoreBatch() implementations can walk rows with a
 * plain pointer loop (cache-friendly, auto-vectorizable) while
 * keeping the exact per-row accumulation order of the serial path —
 * batch scores must stay bit-identical to score() for the
 * determinism gates.
 */

#ifndef RHMD_FEATURES_MATRIX_HH
#define RHMD_FEATURES_MATRIX_HH

#include <cstddef>
#include <vector>

namespace rhmd::features
{

/** Dense row-major matrix of feature vectors (rows = windows). */
class FeatureMatrix
{
  public:
    FeatureMatrix() = default;

    /** A zero-initialized rows x cols matrix. */
    FeatureMatrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0; }

    /** Mutable pointer to row @p r (cols() contiguous doubles). */
    double *row(std::size_t r) { return data_.data() + r * cols_; }

    /** Const pointer to row @p r. */
    const double *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Copy row @p r out into an owning vector (serial fallback). */
    std::vector<double> rowVector(std::size_t r) const;

    /** The whole backing block, rows * cols doubles. */
    const std::vector<double> &data() const { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace rhmd::features

#endif // RHMD_FEATURES_MATRIX_HH
