/**
 * @file
 * CSV emitter implementation.
 */

#include "support/csv.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace rhmd
{

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "CsvWriter requires at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "CSV row has ", cells.size(), " cells, expected ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::str() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << escape(cells[c]);
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

bool
CsvWriter::write(const std::string &path) const
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot open CSV output file: " + path);
        return false;
    }
    file << str();
    return static_cast<bool>(file);
}

} // namespace rhmd
