/**
 * @file
 * Scoped tracing and snapshot writing implementation.
 */

#include "support/tracing.hh"

#include <fstream>
#include <vector>

#include "support/logging.hh"

namespace rhmd::support
{

namespace
{

/** Span-name stack of the calling thread. */
thread_local std::vector<std::string> tlsSpanStack;

} // namespace

TraceRegistry &
TraceRegistry::instance()
{
    static TraceRegistry registry;
    return registry;
}

void
TraceRegistry::record(const std::string &path, double seconds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    SpanStats &stats = spans_[path];
    stats.count += 1;
    stats.seconds += seconds;
}

std::map<std::string, SpanStats>
TraceRegistry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::string
TraceRegistry::toJsonArray() const
{
    const std::map<std::string, SpanStats> spans = snapshot();
    std::string out = "[";
    bool first = true;
    for (const auto &[path, stats] : spans) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"path\": \"" + jsonEscape(path) +
               "\", \"count\": " + std::to_string(stats.count) +
               ", \"seconds\": " + formatMetricValue(stats.seconds) +
               "}";
    }
    out += first ? "]" : "\n  ]";
    return out;
}

std::string
TraceRegistry::toText() const
{
    // Paths sort so that every parent precedes its children; depth is
    // the number of separators.
    const std::map<std::string, SpanStats> spans = snapshot();
    std::string out;
    for (const auto &[path, stats] : spans) {
        std::size_t depth = 0;
        std::size_t last = 0;
        for (std::size_t i = 0; i < path.size(); ++i) {
            if (path[i] == '/') {
                ++depth;
                last = i + 1;
            }
        }
        out += std::string(depth * 2, ' ');
        out += path.substr(last);
        out += ": " + std::to_string(stats.count) + " call" +
               (stats.count == 1 ? "" : "s") + ", " +
               formatMetricValue(stats.seconds) + "s\n";
    }
    return out;
}

void
TraceRegistry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

ScopedSpan::ScopedSpan(std::string_view name)
    : start_(std::chrono::steady_clock::now())
{
    panic_if(name.empty(), "span names must be non-empty");
    panic_if(name.find('/') != std::string_view::npos,
             "span name '", name, "' must not contain '/'");
    tlsSpanStack.emplace_back(name);
}

ScopedSpan::~ScopedSpan()
{
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::string path;
    for (const std::string &name : tlsSpanStack) {
        if (!path.empty())
            path += '/';
        path += name;
    }
    tlsSpanStack.pop_back();
    TraceRegistry::instance().record(path, seconds);
}

std::string
observabilityJson(const RunManifest &manifest, bool include_timing)
{
    std::string out = "{\n";
    out += "  \"manifest\": " + manifest.toJson() + ",\n";
    out += "  \"metrics\": " +
           metrics().toJsonArray(include_timing);
    if (include_timing) {
        out += ",\n  \"spans\": " +
               TraceRegistry::instance().toJsonArray();
    }
    out += "\n}\n";
    return out;
}

bool
writeObservabilitySnapshot(const std::string &dir,
                           const std::string &name,
                           const RunManifest &manifest)
{
    const std::string base = dir + "/METRICS_" + name;
    {
        std::ofstream out(base + ".json");
        if (!out) {
            warn("cannot write " + base + ".json");
            return false;
        }
        out << observabilityJson(manifest);
    }
    {
        std::ofstream out(base + ".prom");
        if (!out) {
            warn("cannot write " + base + ".prom");
            return false;
        }
        out << metrics().toPrometheus();
    }
    return true;
}

} // namespace rhmd::support
