/**
 * @file
 * Bounded multi-producer multi-consumer queue for the detection
 * service.
 *
 * The serving path needs backpressure with an explicit shedding
 * decision at the admission boundary: a full queue must reject the
 * request *now* (so the caller gets Unavailable instead of unbounded
 * latency), while consumers block until work or shutdown arrives.
 * tryPush() is therefore non-blocking and push() blocking; both fail
 * once the queue is closed so producers and consumers drain cleanly
 * during shutdown.
 */

#ifndef RHMD_SUPPORT_BOUNDED_QUEUE_HH
#define RHMD_SUPPORT_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace rhmd::support
{

/**
 * Mutex-and-condvar bounded FIFO. All members are thread-safe; the
 * queue never copies elements (move in, move out), so promise-bearing
 * request types work naturally.
 */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued elements; must be positive. */
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        fatal_if(capacity_ == 0, "BoundedQueue capacity must be > 0");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Non-blocking enqueue: false when the queue is full or closed
     * (the shedding path — the caller owns @p item again and decides
     * what to tell its client). On success, @p depth_out (when
     * non-null) receives the depth including this item, so callers
     * can track queue pressure without re-locking.
     */
    bool
    tryPush(T &&item, std::size_t *depth_out = nullptr)
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
            if (depth_out != nullptr)
                *depth_out = items_.size();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Non-blocking enqueue that may reclaim dead capacity: when the
     * queue is full, elements for which @p expired returns true are
     * moved from the front into @p evicted (oldest first) until space
     * opens up. Returns false — with @p item intact and @p evicted
     * possibly non-empty — when the queue is closed or still full
     * after eviction. The caller owns the evicted elements and
     * decides what to tell their clients (the serving layer sheds
     * them under its deadline counter rather than letting expired
     * work occupy capacity that live requests are rejected for).
     */
    template <typename Expired>
    bool
    tryPushEvicting(T &&item, Expired &&expired,
                    std::vector<T> &evicted,
                    std::size_t *depth_out = nullptr)
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return false;
            while (items_.size() >= capacity_ &&
                   expired(items_.front())) {
                evicted.push_back(std::move(items_.front()));
                items_.pop_front();
            }
            if (items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
            if (depth_out != nullptr)
                *depth_out = items_.size();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking enqueue: waits for space, returns false only when the
     * queue was closed before the item could be accepted.
     */
    bool
    push(T &&item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking batch dequeue: waits until at least one element is
     * available (or the queue is closed and empty), then moves up to
     * @p max_batch elements into @p out (cleared first). Returns the
     * number taken; 0 means closed-and-drained, the consumer's signal
     * to exit.
     */
    std::size_t
    popBatch(std::vector<T> &out, std::size_t max_batch)
    {
        fatal_if(max_batch == 0, "popBatch needs max_batch > 0");
        out.clear();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock, [this] {
                return closed_ || !items_.empty();
            });
            while (!items_.empty() && out.size() < max_batch) {
                out.push_back(std::move(items_.front()));
                items_.pop_front();
            }
        }
        if (!out.empty())
            notFull_.notify_all();
        return out.size();
    }

    /**
     * Close the queue: pending elements stay poppable, further
     * pushes fail, and blocked consumers wake once it drains.
     */
    void
    close()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Instantaneous depth (racy by nature; metrics only). */
    std::size_t
    size() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace rhmd::support

#endif // RHMD_SUPPORT_BOUNDED_QUEUE_HH
