/**
 * @file
 * Deterministic parallel execution for the experiment pipeline.
 *
 * Every paper experiment is embarrassingly parallel across programs,
 * detectors, and trials, but all results must stay seeded-RNG
 * reproducible: an N-thread run has to be bit-identical to the
 * 1-thread run. This layer provides the pieces that make that hold:
 *
 *  - ThreadPool: a fixed set of workers fed from a bounded task
 *    queue. No work stealing — tasks are claimed from a shared
 *    index counter, so scheduling order never influences results.
 *    With one thread (or hardware_concurrency() == 0, or
 *    RHMD_THREADS=1) the pool degrades to inline serial execution,
 *    which keeps sanitizer and valgrind runs debuggable.
 *
 *  - parallelMap / parallelFor: index-space loops whose results are
 *    merged in *index order* regardless of completion order (ordered
 *    reduction). A Status-returning body cancels outstanding work on
 *    the first error; the error reported is the one with the lowest
 *    index, so even failures are deterministic.
 *
 *  - SplitRng (see support/rng.hh): derives an independent stream
 *    from (root seed, task index), so per-task randomness does not
 *    depend on which thread ran the task or in what order.
 *
 * The determinism contract (DESIGN.md §9): a parallel loop body may
 * only read shared state, write its own index's slot, and draw from
 * an Rng derived from the task index. Detectors that consume
 * switching randomness sequentially (Rhmd::decide) are *not* run
 * concurrently — their query order is part of the seeded stream.
 */

#ifndef RHMD_SUPPORT_PARALLEL_HH
#define RHMD_SUPPORT_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/status.hh"

namespace rhmd::support
{

/**
 * Worker count implied by @p requested: 0 consults the RHMD_THREADS
 * environment variable, then std::thread::hardware_concurrency(),
 * and falls back to 1 when the hardware reports nothing.
 */
std::size_t resolveThreadCount(std::size_t requested = 0);

/**
 * Fixed-size thread pool with a bounded task queue. submit() blocks
 * once the queue holds 4x the worker count, which keeps producers
 * from buffering an entire sweep's closures. A pool constructed with
 * one thread executes tasks inline on the submitting thread.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 resolves via resolveThreadCount. */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (1 means serial inline execution). */
    std::size_t threads() const { return threads_; }

    /** True when tasks run inline on the submitting thread. */
    bool serial() const { return threads_ <= 1; }

    /**
     * Enqueue a task; blocks while the queue is at capacity. In
     * serial mode the task runs before submit() returns.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

  private:
    void workerLoop();

    std::size_t threads_;
    std::size_t capacity_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable spaceReady_;
    std::condition_variable allIdle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

/**
 * The process-wide pool used by the library's parallel hot paths.
 * Created on first use with resolveThreadCount(0); reconfigure with
 * setGlobalThreads() *before* the first parallel loop (benches call
 * it from --threads / RHMD_THREADS parsing).
 */
ThreadPool &globalPool();

/**
 * Recreate the global pool with @p threads workers (0 re-resolves
 * from the environment). Must not be called while a parallel loop is
 * in flight.
 */
void setGlobalThreads(std::size_t threads);

/** Worker count of the global pool without forcing its creation. */
std::size_t globalThreads();

namespace detail
{

/**
 * Run body(i) for i in [0, n) on the pool, claiming indices from a
 * shared counter. @p body must not throw; panics abort loudly from
 * whichever worker hit them. Blocks until all n indices completed.
 */
void parallelForIndex(ThreadPool &pool, std::size_t n,
                      const std::function<void(std::size_t)> &body);

} // namespace detail

/**
 * Ordered-reduction map: out[i] = body(i), with the output vector
 * indexed by task index so the merge order never depends on the
 * completion order. Bit-identical across thread counts whenever the
 * body depends only on its index (and index-derived RNG).
 */
template <typename T, typename Body>
std::vector<T>
parallelMap(ThreadPool &pool, std::size_t n, Body &&body)
{
    std::vector<T> out(n);
    detail::parallelForIndex(
        pool, n, [&](std::size_t i) { out[i] = body(i); });
    return out;
}

/** parallelMap on the global pool. */
template <typename T, typename Body>
std::vector<T>
parallelMap(std::size_t n, Body &&body)
{
    return parallelMap<T>(globalPool(), n, std::forward<Body>(body));
}

/** Void loop over [0, n) with no result merge. */
template <typename Body>
void
parallelFor(ThreadPool &pool, std::size_t n, Body &&body)
{
    detail::parallelForIndex(
        pool, n, [&](std::size_t i) { body(i); });
}

/** parallelFor on the global pool. */
template <typename Body>
void
parallelFor(std::size_t n, Body &&body)
{
    parallelFor(globalPool(), n, std::forward<Body>(body));
}

/**
 * Status-propagating loop with structured cancellation: the first
 * failure (by *lowest index*, not completion time) cancels all
 * not-yet-started work and is the Status returned. Indices whose
 * body never ran because of cancellation are simply skipped; indices
 * already running complete normally.
 */
template <typename Body>
Status
parallelForStatus(ThreadPool &pool, std::size_t n, Body &&body)
{
    std::atomic<std::size_t> firstError{n};
    std::mutex errMutex;
    std::vector<std::pair<std::size_t, Status>> errors;

    detail::parallelForIndex(pool, n, [&](std::size_t i) {
        // Cancellation point: skip work ordered after a known error.
        if (i > firstError.load(std::memory_order_acquire))
            return;
        Status status = body(i);
        if (status.isOk())
            return;
        std::size_t seen = firstError.load(std::memory_order_acquire);
        while (i < seen && !firstError.compare_exchange_weak(
                               seen, i, std::memory_order_acq_rel)) {
        }
        const std::lock_guard<std::mutex> lock(errMutex);
        errors.emplace_back(i, std::move(status));
    });

    const std::size_t winner =
        firstError.load(std::memory_order_acquire);
    if (winner == n)
        return {};
    for (auto &[index, status] : errors) {
        if (index == winner)
            return std::move(status);
    }
    rhmd_panic("parallelForStatus lost its first error");
}

/** parallelForStatus on the global pool. */
template <typename Body>
Status
parallelForStatus(std::size_t n, Body &&body)
{
    return parallelForStatus(globalPool(), n,
                             std::forward<Body>(body));
}

/**
 * Ordered reduction: map each index to a T, then fold the results
 * into @p init strictly in index order. The fold runs on the calling
 * thread, so non-associative merges (floating-point sums, audit
 * counters) still match the serial run exactly.
 */
template <typename T, typename Acc, typename Body, typename Fold>
Acc
parallelReduce(ThreadPool &pool, std::size_t n, Acc init, Body &&body,
               Fold &&fold)
{
    const std::vector<T> mapped =
        parallelMap<T>(pool, n, std::forward<Body>(body));
    for (std::size_t i = 0; i < n; ++i)
        init = fold(std::move(init), mapped[i]);
    return init;
}

} // namespace rhmd::support

#endif // RHMD_SUPPORT_PARALLEL_HH
