/**
 * @file
 * Deterministic pseudo-random number generation for the RHMD library.
 *
 * Every stochastic component of the library (program generators, the
 * CFG interpreter, classifier initialization, the RHMD detector
 * switch) draws from an explicitly seeded Rng so that experiments are
 * reproducible run-to-run and machine-to-machine. The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state,
 * and passes BigCrush; we avoid std::mt19937 because its distribution
 * adapters are not portable across standard library implementations.
 */

#ifndef RHMD_SUPPORT_RNG_HH
#define RHMD_SUPPORT_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace rhmd
{

/**
 * Seeded xoshiro256** generator with portable distribution helpers.
 *
 * The helpers implement their own uniform/normal/etc. transforms so a
 * given seed produces the identical stream on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0; unbiased. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Geometric number of failures before a success, success
     * probability p in (0, 1]. Mean (1-p)/p.
     */
    std::uint64_t geometric(double p);

    /**
     * Sample an index from an unnormalized non-negative weight
     * vector. Requires at least one strictly positive weight.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Symmetric Dirichlet-like perturbation: returns a probability
     * vector obtained by jittering @p base multiplicatively with
     * exp(gaussian * spread) noise and renormalizing. Used by the
     * program generator to individualize family profiles.
     */
    std::vector<double> perturbedSimplex(const std::vector<double> &base,
                                         double spread);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Derive an independent child generator (splitmix64 of state). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedGauss_;
    bool hasCachedGauss_;
};

/**
 * Stateless per-task stream derivation for parallel loops.
 *
 * fork() advances the parent generator, so the stream a task receives
 * depends on how many forks happened before it — i.e. on iteration
 * order, which a thread pool must be free to ignore. SplitRng instead
 * derives task i's seed purely from (root seed, i) with two rounds of
 * splitmix64-style mixing, so stream i is the same no matter which
 * thread materializes it or when; an N-thread loop is bit-identical
 * to the 1-thread loop. Streams for distinct indices are independent
 * to the quality of the mixer (validated by the chi-square test in
 * tests/test_parallel.cc).
 */
class SplitRng
{
  public:
    explicit SplitRng(std::uint64_t root) : root_(root) {}

    /** The derived 64-bit seed of stream @p index. */
    std::uint64_t seedAt(std::uint64_t index) const;

    /** A fresh generator positioned at the start of stream @p index. */
    Rng at(std::uint64_t index) const { return Rng(seedAt(index)); }

    std::uint64_t root() const { return root_; }

  private:
    std::uint64_t root_;
};

} // namespace rhmd

#endif // RHMD_SUPPORT_RNG_HH
