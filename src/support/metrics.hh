/**
 * @file
 * Process-wide metrics registry: the measurement substrate for the
 * scaling work (EMMA argues HMD evaluations need instrumented,
 * reproducible measurement platforms; ad-hoc prints are neither).
 *
 * Three metric kinds, Prometheus-shaped:
 *
 *  - Counter: a monotonic unsigned total ("victim programs queried").
 *  - Gauge: a last-written or running-max double ("peak queue depth").
 *  - Histogram: fixed upper-bound buckets plus a running sum/count
 *    ("per-task pool latency", "realized detector selection").
 *
 * Storage is sharded per thread (each thread writes its own
 * cache-line-aligned slot, assigned round-robin on first use) and
 * merged *by shard index* when read, so instrumented parallel code
 * pays one relaxed atomic add per event and the merged values stay
 * bit-identical under `--threads N`:
 *
 *  - Counter values and histogram bucket/observation counts are
 *    integer sums, associative under any merge order.
 *  - Histogram sums are exact whenever the observed values are
 *    integer-valued (every deterministic histogram in this codebase
 *    observes counts or indices, never wall time).
 *
 * Every metric declares a MetricDomain. Deterministic metrics depend
 * only on (seed, config) and must be byte-identical between a
 * 1-thread and an N-thread run — the CI determinism gate diffs them.
 * Timing metrics (latencies, queue depths, anything scheduling- or
 * clock-dependent) are exposition-only and are stripped before the
 * comparison. See DESIGN.md section 10 for the full contract.
 *
 * Two exposition formats: Prometheus text (toPrometheus) and a JSON
 * snapshot (toJson). A RunManifest (seed, threads, git describe,
 * free-form config) identifies the producing run; every bench and
 * tool stamps one into its output so a snapshot is interpretable
 * without the shell command that produced it.
 */

#ifndef RHMD_SUPPORT_METRICS_HH
#define RHMD_SUPPORT_METRICS_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rhmd::support
{

/** Threads map onto this many storage shards, round-robin. */
constexpr std::size_t kMetricShards = 64;

/** Shard index of the calling thread (assigned on first use). */
std::size_t metricShard();

/**
 * Whether a metric participates in the determinism contract.
 * Deterministic values depend only on (seed, config); Timing values
 * may vary run to run and are stripped before determinism diffs.
 */
enum class MetricDomain : std::uint8_t
{
    Deterministic,
    Timing,
};

/** "deterministic" or "timing". */
std::string_view metricDomainName(MetricDomain domain);

/** Escape @p text for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Render @p value the way every exposition in this layer does:
 * integer-valued doubles print with no fraction ("42"), everything
 * else as shortest-roundtrip-ish "%.9g". Deterministic formatting is
 * part of the snapshot-diffing contract.
 */
std::string formatMetricValue(double value);

/** Monotonic counter; add() is a relaxed atomic on the shard slot. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Add @p n to the calling thread's shard. */
    void add(std::uint64_t n = 1)
    {
        shards_[metricShard()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Total over all shards, merged in shard-index order. */
    std::uint64_t value() const;

    /** Zero every shard (tests and fresh measurement windows). */
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Shard, kMetricShards> shards_;
};

/**
 * Last-written double with an atomic max variant. Gauges are only
 * deterministic when written from serial sections; concurrent set()
 * is last-writer-wins.
 */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double value);

    /** Raise the gauge to @p value if it is larger (CAS loop). */
    void updateMax(double value);

    double value() const;
    void reset();

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Buckets are inclusive upper bounds in
 * strictly increasing order with an implicit +Inf overflow bucket;
 * observe(v) lands in the first bucket with v <= bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);

    /** Upper bounds, excluding the implicit +Inf bucket. */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts (bounds().size() + 1 entries), merged. */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Observations recorded. */
    std::uint64_t count() const;

    /** Sum of observed values (exact for integer-valued samples). */
    double sum() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
    };

    std::vector<double> bounds_;
    std::vector<Shard> shards_;
};

/**
 * Name-keyed metric registry. Registration is idempotent: asking for
 * an existing name returns the same object (and panics if the kind,
 * domain, or bucket layout disagrees — two call sites fighting over
 * one name is a bug). Hot paths cache the returned reference in a
 * function-local static; handles stay valid across reset().
 *
 * Metric names are lowercase dotted paths ("reveng.victim_programs");
 * exposition sanitizes them per format.
 */
class MetricsRegistry
{
  public:
    /** A private registry (tests); production code uses instance(). */
    MetricsRegistry() = default;

    /** The process-wide registry. */
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name, const std::string &help,
                     MetricDomain domain = MetricDomain::Deterministic);

    Gauge &gauge(const std::string &name, const std::string &help,
                 MetricDomain domain = MetricDomain::Timing);

    Histogram &
    histogram(const std::string &name, const std::string &help,
              std::vector<double> bounds,
              MetricDomain domain = MetricDomain::Deterministic);

    /** Merged value of a registered counter; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Prometheus text exposition: HELP/TYPE comments, "rhmd_" prefix,
     * dots mapped to underscores, histograms as cumulative
     * _bucket{le=...}/_sum/_count series.
     */
    std::string toPrometheus() const;

    /**
     * JSON array of metric objects, sorted by name. When
     * @p include_timing is false, Timing-domain metrics are omitted —
     * the stripped form the determinism gate compares.
     */
    std::string toJsonArray(bool include_timing = true) const;

    /** {"metrics": toJsonArray(...)}. */
    std::string toJson(bool include_timing = true) const;

    /** Zero every registered metric (registrations survive). */
    void reset();

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    struct Entry
    {
        Kind kind = Kind::Counter;
        MetricDomain domain = MetricDomain::Deterministic;
        std::string help;
        std::unique_ptr<class Counter> counter;
        std::unique_ptr<class Gauge> gauge;
        std::unique_ptr<class Histogram> histogram;
    };

    Entry &findOrCreate(const std::string &name, const std::string &help,
                        Kind kind, MetricDomain domain);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

/** Shorthand for MetricsRegistry::instance(). */
MetricsRegistry &metrics();

/**
 * Identity of one run, stamped into every bench/tool output so a
 * metrics snapshot or BENCH_*.json is attributable to an exact
 * (binary, seed, thread count, source revision, configuration).
 */
struct RunManifest
{
    std::string tool;
    std::uint64_t seed = 0;
    std::size_t threads = 1;
    bool smoke = false;

    /** `git describe --always --dirty` captured at configure time. */
    std::string gitDescribe;

    /** Free-form configuration, serialized in insertion order. */
    std::vector<std::pair<std::string, std::string>> config;

    RunManifest();

    void addConfig(std::string key, std::string value)
    {
        config.emplace_back(std::move(key), std::move(value));
    }

    /** One JSON object; keys are stable across runs. */
    std::string toJson() const;
};

/** The configure-time `git describe` stamp, or "unknown". */
const char *buildGitDescribe();

} // namespace rhmd::support

#endif // RHMD_SUPPORT_METRICS_HH
