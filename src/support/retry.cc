/**
 * @file
 * Backoff schedule implementation.
 */

#include "support/retry.hh"

#include <algorithm>
#include <cmath>

namespace rhmd::support
{

double
backoffDelay(const RetryPolicy &policy, std::size_t retry)
{
    panic_if(retry == 0, "retries are numbered from 1");
    const double raw =
        policy.initialBackoff *
        std::pow(policy.backoffMultiplier,
                 static_cast<double>(retry - 1));
    return std::min(raw, policy.maxBackoff);
}

} // namespace rhmd::support
