/**
 * @file
 * Metrics registry implementation.
 */

#include "support/metrics.hh"

#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace rhmd::support
{

namespace
{

/** Round-robin shard assignment; wraps past kMetricShards. */
std::atomic<std::size_t> nextShard{0};

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

/** "rhmd_" prefix plus dots mapped to underscores. */
std::string
prometheusName(const std::string &name)
{
    std::string out = "rhmd_";
    for (char c : name)
        out += c == '.' ? '_' : c;
    return out;
}

/** Atomic fetch-add for doubles via CAS (portable pre-fetch_add). */
void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double seen = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t
metricShard()
{
    thread_local std::size_t shard = kMetricShards;
    if (shard == kMetricShards) {
        shard = nextShard.fetch_add(1, std::memory_order_relaxed) %
                kMetricShards;
    }
    return shard;
}

std::string_view
metricDomainName(MetricDomain domain)
{
    return domain == MetricDomain::Deterministic ? "deterministic"
                                                 : "timing";
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatMetricValue(double value)
{
    char buf[64];
    if (std::isfinite(value) && value == std::rint(value) &&
        std::abs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.9g", value);
    }
    return buf;
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (Shard &shard : shards_)
        shard.value.store(0, std::memory_order_relaxed);
}

void
Gauge::set(double value)
{
    value_.store(value, std::memory_order_relaxed);
}

void
Gauge::updateMax(double value)
{
    double seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

double
Gauge::value() const
{
    return value_.load(std::memory_order_relaxed);
}

void
Gauge::reset()
{
    value_.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards)
{
    panic_if(bounds_.empty(), "histogram needs at least one bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        panic_if(bounds_[i - 1] >= bounds_[i],
                 "histogram bounds must be strictly increasing");
    }
    for (Shard &shard : shards_) {
        shard.buckets =
            std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    }
}

void
Histogram::observe(double value)
{
    std::size_t bucket = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    Shard &shard = shards_[metricShard()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(shard.sum, value);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
    for (const Shard &shard : shards_) {
        for (std::size_t b = 0; b < counts.size(); ++b)
            counts[b] +=
                shard.buckets[b].load(std::memory_order_relaxed);
    }
    return counts;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    // Merged in shard-index order; exact for integer-valued samples
    // regardless of which thread produced which shard.
    double total = 0.0;
    for (const Shard &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset()
{
    for (Shard &shard : shards_) {
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0.0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry &
metrics()
{
    return MetricsRegistry::instance();
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name,
                              const std::string &help, Kind kind,
                              MetricDomain domain)
{
    panic_if(!validMetricName(name), "bad metric name '", name,
             "' (want lowercase dotted path)");
    const std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(name);
    Entry &entry = it->second;
    if (inserted) {
        entry.kind = kind;
        entry.domain = domain;
        entry.help = help;
    } else {
        panic_if(entry.kind != kind || entry.domain != domain,
                 "metric '", name,
                 "' re-registered with a different kind or domain");
    }
    return entry;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         MetricDomain domain)
{
    Entry &entry = findOrCreate(name, help, Kind::Counter, domain);
    if (entry.counter == nullptr)
        entry.counter = std::make_unique<class Counter>();
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       MetricDomain domain)
{
    Entry &entry = findOrCreate(name, help, Kind::Gauge, domain);
    if (entry.gauge == nullptr)
        entry.gauge = std::make_unique<class Gauge>();
    return *entry.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           std::vector<double> bounds,
                           MetricDomain domain)
{
    Entry &entry = findOrCreate(name, help, Kind::Histogram, domain);
    if (entry.histogram == nullptr) {
        entry.histogram =
            std::make_unique<class Histogram>(std::move(bounds));
    } else {
        panic_if(entry.histogram->bounds() != bounds, "histogram '",
                 name, "' re-registered with different buckets");
    }
    return *entry.histogram;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.counter == nullptr)
        return 0;
    return it->second.counter->value();
}

std::string
MetricsRegistry::toPrometheus() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, entry] : entries_) {
        const std::string prom = prometheusName(name);
        out += "# HELP " + prom + " " + entry.help + "\n";
        switch (entry.kind) {
        case Kind::Counter:
            out += "# TYPE " + prom + " counter\n";
            out += prom + " " +
                   std::to_string(entry.counter->value()) + "\n";
            break;
        case Kind::Gauge:
            out += "# TYPE " + prom + " gauge\n";
            out += prom + " " +
                   formatMetricValue(entry.gauge->value()) + "\n";
            break;
        case Kind::Histogram: {
            out += "# TYPE " + prom + " histogram\n";
            const Histogram &h = *entry.histogram;
            const std::vector<std::uint64_t> counts = h.bucketCounts();
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                cumulative += counts[b];
                out += prom + "_bucket{le=\"" +
                       formatMetricValue(h.bounds()[b]) + "\"} " +
                       std::to_string(cumulative) + "\n";
            }
            cumulative += counts.back();
            out += prom + "_bucket{le=\"+Inf\"} " +
                   std::to_string(cumulative) + "\n";
            out += prom + "_sum " + formatMetricValue(h.sum()) + "\n";
            out += prom + "_count " + std::to_string(h.count()) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string
MetricsRegistry::toJsonArray(bool include_timing) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "[";
    bool first = true;
    for (const auto &[name, entry] : entries_) {
        if (!include_timing && entry.domain == MetricDomain::Timing)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + jsonEscape(name) +
               "\", \"domain\": \"" +
               std::string(metricDomainName(entry.domain)) + "\", ";
        switch (entry.kind) {
        case Kind::Counter:
            out += "\"kind\": \"counter\", \"value\": " +
                   std::to_string(entry.counter->value());
            break;
        case Kind::Gauge:
            out += "\"kind\": \"gauge\", \"value\": " +
                   formatMetricValue(entry.gauge->value());
            break;
        case Kind::Histogram: {
            const Histogram &h = *entry.histogram;
            out += "\"kind\": \"histogram\", \"bounds\": [";
            for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                out += b > 0 ? ", " : "";
                out += formatMetricValue(h.bounds()[b]);
            }
            out += "], \"counts\": [";
            const std::vector<std::uint64_t> counts = h.bucketCounts();
            for (std::size_t b = 0; b < counts.size(); ++b) {
                out += b > 0 ? ", " : "";
                out += std::to_string(counts[b]);
            }
            out += "], \"count\": " + std::to_string(h.count()) +
                   ", \"sum\": " + formatMetricValue(h.sum());
            break;
        }
        }
        out += "}";
    }
    out += first ? "]" : "\n  ]";
    return out;
}

std::string
MetricsRegistry::toJson(bool include_timing) const
{
    return "{\n  \"metrics\": " + toJsonArray(include_timing) + "\n}\n";
}

void
MetricsRegistry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, entry] : entries_) {
        if (entry.counter != nullptr)
            entry.counter->reset();
        if (entry.gauge != nullptr)
            entry.gauge->reset();
        if (entry.histogram != nullptr)
            entry.histogram->reset();
    }
}

const char *
buildGitDescribe()
{
#ifdef RHMD_GIT_DESCRIBE
    return RHMD_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

RunManifest::RunManifest() : gitDescribe(buildGitDescribe()) {}

std::string
RunManifest::toJson() const
{
    std::string out = "{\"tool\": \"" + jsonEscape(tool) + "\", ";
    out += "\"seed\": " + std::to_string(seed) + ", ";
    out += "\"threads\": " + std::to_string(threads) + ", ";
    out += "\"smoke\": " + std::string(smoke ? "true" : "false") + ", ";
    out += "\"git\": \"" + jsonEscape(gitDescribe) + "\", ";
    out += "\"config\": {";
    for (std::size_t i = 0; i < config.size(); ++i) {
        out += i > 0 ? ", " : "";
        out += "\"" + jsonEscape(config[i].first) + "\": \"" +
               jsonEscape(config[i].second) + "\"";
    }
    out += "}}";
    return out;
}

} // namespace rhmd::support
