/**
 * @file
 * Portable SIMD lanes for the scoring hot path.
 *
 * Two things live here:
 *
 *  1. The dispatch surface: a Target enum naming every instruction
 *     set the kernels are built for, host capability detection, and
 *     the process-wide active target (resolved once from the
 *     RHMD_SIMD environment override, or the best target the host
 *     supports). The ml kernel tables (src/ml/kernels.hh) key off
 *     the active target.
 *
 *  2. Vec<double> lane wrappers — one small struct per instruction
 *     set, all with the same interface (kLanes, load/store,
 *     broadcast, +,-,*,/ and an exact u32 -> double convert) — so
 *     one templated kernel body (src/ml/kernels_impl.hh) can be
 *     instantiated per target TU. Each wrapper is only defined when
 *     the translation unit is compiled for that instruction set
 *     (__SSE2__/__AVX2__/__ARM_NEON), which is how the per-target
 *     kernel files select their width.
 *
 * Determinism contract (DESIGN.md section 14): kernels built on these
 * wrappers vectorize ACROSS independent elements (batch rows, matrix
 * columns, histogram bins) and never across a single floating-point
 * reduction chain. Every lane therefore performs the exact operation
 * sequence of the scalar reference sibling, and all targets produce
 * bit-identical results — IEEE-754 +,-,*,/ are exactly rounded, and
 * no wrapper ever emits a fused multiply-add.
 */

#ifndef RHMD_SUPPORT_SIMD_HH
#define RHMD_SUPPORT_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace rhmd::simd
{

/** Instruction sets the scoring kernels are specialized for. */
enum class Target : std::uint8_t
{
    Scalar = 0,  ///< reference implementation, any machine
    Sse2,        ///< x86-64 baseline, 2 double lanes
    Avx2,        ///< 4 double lanes + gathers (tree kernels)
    Neon,        ///< aarch64 baseline, 2 double lanes
};

/**
 * Rows of every SoA view are padded to a multiple of this, so any
 * target's widest kernel can run full vectors over the tail. Padding
 * rows are zero-filled and are never windows: no kernel may surface
 * a score or decision for them (see features::FeatureMatrix).
 */
constexpr std::size_t kMaxLanes = 8;

/** Lower-case target name ("scalar", "sse2", "avx2", "neon"). */
const char *targetName(Target target);

/**
 * True when @p target is usable here: the kernels were compiled for
 * it at build time and the host CPU executes it.
 */
bool targetSupported(Target target);

/** Every supported target, ordered scalar first, widest last. */
std::vector<Target> supportedTargets();

/** The widest supported target (what "auto" resolves to). */
Target bestTarget();

/**
 * Parse a RHMD_SIMD-style name: "scalar", "sse2", "avx2", "neon" or
 * "auto". Fatal on an unknown name or a target this machine cannot
 * run — a forced target must never silently degrade, or the CI
 * dispatch matrix would diff a lane width it did not ask for.
 */
Target parseTarget(const std::string &name);

/**
 * The target every kernel dispatch uses. Resolved once, on first
 * use: the RHMD_SIMD environment variable if set (see parseTarget),
 * otherwise bestTarget().
 */
Target activeTarget();

/**
 * Override the active target (tests and the scalar-vs-vector bench
 * legs). Fatal if unsupported. Not synchronized against concurrent
 * scoring — switch only while no batch is in flight.
 */
void setActiveTarget(Target target);

// --- Vec wrappers ---------------------------------------------------
//
// All wrappers implement, for W = kLanes doubles:
//   load(p)/store(p)   unaligned W-wide load/store
//   broadcast(x)       all lanes = x
//   zero()             all lanes = +0.0
//   fromU32(p)         exact double(p[0..W)) from uint32_t
//   a + b, a - b, a * b, a / b   lane-wise, exactly rounded

/** 1-lane "vector": the scalar reference, usable everywhere. */
struct VecScalar
{
    static constexpr std::size_t kLanes = 1;
    double v;

    static VecScalar load(const double *p) { return {*p}; }
    static VecScalar broadcast(double x) { return {x}; }
    static VecScalar zero() { return {0.0}; }
    static VecScalar fromU32(const std::uint32_t *p)
    {
        return {static_cast<double>(*p)};
    }
    void store(double *p) const { *p = v; }

    friend VecScalar operator+(VecScalar a, VecScalar b)
    {
        return {a.v + b.v};
    }
    friend VecScalar operator-(VecScalar a, VecScalar b)
    {
        return {a.v - b.v};
    }
    friend VecScalar operator*(VecScalar a, VecScalar b)
    {
        return {a.v * b.v};
    }
    friend VecScalar operator/(VecScalar a, VecScalar b)
    {
        return {a.v / b.v};
    }
};

#if defined(__SSE2__)
/** 2 double lanes on the x86-64 baseline. */
struct VecSse2
{
    static constexpr std::size_t kLanes = 2;
    __m128d v;

    static VecSse2 load(const double *p) { return {_mm_loadu_pd(p)}; }
    static VecSse2 broadcast(double x) { return {_mm_set1_pd(x)}; }
    static VecSse2 zero() { return {_mm_setzero_pd()}; }
    static VecSse2 fromU32(const std::uint32_t *p)
    {
        // Exact unsigned convert without AVX-512: flip the sign bit
        // so the value fits a signed convert, then add 2^31 back.
        // Both steps are exact in double precision for any uint32.
        const __m128i raw = _mm_set_epi32(
            0, 0, static_cast<std::int32_t>(p[1] ^ 0x80000000U),
            static_cast<std::int32_t>(p[0] ^ 0x80000000U));
        return {_mm_add_pd(_mm_cvtepi32_pd(raw),
                           _mm_set1_pd(2147483648.0))};
    }
    void store(double *p) const { _mm_storeu_pd(p, v); }

    friend VecSse2 operator+(VecSse2 a, VecSse2 b)
    {
        return {_mm_add_pd(a.v, b.v)};
    }
    friend VecSse2 operator-(VecSse2 a, VecSse2 b)
    {
        return {_mm_sub_pd(a.v, b.v)};
    }
    friend VecSse2 operator*(VecSse2 a, VecSse2 b)
    {
        return {_mm_mul_pd(a.v, b.v)};
    }
    friend VecSse2 operator/(VecSse2 a, VecSse2 b)
    {
        return {_mm_div_pd(a.v, b.v)};
    }
};
#endif // __SSE2__

#if defined(__AVX2__)
/** 4 double lanes (only in the -mavx2 kernel translation unit). */
struct VecAvx2
{
    static constexpr std::size_t kLanes = 4;
    __m256d v;

    static VecAvx2 load(const double *p)
    {
        return {_mm256_loadu_pd(p)};
    }
    static VecAvx2 broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static VecAvx2 zero() { return {_mm256_setzero_pd()}; }
    static VecAvx2 fromU32(const std::uint32_t *p)
    {
        const __m128i raw = _mm_xor_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)),
            _mm_set1_epi32(static_cast<std::int32_t>(0x80000000U)));
        return {_mm256_add_pd(_mm256_cvtepi32_pd(raw),
                              _mm256_set1_pd(2147483648.0))};
    }
    void store(double *p) const { _mm256_storeu_pd(p, v); }

    friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }
};
#endif // __AVX2__

#if defined(__ARM_NEON) && defined(__aarch64__)
/** 2 double lanes on the aarch64 baseline. */
struct VecNeon
{
    static constexpr std::size_t kLanes = 2;
    float64x2_t v;

    static VecNeon load(const double *p) { return {vld1q_f64(p)}; }
    static VecNeon broadcast(double x) { return {vdupq_n_f64(x)}; }
    static VecNeon zero() { return {vdupq_n_f64(0.0)}; }
    static VecNeon fromU32(const std::uint32_t *p)
    {
        const std::uint64_t widened[2] = {p[0], p[1]};
        return {vcvtq_f64_u64(vld1q_u64(widened))};
    }
    void store(double *p) const { vst1q_f64(p, v); }

    friend VecNeon operator+(VecNeon a, VecNeon b)
    {
        return {vaddq_f64(a.v, b.v)};
    }
    friend VecNeon operator-(VecNeon a, VecNeon b)
    {
        return {vsubq_f64(a.v, b.v)};
    }
    friend VecNeon operator*(VecNeon a, VecNeon b)
    {
        return {vmulq_f64(a.v, b.v)};
    }
    friend VecNeon operator/(VecNeon a, VecNeon b)
    {
        return {vdivq_f64(a.v, b.v)};
    }
};
#endif // __ARM_NEON && __aarch64__

} // namespace rhmd::simd

#endif // RHMD_SUPPORT_SIMD_HH
