/**
 * @file
 * Error reporting and status messages, modelled after gem5's
 * base/logging.hh conventions.
 *
 * panic()  — an internal invariant was violated (a library bug);
 *            aborts so the failure is loud in tests.
 * fatal()  — the caller asked for something unsatisfiable (bad
 *            configuration); exits with an error code.
 * warn()/inform() — non-fatal status for the user.
 */

#ifndef RHMD_SUPPORT_LOGGING_HH
#define RHMD_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace rhmd
{

/** Abort with a message; used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Exit(1) with a message; used for unsatisfiable user requests. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning to stderr. */
void warn(const std::string &message);

/** Print an informational message to stderr. */
void inform(const std::string &message);

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace rhmd

#define rhmd_panic(...) \
    ::rhmd::panicImpl(__FILE__, __LINE__, \
                      ::rhmd::detail::concat(__VA_ARGS__))

#define rhmd_fatal(...) \
    ::rhmd::fatalImpl(__FILE__, __LINE__, \
                      ::rhmd::detail::concat(__VA_ARGS__))

/** Panic when @p cond holds; message describes the violation. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            rhmd_panic(__VA_ARGS__); \
    } while (0)

/** Fatal when @p cond holds; message describes the bad request. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            rhmd_fatal(__VA_ARGS__); \
    } while (0)

#endif // RHMD_SUPPORT_LOGGING_HH
