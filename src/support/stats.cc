/**
 * @file
 * Statistics helper implementations.
 */

#include "support/stats.hh"

#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace rhmd
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double accum = 0.0;
    for (double v : values)
        accum += (v - m) * (v - m);
    return std::sqrt(accum / static_cast<double>(values.size() - 1));
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    panic_if(a.size() != b.size(), "dot: size mismatch ", a.size(),
             " vs ", b.size());
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += a[i] * b[i];
    return total;
}

double
norm(const std::vector<double> &v)
{
    return std::sqrt(dot(v, v));
}

void
axpy(std::vector<double> &a, double scale, const std::vector<double> &b)
{
    panic_if(a.size() != b.size(), "axpy: size mismatch ", a.size(),
             " vs ", b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] += scale * b[i];
}

void
normalizeInPlace(std::vector<double> &v)
{
    double total = 0.0;
    for (double x : v)
        total += x;
    if (total == 0.0)
        return;
    for (double &x : v)
        x /= total;
}

double
chiSquared(const std::vector<std::size_t> &observed,
           const std::vector<double> &expected_probs)
{
    panic_if(observed.size() != expected_probs.size(),
             "chiSquared: size mismatch");
    std::size_t total = 0;
    for (std::size_t c : observed)
        total += c;
    double stat = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double expected =
            expected_probs[i] * static_cast<double>(total);
        if (expected <= 0.0)
            continue;
        const double diff = static_cast<double>(observed[i]) - expected;
        stat += diff * diff / expected;
    }
    return stat;
}

} // namespace rhmd
