/**
 * @file
 * Small statistics helpers shared across the library: running
 * moments, vector arithmetic, and histogram utilities.
 */

#ifndef RHMD_SUPPORT_STATS_HH
#define RHMD_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace rhmd
{

/**
 * Numerically stable running mean/variance (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Mean of observations (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 when count < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &values);

/** Sample standard deviation of a vector (0 when size < 2). */
double stddev(const std::vector<double> &values);

/** Dot product; vectors must have equal length. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

/** Euclidean norm. */
double norm(const std::vector<double> &v);

/** a += scale * b, in place; vectors must have equal length. */
void axpy(std::vector<double> &a, double scale,
          const std::vector<double> &b);

/** Normalize a non-negative vector to sum to one (no-op if sum==0). */
void normalizeInPlace(std::vector<double> &v);

/**
 * Pearson chi-squared statistic of observed counts against expected
 * probabilities; used by tests to check the RHMD switch is uniform.
 */
double chiSquared(const std::vector<std::size_t> &observed,
                  const std::vector<double> &expected_probs);

} // namespace rhmd

#endif // RHMD_SUPPORT_STATS_HH
