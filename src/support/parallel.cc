/**
 * @file
 * Thread pool and deterministic loop implementation.
 */

#include "support/parallel.hh"

#include <pthread.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace rhmd::support
{

namespace
{

// Pool metrics are Timing-domain: task counts and queue depths depend
// on the worker count and the scheduler (serial mode runs tasks
// inline and submits none), so they are exposition-only and never
// part of the determinism comparison.

Counter &
poolTaskCounter()
{
    static Counter &c = metrics().counter(
        "pool.tasks", "claiming tasks executed by the thread pool",
        MetricDomain::Timing);
    return c;
}

Gauge &
poolQueuePeakGauge()
{
    static Gauge &g = metrics().gauge(
        "pool.queue_peak", "peak task-queue depth observed",
        MetricDomain::Timing);
    return g;
}

Histogram &
poolTaskSecondsHistogram()
{
    static Histogram &h = metrics().histogram(
        "pool.task_seconds", "per-task wall time",
        {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0}, MetricDomain::Timing);
    return h;
}

/** Run @p task, stamping the pool's per-task metrics. */
void
runInstrumented(const std::function<void()> &task)
{
    const auto start = std::chrono::steady_clock::now();
    task();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    poolTaskCounter().add(1);
    poolTaskSecondsHistogram().observe(seconds);
}

} // namespace

std::size_t
resolveThreadCount(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("RHMD_THREADS")) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        fatal_if(end == env || *end != '\0',
                 "RHMD_THREADS must be a non-negative integer, got '",
                 env, "'");
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
        // RHMD_THREADS=0 means "auto", same as unset.
    }
    // hardware_concurrency() may legitimately report 0; fall back to
    // serial so sanitizer/valgrind runs on odd platforms still work.
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(resolveThreadCount(threads)), capacity_(threads_ * 4)
{
    if (serial())
        return;
    workers_.reserve(threads_);
    for (std::size_t t = 0; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (serial())
        return;
    wait();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    panic_if(task == nullptr, "ThreadPool::submit of an empty task");
    if (serial()) {
        runInstrumented(task);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        spaceReady_.wait(
            lock, [this] { return queue_.size() < capacity_; });
        queue_.push_back(std::move(task));
        poolQueuePeakGauge().updateMax(
            static_cast<double>(queue_.size()));
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    if (serial())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        spaceReady_.notify_one();
        runInstrumented(task);
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allIdle_.notify_all();
        }
    }
}

namespace
{

std::mutex &
globalPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

/**
 * fork() duplicates only the calling thread: in the child the pool's
 * workers are gone, but the std::thread handles still look joinable,
 * so the child's exit()-time pool destructor would join phantom
 * threads and hang forever (gtest death tests fork on every
 * EXPECT_EXIT). Abandon the pool object in the child — leaking it is
 * the only safe option, since its mutex may also be held by a worker
 * that no longer exists. Must not take globalPoolMutex() here for the
 * same reason. A child that later needs the pool builds a fresh one.
 */
void
abandonPoolInChild()
{
    (void)globalPoolSlot().release();
}

void
installForkHandler()
{
    static const int rc =
        pthread_atfork(nullptr, nullptr, abandonPoolInChild);
    (void)rc;
}

} // namespace

ThreadPool &
globalPool()
{
    const std::lock_guard<std::mutex> lock(globalPoolMutex());
    installForkHandler();
    auto &slot = globalPoolSlot();
    if (slot == nullptr)
        slot = std::make_unique<ThreadPool>(0);
    return *slot;
}

void
setGlobalThreads(std::size_t threads)
{
    const std::lock_guard<std::mutex> lock(globalPoolMutex());
    installForkHandler();
    auto &slot = globalPoolSlot();
    if (slot != nullptr && slot->threads() == resolveThreadCount(threads))
        return;
    slot = std::make_unique<ThreadPool>(threads);
}

std::size_t
globalThreads()
{
    const std::lock_guard<std::mutex> lock(globalPoolMutex());
    const auto &slot = globalPoolSlot();
    return slot == nullptr ? resolveThreadCount(0) : slot->threads();
}

namespace detail
{

namespace
{

/**
 * Set while the current thread is executing a parallel loop body.
 * A nested loop started from inside a body runs inline and serially:
 * the outer loop already owns the workers (waiting on them from a
 * worker would deadlock), and inline execution keeps the nested
 * iteration order — and therefore the results — identical to a
 * fully serial run.
 */
thread_local bool tlsInParallelBody = false;

} // namespace

void
parallelForIndex(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (tlsInParallelBody || pool.serial() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // One claiming task per worker: each repeatedly takes the next
    // unclaimed index. No per-index closure allocation, no work
    // stealing, and the index a task gets never depends on what the
    // other workers are doing.
    std::atomic<std::size_t> next{0};
    const std::size_t tasks = std::min(pool.threads(), n);
    for (std::size_t t = 0; t < tasks; ++t) {
        pool.submit([&body, &next, n] {
            tlsInParallelBody = true;
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                body(i);
            }
            tlsInParallelBody = false;
        });
    }
    pool.wait();
}

} // namespace detail

} // namespace rhmd::support
