/**
 * @file
 * Aligned ASCII table printer used by the benchmark harnesses to
 * print the rows/series of each paper figure.
 */

#ifndef RHMD_SUPPORT_TABLE_HH
#define RHMD_SUPPORT_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace rhmd
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"period", "LR", "DT", "SVM"});
 *   t.addRow({"10k", "0.99", "0.97", "0.98"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double as a fixed-precision cell. */
    static std::string cell(double value, int precision = 3);

    /** Convenience: format a ratio as a percentage cell ("97.2%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Render the table with a separator under the header. */
    void print(std::ostream &os) const;

    /** Number of data rows currently stored. */
    std::size_t rows() const { return rows_.size(); }

    /** Column headers. */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Raw cell data. */
    const std::vector<std::vector<std::string>> &data() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rhmd

#endif // RHMD_SUPPORT_TABLE_HH
