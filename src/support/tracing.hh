/**
 * @file
 * Scoped tracing: RAII spans that aggregate into a per-phase timing
 * tree ("where does the wall time of a fig13 generation loop go?").
 *
 * A ScopedSpan pushes its name onto a thread-local stack on
 * construction and, on destruction, records (count += 1, seconds +=
 * elapsed) against the full slash-joined path ("game/generation/
 * train") in the global TraceRegistry. Identical paths aggregate, so
 * a loop that opens the same span per iteration produces one tree
 * node with the iteration count and total time — a profile, not a
 * log.
 *
 * Spans measure wall time and are therefore Timing-domain by
 * definition: the span tree appears in observability snapshots for
 * humans but is always stripped before determinism comparisons
 * (DESIGN.md section 10). Span *counts* are deterministic in
 * practice, but the tree is excluded wholesale to keep the contract
 * simple.
 *
 * Spans are cheap (one clock read per end plus a mutex'd map update)
 * but not free: instrument phases and loop bodies, not inner loops.
 * Worker threads may open spans; their stacks are their own, so a
 * span opened inside a pool task roots at that worker's stack.
 */

#ifndef RHMD_SUPPORT_TRACING_HH
#define RHMD_SUPPORT_TRACING_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "support/metrics.hh"

namespace rhmd::support
{

/** Aggregated statistics of one span path. */
struct SpanStats
{
    std::uint64_t count = 0;
    double seconds = 0.0;
};

/**
 * Path-keyed aggregate of every closed span. Paths are slash-joined
 * span names; the tree structure is recovered from the paths at
 * exposition time.
 */
class TraceRegistry
{
  public:
    TraceRegistry() = default;

    /** The process-wide registry ScopedSpan records into. */
    static TraceRegistry &instance();

    /** Fold @p seconds into the stats of @p path. */
    void record(const std::string &path, double seconds);

    /** Copy of the aggregate, sorted by path. */
    std::map<std::string, SpanStats> snapshot() const;

    /** JSON array of {"path", "count", "seconds"}, sorted by path. */
    std::string toJsonArray() const;

    /** Indented tree with per-node count and seconds. */
    std::string toText() const;

    /** Forget every recorded span. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, SpanStats> spans_;
};

/**
 * RAII span. Construct at the top of a phase; the destructor stamps
 * the elapsed wall time into TraceRegistry::instance(). Span names
 * must be non-empty and must not contain '/'.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * One observability snapshot: {"manifest", "metrics", "spans"} from
 * the process-wide registries. With @p include_timing false, Timing
 * metrics and the span tree are stripped — the form the determinism
 * gate compares between thread counts.
 */
std::string observabilityJson(const RunManifest &manifest,
                              bool include_timing = true);

/**
 * Write METRICS_<name>.json (observabilityJson) and
 * METRICS_<name>.prom (Prometheus text) into @p dir. Returns false
 * (with a warning) when either file cannot be written.
 */
bool writeObservabilitySnapshot(const std::string &dir,
                                const std::string &name,
                                const RunManifest &manifest);

} // namespace rhmd::support

#endif // RHMD_SUPPORT_TRACING_HH
