/**
 * @file
 * Minimal CSV emitter so bench output can be post-processed (e.g.
 * plotted) without scraping the ASCII tables.
 */

#ifndef RHMD_SUPPORT_CSV_HH
#define RHMD_SUPPORT_CSV_HH

#include <string>
#include <vector>

namespace rhmd
{

/**
 * Accumulates rows and writes an RFC-4180-ish CSV file. Cells
 * containing commas, quotes, or newlines are quoted and escaped.
 */
class CsvWriter
{
  public:
    /** Construct with column headers. */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Serialize the full document (header + rows). */
    std::string str() const;

    /**
     * Write to @p path, creating/overwriting the file. Returns false
     * (after warning) when the file cannot be opened.
     */
    bool write(const std::string &path) const;

  private:
    static std::string escape(const std::string &cell);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rhmd

#endif // RHMD_SUPPORT_CSV_HH
