/**
 * @file
 * ASCII table printer implementation.
 */

#include "support/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace rhmd
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "Table row has ", cells.size(), " cells, expected ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << (fraction * 100.0) << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

} // namespace rhmd
