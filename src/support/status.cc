/**
 * @file
 * Status implementation.
 */

#include "support/status.hh"

namespace rhmd::support
{

std::string_view
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::DataLoss:
        return "DATA_LOSS";
      case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
      case StatusCode::OutOfRange:
        return "OUT_OF_RANGE";
      case StatusCode::Internal:
        return "INTERNAL";
    }
    rhmd_panic("unknown status code ", static_cast<int>(code));
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message))
{
    panic_if(code_ == StatusCode::Ok,
             "error Status must not use StatusCode::Ok");
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

} // namespace rhmd::support
