/**
 * @file
 * Retry-with-backoff for transiently failing operations.
 *
 * Sensor reads in a deployed HMD fail transiently (bus contention,
 * counter-read races); the runtime retries them under an exponential
 * backoff budget instead of losing the window outright. Backoff time
 * is virtual (accumulated in "units", e.g. microseconds of modelled
 * wait) so tests and the simulator stay deterministic and fast; a
 * real deployment would install a sleeper callback.
 */

#ifndef RHMD_SUPPORT_RETRY_HH
#define RHMD_SUPPORT_RETRY_HH

#include <cstddef>
#include <functional>

#include "support/status.hh"

namespace rhmd::support
{

/** Exponential-backoff retry parameters. */
struct RetryPolicy
{
    /** Total attempts, the first included. Must be >= 1. */
    std::size_t maxAttempts = 3;

    /** Backoff before the first retry, in virtual time units. */
    double initialBackoff = 1.0;

    /** Multiplier applied per retry. */
    double backoffMultiplier = 2.0;

    /** Backoff cap. */
    double maxBackoff = 64.0;
};

/** Backoff before retry number @p retry (1-based), per @p policy. */
double backoffDelay(const RetryPolicy &policy, std::size_t retry);

/** Bookkeeping a retried call reports back. */
struct RetryStats
{
    /** Retries performed (attempts - 1). */
    std::size_t retries = 0;

    /** Total virtual backoff waited. */
    double backoffSpent = 0.0;
};

/**
 * Run @p fn (returning StatusOr<T> or Status) until it succeeds, it
 * fails non-transiently, or the attempt budget is exhausted. Only
 * StatusCode::Unavailable is considered transient and retried; any
 * other error returns immediately. @p sleeper, when given, is called
 * with each backoff delay; @p stats, when given, accumulates retry
 * counts across calls.
 */
template <typename Fn>
auto
retryWithBackoff(const RetryPolicy &policy, Fn &&fn,
                 RetryStats *stats = nullptr,
                 const std::function<void(double)> &sleeper = {})
    -> decltype(fn())
{
    panic_if(policy.maxAttempts == 0, "RetryPolicy needs >= 1 attempt");
    for (std::size_t attempt = 1;; ++attempt) {
        auto result = fn();
        const Status &status = [&]() -> const Status & {
            if constexpr (std::is_same_v<decltype(fn()), Status>)
                return result;
            else
                return result.status();
        }();
        if (status.isOk() ||
            status.code() != StatusCode::Unavailable ||
            attempt >= policy.maxAttempts) {
            return result;
        }
        const double delay = backoffDelay(policy, attempt);
        if (stats != nullptr) {
            ++stats->retries;
            stats->backoffSpent += delay;
        }
        if (sleeper)
            sleeper(delay);
    }
}

} // namespace rhmd::support

#endif // RHMD_SUPPORT_RETRY_HH
