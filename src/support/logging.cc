/**
 * @file
 * Implementation of the logging and error-reporting helpers.
 */

#include "support/logging.hh"

#include <cstdlib>
#include <iostream>

namespace rhmd
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "panic: " << message << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "fatal: " << message << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warn(const std::string &message)
{
    std::cerr << "warn: " << message << std::endl;
}

void
inform(const std::string &message)
{
    std::cerr << "info: " << message << std::endl;
}

} // namespace rhmd
