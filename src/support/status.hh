/**
 * @file
 * Recoverable error handling: Status and StatusOr<T>.
 *
 * The logging layer's fatal()/panic() are the right tool for
 * programming errors and unsatisfiable configuration, but a deployed
 * detector cannot exit(1) because a sensor glitched or a model file
 * arrived corrupt. Paths on the deployment data plane (model loading,
 * sensor reads, policy validation, the runtime) return Status /
 * StatusOr<T> instead, so callers decide whether to retry, degrade,
 * or abort.
 */

#ifndef RHMD_SUPPORT_STATUS_HH
#define RHMD_SUPPORT_STATUS_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "support/logging.hh"

namespace rhmd::support
{

/** Error category, loosely following the absl/gRPC canonical codes. */
enum class StatusCode : std::uint8_t
{
    Ok,
    /** The request itself is malformed (bad policy, bad config). */
    InvalidArgument,
    /** Stored or transmitted bytes are corrupt or truncated. */
    DataLoss,
    /** A precondition (version, trained state) does not hold. */
    FailedPrecondition,
    /** Transient failure; retrying may succeed. */
    Unavailable,
    /** A value fell outside its permitted range (NaN score, index). */
    OutOfRange,
    /** Invariant violation surfaced as an error instead of a panic. */
    Internal,
};

/** Canonical upper-case name of a code ("DATA_LOSS"). */
std::string_view statusCodeName(StatusCode code);

/**
 * An error code plus a human-readable message. Default-constructed
 * Status is OK; error Statuses always carry a message.
 */
class Status
{
  public:
    /** OK status. */
    Status() = default;

    /** Error status; @p code must not be Ok (panics otherwise). */
    Status(StatusCode code, std::string message);

    bool isOk() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "DATA_LOSS: short vector" (or "OK"). */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Message-concatenating error constructors. */
template <typename... Args>
Status
invalidArgumentError(Args &&...args)
{
    return Status(StatusCode::InvalidArgument,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
dataLossError(Args &&...args)
{
    return Status(StatusCode::DataLoss,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
failedPreconditionError(Args &&...args)
{
    return Status(StatusCode::FailedPrecondition,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
unavailableError(Args &&...args)
{
    return Status(StatusCode::Unavailable,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
outOfRangeError(Args &&...args)
{
    return Status(StatusCode::OutOfRange,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
Status
internalError(Args &&...args)
{
    return Status(StatusCode::Internal,
                  rhmd::detail::concat(std::forward<Args>(args)...));
}

/**
 * Either a value or an error Status. value() on an error panics (it
 * is a caller bug to skip the isOk() check), so always branch first:
 *
 * @code
 *   auto model = ml::tryLoadModel(stream);
 *   if (!model.isOk())
 *       return model.status();
 *   use(*std::move(model).value());
 * @endcode
 */
template <typename T>
class StatusOr
{
  public:
    /** Implicit from an error Status (panics if the status is OK). */
    StatusOr(Status status) : status_(std::move(status))
    {
        panic_if(status_.isOk(),
                 "StatusOr constructed from an OK status without a "
                 "value");
    }

    /** Implicit from a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool isOk() const { return status_.isOk(); }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        panic_if(!isOk(), "value() on error status: ",
                 status_.toString());
        return *value_;
    }

    T &
    value() &
    {
        panic_if(!isOk(), "value() on error status: ",
                 status_.toString());
        return *value_;
    }

    T &&
    value() &&
    {
        panic_if(!isOk(), "value() on error status: ",
                 status_.toString());
        return *std::move(value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace rhmd::support

#endif // RHMD_SUPPORT_STATUS_HH
