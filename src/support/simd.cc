/**
 * @file
 * SIMD target detection and dispatch-state implementation.
 */

#include "support/simd.hh"

#include <atomic>
#include <cstdlib>

#include "support/logging.hh"

namespace rhmd::simd
{

namespace
{

/** Kernels compiled for @p target at build time (host-independent). */
bool
targetCompiled(Target target)
{
    switch (target) {
      case Target::Scalar:
        return true;
      case Target::Sse2:
#if defined(__SSE2__)
        return true;
#else
        return false;
#endif
      case Target::Avx2:
#if defined(RHMD_SIMD_HAVE_AVX2)
        return true;
#else
        return false;
#endif
      case Target::Neon:
#if defined(__ARM_NEON) && defined(__aarch64__)
        return true;
#else
        return false;
#endif
    }
    rhmd_panic("bad simd target");
}

/** The host CPU can execute @p target's instructions. */
bool
hostSupports(Target target)
{
    switch (target) {
      case Target::Scalar:
        return true;
      case Target::Sse2:
#if defined(__SSE2__)
        return true;  // compile-time baseline implies host support
#else
        return false;
#endif
      case Target::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Target::Neon:
#if defined(__ARM_NEON) && defined(__aarch64__)
        return true;
#else
        return false;
#endif
    }
    rhmd_panic("bad simd target");
}

/** Resolve the boot-time target from RHMD_SIMD (or "auto"). */
Target
resolveFromEnv()
{
    const char *env = std::getenv("RHMD_SIMD");
    if (env == nullptr || *env == '\0')
        return bestTarget();
    return parseTarget(env);
}

std::atomic<Target> &
activeSlot()
{
    static std::atomic<Target> active{resolveFromEnv()};
    return active;
}

} // namespace

const char *
targetName(Target target)
{
    switch (target) {
      case Target::Scalar:
        return "scalar";
      case Target::Sse2:
        return "sse2";
      case Target::Avx2:
        return "avx2";
      case Target::Neon:
        return "neon";
    }
    rhmd_panic("bad simd target");
}

bool
targetSupported(Target target)
{
    return targetCompiled(target) && hostSupports(target);
}

std::vector<Target>
supportedTargets()
{
    std::vector<Target> out;
    for (Target target : {Target::Scalar, Target::Sse2, Target::Neon,
                          Target::Avx2}) {
        if (targetSupported(target))
            out.push_back(target);
    }
    return out;
}

Target
bestTarget()
{
    const std::vector<Target> supported = supportedTargets();
    return supported.back();  // supportedTargets is ordered widest last
}

Target
parseTarget(const std::string &name)
{
    if (name == "auto")
        return bestTarget();
    for (Target target : {Target::Scalar, Target::Sse2, Target::Avx2,
                          Target::Neon}) {
        if (name != targetName(target))
            continue;
        fatal_if(!targetSupported(target), "RHMD_SIMD target '", name,
                 "' is not usable on this machine (compiled: ",
                 targetCompiled(target) ? "yes" : "no",
                 ", cpu: ", hostSupports(target) ? "yes" : "no",
                 "); a forced target never silently degrades");
        return target;
    }
    rhmd_fatal("unknown RHMD_SIMD target '", name,
               "' (expected scalar, sse2, avx2, neon, or auto)");
}

Target
activeTarget()
{
    return activeSlot().load(std::memory_order_relaxed);
}

void
setActiveTarget(Target target)
{
    fatal_if(!targetSupported(target), "cannot activate simd target '",
             targetName(target), "': unsupported on this machine");
    activeSlot().store(target, std::memory_order_relaxed);
}

} // namespace rhmd::simd
