/**
 * @file
 * xoshiro256** implementation and portable distribution transforms.
 */

#include "support/rng.hh"

#include <cmath>
#include <numbers>

#include "support/logging.hh"

namespace rhmd
{

namespace
{

/** splitmix64 step, used for seed expansion and forking. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedGauss_(0.0), hasCachedGauss_(false)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    panic_if(n == 0, "Rng::below(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (hasCachedGauss_) {
        hasCachedGauss_ = false;
        return cachedGauss_;
    }
    double u1 = uniform();
    // Guard against log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedGauss_ = radius * std::sin(angle);
    hasCachedGauss_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::uint64_t
Rng::geometric(double p)
{
    panic_if(p <= 0.0 || p > 1.0, "geometric requires p in (0, 1]");
    if (p == 1.0)
        return 0;
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0, "weightedIndex requires non-negative weights");
        total += w;
    }
    panic_if(total <= 0.0, "weightedIndex requires a positive weight");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    // Floating-point slop: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<double>
Rng::perturbedSimplex(const std::vector<double> &base, double spread)
{
    std::vector<double> out(base.size());
    double total = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        out[i] = base[i] * std::exp(gaussian() * spread);
        total += out[i];
    }
    panic_if(total <= 0.0, "perturbedSimplex requires positive mass");
    for (double &v : out)
        v /= total;
    return out;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = below(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

std::uint64_t
SplitRng::seedAt(std::uint64_t index) const
{
    // Two full splitmix64 rounds over (root, index). One round is
    // already a good mixer; the second decorrelates the low bits of
    // adjacent indices before the seed is expanded again by the Rng
    // constructor.
    std::uint64_t x = root_ ^ (index * 0xd1b54a32d192ed03ULL +
                               0x8cb92ba72f3d8dd7ULL);
    x = splitmix64(x);
    return splitmix64(x);
}

} // namespace rhmd
