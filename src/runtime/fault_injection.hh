/**
 * @file
 * Deterministic, seeded fault injection for the sensor and model
 * paths of a deployed detector.
 *
 * A deployed HMD does not see the clean-lab feature stream: counter
 * reads are noisy and quantized, counters get stuck, windows are
 * dropped or truncated when the collection logic is preempted, and
 * model bytes can be corrupted in storage or transit. This layer
 * models those faults as seeded, per-experiment-configurable
 * perturbations so the fault-tolerance benchmarks are reproducible
 * (cf. Stochastic-HMDs, arXiv:2103.06936, on hardware-induced
 * stochasticity in deployed HMDs).
 */

#ifndef RHMD_RUNTIME_FAULT_INJECTION_HH
#define RHMD_RUNTIME_FAULT_INJECTION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "features/window.hh"
#include "support/rng.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::runtime
{

/** Per-experiment fault rates; all default to "no faults". */
struct FaultConfig
{
    /** Relative Gaussian noise on every counter value (sigma). */
    double counterNoiseSigma = 0.0;

    /** Quantization: counters are rounded down to this step. */
    std::uint32_t quantizeStep = 0;

    /**
     * Per-window chance that one architectural counter sticks at
     * its current value for the rest of the run.
     */
    double stuckCounterProb = 0.0;

    /** Per-read chance a whole window is lost. */
    double dropWindowProb = 0.0;

    /** Per-read chance a window is cut short (partial collection). */
    double truncateWindowProb = 0.0;

    /** Surviving fraction of a truncated window. */
    double truncateFrac = 0.5;

    /**
     * Per-read chance a sensor read fails transiently; such reads
     * succeed when retried (the runtime's backoff path).
     */
    double transientReadFailProb = 0.0;

    /** Per-score chance any detector returns NaN. */
    double scoreNanProb = 0.0;

    /** Detectors whose scores are always NaN (hard failures). */
    std::vector<std::size_t> brokenDetectors;

    /** Per-byte corruption rate for corruptText(). */
    double byteFlipRate = 0.0;

    /** Fault-stream seed; same config + seed => same faults. */
    std::uint64_t seed = 1;
};

/** What happened to a sensor read of one window. */
enum class WindowFault : std::uint8_t
{
    None,
    Dropped,
    Truncated,
};

/**
 * The seeded fault source. One injector models the fault behaviour
 * of one deployment; all draws come from a private xoshiro stream so
 * runs are reproducible.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /**
     * Perturb one window in place (noise, quantization, stuck
     * counter, truncation) and classify the read. A Dropped result
     * means the window was lost and must not be classified.
     */
    WindowFault perturbWindow(features::RawWindow &window);

    /** Roll the transient sensor-read failure. */
    bool transientReadFailure();

    /** Perturb a detector score (NaN faults for broken detectors). */
    double perturbScore(std::size_t detector, double score);

    /** Corrupt a serialized-model (or any) text buffer. */
    std::string corruptText(const std::string &text);

    /**
     * Stateless keyed Bernoulli: whether a fault of probability
     * @p prob fires at the (seed, key, epoch, detector) coordinate.
     * Unlike the injector's sequential stream, the draw is a pure
     * function of its coordinates, so layers that must stay
     * schedule-independent (the serving chaos harness, which promises
     * bit-identical decisions per request key across worker counts)
     * can consult it from any thread, in any order, and get the same
     * answer.
     */
    static bool keyedFault(std::uint64_t seed, std::uint64_t key,
                           std::uint64_t epoch, std::uint64_t detector,
                           double prob);

    /**
     * A counter-read hook for uarch::PerfMonitor that applies the
     * same noise/quantization/stuck-at model at the counter source,
     * for experiments that inject faults during extraction rather
     * than at the window level. The hook shares this injector's
     * stuck-counter state.
     */
    uarch::CounterReadHook counterHook();

    const FaultConfig &config() const { return config_; }

  private:
    std::uint64_t perturbCount(std::uint64_t value);
    void perturbCounts(uarch::EventCounts &events);

    FaultConfig config_;
    Rng rng_;

    /** Once set: (event index, frozen value). */
    std::optional<std::pair<std::size_t, std::uint64_t>> stuck_;
};

} // namespace rhmd::runtime

#endif // RHMD_RUNTIME_FAULT_INJECTION_HH
