/**
 * @file
 * Detector health monitoring and graceful degradation policy.
 *
 * An always-on RHMD cannot abort because one base detector starts
 * returning garbage: the pool must quarantine the failing member,
 * renormalize the switching policy over the survivors, and keep
 * classifying. Quarantined detectors get a probation window after a
 * cool-down — transient faults (voltage noise, a wedged counter that
 * recovered) should not permanently shrink the pool, since pool
 * diversity is exactly what the paper's Theorem 1 bound depends on.
 */

#ifndef RHMD_RUNTIME_HEALTH_HH
#define RHMD_RUNTIME_HEALTH_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hh"

namespace rhmd::runtime
{

/** Lifecycle of one base detector under the health monitor. */
enum class DetectorHealth : std::uint8_t
{
    /** Scoring normally; full policy weight. */
    Healthy,
    /** Removed from the switching policy after repeated failures. */
    Quarantined,
    /**
     * Back in the policy after the quarantine cool-down, but one
     * failure re-quarantines immediately.
     */
    Probation,
};

/** Display name ("healthy", "quarantined", "probation"). */
std::string_view healthName(DetectorHealth health);

/** Degradation policy knobs. */
struct HealthConfig
{
    /** Consecutive failures that trigger quarantine. */
    std::size_t failureThreshold = 3;

    /** Epochs a detector stays quarantined before probation. */
    std::uint64_t quarantineEpochs = 32;

    /** Consecutive probation successes to return to Healthy. */
    std::size_t probationSuccesses = 4;
};

/** One entry of the structured degradation event log. */
struct HealthEvent
{
    enum class Kind : std::uint8_t
    {
        Failure,
        Quarantine,
        Probation,
        Recovery,
    };

    std::uint64_t epoch = 0;
    std::size_t detector = 0;
    Kind kind = Kind::Failure;
    std::string detail;
};

/** Display name of an event kind. */
std::string_view healthEventName(HealthEvent::Kind kind);

/**
 * Tracks per-detector failure streaks and drives the
 * quarantine/probation/recovery state machine. The runtime calls
 * tick() once per epoch, reports score outcomes, and asks for the
 * effective (renormalized) switching policy.
 */
class HealthMonitor
{
  public:
    HealthMonitor(std::size_t pool_size, const HealthConfig &config);

    /** Advance one epoch; promotes cooled-down detectors to probation. */
    void tick();

    /** Report a valid score from @p detector. */
    void recordSuccess(std::size_t detector);

    /** Report a failed score (NaN, out of range, exception). */
    void recordFailure(std::size_t detector, const std::string &why);

    DetectorHealth health(std::size_t detector) const;

    /** Healthy or probation (i.e. eligible for selection). */
    bool available(std::size_t detector) const;

    /** Number of selectable detectors. */
    std::size_t availableCount() const;

    /** Detectors currently quarantined. */
    std::size_t quarantinedCount() const;

    /**
     * The switching policy restricted to available detectors and
     * renormalized. Unavailable error when every detector is
     * quarantined (the pool can no longer classify).
     */
    support::StatusOr<std::vector<double>>
    effectivePolicy(const std::vector<double> &base) const;

    /** Structured event log, in occurrence order. */
    const std::vector<HealthEvent> &events() const { return events_; }

    /** Lifetime failure count of one detector. */
    std::size_t failureCount(std::size_t detector) const;

    std::uint64_t epoch() const { return epoch_; }

  private:
    struct DetectorState
    {
        DetectorHealth health = DetectorHealth::Healthy;
        std::size_t consecutiveFailures = 0;
        std::size_t probationStreak = 0;
        std::size_t totalFailures = 0;
        std::uint64_t quarantinedAt = 0;
    };

    void quarantine(std::size_t detector, const std::string &why);

    HealthConfig config_;
    std::vector<DetectorState> states_;
    std::vector<HealthEvent> events_;
    std::uint64_t epoch_ = 0;
};

} // namespace rhmd::runtime

#endif // RHMD_RUNTIME_HEALTH_HH
