/**
 * @file
 * Fault injector implementation.
 */

#include "runtime/fault_injection.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace rhmd::runtime
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    fatal_if(config_.counterNoiseSigma < 0.0,
             "counter noise sigma must be non-negative");
    for (double p : {config_.stuckCounterProb, config_.dropWindowProb,
                     config_.truncateWindowProb,
                     config_.transientReadFailProb,
                     config_.scoreNanProb, config_.byteFlipRate}) {
        fatal_if(p < 0.0 || p > 1.0,
                 "fault probabilities must be in [0, 1]");
    }
    fatal_if(config_.truncateFrac <= 0.0 || config_.truncateFrac > 1.0,
             "truncate fraction must be in (0, 1]");
}

std::uint64_t
FaultInjector::perturbCount(std::uint64_t value)
{
    double x = static_cast<double>(value);
    if (config_.counterNoiseSigma > 0.0)
        x *= 1.0 + rng_.gaussian(0.0, config_.counterNoiseSigma);
    x = std::max(x, 0.0);
    auto result = static_cast<std::uint64_t>(std::llround(x));
    if (config_.quantizeStep > 1)
        result -= result % config_.quantizeStep;
    return result;
}

void
FaultInjector::perturbCounts(uarch::EventCounts &events)
{
    for (std::uint64_t &count : events)
        count = perturbCount(count);
    if (!stuck_ && config_.stuckCounterProb > 0.0 &&
        rng_.chance(config_.stuckCounterProb)) {
        const std::size_t which = rng_.below(uarch::kNumEvents);
        stuck_ = {which, events[which]};
    }
    if (stuck_)
        events[stuck_->first] = stuck_->second;
}

WindowFault
FaultInjector::perturbWindow(features::RawWindow &window)
{
    if (config_.dropWindowProb > 0.0 &&
        rng_.chance(config_.dropWindowProb))
        return WindowFault::Dropped;

    WindowFault fault = WindowFault::None;
    if (config_.truncateWindowProb > 0.0 &&
        rng_.chance(config_.truncateWindowProb)) {
        // Partial collection: only the leading fraction of the
        // window was gathered before the counters were reaped.
        fault = WindowFault::Truncated;
        const double keep = config_.truncateFrac;
        for (auto &count : window.opcodeCounts)
            count = static_cast<std::uint32_t>(count * keep);
        for (auto &count : window.memDeltaBins)
            count = static_cast<std::uint32_t>(count * keep);
        for (auto &count : window.events)
            count = static_cast<std::uint64_t>(
                static_cast<double>(count) * keep);
        window.instCount =
            static_cast<std::uint64_t>(window.instCount * keep);
        window.cycles *= keep;
    }

    if (config_.counterNoiseSigma > 0.0 || config_.quantizeStep > 1 ||
        config_.stuckCounterProb > 0.0) {
        for (auto &count : window.opcodeCounts)
            count = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(perturbCount(count),
                                        std::numeric_limits<
                                            std::uint32_t>::max()));
        for (auto &count : window.memDeltaBins)
            count = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(perturbCount(count),
                                        std::numeric_limits<
                                            std::uint32_t>::max()));
        perturbCounts(window.events);
    }
    return fault;
}

bool
FaultInjector::transientReadFailure()
{
    return config_.transientReadFailProb > 0.0 &&
           rng_.chance(config_.transientReadFailProb);
}

double
FaultInjector::perturbScore(std::size_t detector, double score)
{
    const auto &broken = config_.brokenDetectors;
    if (std::find(broken.begin(), broken.end(), detector) !=
        broken.end())
        return std::numeric_limits<double>::quiet_NaN();
    if (config_.scoreNanProb > 0.0 && rng_.chance(config_.scoreNanProb))
        return std::numeric_limits<double>::quiet_NaN();
    return score;
}

std::string
FaultInjector::corruptText(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        if (config_.byteFlipRate > 0.0 &&
            rng_.chance(config_.byteFlipRate)) {
            // Printable garbage, so corrupt model files stay
            // greppable in bug reports.
            c = static_cast<char>('!' + rng_.below(94));
        }
    }
    return out;
}

bool
FaultInjector::keyedFault(std::uint64_t seed, std::uint64_t key,
                          std::uint64_t epoch, std::uint64_t detector,
                          double prob)
{
    if (prob <= 0.0)
        return false;
    if (prob >= 1.0)
        return true;
    // Three chained SplitRng derivations give one well-mixed 64-bit
    // word per coordinate; the top 53 bits map to [0, 1) exactly as
    // Rng::uniform does.
    const std::uint64_t per_key = SplitRng(seed).seedAt(key);
    const std::uint64_t per_epoch = SplitRng(per_key).seedAt(epoch);
    const std::uint64_t draw = SplitRng(per_epoch).seedAt(detector);
    return static_cast<double>(draw >> 11) * 0x1.0p-53 < prob;
}

uarch::CounterReadHook
FaultInjector::counterHook()
{
    // Shares this injector's RNG and stuck-counter state; the
    // injector must outlive the monitor the hook is installed on.
    return [this](uarch::EventCounts &events) {
        perturbCounts(events);
    };
}

} // namespace rhmd::runtime
