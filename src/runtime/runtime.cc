/**
 * @file
 * Detection runtime implementation.
 */

#include "runtime/runtime.hh"

#include <cmath>

#include "analysis/verifier.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rhmd::runtime
{

namespace
{

bool
validScore(double score)
{
    return std::isfinite(score) && score >= 0.0 && score <= 1.0;
}

// One runtime counter per RuntimeReport field (plus admission): each
// processProgram call folds its report into the process-wide totals,
// so a deployment's fault pressure is visible in one snapshot without
// threading reports through every caller. Fault injection draws from
// the runtime's seeded rng, so these are Deterministic.

support::Counter &
runtimeCounter(const char *name, const char *help)
{
    return support::metrics().counter(name, help);
}

struct RuntimeCounters
{
    support::Counter &programs = runtimeCounter(
        "runtime.programs", "programs processed by DetectionRuntime");
    support::Counter &failedPrograms = runtimeCounter(
        "runtime.failed_programs",
        "programs where no epoch could be classified");
    support::Counter &epochs = runtimeCounter(
        "runtime.epochs", "decision epochs attempted");
    support::Counter &classified = runtimeCounter(
        "runtime.classified", "decision epochs classified");
    support::Counter &dropped = runtimeCounter(
        "runtime.dropped", "epochs lost to sensor-path window loss");
    support::Counter &truncated = runtimeCounter(
        "runtime.truncated", "windows delivered truncated");
    support::Counter &sensorRetries = runtimeCounter(
        "runtime.sensor_retries", "sensor reads retried with backoff");
    support::Counter &detectorFailures = runtimeCounter(
        "runtime.detector_failures",
        "invalid detector scores failed over");
    support::Counter &admitted = runtimeCounter(
        "runtime.admitted", "programs passing admission verification");
    support::Counter &rejected = runtimeCounter(
        "runtime.rejected", "programs rejected at admission");
};

RuntimeCounters &
runtimeCounters()
{
    static RuntimeCounters counters;
    return counters;
}

} // namespace

DetectionRuntime::DetectionRuntime(const core::Rhmd &pool,
                                   const RuntimeConfig &config)
    : pool_(pool), config_(config), injector_(config.faults),
      health_(pool.poolSize(), config.health), rng_(config.seed),
      selectionCounts_(pool.poolSize(), 0)
{
}

support::Status
DetectionRuntime::admitProgram(const trace::Program &prog)
{
    const analysis::Report report = analysis::verifyProgram(prog);
    if (!report.clean()) {
        ++rejectedPrograms_;
        runtimeCounters().rejected.add(1);
        for (const analysis::Finding &finding : report.findings()) {
            if (finding.severity == analysis::Severity::Error)
                return support::invalidArgumentError(
                    "program rejected at admission (", report.summary(),
                    "): [", finding.pass, "/", finding.code, "] ",
                    finding.message);
        }
    }
    ++admittedPrograms_;
    runtimeCounters().admitted.add(1);
    return support::Status();
}

support::StatusOr<features::RawWindow>
DetectionRuntime::readWindow(const features::ProgramFeatures &prog,
                             const core::Hmd &det,
                             std::size_t epoch_index,
                             RuntimeReport &report)
{
    const std::uint32_t period = det.decisionPeriod();
    const auto &windows = prog.windows(period);
    const std::size_t index =
        epoch_index * (pool_.decisionPeriod() / period);
    if (index >= windows.size()) {
        // The stream ended early at this period (truncated trace);
        // a lost window, not a library bug.
        return support::dataLossError("no window ", index,
                                      " at period ", period);
    }

    support::RetryStats stats;
    auto result = support::retryWithBackoff(
        config_.sensorRetry,
        [&]() -> support::StatusOr<features::RawWindow> {
            if (injector_.transientReadFailure())
                return support::unavailableError(
                    "transient sensor-read failure");
            features::RawWindow window = windows[index];
            switch (injector_.perturbWindow(window)) {
              case WindowFault::Dropped:
                return support::dataLossError("window dropped");
              case WindowFault::Truncated:
                ++report.truncated;
                return window;
              case WindowFault::None:
                return window;
            }
            rhmd_panic("bad window fault");
        },
        &stats);
    report.sensorRetries += stats.retries;
    report.backoffSpent += stats.backoffSpent;
    return result;
}

support::StatusOr<RuntimeReport>
DetectionRuntime::processProgram(const features::ProgramFeatures &prog)
{
    RuntimeReport report;
    const std::uint32_t epoch_len = pool_.decisionPeriod();
    report.epochs = prog.windows(epoch_len).size();

    // Fold this report into the process-wide totals on every exit
    // path, so aborted programs still show up in the snapshot.
    RuntimeCounters &counters = runtimeCounters();
    counters.programs.add(1);
    const auto fold = [&report, &counters] {
        counters.epochs.add(report.epochs);
        counters.classified.add(report.classified);
        counters.dropped.add(report.dropped);
        counters.truncated.add(report.truncated);
        counters.sensorRetries.add(report.sensorRetries);
        counters.detectorFailures.add(report.detectorFailures);
    };

    for (std::size_t e = 0; e < report.epochs; ++e) {
        health_.tick();

        // One epoch may take several draws: an invalid score fails
        // over to another available detector instead of losing the
        // epoch outright. The budget covers the worst case of every
        // pool member burning through its whole failure streak in
        // this epoch, so a decision is reached whenever any healthy
        // detector remains.
        const std::size_t max_attempts =
            pool_.poolSize() * config_.health.failureThreshold;
        bool decided = false;
        bool windowLost = false;
        for (std::size_t attempt = 0;
             attempt < max_attempts && !decided && !windowLost;
             ++attempt) {
            auto policy = health_.effectivePolicy(pool_.policy());
            if (!policy.isOk()) {
                ++failedPrograms_;
                counters.failedPrograms.add(1);
                fold();
                return policy.status();
            }
            const std::size_t pick = rng_.weightedIndex(*policy);
            ++selectionCounts_[pick];
            const core::Hmd &det = *pool_.detectors()[pick];

            auto window = readWindow(prog, det, e, report);
            if (!window.isOk()) {
                // Sensor-path loss: the epoch is gone no matter
                // which detector we pick.
                ++report.dropped;
                windowLost = true;
                break;
            }

            const double score = injector_.perturbScore(
                pick, det.windowScore(*window));
            if (!validScore(score)) {
                ++report.detectorFailures;
                health_.recordFailure(
                    pick, rhmd::detail::concat("invalid score ", score,
                                               " at epoch ",
                                               health_.epoch()));
                continue;
            }
            health_.recordSuccess(pick);
            report.decisions.push_back(score >= det.threshold() ? 1
                                                                : 0);
            ++report.classified;
            decided = true;
        }
    }

    fold();
    if (report.decisions.empty()) {
        ++failedPrograms_;
        counters.failedPrograms.add(1);
        return support::unavailableError(
            "no epoch of '", prog.name, "' could be classified (",
            report.dropped, " of ", report.epochs,
            " windows lost, ", report.detectorFailures,
            " detector failures)");
    }

    // Majority vote with ties flagged as malware, matching
    // Detector::programDecision.
    std::size_t malware_votes = 0;
    for (int d : report.decisions)
        malware_votes += d != 0 ? 1 : 0;
    report.programDecision =
        2 * malware_votes >= report.decisions.size() ? 1 : 0;
    return report;
}

double
DetectionRuntime::detectionRate(
    const std::vector<const features::ProgramFeatures *> &programs)
{
    fatal_if(programs.empty(),
             "detectionRate needs at least one program");
    std::size_t detected = 0;
    std::size_t failed = 0;
    for (const auto *prog : programs) {
        panic_if(prog == nullptr, "null program in detectionRate");
        auto report = processProgram(*prog);
        if (!report.isOk()) {
            // Fail-open: an unclassifiable program counts as
            // not-detected, but that must not be silent — warn on the
            // first failure (the rest are visible in
            // runtime.failed_programs) so a degraded deployment's
            // detection rate is not mistaken for a clean one.
            if (failed == 0)
                warn(rhmd::detail::concat(
                    "detectionRate: program '", prog->name,
                    "' counted as not-detected: ",
                    report.status().toString()));
            ++failed;
            continue;
        }
        if (report->programDecision == 1)
            ++detected;
    }
    return static_cast<double>(detected) /
           static_cast<double>(programs.size());
}

} // namespace rhmd::runtime
