/**
 * @file
 * The online detection runtime: streams feature windows from a
 * program through an Rhmd pool and survives injected faults.
 *
 * This is the deployment wrapper around core::Rhmd. Where
 * Rhmd::decide() assumes a clean, fully-collected feature stream,
 * the runtime models the always-on hardware path (paper Sec. 7's
 * AO486 prototype): sensor reads are retried under backoff when they
 * fail transiently, dropped windows skip an epoch instead of
 * aborting, invalid detector scores (NaN / out of range) are
 * reported to the health monitor, and repeatedly failing detectors
 * are quarantined with the switching policy renormalized over the
 * survivors.
 */

#ifndef RHMD_RUNTIME_RUNTIME_HH
#define RHMD_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "core/rhmd.hh"
#include "runtime/fault_injection.hh"
#include "runtime/health.hh"
#include "support/retry.hh"
#include "support/status.hh"
#include "trace/program.hh"

namespace rhmd::runtime
{

/** Runtime deployment parameters. */
struct RuntimeConfig
{
    HealthConfig health{};

    /** Injected faults; all-zero (the default) is a clean deployment. */
    FaultConfig faults{};

    /** Backoff budget for transiently failing sensor reads. */
    support::RetryPolicy sensorRetry{};

    /** Detector-selection randomness (independent of the pool's). */
    std::uint64_t seed = 0x600dd37ec7;
};

/** What one program's streaming run observed. */
struct RuntimeReport
{
    /** Epochs in the program's stream. */
    std::size_t epochs = 0;

    /** Epochs that produced a decision. */
    std::size_t classified = 0;

    /** Epochs lost to dropped windows or exhausted retries. */
    std::size_t dropped = 0;

    /** Epochs classified from a truncated (partial) window. */
    std::size_t truncated = 0;

    /** Sensor-read retries performed. */
    std::size_t sensorRetries = 0;

    /** Virtual backoff time spent in retries. */
    double backoffSpent = 0.0;

    /** Invalid detector scores observed (NaN / out of range). */
    std::size_t detectorFailures = 0;

    /** Per-epoch decisions (classified epochs only, in order). */
    std::vector<int> decisions;

    /** Majority program-level decision (ties count as malware). */
    int programDecision = 0;
};

/**
 * Streams programs through a detector pool under a fault model and a
 * degradation policy. Health state accumulates across programs, as
 * it would in an always-on deployment; construct a fresh runtime to
 * reset it.
 */
class DetectionRuntime
{
  public:
    /**
     * @param pool   the deployed pool; must outlive the runtime.
     * @param config fault model, degradation policy, retry budget.
     */
    DetectionRuntime(const core::Rhmd &pool,
                     const RuntimeConfig &config);

    /**
     * Stream one program's windows through the pool. Returns the
     * per-program report, or Unavailable when no epoch could be
     * classified (every window lost, or the whole pool quarantined).
     * Never aborts on sensor or detector faults.
     */
    support::StatusOr<RuntimeReport>
    processProgram(const features::ProgramFeatures &prog);

    /**
     * Admission check for untrusted program IR arriving at the
     * deployment boundary (e.g. evasive variants queued for
     * retraining): run the static verifier and reject — with
     * InvalidArgument naming the first error — anything malformed or
     * carrying a clobbering rewrite. Counted, never aborts.
     */
    support::Status admitProgram(const trace::Program &prog);

    /** Programs admitProgram() accepted. */
    std::size_t admittedPrograms() const { return admittedPrograms_; }

    /** Programs admitProgram() rejected. */
    std::size_t rejectedPrograms() const { return rejectedPrograms_; }

    /**
     * Detection rate over several programs: the fraction whose
     * program-level decision is "malware". Programs whose run fails
     * outright count as not-detected (a fail-open deployment).
     */
    double detectionRate(
        const std::vector<const features::ProgramFeatures *> &programs);

    const HealthMonitor &health() const { return health_; }
    const FaultInjector &injector() const { return injector_; }

    /** Selection counts per detector (degradation visibility). */
    const std::vector<std::size_t> &selectionCounts() const
    {
        return selectionCounts_;
    }

    /** Programs whose processProgram() returned an error. */
    std::size_t failedPrograms() const { return failedPrograms_; }

  private:
    support::StatusOr<features::RawWindow>
    readWindow(const features::ProgramFeatures &prog,
               const core::Hmd &det, std::size_t epoch_index,
               RuntimeReport &report);

    const core::Rhmd &pool_;
    RuntimeConfig config_;
    FaultInjector injector_;
    HealthMonitor health_;
    Rng rng_;
    std::vector<std::size_t> selectionCounts_;
    std::size_t failedPrograms_ = 0;
    std::size_t admittedPrograms_ = 0;
    std::size_t rejectedPrograms_ = 0;
};

} // namespace rhmd::runtime

#endif // RHMD_RUNTIME_RUNTIME_HH
