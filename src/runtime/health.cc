/**
 * @file
 * Health monitor implementation.
 */

#include "runtime/health.hh"

#include "support/logging.hh"
#include "support/metrics.hh"

namespace rhmd::runtime
{

namespace
{

/**
 * Process-wide count of health transitions by kind. The monitor's
 * own event log is per-instance and unbounded; these four counters
 * are what a deployment watches. Driven by the runtime's seeded
 * fault stream, so Deterministic.
 */
void
countHealthEvent(HealthEvent::Kind kind)
{
    static support::Counter &failures = support::metrics().counter(
        "health.failures", "detector failures recorded");
    static support::Counter &quarantines = support::metrics().counter(
        "health.quarantines", "detectors sent to quarantine");
    static support::Counter &probations = support::metrics().counter(
        "health.probations", "quarantine cool-downs elapsed");
    static support::Counter &recoveries = support::metrics().counter(
        "health.recoveries", "detectors recovered from probation");
    switch (kind) {
      case HealthEvent::Kind::Failure: failures.add(1); return;
      case HealthEvent::Kind::Quarantine: quarantines.add(1); return;
      case HealthEvent::Kind::Probation: probations.add(1); return;
      case HealthEvent::Kind::Recovery: recoveries.add(1); return;
    }
    rhmd_panic("bad health event kind");
}

} // namespace

std::string_view
healthName(DetectorHealth health)
{
    switch (health) {
      case DetectorHealth::Healthy: return "healthy";
      case DetectorHealth::Quarantined: return "quarantined";
      case DetectorHealth::Probation: return "probation";
    }
    rhmd_panic("bad health state");
}

std::string_view
healthEventName(HealthEvent::Kind kind)
{
    switch (kind) {
      case HealthEvent::Kind::Failure: return "failure";
      case HealthEvent::Kind::Quarantine: return "quarantine";
      case HealthEvent::Kind::Probation: return "probation";
      case HealthEvent::Kind::Recovery: return "recovery";
    }
    rhmd_panic("bad health event kind");
}

HealthMonitor::HealthMonitor(std::size_t pool_size,
                             const HealthConfig &config)
    : config_(config), states_(pool_size)
{
    fatal_if(pool_size == 0, "HealthMonitor needs a non-empty pool");
    fatal_if(config_.failureThreshold == 0,
             "failure threshold must be positive");
    fatal_if(config_.probationSuccesses == 0,
             "probation success count must be positive");
}

void
HealthMonitor::tick()
{
    ++epoch_;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        DetectorState &state = states_[i];
        if (state.health == DetectorHealth::Quarantined &&
            epoch_ - state.quarantinedAt >= config_.quarantineEpochs) {
            state.health = DetectorHealth::Probation;
            state.probationStreak = 0;
            state.consecutiveFailures = 0;
            events_.push_back({epoch_, i, HealthEvent::Kind::Probation,
                               "quarantine cool-down elapsed"});
            countHealthEvent(HealthEvent::Kind::Probation);
        }
    }
}

void
HealthMonitor::recordSuccess(std::size_t detector)
{
    DetectorState &state = states_.at(detector);
    state.consecutiveFailures = 0;
    if (state.health == DetectorHealth::Probation) {
        if (++state.probationStreak >= config_.probationSuccesses) {
            state.health = DetectorHealth::Healthy;
            events_.push_back({epoch_, detector,
                               HealthEvent::Kind::Recovery,
                               "probation passed"});
            countHealthEvent(HealthEvent::Kind::Recovery);
        }
    }
}

void
HealthMonitor::quarantine(std::size_t detector, const std::string &why)
{
    DetectorState &state = states_[detector];
    state.health = DetectorHealth::Quarantined;
    state.quarantinedAt = epoch_;
    state.probationStreak = 0;
    events_.push_back({epoch_, detector, HealthEvent::Kind::Quarantine,
                       why});
    countHealthEvent(HealthEvent::Kind::Quarantine);
}

void
HealthMonitor::recordFailure(std::size_t detector,
                             const std::string &why)
{
    DetectorState &state = states_.at(detector);
    ++state.totalFailures;
    ++state.consecutiveFailures;
    state.probationStreak = 0;
    events_.push_back({epoch_, detector, HealthEvent::Kind::Failure,
                       why});
    countHealthEvent(HealthEvent::Kind::Failure);
    if (state.health == DetectorHealth::Probation) {
        // One strike on probation: straight back to quarantine.
        quarantine(detector, "failed during probation: " + why);
        return;
    }
    if (state.health == DetectorHealth::Healthy &&
        state.consecutiveFailures >= config_.failureThreshold) {
        quarantine(detector, why);
    }
}

DetectorHealth
HealthMonitor::health(std::size_t detector) const
{
    return states_.at(detector).health;
}

bool
HealthMonitor::available(std::size_t detector) const
{
    return states_.at(detector).health != DetectorHealth::Quarantined;
}

std::size_t
HealthMonitor::availableCount() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < states_.size(); ++i)
        n += available(i) ? 1 : 0;
    return n;
}

std::size_t
HealthMonitor::quarantinedCount() const
{
    return states_.size() - availableCount();
}

support::StatusOr<std::vector<double>>
HealthMonitor::effectivePolicy(const std::vector<double> &base) const
{
    panic_if(base.size() != states_.size(),
             "policy size does not match the monitored pool");
    std::vector<double> policy(base.size(), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (available(i)) {
            policy[i] = base[i];
            total += base[i];
        }
    }
    if (total <= 0.0)
        return support::unavailableError(
            "every base detector is quarantined; the pool cannot "
            "classify");
    for (double &p : policy)
        p /= total;
    return policy;
}

std::size_t
HealthMonitor::failureCount(std::size_t detector) const
{
    return states_.at(detector).totalFailures;
}

} // namespace rhmd::runtime
