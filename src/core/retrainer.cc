/**
 * @file
 * Retraining studies implementation.
 */

#include "core/retrainer.hh"

#include <cmath>

#include "ml/metrics.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/tracing.hh"

namespace rhmd::core
{

namespace
{

/** Append every window of @p prog (at @p period) with @p label. */
void
appendWindows(const features::ProgramFeatures &prog, std::uint32_t period,
              int label,
              std::vector<const features::RawWindow *> &windows,
              std::vector<int> &labels)
{
    for (const features::RawWindow &window : prog.windows(period)) {
        windows.push_back(&window);
        labels.push_back(label);
    }
}

/** Fresh, untrained detector with the experiment's usual shape. */
HmdConfig
detectorConfig(const std::string &algorithm, features::FeatureKind kind,
               std::uint32_t period, std::size_t top_k,
               std::uint64_t seed)
{
    HmdConfig config;
    config.algorithm = algorithm;
    features::FeatureSpec spec;
    spec.kind = kind;
    spec.period = period;
    config.specs = {spec};
    config.opcodeTopK = top_k;
    config.seed = seed;
    return config;
}

/** Window-level accuracy of a detector on a labeled window set. */
double
windowAccuracy(const Hmd &detector,
               const std::vector<const features::RawWindow *> &windows,
               const std::vector<int> &labels)
{
    std::size_t correct = 0;
    for (std::size_t i = 0; i < windows.size(); ++i)
        correct += detector.windowDecision(*windows[i]) == labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(windows.size());
}

} // namespace

std::vector<RetrainPoint>
retrainSweep(const Experiment &exp, const RetrainConfig &config)
{
    const support::ScopedSpan span("retrain_sweep");
    const auto &split = exp.split();
    const std::uint32_t period = config.period;

    // 1. Victim and its reverse-engineered proxy (the attacker's
    //    model that drives the evasive rewriting).
    const std::unique_ptr<Hmd> victim =
        exp.trainVictim(config.algorithm, config.kind, period,
                        config.seed);
    ProxyConfig proxy_config;
    proxy_config.algorithm = "NN";
    features::FeatureSpec proxy_spec;
    proxy_spec.kind = config.kind;
    proxy_spec.period = period;
    proxy_config.specs = {proxy_spec};
    proxy_config.opcodeTopK = exp.config().opcodeTopK;
    proxy_config.seed = config.seed ^ 0x9e37ULL;
    const std::unique_ptr<Hmd> proxy = buildProxy(
        *victim, exp.corpus(), split.attackerTrain, proxy_config);

    // 2. Evasive variants of training and test malware.
    const std::vector<std::size_t> train_mal =
        exp.malwareOf(split.victimTrain);
    const std::vector<std::size_t> train_ben =
        exp.benignOf(split.victimTrain);
    const std::vector<std::size_t> test_mal =
        exp.malwareOf(split.attackerTest);
    const std::vector<std::size_t> test_ben =
        exp.benignOf(split.attackerTest);

    const std::vector<features::ProgramFeatures> evasive_train =
        exp.extractEvasive(train_mal, config.evasion, proxy.get());
    const std::vector<features::ProgramFeatures> evasive_test =
        exp.extractEvasive(test_mal, config.evasion, proxy.get());

    // 3. Sweep the evasive share of the malware training set.
    std::vector<RetrainPoint> points;
    points.reserve(config.fractions.size());
    for (double fraction : config.fractions) {
        const auto n_evasive = static_cast<std::size_t>(
            std::lround(fraction *
                        static_cast<double>(train_mal.size())));

        std::vector<const features::RawWindow *> windows;
        std::vector<int> labels;
        for (std::size_t idx : train_ben)
            appendWindows(exp.corpus().programs[idx], period, 0,
                          windows, labels);
        for (std::size_t i = 0; i < train_mal.size(); ++i) {
            const features::ProgramFeatures &prog = i < n_evasive
                ? evasive_train[i]
                : exp.corpus().programs[train_mal[i]];
            appendWindows(prog, period, 1, windows, labels);
        }

        Hmd retrained(detectorConfig(config.algorithm, config.kind,
                                     period, exp.config().opcodeTopK,
                                     config.seed + 1000));
        retrained.train(windows, labels);

        RetrainPoint point;
        point.evasiveFrac = fraction;
        point.sensEvasive =
            Experiment::detectionRate(retrained, evasive_test);
        point.sensUnmodified =
            exp.detectionRateOn(retrained, test_mal);
        point.specificity =
            1.0 - exp.detectionRateOn(retrained, test_ben);
        points.push_back(point);
    }
    return points;
}

std::vector<GenerationPoint>
evadeRetrainGame(const Experiment &exp, const GameConfig &config)
{
    const support::ScopedSpan span("game");
    const auto &split = exp.split();
    const std::uint32_t period = config.period;

    const std::vector<std::size_t> train_mal =
        exp.malwareOf(split.victimTrain);
    const std::vector<std::size_t> train_ben =
        exp.benignOf(split.victimTrain);
    const std::vector<std::size_t> test_mal =
        exp.malwareOf(split.attackerTest);
    const std::vector<std::size_t> test_ben =
        exp.benignOf(split.attackerTest);

    // Per-generation evasive variants (training- and test-side).
    std::vector<std::vector<features::ProgramFeatures>> evasive_train;
    std::vector<std::vector<features::ProgramFeatures>> evasive_test;

    std::vector<GenerationPoint> points;
    for (std::size_t gen = 1; gen <= config.generations; ++gen) {
        const support::ScopedSpan gen_span("generation");
        // Train this generation on original data plus every earlier
        // generation's evasive malware.
        std::vector<const features::RawWindow *> windows;
        std::vector<int> labels;
        for (std::size_t idx : train_ben)
            appendWindows(exp.corpus().programs[idx], period, 0,
                          windows, labels);
        for (std::size_t idx : train_mal)
            appendWindows(exp.corpus().programs[idx], period, 1,
                          windows, labels);
        for (const auto &generation : evasive_train) {
            for (const features::ProgramFeatures &prog : generation)
                appendWindows(prog, period, 1, windows, labels);
        }

        Hmd detector(detectorConfig(config.algorithm, config.kind,
                                    period, exp.config().opcodeTopK,
                                    config.seed + gen));
        {
            const support::ScopedSpan train_span("train");
            detector.train(windows, labels);
        }

        GenerationPoint point;
        point.generation = static_cast<int>(gen);
        {
            const support::ScopedSpan eval_span("evaluate");
            point.trainAccuracy =
                windowAccuracy(detector, windows, labels);
            point.specificity =
                1.0 - exp.detectionRateOn(detector, test_ben);
            point.sensUnmodified =
                exp.detectionRateOn(detector, test_mal);
            point.sensPreviousGen = evasive_test.empty()
                ? -1.0
                : Experiment::detectionRate(detector,
                                            evasive_test.back());
        }

        // The attacker reverse-engineers this generation and crafts
        // new evasive malware against the proxy.
        ProxyConfig proxy_config;
        proxy_config.algorithm = "NN";
        features::FeatureSpec proxy_spec;
        proxy_spec.kind = config.kind;
        proxy_spec.period = period;
        proxy_config.specs = {proxy_spec};
        proxy_config.opcodeTopK = exp.config().opcodeTopK;
        proxy_config.seed = config.seed ^ (gen * 0x51ULL);
        std::unique_ptr<Hmd> proxy;
        {
            const support::ScopedSpan reveng_span("reveng");
            proxy = buildProxy(detector, exp.corpus(),
                               split.attackerTrain, proxy_config);
        }

        EvasionPlan plan = config.evasion;
        plan.seed = config.evasion.seed + gen;
        {
            const support::ScopedSpan evade_span("evade");
            evasive_train.push_back(
                exp.extractEvasive(train_mal, plan, proxy.get()));
            evasive_test.push_back(
                exp.extractEvasive(test_mal, plan, proxy.get()));
        }

        point.sensCurrentGen =
            Experiment::detectionRate(detector, evasive_test.back());
        points.push_back(point);
    }
    return points;
}

support::StatusOr<std::unique_ptr<Rhmd>>
retrainPool(const features::FeatureCorpus &base,
            const std::vector<std::size_t> &train_idx,
            const std::vector<features::ProgramFeatures> &flagged,
            const PoolRetrainConfig &config)
{
    const support::ScopedSpan span("retrain_pool");
    if (config.specs.empty())
        return support::invalidArgumentError(
            "retrainPool needs at least one detector spec");
    for (std::size_t idx : train_idx) {
        if (idx >= base.programs.size())
            return support::invalidArgumentError(
                "retrainPool train index ", idx,
                " out of range (corpus has ", base.programs.size(),
                " programs)");
    }

    // One detector per spec, trained in parallel. Seeds come from a
    // SplitRng stream indexed by (generation, detector) so every
    // retrain round draws fresh, order-independent randomness — the
    // same derivation at any thread count, mirroring buildRhmd.
    const SplitRng seeds(config.seed);
    std::vector<std::unique_ptr<Hmd>> detectors =
        support::parallelMap<std::unique_ptr<Hmd>>(
            config.specs.size(), [&](std::size_t i) {
                HmdConfig hmd_config;
                hmd_config.algorithm = config.algorithm;
                hmd_config.specs = {config.specs[i]};
                hmd_config.opcodeTopK = config.opcodeTopK;
                hmd_config.seed =
                    seeds.seedAt((config.generation << 16) | i);
                auto det = std::make_unique<Hmd>(hmd_config);

                std::vector<const features::RawWindow *> windows;
                std::vector<int> labels;
                collectWindows(base, train_idx,
                               config.specs[i].period, windows,
                               labels);
                for (const features::ProgramFeatures &prog : flagged)
                    appendWindows(prog, config.specs[i].period, 1,
                                  windows, labels);
                det->train(windows, labels);
                return det;
            });

    return tryMakeRhmd(std::move(detectors), {},
                       config.seed ^ (config.generation * 0x9e37ULL) ^
                           0xabcdefULL);
}

} // namespace rhmd::core
