/**
 * @file
 * PAC bound computation.
 */

#include "core/pac.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rhmd::core
{

PacReport
computePac(const Rhmd &pool, const features::FeatureCorpus &corpus,
           const std::vector<std::size_t> &test_idx)
{
    const std::size_t n = pool.poolSize();
    const std::uint32_t epoch = pool.decisionPeriod();
    fatal_if(test_idx.empty(), "computePac needs test programs");

    PacReport report;
    report.baseErrors.assign(n, 0.0);
    report.disagreement.assign(n, std::vector<double>(n, 0.0));

    std::vector<std::vector<double>> disagree_counts(
        n, std::vector<double>(n, 0.0));
    std::vector<double> error_counts(n, 0.0);
    std::size_t total_epochs = 0;

    std::vector<int> decisions(n);
    for (std::size_t idx : test_idx) {
        const features::ProgramFeatures &prog = corpus.programs[idx];
        const int truth = prog.malware ? 1 : 0;
        const std::size_t n_epochs = prog.windows(epoch).size();

        for (std::size_t e = 0; e < n_epochs; ++e) {
            // Each base detector's decision for this epoch: its own
            // leading sub-window, as when it is the selected one.
            for (std::size_t i = 0; i < n; ++i) {
                const Hmd &det = *pool.detectors()[i];
                const std::uint32_t period = det.decisionPeriod();
                const std::size_t w = e * (epoch / period);
                decisions[i] =
                    det.windowDecision(prog.windows(period)[w]);
            }
            ++total_epochs;
            for (std::size_t i = 0; i < n; ++i) {
                error_counts[i] += decisions[i] != truth ? 1.0 : 0.0;
                for (std::size_t j = i + 1; j < n; ++j) {
                    if (decisions[i] != decisions[j]) {
                        disagree_counts[i][j] += 1.0;
                        disagree_counts[j][i] += 1.0;
                    }
                }
            }
        }
    }
    fatal_if(total_epochs == 0, "no epochs in the test programs");

    const double denom = static_cast<double>(total_epochs);
    for (std::size_t i = 0; i < n; ++i) {
        report.baseErrors[i] = error_counts[i] / denom;
        for (std::size_t j = 0; j < n; ++j)
            report.disagreement[i][j] = disagree_counts[i][j] / denom;
    }

    const std::vector<double> &policy = pool.policy();
    report.baselinePoolError = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        report.baselinePoolError += policy[i] * report.baseErrors[i];

    // Lower bound: the attacker's best single hypothesis can at best
    // match one base detector exactly; it still errs (w.r.t. the
    // randomized labels) whenever a *different* detector is selected
    // and disagrees.
    report.lowerBound = 2.0;
    for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i)
                sum += policy[j] * report.disagreement[i][j];
        }
        report.lowerBound = std::min(report.lowerBound, sum);
    }

    report.upperBound =
        2.0 * *std::max_element(report.baseErrors.begin(),
                                report.baseErrors.end());
    return report;
}

support::Status
checkPacFloor(const Rhmd &candidate, const Rhmd &current,
              const features::FeatureCorpus &corpus,
              const std::vector<std::size_t> &test_idx, double tolerance)
{
    fatal_if(tolerance < 0.0, "PAC floor tolerance must be >= 0");
    // An empty gate corpus is a data-plane condition (mis-built split,
    // drained corpus), not a caller bug: surface it as a rejection the
    // promotion path can report instead of killing the server.
    if (test_idx.empty()) {
        return support::invalidArgumentError(
            "PAC floor check needs test programs");
    }
    const PacReport cand = computePac(candidate, corpus, test_idx);
    const PacReport cur = computePac(current, corpus, test_idx);
    if (cand.lowerBound + tolerance < cur.lowerBound) {
        return support::failedPreconditionError(
            "candidate pool worsens the provable reverse-engineering "
            "floor: Theorem-1 lower bound ",
            cand.lowerBound, " vs current ", cur.lowerBound,
            " (tolerance ", tolerance, ")");
    }
    return support::Status();
}

} // namespace rhmd::core
