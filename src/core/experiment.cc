/**
 * @file
 * Experiment pipeline implementation.
 */

#include "core/experiment.hh"

#include "corpus/cache.hh"
#include "corpus/reader.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/tracing.hh"

namespace rhmd::core
{

namespace
{

support::Counter &
replayWindowsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "corpus.replay_windows", "feature windows replayed from corpus files");
    return c;
}

support::Counter &
replayBytesCounter()
{
    static support::Counter &c = support::metrics().counter(
        "corpus.replay_bytes", "corpus file bytes mapped for replay");
    return c;
}

} // namespace

trace::GeneratorConfig
generatorConfigOf(const ExperimentConfig &config)
{
    trace::GeneratorConfig gen;
    gen.seed = config.seed;
    gen.benignCount = config.benignCount;
    gen.malwareCount = config.malwareCount;
    gen.commonBlend = config.commonBlend;
    gen.hardBlend = config.hardBlend;
    gen.hardFrac = config.hardFrac;
    return gen;
}

features::ExtractConfig
extractConfigOf(const ExperimentConfig &config)
{
    features::ExtractConfig extract;
    extract.periods = config.periods;
    extract.traceInsts = config.traceInsts;
    return extract;
}

Experiment
Experiment::build(const ExperimentConfig &config)
{
    const support::ScopedSpan span("experiment");
    Experiment exp;
    exp.config_ = config;

    // Programs are always generated — they are cheap relative to
    // execution, and evasion rewrites (extractEvasive) need the
    // program bodies even when extraction replays from a corpus file.
    {
        const support::ScopedSpan generate_span("generate");
        const trace::ProgramGenerator generator(generatorConfigOf(config));
        exp.programs_ = generator.generateCorpus();
    }

    exp.extract_ = extractConfigOf(config);

    const std::string replay_path = config.corpusPath.empty()
                                        ? corpus::resolveReplayPath(config)
                                        : config.corpusPath;
    if (!replay_path.empty()) {
        const support::ScopedSpan replay_span("replay");
        auto reader = corpus::CorpusReader::open(replay_path);
        fatal_if(!reader.isOk(), "cannot replay corpus '", replay_path,
                 "': ", reader.status().message());
        const std::uint64_t want = corpus::configKey(config);
        fatal_if(reader->configKey() != want, "corpus '", replay_path,
                 "' was generated for a different configuration (file is ",
                 corpus::cacheFileName(reader->configKey()),
                 ", this run needs ", corpus::cacheFileName(want), ")");
        exp.corpus_ = reader->materialize();
        replayWindowsCounter().add(reader->windowTotal());
        replayBytesCounter().add(reader->fileBytes());
        corpus::ReplayInfo &info = corpus::replayInfo();
        info.active = true;
        info.path = replay_path;
        info.formatVersion = reader->formatVersion();
        info.contentHash = reader->contentHash();
    } else {
        exp.corpus_ = features::extractCorpus(exp.programs_, exp.extract_);
    }

    {
        const support::ScopedSpan split_span("split");
        exp.split_ = features::stratifiedSplit(exp.corpus_,
                                               config.seed ^ 0x5117ULL);
    }
    return exp;
}

std::vector<std::size_t>
Experiment::malwareOf(const std::vector<std::size_t> &idx) const
{
    std::vector<std::size_t> out;
    for (std::size_t i : idx) {
        if (corpus_.programs[i].malware)
            out.push_back(i);
    }
    return out;
}

std::vector<std::size_t>
Experiment::benignOf(const std::vector<std::size_t> &idx) const
{
    std::vector<std::size_t> out;
    for (std::size_t i : idx) {
        if (!corpus_.programs[i].malware)
            out.push_back(i);
    }
    return out;
}

std::unique_ptr<Hmd>
Experiment::trainVictim(const std::string &algorithm,
                        features::FeatureKind kind, std::uint32_t period,
                        std::uint64_t seed) const
{
    HmdConfig hmd_config;
    hmd_config.algorithm = algorithm;
    features::FeatureSpec spec;
    spec.kind = kind;
    spec.period = period;
    hmd_config.specs = {spec};
    hmd_config.opcodeTopK = config_.opcodeTopK;
    hmd_config.seed = seed;

    auto victim = std::make_unique<Hmd>(hmd_config);
    victim->trainOnPrograms(corpus_, split_.victimTrain);
    return victim;
}

std::vector<features::ProgramFeatures>
Experiment::extractEvasive(const std::vector<std::size_t> &program_idx,
                           const EvasionPlan &plan, const Hmd *model,
                           EvasionAudit *audit) const
{
    for (std::size_t idx : program_idx)
        panic_if(idx >= programs_.size(), "program index out of range");

    // Rewrite + re-execute per program. The injection RNG is seeded
    // with (plan.seed ^ program.seed), so variants are independent
    // across indices; per-program audits are folded in index order so
    // the counters match the serial run exactly.
    struct Variant
    {
        features::ProgramFeatures features;
        EvasionAudit audit;
    };
    std::vector<features::ProgramFeatures> out;
    out.reserve(program_idx.size());
    std::vector<Variant> variants =
        support::parallelMap<Variant>(
            program_idx.size(), [&](std::size_t i) {
                Variant v;
                const trace::Program rewritten = evadeRewrite(
                    programs_[program_idx[i]], plan, model, &v.audit);
                v.features =
                    features::extractProgram(rewritten, extract_);
                return v;
            });
    for (Variant &v : variants) {
        if (audit != nullptr) {
            audit->admittedSites += v.audit.admittedSites;
            audit->rejectedSites += v.audit.rejectedSites;
            audit->verifiedPrograms += v.audit.verifiedPrograms;
        }
        out.push_back(std::move(v.features));
    }
    return out;
}

double
Experiment::detectionRate(
    Detector &detector,
    const std::vector<features::ProgramFeatures> &programs)
{
    fatal_if(programs.empty(), "detection rate over an empty set");
    std::size_t flagged = 0;
    for (const features::ProgramFeatures &prog : programs)
        flagged += detector.programDecision(prog);
    return static_cast<double>(flagged) /
           static_cast<double>(programs.size());
}

double
Experiment::detectionRateOn(Detector &detector,
                            const std::vector<std::size_t> &idx) const
{
    fatal_if(idx.empty(), "detection rate over an empty set");
    std::size_t flagged = 0;
    for (std::size_t i : idx)
        flagged += detector.programDecision(corpus_.programs[i]);
    return static_cast<double>(flagged) /
           static_cast<double>(idx.size());
}

} // namespace rhmd::core
