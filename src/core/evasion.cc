/**
 * @file
 * Evasion rewriting implementation.
 */

#include "core/evasion.hh"

#include <algorithm>
#include <utility>

#include "analysis/preservation.hh"
#include "analysis/verifier.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "uarch/perf_counters.hh"

namespace rhmd::core
{

const char *
evasionStrategyName(EvasionStrategy strategy)
{
    switch (strategy) {
      case EvasionStrategy::Random:
        return "random";
      case EvasionStrategy::LeastWeight:
        return "least_weight";
      case EvasionStrategy::Weighted:
        return "weighted";
    }
    rhmd_panic("bad evasion strategy");
}

namespace
{

/** Opcode that drives an architectural event, or Nop when none can. */
trace::OpClass
eventDriverOpcode(uarch::Event event)
{
    switch (event) {
      case uarch::Event::Loads:
        return trace::OpClass::Load;
      case uarch::Event::Stores:
        return trace::OpClass::Store;
      case uarch::Event::Syscalls:
        return trace::OpClass::SystemOp;
      case uarch::Event::Atomics:
        return trace::OpClass::Xchg;
      default:
        // Branch/cache/alignment events cannot be driven by a
        // semantics-free straight-line payload; dilute instead.
        return trace::OpClass::Nop;
    }
}

/**
 * Run one rewrite with every candidate site routed through a
 * semantic-preservation gate, verify the result, and fold the gate's
 * counters into @p audit. @p rewrite receives the gate's SiteFilter
 * and returns the rewritten program.
 */
template <typename Rewrite>
trace::Program
gatedRewrite(const trace::Program &malware, EvasionAudit *audit,
             Rewrite &&rewrite)
{
    analysis::InjectionGate gate(malware);
    trace::Program out =
        std::forward<Rewrite>(rewrite)(gate.filter());
    const analysis::Report report = analysis::verifyProgram(out);
    if (!report.clean()) {
        for (const analysis::Finding &finding : report.findings()) {
            if (finding.severity == analysis::Severity::Error)
                rhmd_panic("gated evasion rewrite failed verification (",
                           report.summary(), "): ", finding.message);
        }
    }
    if (audit != nullptr) {
        audit->admittedSites += gate.admitted();
        audit->rejectedSites += gate.rejected();
        audit->verifiedPrograms += 1;
    }

    // Process-wide mirror of the per-call EvasionAudit: callers that
    // pass audit == nullptr (most benches) still contribute here.
    // Gate decisions depend only on program structure and the seeded
    // rewrite stream, so these are Deterministic.
    static support::Counter &admitted = support::metrics().counter(
        "evasion.sites_admitted",
        "injection sites admitted by the preservation gate");
    static support::Counter &rejected = support::metrics().counter(
        "evasion.sites_rejected",
        "injection sites rejected by the preservation gate");
    static support::Counter &verified = support::metrics().counter(
        "evasion.programs_verified",
        "rewritten programs run through the verifier");
    admitted.add(gate.admitted());
    rejected.add(gate.rejected());
    verified.add(1);
    return out;
}

} // namespace

std::vector<trace::StaticInst>
modelPayload(const Hmd &model, std::size_t count)
{
    fatal_if(!model.trained(), "modelPayload needs a trained model");
    fatal_if(model.specs().size() != 1,
             "modelPayload targets single-spec detectors");
    const features::FeatureSpec &spec = model.specs().front();

    switch (spec.kind) {
      case features::FeatureKind::Instructions: {
        const trace::OpClass op =
            model.negativeWeightOpcodes().front().first;
        return std::vector<trace::StaticInst>(
            count, trace::makePayloadInst(op));
      }
      case features::FeatureKind::Memory: {
        // Most benign-weighted delta bin -> loads at that distance.
        const std::vector<double> weights = model.effectiveRawWeights();
        std::size_t best_bin = 0;
        for (std::size_t b = 1; b < weights.size(); ++b) {
            if (weights[b] < weights[best_bin])
                best_bin = b;
        }
        const std::int32_t stride = best_bin == 0
            ? 64  // bin 0 is delta-0; nearest injectable behaviour
            : static_cast<std::int32_t>(1U << std::min<std::size_t>(
                  best_bin - 1, 20));
        return std::vector<trace::StaticInst>(
            count, trace::makePayloadInst(trace::OpClass::Load,
                                          std::max(stride, 1)));
      }
      case features::FeatureKind::Architectural: {
        const std::vector<double> weights = model.effectiveRawWeights();
        std::size_t best_event = 0;
        for (std::size_t e = 1; e < weights.size(); ++e) {
            if (weights[e] < weights[best_event])
                best_event = e;
        }
        const trace::OpClass op =
            eventDriverOpcode(static_cast<uarch::Event>(best_event));
        return std::vector<trace::StaticInst>(
            count, trace::makePayloadInst(op));
      }
    }
    rhmd_panic("bad feature kind");
}

trace::Program
evadeAllDetectors(const trace::Program &malware,
                  const std::vector<const Hmd *> &models,
                  trace::InjectLevel level, std::size_t count_per_model,
                  EvasionAudit *audit)
{
    fatal_if(models.empty(), "evadeAllDetectors needs models");
    if (count_per_model == 0)
        return malware;
    std::vector<trace::StaticInst> payload;
    payload.reserve(models.size() * count_per_model);
    for (const Hmd *model : models) {
        fatal_if(model == nullptr, "null model");
        const auto part = modelPayload(*model, count_per_model);
        payload.insert(payload.end(), part.begin(), part.end());
    }
    return gatedRewrite(malware, audit,
                        [&](const trace::SiteFilter &filter) {
                            return trace::Injector::apply(
                                malware, level, payload, filter);
                        });
}

trace::Program
evadeRewrite(const trace::Program &malware, const EvasionPlan &plan,
             const Hmd *model, EvasionAudit *audit)
{
    if (plan.count == 0)
        return malware;

    switch (plan.strategy) {
      case EvasionStrategy::Random:
        return gatedRewrite(
            malware, audit, [&](const trace::SiteFilter &filter) {
                return trace::Injector::applyRandom(
                    malware, plan.level, plan.count,
                    plan.seed ^ malware.seed, filter);
            });
      case EvasionStrategy::LeastWeight: {
        fatal_if(model == nullptr,
                 "least-weight evasion needs a detector model");
        const auto candidates = model->negativeWeightOpcodes();
        // candidates are sorted by descending |weight|; the paper's
        // strategy injects only "the instruction with the least
        // weight in the vector".
        const trace::OpClass op = candidates.front().first;
        std::vector<trace::StaticInst> payload(
            plan.count, trace::makePayloadInst(op));
        return gatedRewrite(
            malware, audit, [&](const trace::SiteFilter &filter) {
                return trace::Injector::apply(malware, plan.level,
                                              payload, filter);
            });
      }
      case EvasionStrategy::Weighted: {
        fatal_if(model == nullptr,
                 "weighted evasion needs a detector model");
        return gatedRewrite(
            malware, audit, [&](const trace::SiteFilter &filter) {
                return trace::Injector::applyWeighted(
                    malware, plan.level, plan.count,
                    model->negativeWeightOpcodes(),
                    plan.seed ^ malware.seed, filter);
            });
      }
    }
    rhmd_panic("bad evasion strategy");
}

} // namespace rhmd::core
