/**
 * @file
 * HMD implementation.
 */

#include "core/hmd.hh"

#include <algorithm>

#include "ml/logistic_regression.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/serialize.hh"
#include "ml/svm.hh"
#include "support/logging.hh"
#include "trace/injection.hh"

namespace rhmd::core
{

int
Detector::programDecision(const features::ProgramFeatures &prog)
{
    const std::vector<int> decisions = decide(prog);
    panic_if(decisions.empty(), "no decisions for program '", prog.name,
             "'");
    std::size_t flagged = 0;
    for (int d : decisions)
        flagged += d;
    return 2 * flagged >= decisions.size() ? 1 : 0;
}

Hmd::Hmd(HmdConfig config)
    : config_(std::move(config))
{
    fatal_if(config_.specs.empty(), "Hmd needs at least one feature spec");
    const std::uint32_t period = config_.specs.front().period;
    for (const features::FeatureSpec &spec : config_.specs)
        fatal_if(spec.period != period,
                 "all specs of one Hmd must share a period");
}

void
Hmd::train(const std::vector<const features::RawWindow *> &windows,
           const std::vector<int> &labels)
{
    panic_if(windows.size() != labels.size(), "train: size mismatch");
    fatal_if(windows.empty(), "cannot train an Hmd without windows");

    std::size_t n_pos = 0;
    for (int label : labels)
        n_pos += label;
    const bool mixed = n_pos > 0 && n_pos < labels.size();

    // Instructions feature selection, when not already pinned. With
    // single-class labels (a degenerate victim that flags everything
    // one way) there is no delta to rank, so fall back to the first
    // K opcode classes.
    for (features::FeatureSpec &spec : config_.specs) {
        if (spec.kind != features::FeatureKind::Instructions ||
            !spec.opcodeSel.empty()) {
            continue;
        }
        if (mixed) {
            std::vector<bool> label_bits(labels.size());
            for (std::size_t i = 0; i < labels.size(); ++i)
                label_bits[i] = labels[i] == 1;
            if (config_.opcodePoolK > config_.opcodeTopK) {
                // Random subspace: top-poolK ranking, then a seeded
                // draw of topK of them.
                const std::vector<std::size_t> pool =
                    features::selectTopDeltaOpcodes(
                        windows, label_bits,
                        std::min(config_.opcodePoolK,
                                 trace::kNumOpClasses));
                Rng rng(config_.seed ^ 0x5b5f4ceULL);
                const std::vector<std::size_t> perm =
                    rng.permutation(pool.size());
                spec.opcodeSel.clear();
                for (std::size_t k = 0; k < config_.opcodeTopK; ++k)
                    spec.opcodeSel.push_back(pool[perm[k]]);
            } else {
                spec.opcodeSel = features::selectTopDeltaOpcodes(
                    windows, label_bits, config_.opcodeTopK);
            }
        } else {
            spec.opcodeSel.resize(config_.opcodeTopK);
            for (std::size_t k = 0; k < config_.opcodeTopK; ++k)
                spec.opcodeSel[k] = k;
        }
    }

    ml::Dataset raw;
    for (std::size_t i = 0; i < windows.size(); ++i)
        raw.add(features::combinedVector(config_.specs, *windows[i]),
                labels[i]);

    standardizer_ = ml::Standardizer::fit(raw);
    const ml::Dataset data = standardizer_.transform(raw);

    clf_ = ml::makeClassifier(config_.algorithm);
    Rng rng(config_.seed);
    clf_->train(data, rng);

    // Operating point: the balanced-accuracy optimum of the training
    // ROC. The paper operates "at or near" the accuracy optimum; our
    // corpus inherits its 1:2 benign:malware imbalance, where the
    // raw-accuracy optimum degenerates into flagging nearly
    // everything, so the balanced point is the faithful equivalent
    // of the paper's high-sensitivity/high-specificity operation.
    std::vector<double> scores;
    scores.reserve(data.size());
    for (const auto &x : data.x)
        scores.push_back(clf_->score(x));
    const bool both_classes =
        raw.positives() > 0 && raw.positives() < raw.size();
    threshold_ = both_classes
        ? ml::bestBalancedThreshold(scores, data.y)
        : 0.5;
}

void
Hmd::trainOnPrograms(const features::FeatureCorpus &corpus,
                     const std::vector<std::size_t> &program_idx)
{
    std::vector<const features::RawWindow *> windows;
    std::vector<int> labels;
    collectWindows(corpus, program_idx, decisionPeriod(), windows,
                   labels);
    train(windows, labels);
}

std::vector<double>
Hmd::featureVector(const features::RawWindow &window) const
{
    return standardizer_.apply(
        features::combinedVector(config_.specs, window));
}

std::size_t
Hmd::featureDim() const
{
    return features::combinedDim(config_.specs);
}

void
Hmd::fillFeatureRow(const features::RawWindow &window, double *row) const
{
    features::fillCombined(config_.specs, window, row);
    // Passing the row width keeps a standardizer fitted at a
    // different dimensionality from silently scaling past the end of
    // the row (it panics instead) — a truncated tail window still
    // fills featureDim() rate features, just from fewer instructions.
    standardizer_.applyInPlace(row, featureDim());
}

features::FeatureMatrix
Hmd::featureMatrix(
    const std::vector<const features::RawWindow *> &windows) const
{
    features::FeatureMatrix matrix(windows.size(), featureDim());
    for (std::size_t r = 0; r < windows.size(); ++r) {
        panic_if(windows[r] == nullptr, "null window in batch");
        fillFeatureRow(*windows[r], matrix.row(r));
    }
    // Hand scoreBatch the SoA view up front so the vector kernels
    // never fall back; padding rows stay zero and are never scored.
    matrix.buildSoa();
    return matrix;
}

std::vector<double>
Hmd::scoreWindows(
    const std::vector<const features::RawWindow *> &windows) const
{
    panic_if(!trained(), "Hmd queried before training");
    return clf_->scoreBatch(featureMatrix(windows));
}

double
Hmd::windowScore(const features::RawWindow &window) const
{
    panic_if(!trained(), "Hmd queried before training");
    return clf_->score(featureVector(window));
}

int
Hmd::windowDecision(const features::RawWindow &window) const
{
    return windowScore(window) >= threshold_ ? 1 : 0;
}

std::uint32_t
Hmd::decisionPeriod() const
{
    return config_.specs.front().period;
}

std::vector<int>
Hmd::decide(const features::ProgramFeatures &prog)
{
    const auto &windows = prog.windows(decisionPeriod());
    std::vector<int> decisions;
    decisions.reserve(windows.size());
    for (const features::RawWindow &window : windows)
        decisions.push_back(windowDecision(window));
    return decisions;
}

double
Hmd::programScore(const features::ProgramFeatures &prog) const
{
    const auto &windows = prog.windows(decisionPeriod());
    panic_if(windows.empty(), "program '", prog.name, "' has no windows");
    double total = 0.0;
    for (const features::RawWindow &window : windows)
        total += windowScore(window);
    return total / static_cast<double>(windows.size());
}

std::vector<double>
Hmd::effectiveRawWeights() const
{
    panic_if(!trained(), "weights requested before training");
    std::vector<double> standardized;
    if (const auto *lr = dynamic_cast<const ml::LogisticRegression *>(
            clf_.get())) {
        standardized = lr->weights();
    } else if (const auto *svm =
                   dynamic_cast<const ml::LinearSvm *>(clf_.get())) {
        standardized = svm->weights();
    } else if (const auto *mlp =
                   dynamic_cast<const ml::Mlp *>(clf_.get())) {
        standardized = mlp->collapsedWeights();
    } else {
        rhmd_fatal("classifier '", clf_->name(),
                   "' exposes no weight vector");
    }
    // d score / d raw_j = w_j / scale_j.
    std::vector<double> raw(standardized.size());
    for (std::size_t j = 0; j < raw.size(); ++j)
        raw[j] = standardized[j] / standardizer_.scale[j];
    return raw;
}

std::vector<std::pair<trace::OpClass, double>>
Hmd::negativeWeightOpcodes() const
{
    const std::vector<double> weights = effectiveRawWeights();
    std::vector<std::pair<trace::OpClass, double>> out;

    std::size_t offset = 0;
    for (const features::FeatureSpec &spec : config_.specs) {
        if (spec.kind == features::FeatureKind::Instructions) {
            for (std::size_t k = 0; k < spec.opcodeSel.size(); ++k) {
                const double w = weights[offset + k];
                const trace::OpClass op =
                    trace::opFromIndex(spec.opcodeSel[k]);
                // Control-flow and stack opcodes may well carry
                // negative weight (branch and stack rates are
                // discriminative), but the rewriter cannot insert
                // them without changing program semantics, so they
                // are not candidates.
                if (w < 0.0 && trace::isInjectable(op))
                    out.emplace_back(op, -w);
            }
        }
        offset += spec.dim();
    }
    fatal_if(out.empty(),
             "no negative-weight Instructions opcodes available "
             "(detector '", describe(), "')");
    // Deterministic descending-magnitude order.
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return out;
}

std::string
Hmd::describe() const
{
    std::string label = config_.algorithm + "/";
    for (std::size_t i = 0; i < config_.specs.size(); ++i) {
        if (i > 0)
            label += "+";
        label += config_.specs[i].describe();
    }
    return label;
}

void
collectWindows(const features::FeatureCorpus &corpus,
               const std::vector<std::size_t> &program_idx,
               std::uint32_t period,
               std::vector<const features::RawWindow *> &windows,
               std::vector<int> &labels)
{
    for (std::size_t idx : program_idx) {
        panic_if(idx >= corpus.programs.size(),
                 "program index out of range");
        const features::ProgramFeatures &prog = corpus.programs[idx];
        for (const features::RawWindow &window : prog.windows(period)) {
            windows.push_back(&window);
            labels.push_back(prog.malware ? 1 : 0);
        }
    }
}

} // namespace rhmd::core
