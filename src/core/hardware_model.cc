/**
 * @file
 * Hardware cost model implementation.
 */

#include "core/hardware_model.hh"

#include <set>

#include "support/logging.hh"

namespace rhmd::core
{

HwEstimate
estimateHardware(const std::vector<features::FeatureSpec> &specs,
                 const std::string &algorithm,
                 const CoreBaseline &baseline, const DatapathCosts &costs)
{
    fatal_if(specs.empty(), "hardware estimate needs at least one spec");
    fatal_if(algorithm != "LR" && algorithm != "NN",
             "hardware model covers LR and NN datapaths, not '",
             algorithm, "'");

    // Distinct feature kinds need collection units; periods share
    // them (the paper: "the collection logic and the detector
    // evaluation logic is shared").
    std::set<features::FeatureKind> kinds;
    for (const features::FeatureSpec &spec : specs)
        kinds.insert(spec.kind);

    HwEstimate out;
    for (features::FeatureKind kind : kinds) {
        switch (kind) {
          case features::FeatureKind::Instructions:
            out.logicElements += costs.instructionsUnitLes;
            break;
          case features::FeatureKind::Memory:
            out.logicElements += costs.memoryUnitLes;
            break;
          case features::FeatureKind::Architectural:
            out.logicElements += costs.architecturalUnitLes;
            break;
        }
    }

    // One shared MAC evaluation unit plus the control FSM.
    out.logicElements += costs.macUnitLes + costs.controlLes;

    // One weight set per base detector (feature x period); weights
    // live in SRAM, addressing costs a few LEs per extra set.
    for (const features::FeatureSpec &spec : specs) {
        const auto dim = static_cast<double>(
            spec.kind == features::FeatureKind::Instructions &&
                    spec.opcodeSel.empty()
                ? 16  // default selection width
                : spec.dim());
        double weights = dim + 1.0;  // + bias
        if (algorithm == "NN") {
            // hidden = dim neurons: dim*dim + dim hidden weights,
            // dim + 1 output weights.
            weights = dim * dim + 2.0 * dim + 1.0;
        }
        out.sramBits += weights * costs.weightBitsPerFeature;
        out.logicElements += costs.perWeightSetLes;
        if (algorithm == "NN")
            out.logicElements +=
                costs.nnExtraLesPerDetector /
                static_cast<double>(specs.size());
    }

    out.powerMw = out.logicElements * baseline.powerPerLeMw +
                  (out.sramBits / 1024.0) * baseline.powerPerSramKbitMw;
    out.areaOverheadPct =
        100.0 * out.logicElements / baseline.coreLogicElements;
    out.powerOverheadPct = 100.0 * out.powerMw / baseline.corePowerMw;
    return out;
}

} // namespace rhmd::core
