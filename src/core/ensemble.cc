/**
 * @file
 * Deterministic ensemble implementation.
 */

#include "core/ensemble.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/parallel.hh"

namespace rhmd::core
{

EnsembleHmd::EnsembleHmd(std::vector<std::unique_ptr<Hmd>> detectors)
    : detectors_(std::move(detectors))
{
    fatal_if(detectors_.empty(), "ensemble needs at least one detector");
    for (const auto &det : detectors_) {
        fatal_if(det == nullptr, "ensemble received a null detector");
        fatal_if(!det->trained(),
                 "ensemble detectors must be trained before combining");
    }
    epoch_ = 0;
    for (const auto &det : detectors_)
        epoch_ = std::max(epoch_, det->decisionPeriod());
    for (const auto &det : detectors_) {
        fatal_if(epoch_ % det->decisionPeriod() != 0,
                 "base period ", det->decisionPeriod(),
                 " does not divide the epoch length ", epoch_);
    }
}

std::uint32_t
EnsembleHmd::decisionPeriod() const
{
    return epoch_;
}

std::vector<int>
EnsembleHmd::decide(const features::ProgramFeatures &prog)
{
    const std::size_t n_epochs = prog.windows(epoch_).size();
    std::vector<int> decisions;
    decisions.reserve(n_epochs);
    for (std::size_t e = 0; e < n_epochs; ++e) {
        std::size_t votes = 0;
        for (const auto &det : detectors_) {
            const std::uint32_t period = det->decisionPeriod();
            const std::size_t index = e * (epoch_ / period);
            votes += det->windowDecision(prog.windows(period)[index]);
        }
        decisions.push_back(2 * votes >= detectors_.size() ? 1 : 0);
    }
    return decisions;
}

std::unique_ptr<EnsembleHmd>
buildEnsemble(const std::string &algorithm,
              const std::vector<features::FeatureSpec> &specs,
              const features::FeatureCorpus &corpus,
              const std::vector<std::size_t> &train_idx,
              std::size_t opcode_top_k, std::uint64_t seed)
{
    fatal_if(specs.empty(), "buildEnsemble needs at least one spec");
    // Base detectors already use index-derived seeds (seed + i + 1),
    // so they train independently and in parallel.
    std::vector<std::unique_ptr<Hmd>> pool =
        support::parallelMap<std::unique_ptr<Hmd>>(
            specs.size(), [&](std::size_t i) {
                HmdConfig config;
                config.algorithm = algorithm;
                config.specs = {specs[i]};
                config.opcodeTopK = opcode_top_k;
                config.seed = seed + i + 1;
                auto det = std::make_unique<Hmd>(config);
                det->trainOnPrograms(corpus, train_idx);
                return det;
            });
    return std::make_unique<EnsembleHmd>(std::move(pool));
}

} // namespace rhmd::core
