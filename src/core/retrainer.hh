/**
 * @file
 * Retraining studies (paper Sec. 6): mixing evasive malware into the
 * training set (Fig. 11) and the iterated evade-retrain game
 * (Fig. 13).
 */

#ifndef RHMD_CORE_RETRAINER_HH
#define RHMD_CORE_RETRAINER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/reverse_engineer.hh"
#include "core/rhmd.hh"

namespace rhmd::core
{

/** One row of the Fig. 11 sweep. */
struct RetrainPoint
{
    double evasiveFrac;       ///< evasive share of training malware
    double sensEvasive;       ///< sensitivity on evasive malware
    double sensUnmodified;    ///< sensitivity on unmodified malware
    double specificity;       ///< on regular programs
};

/** Parameters of the retraining sweep. */
struct RetrainConfig
{
    std::string algorithm = "LR";
    features::FeatureKind kind = features::FeatureKind::Instructions;
    std::uint32_t period = 10000;
    /**
     * Weighted injection is the paper's strategy of choice in the
     * retraining context ("it makes it more difficult to detect the
     * evasion if the detector is retrained") and is also robust to
     * proxy noise, since it spreads over every negative-weight
     * opcode instead of betting on one.
     */
    EvasionPlan evasion{EvasionStrategy::Weighted,
                        trace::InjectLevel::Block, 3, 99};
    /** Evasive shares of the malware training set to sweep. */
    std::vector<double> fractions{0.0,  0.05, 0.07, 0.10, 0.14,
                                  0.17, 0.20, 0.22, 0.25};
    std::uint64_t seed = 31;
};

/**
 * The Fig. 11 experiment. The victim is trained, reverse-engineered
 * (NN proxy at the true feature/period), and evasive variants of the
 * malware are generated against the proxy. For each requested
 * fraction, that share of the malware training programs is swapped
 * for its evasive variant, the detector is retrained from scratch,
 * and the three test-set rates are measured at program granularity.
 */
std::vector<RetrainPoint> retrainSweep(const Experiment &exp,
                                       const RetrainConfig &config);

/** One generation of the Fig. 13 game. */
struct GenerationPoint
{
    int generation;            ///< 1-based
    double specificity;        ///< regular programs
    double sensUnmodified;     ///< unmodified malware
    double sensCurrentGen;     ///< malware evading THIS detector
    double sensPreviousGen;    ///< previous generation's evasive malware
    double trainAccuracy;      ///< detector fit quality (diagnostic)
};

/** Parameters of the generations game. */
struct GameConfig
{
    std::string algorithm = "NN";
    features::FeatureKind kind = features::FeatureKind::Instructions;
    std::uint32_t period = 10000;
    std::size_t generations = 7;
    EvasionPlan evasion{EvasionStrategy::Weighted,
                        trace::InjectLevel::Block, 3, 123};
    std::uint64_t seed = 47;
};

/**
 * The Fig. 13 evade-retrain game: generation g's detector is trained
 * on the original data plus every earlier generation's evasive
 * malware, then reverse-engineered and evaded to create generation
 * g's evasive malware.
 */
std::vector<GenerationPoint> evadeRetrainGame(const Experiment &exp,
                                              const GameConfig &config);

/**
 * Shape of the candidate pool the online retraining loop rebuilds:
 * one base detector per spec, a uniform switching policy, seeds
 * derived per detector from (seed, generation) with SplitRng so
 * successive candidates train on independent streams and the result
 * is bit-identical at any thread count.
 */
struct PoolRetrainConfig
{
    std::string algorithm = "LR";
    std::vector<features::FeatureSpec> specs;
    std::size_t opcodeTopK = 16;
    std::uint64_t seed = 0x5eed2e7a;

    /** Retrain round; mixed into each detector's training seed. */
    std::uint64_t generation = 0;
};

/**
 * Corpus-fed retraining entry point for the online pipeline
 * (DESIGN.md §16): train a fresh candidate pool on @p base's
 * @p train_idx programs plus @p flagged — suspect programs captured
 * from live traffic (labeled malware; typically replayed zero-copy
 * from a flight-recorder corpus file). Training parallelizes across
 * detectors on the deterministic thread pool; @p flagged may be
 * empty (rebuild on ground truth alone). Returns InvalidArgument for
 * an empty spec list, or the pool-invariant error from tryMakeRhmd.
 */
support::StatusOr<std::unique_ptr<Rhmd>>
retrainPool(const features::FeatureCorpus &base,
            const std::vector<std::size_t> &train_idx,
            const std::vector<features::ProgramFeatures> &flagged,
            const PoolRetrainConfig &config);

} // namespace rhmd::core

#endif // RHMD_CORE_RETRAINER_HH
