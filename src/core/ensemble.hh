/**
 * @file
 * Deterministic ensemble HMD — the design of Khasawneh et al.
 * (RAID 2015) that the paper's related-work section contrasts with
 * RHMD: an ensemble also combines diverse base detectors, but with a
 * deterministic combiner (majority vote), so it is itself a fixed
 * classifier that can be reverse-engineered and evaded. Implemented
 * so that contrast can be measured (see bench_ablation_ensemble).
 */

#ifndef RHMD_CORE_ENSEMBLE_HH
#define RHMD_CORE_ENSEMBLE_HH

#include <memory>
#include <vector>

#include "core/hmd.hh"

namespace rhmd::core
{

/**
 * Majority-vote ensemble over trained base detectors. Epochs run at
 * the longest base period; every base detector votes on its own
 * leading sub-window of the epoch (base periods must divide the
 * epoch length). Ties flag malware.
 */
class EnsembleHmd : public Detector
{
  public:
    /** @param detectors trained base detectors (takes ownership). */
    explicit EnsembleHmd(std::vector<std::unique_ptr<Hmd>> detectors);

    std::uint32_t decisionPeriod() const override;
    std::vector<int>
    decide(const features::ProgramFeatures &prog) override;

    const std::vector<std::unique_ptr<Hmd>> &detectors() const
    {
        return detectors_;
    }
    std::size_t poolSize() const { return detectors_.size(); }

  private:
    std::vector<std::unique_ptr<Hmd>> detectors_;
    std::uint32_t epoch_ = 0;
};

/**
 * Convenience builder mirroring buildRhmd: train one base detector
 * per (algorithm, spec) on ground truth and combine them.
 */
std::unique_ptr<EnsembleHmd> buildEnsemble(
    const std::string &algorithm,
    const std::vector<features::FeatureSpec> &specs,
    const features::FeatureCorpus &corpus,
    const std::vector<std::size_t> &train_idx, std::size_t opcode_top_k,
    std::uint64_t seed);

} // namespace rhmd::core

#endif // RHMD_CORE_ENSEMBLE_HH
