/**
 * @file
 * Black-box reverse-engineering of detectors (paper Sec. 4, Fig. 1):
 * query the victim with attacker-owned programs, label the
 * attacker's own feature windows with the victim's decisions, train
 * a proxy, and measure proxy/victim decision agreement.
 */

#ifndef RHMD_CORE_REVERSE_ENGINEER_HH
#define RHMD_CORE_REVERSE_ENGINEER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hmd.hh"

namespace rhmd::core
{

/** Attacker-side hypothesis and training configuration. */
struct ProxyConfig
{
    /** Attacker's learning algorithm: "LR", "NN", "DT", or "SVM". */
    std::string algorithm = "NN";

    /**
     * Attacker's hypothesized feature specs (usually one; several
     * model the paper's "combined" union-of-features attacker). All
     * share the attacker's hypothesized collection period.
     */
    std::vector<features::FeatureSpec> specs;

    std::size_t opcodeTopK = 16;
    std::uint64_t seed = 7;
};

/**
 * Train a reverse-engineered proxy of @p victim.
 *
 * The victim is queried once per program in @p attacker_train; each
 * attacker window is labeled with the victim decision for the epoch
 * containing the window's final instruction (period mismatch between
 * attacker and victim therefore misaligns labels, the effect behind
 * the paper's Fig. 3a).
 */
std::unique_ptr<Hmd> buildProxy(
    Detector &victim, const features::FeatureCorpus &corpus,
    const std::vector<std::size_t> &attacker_train,
    const ProxyConfig &config);

/**
 * Reverse-engineering success: the fraction of victim decisions on
 * the test programs the proxy reproduces ("percentage of equivalent
 * decisions"), evaluated at the victim's decision cadence with
 * fresh victim randomness.
 */
double proxyAgreement(Detector &victim, const Hmd &proxy,
                      const features::FeatureCorpus &corpus,
                      const std::vector<std::size_t> &attacker_test);

} // namespace rhmd::core

#endif // RHMD_CORE_REVERSE_ENGINEER_HH
