/**
 * @file
 * Black-box reverse-engineering of detectors (paper Sec. 4, Fig. 1):
 * query the victim with attacker-owned programs, label the
 * attacker's own feature windows with the victim's decisions, train
 * a proxy, and measure proxy/victim decision agreement.
 */

#ifndef RHMD_CORE_REVERSE_ENGINEER_HH
#define RHMD_CORE_REVERSE_ENGINEER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hmd.hh"

namespace rhmd::core
{

/** Attacker-side hypothesis and training configuration. */
struct ProxyConfig
{
    /** Attacker's learning algorithm: "LR", "NN", "DT", or "SVM". */
    std::string algorithm = "NN";

    /**
     * Attacker's hypothesized feature specs (usually one; several
     * model the paper's "combined" union-of-features attacker). All
     * share the attacker's hypothesized collection period.
     */
    std::vector<features::FeatureSpec> specs;

    std::size_t opcodeTopK = 16;
    std::uint64_t seed = 7;
};

/**
 * Train a reverse-engineered proxy of @p victim.
 *
 * The victim is queried once per program in @p attacker_train; each
 * attacker window is labeled with the victim decision for the epoch
 * containing the window's final instruction (period mismatch between
 * attacker and victim therefore misaligns labels, the effect behind
 * the paper's Fig. 3a).
 */
std::unique_ptr<Hmd> buildProxy(
    Detector &victim, const features::FeatureCorpus &corpus,
    const std::vector<std::size_t> &attacker_train,
    const ProxyConfig &config);

/**
 * Reverse-engineering success: the fraction of victim decisions on
 * the test programs the proxy reproduces ("percentage of equivalent
 * decisions"), evaluated at the victim's decision cadence with
 * fresh victim randomness.
 */
double proxyAgreement(Detector &victim, const Hmd &proxy,
                      const features::FeatureCorpus &corpus,
                      const std::vector<std::size_t> &attacker_test);

/**
 * Recorded victim decision sequences, one per queried program, in
 * query order.
 *
 * Detector::decide is stateful for randomized victims (the Rhmd
 * consumes switching randomness), so victim queries are inherently
 * sequential: the i-th program's decisions depend on how many epochs
 * were decided before it. VictimTranscript performs that sequential
 * pass exactly once and freezes the result, after which any number
 * of attacker hypotheses can be trained and scored against the same
 * transcript concurrently — which is also the realistic attack: one
 * data-collection session, many candidate models.
 */
class VictimTranscript
{
  public:
    /** Query @p victim on each program of @p program_idx, in order. */
    static VictimTranscript record(
        Detector &victim, const features::FeatureCorpus &corpus,
        const std::vector<std::size_t> &program_idx);

    const std::vector<std::size_t> &programs() const
    {
        return programIdx_;
    }

    /** Decision sequence of the i-th *queried* program. */
    const std::vector<int> &decisions(std::size_t i) const;

  private:
    std::vector<std::size_t> programIdx_;
    std::vector<std::vector<int>> decisions_;
};

/**
 * Train a proxy from a pre-recorded transcript (no further victim
 * queries). buildProxy(victim, ...) is equivalent to recording the
 * attacker_train transcript and calling this.
 */
std::unique_ptr<Hmd> buildProxyFromTranscript(
    const VictimTranscript &transcript,
    const features::FeatureCorpus &corpus, const ProxyConfig &config);

/**
 * Agreement of @p proxy against a pre-recorded test transcript:
 * decision-wise comparison at the victim's cadence, proxy windows
 * scored concurrently with counts folded in program order.
 */
double proxyAgreementOnTranscript(
    const VictimTranscript &transcript, const Hmd &proxy,
    const features::FeatureCorpus &corpus);

/**
 * A Fig. 3/14/15-style sweep: record the train and test transcripts
 * once (sequentially, preserving the victim's randomness stream),
 * then train and score one proxy per candidate configuration in
 * parallel. Returns per-config agreement, in config order.
 */
std::vector<double> sweepProxyConfigs(
    Detector &victim, const features::FeatureCorpus &corpus,
    const std::vector<std::size_t> &attacker_train,
    const std::vector<std::size_t> &attacker_test,
    const std::vector<ProxyConfig> &configs);

} // namespace rhmd::core

#endif // RHMD_CORE_REVERSE_ENGINEER_HH
