/**
 * @file
 * Reverse-engineering implementation.
 */

#include "core/reverse_engineer.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rhmd::core
{

std::unique_ptr<Hmd>
buildProxy(Detector &victim, const features::FeatureCorpus &corpus,
           const std::vector<std::size_t> &attacker_train,
           const ProxyConfig &config)
{
    fatal_if(config.specs.empty(), "proxy needs at least one spec");
    const std::uint32_t attacker_period = config.specs.front().period;

    std::vector<const features::RawWindow *> windows;
    std::vector<int> labels;

    // The attacker does not know the victim's collection period: it
    // queries the victim, records the decision *sequence*, and pairs
    // its own i-th window with the victim's i-th decision. When the
    // attacker's hypothesized period matches the victim's, the pairs
    // align; when it does not, the pairing drifts apart one window
    // at a time — the mechanism behind the paper's Fig. 3a peak at
    // the true period.
    for (std::size_t idx : attacker_train) {
        const features::ProgramFeatures &prog = corpus.programs[idx];
        const std::vector<int> decisions = victim.decide(prog);
        const auto &attacker_windows = prog.windows(attacker_period);
        const std::size_t n =
            std::min(decisions.size(), attacker_windows.size());
        for (std::size_t i = 0; i < n; ++i) {
            windows.push_back(&attacker_windows[i]);
            labels.push_back(decisions[i]);
        }
    }
    fatal_if(windows.empty(),
             "no attacker windows available to train the proxy");

    HmdConfig hmd_config;
    hmd_config.algorithm = config.algorithm;
    hmd_config.specs = config.specs;
    hmd_config.opcodeTopK = config.opcodeTopK;
    hmd_config.seed = config.seed;
    auto proxy = std::make_unique<Hmd>(hmd_config);
    proxy->train(windows, labels);
    return proxy;
}

double
proxyAgreement(Detector &victim, const Hmd &proxy,
               const features::FeatureCorpus &corpus,
               const std::vector<std::size_t> &attacker_test)
{
    const std::uint32_t proxy_period = proxy.decisionPeriod();

    // Both detectors are queried on the test programs and their
    // decision sequences compared index-wise — "the percentage of
    // equivalent decisions made by the two detectors" (Fig. 1b).
    std::size_t agree = 0;
    std::size_t total = 0;
    for (std::size_t idx : attacker_test) {
        const features::ProgramFeatures &prog = corpus.programs[idx];
        const std::vector<int> victim_decisions = victim.decide(prog);
        const auto &proxy_windows = prog.windows(proxy_period);
        const std::size_t n =
            std::min(victim_decisions.size(), proxy_windows.size());
        for (std::size_t i = 0; i < n; ++i) {
            const int predicted =
                proxy.windowDecision(proxy_windows[i]);
            agree += predicted == victim_decisions[i] ? 1 : 0;
            ++total;
        }
    }
    fatal_if(total == 0, "no decisions to compare");
    return static_cast<double>(agree) / static_cast<double>(total);
}

} // namespace rhmd::core
