/**
 * @file
 * Reverse-engineering implementation.
 */

#include "core/reverse_engineer.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/tracing.hh"

namespace rhmd::core
{

namespace
{

// The attacker's query budget (paper Sec. 4): every program submitted
// to the victim is one black-box query, every decision epoch one
// label the attacker harvests. Counted at the single victim-facing
// choke point (VictimTranscript::record), so the totals are the
// attack cost no matter which sweep or bench drove the queries.

support::Counter &
victimProgramsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.victim_programs",
        "programs submitted to the victim (one black-box query each)");
    return c;
}

support::Counter &
victimDecisionsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.victim_decisions",
        "decision epochs harvested from the victim");
    return c;
}

support::Counter &
transcriptsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.transcripts", "victim transcripts recorded");
    return c;
}

support::Counter &
proxiesCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.proxies", "proxy detectors trained from transcripts");
    return c;
}

support::Counter &
sweepsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.sweeps", "sweepProxyConfigs invocations");
    return c;
}

support::Counter &
sweepConfigsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "reveng.sweep_configs",
        "attacker hypotheses trained across all sweeps");
    return c;
}

} // namespace

VictimTranscript
VictimTranscript::record(Detector &victim,
                         const features::FeatureCorpus &corpus,
                         const std::vector<std::size_t> &program_idx)
{
    // Strictly sequential: a randomized victim consumes switching
    // randomness per epoch, so the order (and number) of queries is
    // part of the seeded stream. This is the only victim-facing pass;
    // everything downstream works from the frozen transcript.
    const support::ScopedSpan span("victim_transcript");
    VictimTranscript transcript;
    transcript.programIdx_ = program_idx;
    transcript.decisions_.reserve(program_idx.size());
    std::uint64_t decisions = 0;
    for (std::size_t idx : program_idx) {
        panic_if(idx >= corpus.programs.size(),
                 "transcript program index out of range");
        transcript.decisions_.push_back(
            victim.decide(corpus.programs[idx]));
        decisions += transcript.decisions_.back().size();
    }
    victimProgramsCounter().add(program_idx.size());
    victimDecisionsCounter().add(decisions);
    transcriptsCounter().add(1);
    return transcript;
}

const std::vector<int> &
VictimTranscript::decisions(std::size_t i) const
{
    panic_if(i >= decisions_.size(),
             "transcript has no program ", i);
    return decisions_[i];
}

std::unique_ptr<Hmd>
buildProxyFromTranscript(const VictimTranscript &transcript,
                         const features::FeatureCorpus &corpus,
                         const ProxyConfig &config)
{
    fatal_if(config.specs.empty(), "proxy needs at least one spec");
    const std::uint32_t attacker_period = config.specs.front().period;

    std::vector<const features::RawWindow *> windows;
    std::vector<int> labels;

    // The attacker does not know the victim's collection period: it
    // queries the victim, records the decision *sequence*, and pairs
    // its own i-th window with the victim's i-th decision. When the
    // attacker's hypothesized period matches the victim's, the pairs
    // align; when it does not, the pairing drifts apart one window
    // at a time — the mechanism behind the paper's Fig. 3a peak at
    // the true period.
    const std::vector<std::size_t> &program_idx = transcript.programs();
    for (std::size_t p = 0; p < program_idx.size(); ++p) {
        const features::ProgramFeatures &prog =
            corpus.programs[program_idx[p]];
        const std::vector<int> &decisions = transcript.decisions(p);
        const auto &attacker_windows = prog.windows(attacker_period);
        const std::size_t n =
            std::min(decisions.size(), attacker_windows.size());
        for (std::size_t i = 0; i < n; ++i) {
            windows.push_back(&attacker_windows[i]);
            labels.push_back(decisions[i]);
        }
    }
    fatal_if(windows.empty(),
             "no attacker windows available to train the proxy");

    HmdConfig hmd_config;
    hmd_config.algorithm = config.algorithm;
    hmd_config.specs = config.specs;
    hmd_config.opcodeTopK = config.opcodeTopK;
    hmd_config.seed = config.seed;
    auto proxy = std::make_unique<Hmd>(hmd_config);
    proxy->train(windows, labels);
    proxiesCounter().add(1);
    return proxy;
}

std::unique_ptr<Hmd>
buildProxy(Detector &victim, const features::FeatureCorpus &corpus,
           const std::vector<std::size_t> &attacker_train,
           const ProxyConfig &config)
{
    const VictimTranscript transcript =
        VictimTranscript::record(victim, corpus, attacker_train);
    return buildProxyFromTranscript(transcript, corpus, config);
}

double
proxyAgreementOnTranscript(const VictimTranscript &transcript,
                           const Hmd &proxy,
                           const features::FeatureCorpus &corpus)
{
    const std::uint32_t proxy_period = proxy.decisionPeriod();
    const std::vector<std::size_t> &program_idx = transcript.programs();

    // Both decision sequences are compared index-wise — "the
    // percentage of equivalent decisions made by the two detectors"
    // (Fig. 1b). The proxy side is pure scoring of const state, so
    // programs are scored concurrently; the integer counts are folded
    // in program order.
    struct Counts
    {
        std::size_t agree = 0;
        std::size_t total = 0;
    };
    const Counts counts = support::parallelReduce<Counts>(
        support::globalPool(), program_idx.size(), Counts{},
        [&](std::size_t p) {
            const features::ProgramFeatures &prog =
                corpus.programs[program_idx[p]];
            const std::vector<int> &victim_decisions =
                transcript.decisions(p);
            const auto &proxy_windows = prog.windows(proxy_period);
            const std::size_t n = std::min(victim_decisions.size(),
                                           proxy_windows.size());
            Counts c;
            for (std::size_t i = 0; i < n; ++i) {
                const int predicted =
                    proxy.windowDecision(proxy_windows[i]);
                c.agree += predicted == victim_decisions[i] ? 1 : 0;
                ++c.total;
            }
            return c;
        },
        [](Counts acc, const Counts &c) {
            acc.agree += c.agree;
            acc.total += c.total;
            return acc;
        });
    fatal_if(counts.total == 0, "no decisions to compare");
    return static_cast<double>(counts.agree) /
           static_cast<double>(counts.total);
}

double
proxyAgreement(Detector &victim, const Hmd &proxy,
               const features::FeatureCorpus &corpus,
               const std::vector<std::size_t> &attacker_test)
{
    const VictimTranscript transcript =
        VictimTranscript::record(victim, corpus, attacker_test);
    return proxyAgreementOnTranscript(transcript, proxy, corpus);
}

std::vector<double>
sweepProxyConfigs(Detector &victim,
                  const features::FeatureCorpus &corpus,
                  const std::vector<std::size_t> &attacker_train,
                  const std::vector<std::size_t> &attacker_test,
                  const std::vector<ProxyConfig> &configs)
{
    const support::ScopedSpan span("proxy_sweep");
    sweepsCounter().add(1);
    sweepConfigsCounter().add(configs.size());
    const VictimTranscript train =
        VictimTranscript::record(victim, corpus, attacker_train);
    const VictimTranscript test =
        VictimTranscript::record(victim, corpus, attacker_test);

    // One attacker hypothesis per index, trained and scored against
    // the shared transcripts. Each proxy trains from its own
    // config.seed, so configs are index-independent.
    return support::parallelMap<double>(
        configs.size(), [&](std::size_t c) {
            const std::unique_ptr<Hmd> proxy =
                buildProxyFromTranscript(train, corpus, configs[c]);
            return proxyAgreementOnTranscript(test, *proxy, corpus);
        });
}

} // namespace rhmd::core
