/**
 * @file
 * Resilient HMD implementation.
 */

#include "core/rhmd.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace rhmd::core
{

Rhmd::Rhmd(std::vector<std::unique_ptr<Hmd>> detectors,
           std::vector<double> policy, std::uint64_t seed)
    : detectors_(std::move(detectors)), policy_(std::move(policy)),
      rng_(seed)
{
    fatal_if(detectors_.empty(), "Rhmd needs at least one detector");
    for (const auto &det : detectors_) {
        fatal_if(det == nullptr, "Rhmd received a null detector");
        fatal_if(!det->trained(),
                 "Rhmd detectors must be trained before pooling");
    }

    if (policy_.empty()) {
        policy_.assign(detectors_.size(),
                       1.0 / static_cast<double>(detectors_.size()));
    }
    fatal_if(policy_.size() != detectors_.size(),
             "policy size must match the detector count");
    double total = 0.0;
    for (double p : policy_) {
        fatal_if(p < 0.0, "policy probabilities must be non-negative");
        total += p;
    }
    fatal_if(std::abs(total - 1.0) > 1e-9, "policy must sum to 1");

    // Epoch alignment: every base period must divide the longest one
    // so precollected windows line up with epoch boundaries.
    epoch_ = 0;
    for (const auto &det : detectors_)
        epoch_ = std::max(epoch_, det->decisionPeriod());
    for (const auto &det : detectors_) {
        fatal_if(epoch_ % det->decisionPeriod() != 0,
                 "base period ", det->decisionPeriod(),
                 " does not divide the epoch length ", epoch_);
    }

    selectionCounts_.assign(detectors_.size(), 0);
}

std::uint32_t
Rhmd::decisionPeriod() const
{
    return epoch_;
}

std::vector<int>
Rhmd::decide(const features::ProgramFeatures &prog)
{
    // Number of full epochs available for this program.
    const std::size_t n_epochs = prog.windows(epoch_).size();
    std::vector<int> decisions;
    decisions.reserve(n_epochs);

    for (std::size_t e = 0; e < n_epochs; ++e) {
        const std::size_t pick = rng_.weightedIndex(policy_);
        ++selectionCounts_[pick];
        Hmd &det = *detectors_[pick];
        const std::uint32_t period = det.decisionPeriod();
        // The chosen detector classifies the first sub-window of the
        // epoch at its own period.
        const std::size_t index =
            e * (epoch_ / period);
        const auto &windows = prog.windows(period);
        panic_if(index >= windows.size(),
                 "window index out of range for period ", period);
        decisions.push_back(det.windowDecision(windows[index]));
    }
    return decisions;
}

void
Rhmd::reseed(std::uint64_t seed)
{
    rng_ = Rng(seed);
}

RotatingRhmd::RotatingRhmd(std::vector<std::unique_ptr<Hmd>> candidates,
                           std::size_t active_size,
                           std::uint32_t rotation_epochs,
                           std::uint64_t seed)
    : candidates_(std::move(candidates)), activeSize_(active_size),
      rotationEpochs_(rotation_epochs), rng_(seed)
{
    fatal_if(candidates_.empty(), "RotatingRhmd needs candidates");
    fatal_if(activeSize_ == 0 || activeSize_ > candidates_.size(),
             "active subset size must be in [1, ", candidates_.size(),
             "]");
    fatal_if(rotationEpochs_ == 0, "rotation interval must be positive");
    for (const auto &det : candidates_) {
        fatal_if(det == nullptr, "RotatingRhmd received a null detector");
        fatal_if(!det->trained(),
                 "RotatingRhmd candidates must be trained");
    }
    epoch_ = 0;
    for (const auto &det : candidates_)
        epoch_ = std::max(epoch_, det->decisionPeriod());
    for (const auto &det : candidates_) {
        fatal_if(epoch_ % det->decisionPeriod() != 0,
                 "base period ", det->decisionPeriod(),
                 " does not divide the epoch length ", epoch_);
    }
    rotate();
}

void
RotatingRhmd::rotate()
{
    const std::vector<std::size_t> perm =
        rng_.permutation(candidates_.size());
    active_.assign(perm.begin(), perm.begin() + activeSize_);
    epochsUntilRotation_ = rotationEpochs_;
}

std::uint32_t
RotatingRhmd::decisionPeriod() const
{
    return epoch_;
}

std::vector<int>
RotatingRhmd::decide(const features::ProgramFeatures &prog)
{
    const std::size_t n_epochs = prog.windows(epoch_).size();
    std::vector<int> decisions;
    decisions.reserve(n_epochs);
    for (std::size_t e = 0; e < n_epochs; ++e) {
        if (epochsUntilRotation_ == 0)
            rotate();
        --epochsUntilRotation_;
        const std::size_t pick =
            active_[rng_.below(active_.size())];
        Hmd &det = *candidates_[pick];
        const std::uint32_t period = det.decisionPeriod();
        const std::size_t index = e * (epoch_ / period);
        decisions.push_back(
            det.windowDecision(prog.windows(period)[index]));
    }
    return decisions;
}

std::unique_ptr<Rhmd>
buildRhmd(const std::string &algorithm,
          const std::vector<features::FeatureSpec> &specs,
          const features::FeatureCorpus &corpus,
          const std::vector<std::size_t> &train_idx,
          std::size_t opcode_top_k, std::uint64_t seed)
{
    fatal_if(specs.empty(), "buildRhmd needs at least one spec");
    std::vector<std::unique_ptr<Hmd>> pool;
    pool.reserve(specs.size());
    std::uint64_t det_seed = seed;
    for (const features::FeatureSpec &spec : specs) {
        HmdConfig config;
        config.algorithm = algorithm;
        config.specs = {spec};
        config.opcodeTopK = opcode_top_k;
        config.seed = ++det_seed;
        auto det = std::make_unique<Hmd>(config);
        det->trainOnPrograms(corpus, train_idx);
        pool.push_back(std::move(det));
    }
    return std::make_unique<Rhmd>(std::move(pool),
                                  std::vector<double>{}, seed ^ 0xabcdef);
}

} // namespace rhmd::core
