/**
 * @file
 * Resilient HMD implementation.
 */

#include "core/rhmd.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"

namespace rhmd::core
{

namespace
{

// Switching metrics are Deterministic: Rhmd::decide consumes the
// seeded switching stream strictly in epoch order (it is never run
// concurrently for one pool), so the realized selection histogram is
// part of the reproducible output and the determinism gate compares
// it across thread counts.

support::Counter &
epochsCounter()
{
    static support::Counter &c = support::metrics().counter(
        "rhmd.epochs", "decision epochs classified by RHMD pools");
    return c;
}

support::Histogram &
selectionHistogram()
{
    static support::Histogram &h = support::metrics().histogram(
        "rhmd.selection",
        "detector index drawn per epoch (realized switching)",
        {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
    return h;
}

} // namespace

support::Status
validatePolicy(std::vector<double> &policy, std::size_t n_detectors)
{
    if (n_detectors == 0)
        return support::invalidArgumentError(
            "policy needs at least one detector");
    if (policy.empty()) {
        policy.assign(n_detectors,
                      1.0 / static_cast<double>(n_detectors));
        return {};
    }
    if (policy.size() != n_detectors) {
        return support::invalidArgumentError(
            "policy size must match the detector count (got ",
            policy.size(), " probabilities for ", n_detectors,
            " detectors)");
    }
    double total = 0.0;
    for (double p : policy) {
        if (!std::isfinite(p))
            return support::invalidArgumentError(
                "policy probabilities must be finite");
        if (p < 0.0)
            return support::invalidArgumentError(
                "policy probabilities must be non-negative");
        total += p;
    }
    // 1e-6 tolerance absorbs float round-off in user-computed
    // policies (e.g. 1.0/3 three times); renormalize so downstream
    // sampling sees an exact distribution.
    if (std::abs(total - 1.0) > 1e-6)
        return support::invalidArgumentError(
            "policy must sum to 1 (got ", total, ")");
    for (double &p : policy)
        p /= total;
    return {};
}

support::Status
validateDetectorPool(const std::vector<std::unique_ptr<Hmd>> &detectors)
{
    if (detectors.empty())
        return support::invalidArgumentError(
            "pool needs at least one detector");
    std::uint32_t epoch = 0;
    for (const auto &det : detectors) {
        if (det == nullptr)
            return support::invalidArgumentError(
                "pool received a null detector");
        if (!det->trained())
            return support::failedPreconditionError(
                "pool detectors must be trained before pooling");
        epoch = std::max(epoch, det->decisionPeriod());
    }
    // Epoch alignment: every base period must divide the longest one
    // so precollected windows line up with epoch boundaries.
    for (const auto &det : detectors) {
        if (epoch % det->decisionPeriod() != 0)
            return support::invalidArgumentError(
                "base period ", det->decisionPeriod(),
                " does not divide the epoch length ", epoch);
    }
    return {};
}

Rhmd::Rhmd(std::vector<std::unique_ptr<Hmd>> detectors,
           std::vector<double> policy, std::uint64_t seed)
    : detectors_(std::move(detectors)), policy_(std::move(policy)),
      rng_(seed)
{
    fatal_if(detectors_.empty(), "Rhmd needs at least one detector");
    const support::Status pool_ok = validateDetectorPool(detectors_);
    fatal_if(!pool_ok.isOk(), "Rhmd ", pool_ok.message());
    const support::Status policy_ok =
        validatePolicy(policy_, detectors_.size());
    fatal_if(!policy_ok.isOk(), policy_ok.message());

    epoch_ = 0;
    for (const auto &det : detectors_)
        epoch_ = std::max(epoch_, det->decisionPeriod());

    selectionCounts_.assign(detectors_.size(), 0);
}

std::uint32_t
Rhmd::decisionPeriod() const
{
    return epoch_;
}

std::vector<int>
Rhmd::decide(const features::ProgramFeatures &prog)
{
    // Number of full epochs available for this program.
    const std::size_t n_epochs = prog.windows(epoch_).size();
    std::vector<int> decisions;
    decisions.reserve(n_epochs);

    for (std::size_t e = 0; e < n_epochs; ++e) {
        const std::size_t pick = rng_.weightedIndex(policy_);
        ++selectionCounts_[pick];
        epochsCounter().add(1);
        selectionHistogram().observe(static_cast<double>(pick));
        Hmd &det = *detectors_[pick];
        const std::uint32_t period = det.decisionPeriod();
        // The chosen detector classifies the first sub-window of the
        // epoch at its own period.
        const std::size_t index =
            e * (epoch_ / period);
        const auto &windows = prog.windows(period);
        panic_if(index >= windows.size(),
                 "window index out of range for period ", period);
        decisions.push_back(det.windowDecision(windows[index]));
    }
    return decisions;
}

std::vector<std::vector<int>>
Rhmd::decideBatch(
    const std::vector<const features::ProgramFeatures *> &progs)
{
    // Phase 1: consume the switching stream in exactly the order
    // back-to-back decide() calls would (programs, then epochs), and
    // plan which window each drawn detector will classify.
    struct Slot
    {
        std::size_t prog;
        std::size_t epoch;
    };
    std::vector<std::vector<Slot>> slots(detectors_.size());
    std::vector<std::vector<const features::RawWindow *>> rows(
        detectors_.size());
    std::vector<std::vector<int>> decisions(progs.size());

    for (std::size_t p = 0; p < progs.size(); ++p) {
        panic_if(progs[p] == nullptr, "null program in decideBatch");
        const features::ProgramFeatures &prog = *progs[p];
        const std::size_t n_epochs = prog.windows(epoch_).size();
        decisions[p].assign(n_epochs, 0);
        for (std::size_t e = 0; e < n_epochs; ++e) {
            const std::size_t pick = rng_.weightedIndex(policy_);
            ++selectionCounts_[pick];
            epochsCounter().add(1);
            selectionHistogram().observe(static_cast<double>(pick));
            const std::uint32_t period =
                detectors_[pick]->decisionPeriod();
            const std::size_t index = e * (epoch_ / period);
            const auto &windows = prog.windows(period);
            panic_if(index >= windows.size(),
                     "window index out of range for period ", period);
            slots[pick].push_back({p, e});
            rows[pick].push_back(&windows[index]);
        }
    }

    // Phase 2: each selected detector scores all of its rows in one
    // batch pass; decisions scatter back to (program, epoch).
    for (std::size_t d = 0; d < detectors_.size(); ++d) {
        if (rows[d].empty())
            continue;
        const Hmd &det = *detectors_[d];
        const std::vector<double> scores = det.scoreWindows(rows[d]);
        for (std::size_t i = 0; i < scores.size(); ++i) {
            decisions[slots[d][i].prog][slots[d][i].epoch] =
                scores[i] >= det.threshold() ? 1 : 0;
        }
    }
    return decisions;
}

std::vector<double>
Rhmd::realizedPolicy() const
{
    std::size_t total = 0;
    for (std::size_t n : selectionCounts_)
        total += n;
    std::vector<double> realized(selectionCounts_.size(), 0.0);
    if (total == 0)
        return realized;
    for (std::size_t i = 0; i < selectionCounts_.size(); ++i)
        realized[i] = static_cast<double>(selectionCounts_[i]) /
                      static_cast<double>(total);
    return realized;
}

void
Rhmd::reseed(std::uint64_t seed)
{
    rng_ = Rng(seed);
}

support::Status
Rhmd::validate() const
{
    support::Status status = validateDetectorPool(detectors_);
    if (!status.isOk())
        return status;
    // validatePolicy normalizes in place; validate a copy so a const
    // pool is never mutated.
    std::vector<double> policy = policy_;
    return validatePolicy(policy, detectors_.size());
}

RotatingRhmd::RotatingRhmd(std::vector<std::unique_ptr<Hmd>> candidates,
                           std::size_t active_size,
                           std::uint32_t rotation_epochs,
                           std::uint64_t seed)
    : candidates_(std::move(candidates)), activeSize_(active_size),
      rotationEpochs_(rotation_epochs), rng_(seed)
{
    fatal_if(candidates_.empty(), "RotatingRhmd needs candidates");
    fatal_if(activeSize_ == 0 || activeSize_ > candidates_.size(),
             "active subset size must be in [1, ", candidates_.size(),
             "]");
    fatal_if(rotationEpochs_ == 0, "rotation interval must be positive");
    for (const auto &det : candidates_) {
        fatal_if(det == nullptr, "RotatingRhmd received a null detector");
        fatal_if(!det->trained(),
                 "RotatingRhmd candidates must be trained");
    }
    epoch_ = 0;
    for (const auto &det : candidates_)
        epoch_ = std::max(epoch_, det->decisionPeriod());
    for (const auto &det : candidates_) {
        fatal_if(epoch_ % det->decisionPeriod() != 0,
                 "base period ", det->decisionPeriod(),
                 " does not divide the epoch length ", epoch_);
    }
    rotate();
}

void
RotatingRhmd::rotate()
{
    const std::vector<std::size_t> perm =
        rng_.permutation(candidates_.size());
    active_.assign(perm.begin(), perm.begin() + activeSize_);
    epochsUntilRotation_ = rotationEpochs_;
}

std::uint32_t
RotatingRhmd::decisionPeriod() const
{
    return epoch_;
}

std::vector<int>
RotatingRhmd::decide(const features::ProgramFeatures &prog)
{
    const std::size_t n_epochs = prog.windows(epoch_).size();
    std::vector<int> decisions;
    decisions.reserve(n_epochs);
    for (std::size_t e = 0; e < n_epochs; ++e) {
        if (epochsUntilRotation_ == 0)
            rotate();
        --epochsUntilRotation_;
        const std::size_t pick =
            active_[rng_.below(active_.size())];
        Hmd &det = *candidates_[pick];
        const std::uint32_t period = det.decisionPeriod();
        const std::size_t index = e * (epoch_ / period);
        decisions.push_back(
            det.windowDecision(prog.windows(period)[index]));
    }
    return decisions;
}

std::unique_ptr<Rhmd>
buildRhmd(const std::string &algorithm,
          const std::vector<features::FeatureSpec> &specs,
          const features::FeatureCorpus &corpus,
          const std::vector<std::size_t> &train_idx,
          std::size_t opcode_top_k, std::uint64_t seed)
{
    fatal_if(specs.empty(), "buildRhmd needs at least one spec");
    // Base detectors already use index-derived seeds (seed + i + 1),
    // so they train independently and in parallel.
    std::vector<std::unique_ptr<Hmd>> pool =
        support::parallelMap<std::unique_ptr<Hmd>>(
            specs.size(), [&](std::size_t i) {
                HmdConfig config;
                config.algorithm = algorithm;
                config.specs = {specs[i]};
                config.opcodeTopK = opcode_top_k;
                config.seed = seed + i + 1;
                auto det = std::make_unique<Hmd>(config);
                det->trainOnPrograms(corpus, train_idx);
                return det;
            });
    return std::make_unique<Rhmd>(std::move(pool),
                                  std::vector<double>{}, seed ^ 0xabcdef);
}

support::StatusOr<std::unique_ptr<Rhmd>>
tryMakeRhmd(std::vector<std::unique_ptr<Hmd>> detectors,
            std::vector<double> policy, std::uint64_t seed)
{
    const support::Status pool_ok = validateDetectorPool(detectors);
    if (!pool_ok.isOk())
        return pool_ok;
    const support::Status policy_ok =
        validatePolicy(policy, detectors.size());
    if (!policy_ok.isOk())
        return policy_ok;
    return std::make_unique<Rhmd>(std::move(detectors),
                                  std::move(policy), seed);
}

} // namespace rhmd::core
