/**
 * @file
 * Model-driven malware rewriting (paper Sec. 5): choose injection
 * opcodes from a (reverse-engineered or white-box) detector model
 * and rewrite malware so its windows cross the decision boundary.
 */

#ifndef RHMD_CORE_EVASION_HH
#define RHMD_CORE_EVASION_HH

#include <cstdint>

#include "core/hmd.hh"
#include "trace/injection.hh"

namespace rhmd::core
{

/** The paper's three injection strategies. */
enum class EvasionStrategy : std::uint8_t
{
    Random,      ///< uniform opcodes (Fig. 6 control experiment)
    LeastWeight, ///< N copies of the most negative-weight opcode
    Weighted,    ///< draws proportional to |negative weight| (Fig. 10)
};

/** Name for tables. */
const char *evasionStrategyName(EvasionStrategy strategy);

/** One evasion attempt's parameters. */
struct EvasionPlan
{
    EvasionStrategy strategy = EvasionStrategy::LeastWeight;
    trace::InjectLevel level = trace::InjectLevel::Block;
    std::size_t count = 1;   ///< instructions injected per site
    std::uint64_t seed = 99; ///< randomness for Random/Weighted draws
};

/**
 * Gate counters accumulated across one or more rewrites. Every
 * candidate injection site is screened by an analysis::InjectionGate
 * (would the payload clobber live state?); rejected sites are left
 * untouched rather than rewritten unsoundly.
 */
struct EvasionAudit
{
    std::size_t admittedSites = 0;  ///< sites rewritten
    std::size_t rejectedSites = 0;  ///< clobbering sites skipped
    std::size_t verifiedPrograms = 0; ///< variants that passed the verifier
};

/**
 * Rewrite one malware program according to the plan. @p model guides
 * the LeastWeight and Weighted strategies (it is ignored — and may
 * be null — for Random). count == 0 returns an unmodified copy.
 *
 * Every candidate site is screened by a semantic-preservation gate
 * and the rewritten variant is verified (analysis::verifyProgram)
 * before it is returned; a variant that fails verification is a
 * library bug and aborts. @p audit, when non-null, accumulates the
 * gate's counters.
 */
trace::Program evadeRewrite(const trace::Program &malware,
                            const EvasionPlan &plan, const Hmd *model,
                            EvasionAudit *audit = nullptr);

/**
 * Feature-appropriate payload against one detector model (@p count
 * instructions): Instructions detectors get their least-weight
 * opcode; Memory detectors get loads whose reference distance
 * targets the most benign-weighted delta bin (the paper's
 * "insertion of load and store instructions with controlled
 * distances"); Architectural detectors get the opcode driving their
 * most benign-weighted event (an approximation — the paper notes
 * architectural effects "may not be directly controllable").
 */
std::vector<trace::StaticInst> modelPayload(const Hmd &model,
                                            std::size_t count);

/**
 * The Sec. 8.3 known-configuration attack: the attacker knows every
 * base detector of the pool and iteratively evades each, i.e. the
 * payloads against all models are concatenated at every injection
 * site. Succeeds against a *static* pool at proportionally higher
 * overhead.
 */
trace::Program evadeAllDetectors(const trace::Program &malware,
                                 const std::vector<const Hmd *> &models,
                                 trace::InjectLevel level,
                                 std::size_t count_per_model,
                                 EvasionAudit *audit = nullptr);

} // namespace rhmd::core

#endif // RHMD_CORE_EVASION_HH
