/**
 * @file
 * PAC-learnability analysis of randomized detection (paper Sec. 8,
 * Theorem 1): the attacker's best achievable reverse-engineering
 * error against a randomized pool is bounded by the pool's weighted
 * disagreement from below and by twice the worst base error from
 * above.
 */

#ifndef RHMD_CORE_PAC_HH
#define RHMD_CORE_PAC_HH

#include <vector>

#include "core/rhmd.hh"
#include "features/corpus.hh"

namespace rhmd::core
{

/** Empirical Theorem-1 quantities for a detector pool. */
struct PacReport
{
    /** e(h_i): base-detector error vs ground truth, per detector. */
    std::vector<double> baseErrors;

    /** Delta_ij: pairwise decision-disagreement rates. */
    std::vector<std::vector<double>> disagreement;

    /** Baseline pool error with no reverse-engineering: sum p_i e(h_i). */
    double baselinePoolError = 0.0;

    /** Theorem 1 lower bound: min_i sum_{j != i} p_j Delta_ij. */
    double lowerBound = 0.0;

    /** Theorem 1 upper bound: 2 max_i e(h_i). */
    double upperBound = 0.0;
};

/**
 * Measure the Theorem-1 quantities over the epochs of the given test
 * programs: each base detector classifies its own leading sub-window
 * of every epoch (exactly what it would see when selected), so the
 * disagreement matrix reflects deployed behaviour.
 */
PacReport computePac(const Rhmd &pool,
                     const features::FeatureCorpus &corpus,
                     const std::vector<std::size_t> &test_idx);

/**
 * Promotion criterion for live pool swaps (cf. "Certifiably robust
 * malware detectors by design": only deploy a candidate whose
 * provable floor holds up). Computes the Theorem-1 quantities for
 * @p candidate and @p current over the same test programs and rejects
 * (FailedPrecondition) a candidate whose reverse-engineering lower
 * bound falls more than @p tolerance below the current pool's — i.e.
 * a pool that would be provably *easier* to reverse-engineer must not
 * replace the one being served. Returns Ok with the bounds in the
 * message data path otherwise. An empty @p test_idx is InvalidArgument
 * (a rejection, not a crash — unlike computePac, the floor check sits
 * on the serving promotion path). A candidate that exactly meets the
 * floor (equality at the tolerance boundary) passes: the comparison
 * is strict.
 */
support::Status checkPacFloor(const Rhmd &candidate, const Rhmd &current,
                              const features::FeatureCorpus &corpus,
                              const std::vector<std::size_t> &test_idx,
                              double tolerance = 0.0);

} // namespace rhmd::core

#endif // RHMD_CORE_PAC_HH
