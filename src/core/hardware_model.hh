/**
 * @file
 * Analytic hardware cost model of the RHMD detector datapath.
 *
 * The paper implements its resilient detectors in Verilog as an
 * extension of the open-source AO486 x86 core and synthesizes to an
 * FPGA, reporting +1.72% area and +0.78% power for a pool of three
 * detectors (three features, one period). We cannot run synthesis
 * here, so this module substitutes a parametric gate/SRAM estimate
 * calibrated to AO486-scale numbers; it also exposes the scaling
 * argument the paper makes in prose — extra collection *periods*
 * reuse the collection and evaluation logic (only the weight sets
 * are duplicated) while extra *features* add counter/collection
 * logic.
 */

#ifndef RHMD_CORE_HARDWARE_MODEL_HH
#define RHMD_CORE_HARDWARE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "features/spec.hh"

namespace rhmd::core
{

/** Baseline (host core) parameters: AO486-scale defaults. */
struct CoreBaseline
{
    /** Logic elements of the host core (AO486 on Cyclone-class). */
    double coreLogicElements = 30000.0;
    /** Host core dynamic power, mW. */
    double corePowerMw = 800.0;
    /** Estimated dynamic power per active LE, mW. */
    double powerPerLeMw = 0.012;
    /** Leakage-equivalent power per SRAM kilobit, mW. */
    double powerPerSramKbitMw = 0.05;
};

/** Per-block LE cost constants of the detector datapath. */
struct DatapathCosts
{
    double instructionsUnitLes = 130.0; ///< opcode decode + counters
    double memoryUnitLes = 140.0;       ///< delta, bin encode, counters
    double architecturalUnitLes = 90.0; ///< taps on existing PMU events
    double macUnitLes = 100.0;          ///< serial 16-bit MAC
    double controlLes = 60.0;           ///< period FSM, select, threshold
    double perWeightSetLes = 8.0;       ///< addressing per extra weight set
    double weightBitsPerFeature = 16.0; ///< fixed-point weight width
    /** NN extra: tanh LUT + second MAC pass, per detector. */
    double nnExtraLesPerDetector = 260.0;
};

/** Output of the estimate. */
struct HwEstimate
{
    double logicElements = 0.0;
    double sramBits = 0.0;
    double powerMw = 0.0;
    double areaOverheadPct = 0.0;   ///< vs the host core
    double powerOverheadPct = 0.0;  ///< vs the host core
};

/**
 * Estimate the cost of a detector pool.
 *
 * @param specs     base-detector feature specs (kind + period each);
 *                  distinct kinds need collection units, and each
 *                  (kind, period) pair needs its own weight set.
 * @param algorithm "LR" (single MAC pass) or "NN" (adds hidden-layer
 *                  weights and the tanh evaluation logic).
 * @param baseline  host-core constants.
 * @param costs     datapath constants.
 */
HwEstimate estimateHardware(const std::vector<features::FeatureSpec> &specs,
                            const std::string &algorithm,
                            const CoreBaseline &baseline = {},
                            const DatapathCosts &costs = {});

} // namespace rhmd::core

#endif // RHMD_CORE_HARDWARE_MODEL_HH
