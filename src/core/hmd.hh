/**
 * @file
 * The hardware malware detector (HMD): a feature specification, a
 * trained classifier over standardized window features, and an
 * operating threshold. This is the paper's baseline detector
 * (Demme et al. / Ozsoy et al. style supervised HMD).
 */

#ifndef RHMD_CORE_HMD_HH
#define RHMD_CORE_HMD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "features/corpus.hh"
#include "features/matrix.hh"
#include "features/spec.hh"
#include "ml/classifier.hh"

namespace rhmd::core
{

/** Detector configuration. */
struct HmdConfig
{
    /** Classifier algorithm: "LR", "NN", "DT", or "SVM". */
    std::string algorithm = "LR";

    /**
     * Feature specs, all at the same collection period. A single
     * spec is the normal detector; several model the paper's
     * "combined" (union-of-features) reverse-engineering attacker.
     */
    std::vector<features::FeatureSpec> specs;

    /** Top-K opcode classes for Instructions specs. */
    std::size_t opcodeTopK = 16;

    /**
     * Random-subspace selection (Sec. 8.3's "large set of candidate
     * features"): when > opcodeTopK, the Instructions selection
     * draws opcodeTopK classes at random from the top-opcodePoolK
     * delta ranking instead of taking the top-K outright, so
     * detectors trained with different seeds watch different opcode
     * subsets. 0 disables (plain top-K).
     */
    std::size_t opcodePoolK = 0;

    /** Training determinism seed. */
    std::uint64_t seed = 1;
};

/** Abstract query interface shared by Hmd and Rhmd. */
class Detector
{
  public:
    virtual ~Detector() = default;

    /**
     * Instruction count between successive decisions of this
     * detector (its collection period; for RHMD the epoch length).
     */
    virtual std::uint32_t decisionPeriod() const = 0;

    /**
     * The decision sequence over one program's trace: one 0/1
     * decision per decisionPeriod() instructions. Non-const because
     * randomized detectors consume switching randomness.
     */
    virtual std::vector<int>
    decide(const features::ProgramFeatures &prog) = 0;

    /**
     * Program-level decision: majority over the window decisions
     * (ties flagged as malware), the paper's "averaging the
     * decisions across multiple intervals".
     */
    int programDecision(const features::ProgramFeatures &prog);
};

/**
 * A single deterministic HMD.
 */
class Hmd : public Detector
{
  public:
    explicit Hmd(HmdConfig config);

    /**
     * Train from raw windows and their labels. Performs Instructions
     * opcode selection (if not already fixed in the spec), fits the
     * standardizer, trains the classifier, and picks the
     * accuracy-optimal threshold on the training scores.
     */
    void train(const std::vector<const features::RawWindow *> &windows,
               const std::vector<int> &labels);

    /**
     * Convenience: train on the ground-truth-labeled windows of the
     * given corpus programs (every window inherits its program's
     * label).
     */
    void trainOnPrograms(const features::FeatureCorpus &corpus,
                         const std::vector<std::size_t> &program_idx);

    /** Classifier score of one raw window. */
    double windowScore(const features::RawWindow &window) const;

    /** Thresholded decision for one raw window. */
    int windowDecision(const features::RawWindow &window) const;

    /**
     * Standardized feature matrix of a batch of windows, one row per
     * window, built without per-row allocation. Row values are
     * bit-identical to featureVector().
     */
    features::FeatureMatrix featureMatrix(
        const std::vector<const features::RawWindow *> &windows) const;

    /**
     * Classifier scores of a batch of windows in one pass
     * (featureMatrix + Classifier::scoreBatch). Bit-identical to
     * calling windowScore() per window; the batch path only removes
     * per-window allocations and virtual-call overhead.
     */
    std::vector<double> scoreWindows(
        const std::vector<const features::RawWindow *> &windows) const;

    /** Fill @p row (featureDim() doubles) for one window, no alloc. */
    void fillFeatureRow(const features::RawWindow &window,
                        double *row) const;

    /** Dimensionality of this detector's combined feature vector. */
    std::size_t featureDim() const;

    std::uint32_t decisionPeriod() const override;
    std::vector<int>
    decide(const features::ProgramFeatures &prog) override;

    /** Mean window score over a program (for ROC evaluation). */
    double programScore(const features::ProgramFeatures &prog) const;

    /**
     * Marginal effect of each *raw* feature on the decision score:
     * the classifier weights mapped back through the standardizer
     * (LR/SVM weights, or the paper's Fig. 7 collapse for NN).
     * Fatal for DT, which has no weight vector.
     */
    std::vector<double> effectiveRawWeights() const;

    /**
     * Injection candidates: (opcode, |weight|) for every selected
     * Instructions opcode whose effective weight is negative
     * (pushing the score towards "benign"). Requires an
     * Instructions spec.
     */
    std::vector<std::pair<trace::OpClass, double>>
    negativeWeightOpcodes() const;

    const HmdConfig &config() const { return config_; }
    const std::vector<features::FeatureSpec> &specs() const
    {
        return config_.specs;
    }
    const ml::Classifier &classifier() const { return *clf_; }
    const ml::Standardizer &standardizer() const { return standardizer_; }
    double threshold() const { return threshold_; }
    bool trained() const { return clf_ != nullptr; }

    /** Feature vector of one window under this detector's specs. */
    std::vector<double>
    featureVector(const features::RawWindow &window) const;

    /** "alg/feature@period" label for tables. */
    std::string describe() const;

  private:
    HmdConfig config_;
    std::unique_ptr<ml::Classifier> clf_;
    ml::Standardizer standardizer_;
    double threshold_ = 0.5;
};

/**
 * Collect (window pointer, label) pairs for the given programs of a
 * corpus at one period, labels inherited from program ground truth.
 */
void collectWindows(const features::FeatureCorpus &corpus,
                    const std::vector<std::size_t> &program_idx,
                    std::uint32_t period,
                    std::vector<const features::RawWindow *> &windows,
                    std::vector<int> &labels);

} // namespace rhmd::core

#endif // RHMD_CORE_HMD_HH
