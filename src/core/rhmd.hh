/**
 * @file
 * The paper's contribution: the Resilient HMD — a pool of diverse
 * base detectors (different feature vectors and collection periods)
 * switched stochastically so the composite decision boundary cannot
 * be reverse-engineered (Sec. 7).
 */

#ifndef RHMD_CORE_RHMD_HH
#define RHMD_CORE_RHMD_HH

#include <memory>
#include <vector>

#include "core/hmd.hh"
#include "support/rng.hh"
#include "support/status.hh"

namespace rhmd::core
{

/**
 * Validate and normalize a switching policy in place for a pool of
 * @p n_detectors. An empty policy becomes uniform. Entries must be
 * finite and non-negative, and the sum must be within 1e-6 of 1;
 * a passing policy is renormalized to sum to exactly 1, so
 * user-computed policies (e.g. three times 1.0/3) are accepted.
 */
support::Status validatePolicy(std::vector<double> &policy,
                               std::size_t n_detectors);

/**
 * Validate a detector pool: non-empty, no nulls, all trained, and
 * every base period divides the epoch (the longest period).
 */
support::Status
validateDetectorPool(const std::vector<std::unique_ptr<Hmd>> &detectors);

/**
 * Randomized detector pool.
 *
 * Decision epochs run at the longest base period; every epoch an
 * independent draw from the policy vector selects the detector that
 * classifies that epoch. A detector with a shorter period classifies
 * the leading sub-window of the epoch (base periods must divide the
 * epoch length so precollected windows align).
 */
class Rhmd : public Detector
{
  public:
    /**
     * @param detectors trained base detectors (takes ownership).
     * @param policy    selection probabilities p_i; empty means
     *                  uniform. Must sum to 1 when given.
     * @param seed      switching randomness.
     */
    Rhmd(std::vector<std::unique_ptr<Hmd>> detectors,
         std::vector<double> policy, std::uint64_t seed);

    /** Epoch length: the maximum base-detector period. */
    std::uint32_t decisionPeriod() const override;

    std::vector<int>
    decide(const features::ProgramFeatures &prog) override;

    /**
     * Batched decide over several programs: draws the switching
     * stream exactly as back-to-back decide() calls would (programs
     * in order, epochs in order), then groups all epoch rows by the
     * selected detector so each base model scores its rows in one
     * scoreBatch() pass instead of one virtual call per window.
     * Decisions, selection counts, and metrics are bit-identical to
     * the serial loop; only the scoring schedule changes.
     */
    std::vector<std::vector<int>>
    decideBatch(const std::vector<const features::ProgramFeatures *> &progs);

    /** Base detectors. */
    const std::vector<std::unique_ptr<Hmd>> &detectors() const
    {
        return detectors_;
    }

    /** Selection policy (always normalized, never empty). */
    const std::vector<double> &policy() const { return policy_; }

    /** Number of base detectors. */
    std::size_t poolSize() const { return detectors_.size(); }

    /**
     * How often each detector was selected since construction
     * (tests use this to check the switch matches the policy).
     */
    const std::vector<std::size_t> &selectionCounts() const
    {
        return selectionCounts_;
    }

    /**
     * The switching distribution this pool actually realized: the
     * normalized selection counts (all zeros before any decision).
     * Benches report it next to policy() so the paper's Sec. 7
     * randomization can be audited, not assumed; the CI determinism
     * gate compares the realized histograms across thread counts.
     */
    std::vector<double> realizedPolicy() const;

    /** Reseed the switching randomness (reproducible replays). */
    void reseed(std::uint64_t seed);

    /**
     * Re-run the pool and policy invariants on an already-constructed
     * pool. Construction validates too, but a pool offered for live
     * promotion (serve::PoolManager::swapPool) is revalidated at the
     * admission boundary so a candidate that decayed after
     * construction — a detector whose model was clobbered in place,
     * an externally mutated policy — is rejected instead of served.
     */
    support::Status validate() const;

  private:
    std::vector<std::unique_ptr<Hmd>> detectors_;
    std::vector<double> policy_;
    Rng rng_;
    std::uint32_t epoch_ = 0;
    std::vector<std::size_t> selectionCounts_;
};

/**
 * Convenience builder: create and train one base detector per
 * (algorithm, spec) on the given ground-truth programs, then wrap
 * them in an Rhmd with a uniform policy.
 */
std::unique_ptr<Rhmd> buildRhmd(
    const std::string &algorithm,
    const std::vector<features::FeatureSpec> &specs,
    const features::FeatureCorpus &corpus,
    const std::vector<std::size_t> &train_idx, std::size_t opcode_top_k,
    std::uint64_t seed);

/**
 * Recoverable Rhmd construction: returns an error Status instead of
 * exiting when the pool or policy is invalid, so deployment code
 * (which may receive a policy from configuration) can degrade
 * gracefully. On success the detectors have been consumed; on error
 * they are destroyed with the returned status describing the problem.
 */
support::StatusOr<std::unique_ptr<Rhmd>>
tryMakeRhmd(std::vector<std::unique_ptr<Hmd>> detectors,
            std::vector<double> policy, std::uint64_t seed);

/**
 * The paper's Sec. 8.3 future-work design: a *non-stationary* RHMD.
 * An attacker who knows the exact base-detector configurations of a
 * static pool can iteratively evade all of them (at high overhead);
 * the proposed mitigation keeps "a large set of candidate features
 * and periods, of which a random subset is used for the RHMD at any
 * given time". This class holds a candidate pool and re-draws the
 * active subset every rotation interval, so the composite decision
 * boundary moves under the attacker's feet.
 */
class RotatingRhmd : public Detector
{
  public:
    /**
     * @param candidates      trained candidate detectors.
     * @param active_size     detectors active at a time.
     * @param rotation_epochs epochs between subset re-draws.
     * @param seed            switching and rotation randomness.
     */
    RotatingRhmd(std::vector<std::unique_ptr<Hmd>> candidates,
                 std::size_t active_size, std::uint32_t rotation_epochs,
                 std::uint64_t seed);

    std::uint32_t decisionPeriod() const override;
    std::vector<int>
    decide(const features::ProgramFeatures &prog) override;

    const std::vector<std::unique_ptr<Hmd>> &candidates() const
    {
        return candidates_;
    }
    std::size_t activeSize() const { return activeSize_; }

    /** Indices of the currently active subset (for tests). */
    const std::vector<std::size_t> &activeSubset() const
    {
        return active_;
    }

  private:
    void rotate();

    std::vector<std::unique_ptr<Hmd>> candidates_;
    std::size_t activeSize_;
    std::uint32_t rotationEpochs_;
    Rng rng_;
    std::uint32_t epoch_ = 0;
    std::uint32_t epochsUntilRotation_ = 0;
    std::vector<std::size_t> active_;
};

} // namespace rhmd::core

#endif // RHMD_CORE_RHMD_HH
