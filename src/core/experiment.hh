/**
 * @file
 * The shared experiment pipeline: builds a program corpus, extracts
 * feature windows, forms the paper's 60/20/20 split, and provides
 * the helpers every benchmark harness uses (victim training, evasive
 * re-extraction, program-level detection rates).
 */

#ifndef RHMD_CORE_EXPERIMENT_HH
#define RHMD_CORE_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evasion.hh"
#include "core/hmd.hh"
#include "features/corpus.hh"
#include "trace/generator.hh"

namespace rhmd::core
{

/** End-to-end experiment parameters. */
struct ExperimentConfig
{
    std::uint64_t seed = 2017;
    std::size_t benignCount = 180;
    std::size_t malwareCount = 360;
    /// @see trace::GeneratorConfig for the bimodal-hardness model.
    double commonBlend = 0.05;
    double hardBlend = 0.55;
    double hardFrac = 0.22;

    std::vector<std::uint32_t> periods{5000, 10000};
    std::uint64_t traceInsts = 120000;

    std::size_t opcodeTopK = 16;

    /**
     * When non-empty, Experiment::build replays feature extraction
     * from this RHMD-CORPUS file instead of executing programs
     * (programs are still generated — evasion rewrites need them).
     * The file's config key must match this configuration; a
     * mismatch is fatal. When empty, build() consults
     * $RHMD_CORPUS_DIR for a key-matching cached corpus and falls
     * back to fresh extraction when none exists.
     */
    std::string corpusPath;
};

/**
 * The generator parameters @p config induces — the single mapping
 * shared by Experiment::build and corpus::writeExperimentCorpus so a
 * corpus file and a fresh run always describe the same population.
 */
trace::GeneratorConfig generatorConfigOf(const ExperimentConfig &config);

/** The extraction parameters @p config induces (same contract). */
features::ExtractConfig extractConfigOf(const ExperimentConfig &config);

/**
 * A fully-built experiment: the programs (kept so evasion can
 * rewrite them), their extracted features, and the data split.
 */
class Experiment
{
  public:
    /** Generate programs, execute, extract, split. */
    static Experiment build(const ExperimentConfig &config);

    const ExperimentConfig &config() const { return config_; }
    const std::vector<trace::Program> &programs() const
    {
        return programs_;
    }
    const features::FeatureCorpus &corpus() const { return corpus_; }
    const features::SplitIndices &split() const { return split_; }

    /** Extraction configuration used (for re-extraction). */
    const features::ExtractConfig &extractConfig() const
    {
        return extract_;
    }

    /** Subset of @p idx that is malware (resp. benign). */
    std::vector<std::size_t>
    malwareOf(const std::vector<std::size_t> &idx) const;
    std::vector<std::size_t>
    benignOf(const std::vector<std::size_t> &idx) const;

    /**
     * Train a single victim detector on the victim training set with
     * ground-truth labels.
     */
    std::unique_ptr<Hmd> trainVictim(const std::string &algorithm,
                                     features::FeatureKind kind,
                                     std::uint32_t period,
                                     std::uint64_t seed = 11) const;

    /**
     * Rewrite the given malware programs per the evasion plan and
     * re-extract their features (same execution salt, so behavioural
     * differences come only from the injected code). Every variant
     * passes through the preservation gate and verifier inside
     * evadeRewrite(); @p audit, when non-null, accumulates the gate
     * counters across all programs.
     *
     * @return one ProgramFeatures per input index, in order.
     */
    std::vector<features::ProgramFeatures>
    extractEvasive(const std::vector<std::size_t> &program_idx,
                   const EvasionPlan &plan, const Hmd *model,
                   EvasionAudit *audit = nullptr) const;

    /**
     * Program-level detection rate of @p detector over the given
     * extracted programs.
     */
    static double
    detectionRate(Detector &detector,
                  const std::vector<features::ProgramFeatures> &programs);

    /** Detection rate over corpus members selected by index. */
    double detectionRateOn(Detector &detector,
                           const std::vector<std::size_t> &idx) const;

  private:
    ExperimentConfig config_;
    features::ExtractConfig extract_;
    std::vector<trace::Program> programs_;
    features::FeatureCorpus corpus_;
    features::SplitIndices split_;
};

} // namespace rhmd::core

#endif // RHMD_CORE_EXPERIMENT_HH
