/**
 * @file
 * Pass manager for the static verification layer.
 *
 * A Verifier owns an ordered list of passes and runs them over one
 * program, short-circuiting after the first pass that reports
 * error-severity findings (later passes assume the invariants the
 * earlier ones establish — the dataflow fixpoints index blocks by the
 * branch targets the CFG pass just range-checked).
 *
 * The default pipeline is CfgVerifyPass then PreservationPass, which
 * is what tools/rhmd-verify, the evasion audit, and the runtime's
 * admission check all run.
 */

#ifndef RHMD_ANALYSIS_VERIFIER_HH
#define RHMD_ANALYSIS_VERIFIER_HH

#include <memory>
#include <string_view>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostics.hh"
#include "trace/program.hh"

namespace rhmd::analysis
{

/** One verification pass over a whole program. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name, also used in findings. */
    virtual std::string_view name() const = 0;

    /** Append findings for @p prog to @p report. */
    virtual void run(const trace::Program &prog,
                     Report &report) const = 0;
};

/** Structural CFG verification (analysis/cfg.hh). */
class CfgVerifyPass final : public Pass
{
  public:
    explicit CfgVerifyPass(const CfgOptions &options = {})
        : options_(options)
    {
    }

    std::string_view name() const override { return "cfg"; }
    void run(const trace::Program &prog, Report &report) const override;

  private:
    CfgOptions options_;
};

/** Semantic-preservation audit of injected instructions
 *  (analysis/preservation.hh). */
class PreservationPass final : public Pass
{
  public:
    std::string_view name() const override { return "preservation"; }
    void run(const trace::Program &prog, Report &report) const override;
};

/** Ordered pass pipeline. */
class Verifier
{
  public:
    /** The default pipeline: CfgVerifyPass, PreservationPass. */
    explicit Verifier(const CfgOptions &cfg_options = {});

    /** An empty pipeline to assemble manually. */
    static Verifier empty();

    void addPass(std::unique_ptr<Pass> pass);
    std::size_t passCount() const { return passes_.size(); }

    /**
     * Run the pipeline over @p prog. Passes after the first one to
     * report errors are skipped.
     */
    Report run(const trace::Program &prog) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** Run the default pipeline over one program. */
Report verifyProgram(const trace::Program &prog);

} // namespace rhmd::analysis

#endif // RHMD_ANALYSIS_VERIFIER_HH
