/**
 * @file
 * Dataflow analyses implementation.
 *
 * Both fixpoints assume a structurally valid function (branch targets
 * in range) — run the CFG verifier first on untrusted input; out-of-
 * range targets here are a caller bug and panic.
 */

#include "analysis/dataflow.hh"

#include "support/logging.hh"

namespace rhmd::analysis
{

using trace::OpClass;
using trace::OpInfo;
using trace::RegId;
using trace::TermKind;

RegSet
regBit(RegId reg)
{
    panic_if(reg >= trace::kNumRegs, "bad register id ", unsigned{reg});
    return static_cast<RegSet>(1U << reg);
}

bool
contains(RegSet set, RegId reg)
{
    return (set & regBit(reg)) != 0;
}

std::string
regSetName(RegSet set)
{
    std::string out = "{";
    bool first = true;
    for (std::size_t r = 0; r < trace::kNumRegs; ++r) {
        if (!contains(set, static_cast<RegId>(r)))
            continue;
        if (!first)
            out += ", ";
        out += trace::regName(static_cast<RegId>(r));
        first = false;
    }
    out += "}";
    return out;
}

RegSet
instUses(const trace::StaticInst &inst)
{
    const OpInfo &info = trace::opInfo(inst.op);
    RegSet set = 0;
    if (info.numSrc >= 1)
        set |= regBit(inst.src1);
    if (info.numSrc >= 2)
        set |= regBit(inst.src2);
    const bool stack_addressed = trace::accessesMemory(inst.op) &&
        inst.mem.pattern == trace::AddrPattern::StackSlot;
    if (stack_addressed || inst.op == OpClass::Push ||
        inst.op == OpClass::Pop) {
        set |= regBit(trace::kRegSp);
    }
    return set;
}

RegSet
instDefs(const trace::StaticInst &inst)
{
    const OpInfo &info = trace::opInfo(inst.op);
    RegSet set = 0;
    if (info.hasDst)
        set |= regBit(inst.dst);
    if (inst.op == OpClass::Push || inst.op == OpClass::Pop)
        set |= regBit(trace::kRegSp);
    return set;
}

RegSet
termUses(const trace::Terminator &term)
{
    switch (term.kind) {
      case TermKind::CondBranch:
        return regBit(term.condSrc1) | regBit(term.condSrc2);
      case TermKind::Jump:
        return 0;
      case TermKind::Call:
        // The callee may read the ABI argument registers; sp carries
        // the return address push.
        return regBit(trace::kRegArg0) | regBit(trace::kRegArg1) |
               regBit(trace::kRegArg2) | regBit(trace::kRegSp);
      case TermKind::Ret:
        // The caller observes the return-value register.
        return regBit(trace::kRegRet) | regBit(trace::kRegSp);
      case TermKind::Exit:
        // The exit status is observable program output.
        return regBit(trace::kRegRet);
    }
    rhmd_panic("bad terminator kind");
}

RegSet
termDefs(const trace::Terminator &term)
{
    switch (term.kind) {
      case TermKind::Call:
        // The callee returns a value and may clobber the volatile
        // scratch registers; sp is restored on return.
        return regBit(trace::kRegRet) | regBit(trace::kRegScratch0) |
               regBit(trace::kRegScratch1) | regBit(trace::kRegSp);
      case TermKind::Ret:
        return regBit(trace::kRegSp);
      case TermKind::CondBranch:
      case TermKind::Jump:
      case TermKind::Exit:
        return 0;
    }
    rhmd_panic("bad terminator kind");
}

std::vector<std::uint32_t>
successorBlocks(const trace::Terminator &term)
{
    switch (term.kind) {
      case TermKind::CondBranch:
        if (term.takenTarget == term.fallTarget)
            return {term.takenTarget};
        return {term.takenTarget, term.fallTarget};
      case TermKind::Jump:
        return {term.takenTarget};
      case TermKind::Call:
        // Intra-function control resumes at the continuation; the
        // callee's effect is summarized by termUses/termDefs.
        return {term.fallTarget};
      case TermKind::Ret:
      case TermKind::Exit:
        return {};
    }
    rhmd_panic("bad terminator kind");
}

namespace
{

/** Uses of one body instruction under the observability option. */
RegSet
observedUses(const trace::StaticInst &inst, const LivenessOptions &options)
{
    if (options.observableUsesOnly && inst.injected)
        return 0;
    return instUses(inst);
}

} // namespace

Liveness
Liveness::compute(const trace::Function &fn, const LivenessOptions &options)
{
    Liveness out;
    out.fn_ = &fn;
    out.options_ = options;
    const std::size_t n = fn.blocks.size();
    out.liveIn_.assign(n, 0);
    out.liveOut_.assign(n, 0);

    // Block summaries: upward-exposed uses and defined registers,
    // scanned backward starting from the terminator.
    std::vector<RegSet> use(n, 0);
    std::vector<RegSet> def(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
        const trace::BasicBlock &block = fn.blocks[b];
        RegSet u = termUses(block.term);
        RegSet d = termDefs(block.term);
        for (std::size_t i = block.body.size(); i-- > 0;) {
            const trace::StaticInst &inst = block.body[i];
            const RegSet id = instDefs(inst);
            u = observedUses(inst, options) | (u & ~id);
            d |= id;
        }
        use[b] = u;
        def[b] = d;
    }

    // Round-robin backward fixpoint; reverse block order converges in
    // a couple of rounds on reducible CFGs.
    bool changed = true;
    while (changed) {
        changed = false;
        ++out.iterations_;
        for (std::size_t b = n; b-- > 0;) {
            RegSet live_out = 0;
            for (const std::uint32_t succ :
                 successorBlocks(fn.blocks[b].term)) {
                panic_if(succ >= n, "successor out of range");
                live_out |= out.liveIn_[succ];
            }
            const RegSet live_in = use[b] | (live_out & ~def[b]);
            if (live_out != out.liveOut_[b] ||
                live_in != out.liveIn_[b]) {
                out.liveOut_[b] = live_out;
                out.liveIn_[b] = live_in;
                changed = true;
            }
        }
    }
    return out;
}

RegSet
Liveness::liveIn(std::size_t block) const
{
    panic_if(block >= liveIn_.size(), "block out of range");
    return liveIn_[block];
}

RegSet
Liveness::liveOut(std::size_t block) const
{
    panic_if(block >= liveOut_.size(), "block out of range");
    return liveOut_[block];
}

RegSet
Liveness::liveBeforeTerm(std::size_t block) const
{
    panic_if(block >= liveOut_.size(), "block out of range");
    const trace::Terminator &term = fn_->blocks[block].term;
    return termUses(term) | (liveOut_[block] & ~termDefs(term));
}

std::vector<RegSet>
Liveness::livePoints(std::size_t block) const
{
    panic_if(block >= liveOut_.size(), "block out of range");
    const trace::BasicBlock &blk = fn_->blocks[block];
    std::vector<RegSet> points(blk.body.size() + 1);
    points[blk.body.size()] = liveBeforeTerm(block);
    for (std::size_t i = blk.body.size(); i-- > 0;) {
        const trace::StaticInst &inst = blk.body[i];
        points[i] = observedUses(inst, options_) |
                    (points[i + 1] & ~instDefs(inst));
    }
    return points;
}

namespace
{

/** Append one DefSite per register defined by the given def set. */
void
appendDefSites(std::vector<DefSite> &defs, std::size_t block,
               std::size_t inst, RegSet set)
{
    for (std::size_t r = 0; r < trace::kNumRegs; ++r) {
        if (contains(set, static_cast<RegId>(r)))
            defs.push_back({block, inst, static_cast<RegId>(r)});
    }
}

} // namespace

ReachingDefs
ReachingDefs::compute(const trace::Function &fn)
{
    ReachingDefs out;
    const std::size_t n = fn.blocks.size();

    // Enumerate definition sites in (block, inst) program order so a
    // block's own sites are contiguous.
    std::vector<std::size_t> block_first(n + 1, 0);
    for (std::size_t b = 0; b < n; ++b) {
        block_first[b] = out.defs_.size();
        const trace::BasicBlock &block = fn.blocks[b];
        for (std::size_t i = 0; i < block.body.size(); ++i)
            appendDefSites(out.defs_, b, i, instDefs(block.body[i]));
        appendDefSites(out.defs_, b, kTermIndex, termDefs(block.term));
    }
    block_first[n] = out.defs_.size();

    const std::size_t n_defs = out.defs_.size();
    out.words_ = (n_defs + 63) / 64;
    const std::size_t words = out.words_;

    // Per-register def-site index lists, as bit masks for kill sets.
    std::vector<std::vector<std::uint64_t>> defs_of_reg(
        trace::kNumRegs, std::vector<std::uint64_t>(words, 0));
    for (std::size_t d = 0; d < n_defs; ++d)
        defs_of_reg[out.defs_[d].reg][d / 64] |= 1ULL << (d % 64);

    // Block transfer functions.
    std::vector<std::uint64_t> gen(n * words, 0);
    std::vector<std::uint64_t> kill(n * words, 0);
    for (std::size_t b = 0; b < n; ++b) {
        std::uint64_t *g = &gen[b * words];
        std::uint64_t *k = &kill[b * words];
        for (std::size_t d = block_first[b]; d < block_first[b + 1];
             ++d) {
            const std::vector<std::uint64_t> &same =
                defs_of_reg[out.defs_[d].reg];
            for (std::size_t w = 0; w < words; ++w) {
                g[w] &= ~same[w];  // later def of the reg wins
                k[w] |= same[w];
            }
            g[d / 64] |= 1ULL << (d % 64);
        }
    }

    // Predecessor lists.
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::size_t b = 0; b < n; ++b) {
        for (const std::uint32_t succ :
             successorBlocks(fn.blocks[b].term)) {
            panic_if(succ >= n, "successor out of range");
            preds[succ].push_back(static_cast<std::uint32_t>(b));
        }
    }

    // Forward fixpoint: in = ∪ out(pred), out = gen ∪ (in − kill).
    out.in_.assign(n * words, 0);
    std::vector<std::uint64_t> outset(n * words, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        ++out.iterations_;
        for (std::size_t b = 0; b < n; ++b) {
            std::uint64_t *in = &out.in_[b * words];
            for (std::size_t w = 0; w < words; ++w) {
                std::uint64_t bits = 0;
                for (const std::uint32_t p : preds[b])
                    bits |= outset[p * words + w];
                in[w] = bits;
            }
            const std::uint64_t *g = &gen[b * words];
            const std::uint64_t *k = &kill[b * words];
            std::uint64_t *o = &outset[b * words];
            for (std::size_t w = 0; w < words; ++w) {
                const std::uint64_t next = g[w] | (in[w] & ~k[w]);
                if (next != o[w]) {
                    o[w] = next;
                    changed = true;
                }
            }
        }
    }

    // Def-use chains: walk each block with the running reaching set.
    out.chains_.assign(n_defs, {});
    std::vector<std::uint64_t> cur(words);
    const auto record_uses = [&](std::size_t b, std::size_t i,
                                 RegSet uses) {
        for (std::size_t r = 0; r < trace::kNumRegs; ++r) {
            if (!contains(uses, static_cast<RegId>(r)))
                continue;
            const std::vector<std::uint64_t> &same = defs_of_reg[r];
            for (std::size_t w = 0; w < words; ++w) {
                std::uint64_t live = cur[w] & same[w];
                while (live != 0) {
                    const auto bit = static_cast<std::size_t>(
                        __builtin_ctzll(live));
                    out.chains_[w * 64 + bit].push_back(
                        {b, i, static_cast<RegId>(r)});
                    live &= live - 1;
                }
            }
        }
    };
    const auto apply_defs = [&](std::size_t &cursor, std::size_t last) {
        for (; cursor < last; ++cursor) {
            const std::vector<std::uint64_t> &same =
                defs_of_reg[out.defs_[cursor].reg];
            for (std::size_t w = 0; w < words; ++w)
                cur[w] &= ~same[w];
            cur[cursor / 64] |= 1ULL << (cursor % 64);
        }
    };
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t w = 0; w < words; ++w)
            cur[w] = out.in_[b * words + w];
        const trace::BasicBlock &block = fn.blocks[b];
        std::size_t cursor = block_first[b];
        std::size_t next_site = cursor;
        for (std::size_t i = 0; i < block.body.size(); ++i) {
            record_uses(b, i, instUses(block.body[i]));
            // Advance over this instruction's definition sites.
            while (next_site < block_first[b + 1] &&
                   out.defs_[next_site].inst == i) {
                ++next_site;
            }
            apply_defs(cursor, next_site);
        }
        record_uses(b, kTermIndex, termUses(block.term));
    }
    return out;
}

std::vector<std::size_t>
ReachingDefs::reachingIn(std::size_t block) const
{
    std::vector<std::size_t> out;
    if (words_ == 0)
        return out;
    const std::uint64_t *in = &in_[block * words_];
    for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t bits = in[w];
        while (bits != 0) {
            const auto bit =
                static_cast<std::size_t>(__builtin_ctzll(bits));
            out.push_back(w * 64 + bit);
            bits &= bits - 1;
        }
    }
    return out;
}

} // namespace rhmd::analysis
