/**
 * @file
 * Control-flow-graph verification over the trace IR.
 *
 * Two entry points: checkProgramCfg() verifies a static Program
 * (well-formed blocks, resolvable branch targets, register and region
 * operands in range, entry/exit invariants, reachability) and
 * checkDcfg() cross-checks a dynamically recovered CFG (every
 * observed edge resolves to a recovered node, block bodies end at
 * their first control transfer, traversal counts are consistent).
 *
 * Unlike trace::Program::validate(), which panics and exists to catch
 * *generator* bugs, these checks emit structured findings and are
 * safe to run on untrusted input — evasion rewrites, deserialized
 * corpora, admission checks in the runtime.
 */

#ifndef RHMD_ANALYSIS_CFG_HH
#define RHMD_ANALYSIS_CFG_HH

#include <vector>

#include "analysis/diagnostics.hh"
#include "trace/dcfg.hh"
#include "trace/program.hh"

namespace rhmd::analysis
{

/** Which optional CFG lints to run. */
struct CfgOptions
{
    /**
     * Warn on blocks unreachable from the function entry. Off by
     * default: generated programs legitimately contain skip-jump dead
     * blocks (the analog of compiler padding), so on a valid corpus
     * this lint is pure noise — enable it when auditing hand-built or
     * rewritten CFGs where dead code is suspicious.
     */
    bool flagUnreachableBlocks = false;
};

/** Derived per-function CFG structure. */
struct CfgInfo
{
    std::vector<std::vector<std::uint32_t>> succs;
    std::vector<std::vector<std::uint32_t>> preds;
    std::vector<bool> reachable;  ///< from the entry block (index 0)
};

/**
 * Build successor/predecessor lists and entry reachability for a
 * function whose branch targets are known to be in range (verify
 * first for untrusted input; out-of-range targets panic here).
 */
CfgInfo buildCfg(const trace::Function &fn);

/**
 * Run all structural CFG checks over @p prog, appending findings to
 * @p report. Returns true when no *error*-severity finding was added
 * (warnings — unreachable blocks, dead fall-through edges — do not
 * fail a program).
 */
bool checkProgramCfg(const trace::Program &prog, Report &report,
                     const CfgOptions &options = {});

/** Consistency checks over a recovered dynamic CFG. */
bool checkDcfg(const trace::DcfgBuilder &dcfg, Report &report);

} // namespace rhmd::analysis

#endif // RHMD_ANALYSIS_CFG_HH
