/**
 * @file
 * Pass manager implementation.
 */

#include "analysis/verifier.hh"

#include "analysis/preservation.hh"

namespace rhmd::analysis
{

void
CfgVerifyPass::run(const trace::Program &prog, Report &report) const
{
    checkProgramCfg(prog, report, options_);
}

void
PreservationPass::run(const trace::Program &prog, Report &report) const
{
    checkPreservation(prog, report);
}

Verifier::Verifier(const CfgOptions &cfg_options)
{
    passes_.push_back(std::make_unique<CfgVerifyPass>(cfg_options));
    passes_.push_back(std::make_unique<PreservationPass>());
}

Verifier
Verifier::empty()
{
    Verifier v;
    v.passes_.clear();
    return v;
}

void
Verifier::addPass(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

Report
Verifier::run(const trace::Program &prog) const
{
    Report report;
    for (const auto &pass : passes_) {
        const std::size_t errors_before = report.errorCount();
        pass->run(prog, report);
        // Later passes assume the invariants earlier ones establish
        // (dataflow indexes blocks by just-checked branch targets).
        if (report.errorCount() != errors_before)
            break;
    }
    return report;
}

Report
verifyProgram(const trace::Program &prog)
{
    return Verifier().run(prog);
}

} // namespace rhmd::analysis
