/**
 * @file
 * Semantic-preservation checking for evasion rewrites.
 *
 * The paper's attack (Sec. 5) may add instructions to a victim
 * binary, but must not change what the program computes. This module
 * turns that constraint into a decision procedure over the IR:
 * an injected instruction is *observationally dead* when
 *
 *  1. it cannot redirect control flow (no branches/calls/rets, no
 *     unbalanced stack ops — the structural rules the rewriter
 *     already enforces),
 *  2. every register it writes is dead at that program point under
 *     observable-uses-only liveness (reads by other injected
 *     instructions do not count as observations — a chain of
 *     injected instructions feeding only each other is dead as a
 *     whole), and
 *  3. any store it performs targets scratch memory: the stride-walked
 *     red zone of the stack region, or a data region the original
 *     program never reads. Stack-slot stores and stores into
 *     regions the program loads from are clobbers.
 *
 * The injector-reserved scratch registers t0/t1 satisfy rule 2 at
 * every point of a generated program by construction, which is why
 * the paper-mode payloads always verify.
 */

#ifndef RHMD_ANALYSIS_PRESERVATION_HH
#define RHMD_ANALYSIS_PRESERVATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "trace/injection.hh"
#include "trace/program.hh"

namespace rhmd::analysis
{

/**
 * Audit an already-rewritten program: prove every instruction marked
 * `injected` observationally dead, emitting an error finding for each
 * violation. Returns true when all injected instructions verify.
 */
bool checkPreservation(const trace::Program &prog, Report &report);

/**
 * Liveness-based admission filter for the injection rewriter.
 *
 * Precomputes observable liveness and the region read-set of the
 * *original* program once, then answers per-site queries: would
 * appending this payload to block (fn, block) preserve semantics?
 * core::evadeRewrite routes every candidate site through a gate so
 * clobbering rewrites are skipped (and counted) instead of emitted.
 */
class InjectionGate
{
  public:
    /** @param original must outlive the gate. */
    explicit InjectionGate(const trace::Program &original);

    /** True when appending @p payload to the end of the block's body
     *  is provably semantics-preserving. */
    bool admits(std::size_t fn, std::size_t block,
                const std::vector<trace::StaticInst> &payload) const;

    /**
     * Human-readable reason the site is rejected, or an empty string
     * when it is admitted.
     */
    std::string rejectReason(
        std::size_t fn, std::size_t block,
        const std::vector<trace::StaticInst> &payload) const;

    /** Counting trace::SiteFilter bound to this gate. */
    trace::SiteFilter filter();

    std::size_t admitted() const { return admitted_; }
    std::size_t rejected() const { return rejected_; }

  private:
    const trace::Program *prog_;
    std::vector<Liveness> liveness_;     ///< per function, observable
    std::vector<bool> regionsRead_;      ///< non-frame reads per region
    std::size_t admitted_ = 0;
    std::size_t rejected_ = 0;
};

} // namespace rhmd::analysis

#endif // RHMD_ANALYSIS_PRESERVATION_HH
