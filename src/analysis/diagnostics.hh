/**
 * @file
 * Structured diagnostics for the static verification layer.
 *
 * Every analysis pass reports through a Report: a list of Findings
 * carrying a stable machine-readable code, a severity, and the
 * (function, block, instruction) coordinates the finding anchors to.
 * Findings never abort — the verifier is for *untrusted* programs
 * (evasion rewrites, deserialized corpora), where trace::Program::
 * validate()'s panics would be the wrong contract.
 */

#ifndef RHMD_ANALYSIS_DIAGNOSTICS_HH
#define RHMD_ANALYSIS_DIAGNOSTICS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rhmd::analysis
{

/**
 * Finding severity. Errors are contract violations (malformed CFG,
 * clobbering injection); warnings are structurally valid but
 * suspicious shapes (unreachable blocks, dead fall-through edges)
 * that real binaries do exhibit and the lint driver reports
 * separately from its pass/fail verdict.
 */
enum class Severity : std::uint8_t
{
    Error,
    Warning,
    Note,
};

/** Lower-case severity name ("error", "warning", "note"). */
std::string_view severityName(Severity severity);

/** Sentinel for "no such coordinate" in a Finding. */
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/** One diagnostic from one pass. */
struct Finding
{
    Severity severity = Severity::Error;
    std::string_view pass;  ///< emitting pass ("cfg", "preservation")
    std::string_view code;  ///< stable code ("branch-target-range")
    std::size_t function = kNoIndex;  ///< function index, or kNoIndex
    std::size_t block = kNoIndex;     ///< block index, or kNoIndex
    std::size_t inst = kNoIndex;      ///< body index, or kNoIndex
    std::string message;              ///< human-readable detail
};

/** Accumulates findings across passes for one program. */
class Report
{
  public:
    void add(Finding finding);

    /** Shorthand emitters. */
    void error(std::string_view pass, std::string_view code,
               std::size_t function, std::size_t block, std::size_t inst,
               std::string message);
    void warning(std::string_view pass, std::string_view code,
                 std::size_t function, std::size_t block,
                 std::size_t inst, std::string message);
    void note(std::string_view pass, std::string_view code,
              std::size_t function, std::size_t block, std::size_t inst,
              std::string message);

    const std::vector<Finding> &findings() const { return findings_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }

    /** True when the program passed: no error-severity findings. */
    bool clean() const { return errors_ == 0; }

    /** Append another report's findings. */
    void merge(const Report &other);

    /**
     * Machine-readable form: one JSON object per finding, one per
     * line, tagged with @p program so corpus-wide streams stay
     * attributable.
     */
    std::string toJsonLines(std::string_view program) const;

    /** "2 errors, 1 warning, 0 notes". */
    std::string summary() const;

  private:
    std::vector<Finding> findings_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
};

} // namespace rhmd::analysis

#endif // RHMD_ANALYSIS_DIAGNOSTICS_HH
