/**
 * @file
 * CFG verification implementation.
 */

#include "analysis/cfg.hh"

#include <string>

#include "analysis/dataflow.hh"
#include "support/logging.hh"

namespace rhmd::analysis
{

using trace::TermKind;

namespace
{

constexpr std::string_view kPass = "cfg";

} // namespace

CfgInfo
buildCfg(const trace::Function &fn)
{
    CfgInfo info;
    const std::size_t n = fn.blocks.size();
    info.succs.resize(n);
    info.preds.resize(n);
    info.reachable.assign(n, false);
    for (std::size_t b = 0; b < n; ++b) {
        info.succs[b] = successorBlocks(fn.blocks[b].term);
        for (const std::uint32_t succ : info.succs[b]) {
            panic_if(succ >= n, "successor out of range");
            info.preds[succ].push_back(static_cast<std::uint32_t>(b));
        }
    }
    // Depth-first reachability from the entry block.
    std::vector<std::uint32_t> stack{0};
    if (n > 0)
        info.reachable[0] = true;
    while (!stack.empty()) {
        const std::uint32_t b = stack.back();
        stack.pop_back();
        for (const std::uint32_t succ : info.succs[b]) {
            if (!info.reachable[succ]) {
                info.reachable[succ] = true;
                stack.push_back(succ);
            }
        }
    }
    return info;
}

namespace
{

/**
 * Range checks for one function. Returns false when any index is
 * unresolvable, in which case the graph-level checks are skipped for
 * the function (successor walks would be out of bounds).
 */
bool
checkFunctionRanges(const trace::Program &prog, std::size_t f,
                    Report &report)
{
    const trace::Function &fn = prog.functions[f];
    const auto n_blocks = static_cast<std::uint32_t>(fn.blocks.size());
    bool resolvable = true;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const trace::Terminator &term = fn.blocks[b].term;
        switch (term.kind) {
          case TermKind::CondBranch:
            if (term.takenTarget >= n_blocks ||
                term.fallTarget >= n_blocks) {
                report.error(kPass, "branch-target-range", f, b,
                             kNoIndex,
                             "conditional branch targets block " +
                                 std::to_string(term.takenTarget >=
                                                        n_blocks
                                                    ? term.takenTarget
                                                    : term.fallTarget) +
                                 " of a " + std::to_string(n_blocks) +
                                 "-block function");
                resolvable = false;
            }
            if (term.takenProb < 0.0 || term.takenProb > 1.0) {
                report.error(kPass, "taken-prob-range", f, b, kNoIndex,
                             "taken probability " +
                                 std::to_string(term.takenProb) +
                                 " outside [0, 1]");
            }
            break;
          case TermKind::Jump:
            if (term.takenTarget >= n_blocks) {
                report.error(kPass, "jump-target-range", f, b, kNoIndex,
                             "jump targets block " +
                                 std::to_string(term.takenTarget) +
                                 " of a " + std::to_string(n_blocks) +
                                 "-block function");
                resolvable = false;
            }
            break;
          case TermKind::Call:
            if (term.callee >= prog.functions.size()) {
                report.error(kPass, "callee-range", f, b, kNoIndex,
                             "call targets function " +
                                 std::to_string(term.callee) + " of " +
                                 std::to_string(
                                     prog.functions.size()));
            }
            if (term.fallTarget >= n_blocks) {
                report.error(kPass, "call-continuation-range", f, b,
                             kNoIndex,
                             "call continuation targets block " +
                                 std::to_string(term.fallTarget) +
                                 " of a " + std::to_string(n_blocks) +
                                 "-block function");
                resolvable = false;
            }
            break;
          case TermKind::Ret:
          case TermKind::Exit:
            break;
        }
        if (term.condSrc1 >= trace::kNumRegs ||
            term.condSrc2 >= trace::kNumRegs) {
            report.error(kPass, "terminator-register-range", f, b,
                         kNoIndex, "condition register id out of range");
        }

        const trace::BasicBlock &block = fn.blocks[b];
        for (std::size_t i = 0; i < block.body.size(); ++i) {
            const trace::StaticInst &inst = block.body[i];
            if (trace::isControlFlow(inst.op)) {
                report.error(kPass, "control-flow-in-body", f, b, i,
                             std::string("'") +
                                 std::string(trace::opName(inst.op)) +
                                 "' inside a block body would redirect "
                                 "execution");
            }
            if (inst.dst >= trace::kNumRegs ||
                inst.src1 >= trace::kNumRegs ||
                inst.src2 >= trace::kNumRegs) {
                report.error(kPass, "register-range", f, b, i,
                             "register operand id out of range");
            }
            if (trace::accessesMemory(inst.op) &&
                inst.mem.pattern != trace::AddrPattern::StackSlot &&
                inst.mem.region >= prog.regions.size()) {
                report.error(kPass, "mem-region-range", f, b, i,
                             "memory region " +
                                 std::to_string(inst.mem.region) +
                                 " of " +
                                 std::to_string(prog.regions.size()));
            }
        }
    }
    return resolvable;
}

/** Graph-level checks; requires resolvable targets. */
void
checkFunctionGraph(const trace::Function &fn, std::size_t f,
                   bool is_entry, const CfgOptions &options,
                   Report &report)
{
    const CfgInfo info = buildCfg(fn);

    bool has_exit_term = false;
    bool reachable_exit = false;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const trace::Terminator &term = fn.blocks[b].term;
        const bool exits =
            term.kind == TermKind::Ret || term.kind == TermKind::Exit;
        has_exit_term |= exits;
        reachable_exit |= exits && info.reachable[b];

        if (term.kind == TermKind::Exit && !is_entry) {
            report.warning(kPass, "exit-outside-entry", f, b, kNoIndex,
                           "program exit in a non-entry function");
        }
        if (term.kind == TermKind::CondBranch &&
            term.takenProb == 1.0 &&
            term.fallTarget != term.takenTarget) {
            report.warning(kPass, "dead-fallthrough", f, b, kNoIndex,
                           "always-taken branch makes the fall-through "
                           "edge to block " +
                               std::to_string(term.fallTarget) +
                               " unreachable");
        }
        if (options.flagUnreachableBlocks && !info.reachable[b]) {
            report.warning(kPass, "unreachable-block", f, b, kNoIndex,
                           "block is unreachable from the function "
                           "entry");
        }
    }
    if (!has_exit_term) {
        report.error(kPass, "no-exit", f, kNoIndex, kNoIndex,
                     "function has no return or exit terminator");
    } else if (!reachable_exit) {
        report.warning(kPass, "exit-unreachable", f, kNoIndex, kNoIndex,
                       "no return or exit terminator is reachable from "
                       "the function entry");
    }
}

} // namespace

bool
checkProgramCfg(const trace::Program &prog, Report &report,
                const CfgOptions &options)
{
    const std::size_t errors_before = report.errorCount();

    if (prog.functions.empty()) {
        report.error(kPass, "no-functions", kNoIndex, kNoIndex, kNoIndex,
                     "program has no functions");
    }
    if (prog.regions.empty()) {
        report.error(kPass, "no-regions", kNoIndex, kNoIndex, kNoIndex,
                     "program has no memory regions");
    }
    for (std::size_t r = 0; r < prog.regions.size(); ++r) {
        const trace::MemRegion &region = prog.regions[r];
        if (region.size == 0) {
            report.error(kPass, "empty-region", kNoIndex, kNoIndex,
                         kNoIndex,
                         "memory region " + std::to_string(r) +
                             " has zero size");
        }
        for (std::size_t s = r + 1; s < prog.regions.size(); ++s) {
            const trace::MemRegion &other = prog.regions[s];
            const bool disjoint =
                region.base + region.size <= other.base ||
                other.base + other.size <= region.base;
            if (!disjoint) {
                report.error(kPass, "region-overlap", kNoIndex, kNoIndex,
                             kNoIndex,
                             "memory regions " + std::to_string(r) +
                                 " and " + std::to_string(s) +
                                 " overlap");
            }
        }
    }

    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        if (prog.functions[f].blocks.empty()) {
            report.error(kPass, "empty-function", f, kNoIndex, kNoIndex,
                         "function has no basic blocks");
            continue;
        }
        if (checkFunctionRanges(prog, f, report)) {
            checkFunctionGraph(prog.functions[f], f, f == 0, options,
                               report);
        }
    }
    return report.errorCount() == errors_before;
}

bool
checkDcfg(const trace::DcfgBuilder &dcfg, Report &report)
{
    constexpr std::string_view pass = "dcfg";
    const std::size_t errors_before = report.errorCount();

    for (const auto &[pc, node] : dcfg.nodes()) {
        if (node.ops.empty()) {
            report.error(pass, "empty-node", kNoIndex, kNoIndex,
                         kNoIndex,
                         "recovered block at pc " + std::to_string(pc) +
                             " has no instructions");
            continue;
        }
        if (node.execCount == 0) {
            report.error(pass, "zero-exec-count", kNoIndex, kNoIndex,
                         kNoIndex,
                         "recovered block at pc " + std::to_string(pc) +
                             " was never executed");
        }
        // A dynamic block must end at its first control transfer.
        for (std::size_t i = 0; i + 1 < node.ops.size(); ++i) {
            if (trace::isControlFlow(node.ops[i])) {
                report.error(pass, "early-control-flow", kNoIndex,
                             kNoIndex, i,
                             "recovered block at pc " +
                                 std::to_string(pc) +
                                 " continues past a control transfer");
            }
        }
        std::uint64_t traversals = 0;
        for (const auto &[succ_pc, count] : node.successors) {
            traversals += count;
            if (dcfg.nodes().count(succ_pc) == 0) {
                // The in-flight tail block at the end of a finite
                // trace legitimately never completes; more than one
                // traversal of a missing node is a real inconsistency.
                if (count > 1) {
                    report.error(pass, "unresolved-successor", kNoIndex,
                                 kNoIndex, kNoIndex,
                                 "edge " + std::to_string(pc) + " -> " +
                                     std::to_string(succ_pc) +
                                     " taken " + std::to_string(count) +
                                     " times targets no recovered "
                                     "block");
                } else {
                    report.note(pass, "truncated-successor", kNoIndex,
                                kNoIndex, kNoIndex,
                                "edge " + std::to_string(pc) + " -> " +
                                    std::to_string(succ_pc) +
                                    " ends the trace mid-block");
                }
            }
        }
        if (traversals > node.execCount) {
            report.error(pass, "traversal-overcount", kNoIndex, kNoIndex,
                         kNoIndex,
                         "block at pc " + std::to_string(pc) +
                             " records " + std::to_string(traversals) +
                             " outgoing traversals but only " +
                             std::to_string(node.execCount) +
                             " executions");
        }
    }
    return report.errorCount() == errors_before;
}

} // namespace rhmd::analysis
