/**
 * @file
 * Diagnostics implementation: severity bookkeeping and JSON output.
 */

#include "analysis/diagnostics.hh"

#include "support/logging.hh"

namespace rhmd::analysis
{

std::string_view
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    rhmd_panic("bad severity");
}

void
Report::add(Finding finding)
{
    switch (finding.severity) {
      case Severity::Error:
        ++errors_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      case Severity::Note:
        ++notes_;
        break;
    }
    findings_.push_back(std::move(finding));
}

void
Report::error(std::string_view pass, std::string_view code,
              std::size_t function, std::size_t block, std::size_t inst,
              std::string message)
{
    add({Severity::Error, pass, code, function, block, inst,
         std::move(message)});
}

void
Report::warning(std::string_view pass, std::string_view code,
                std::size_t function, std::size_t block, std::size_t inst,
                std::string message)
{
    add({Severity::Warning, pass, code, function, block, inst,
         std::move(message)});
}

void
Report::note(std::string_view pass, std::string_view code,
             std::size_t function, std::size_t block, std::size_t inst,
             std::string message)
{
    add({Severity::Note, pass, code, function, block, inst,
         std::move(message)});
}

void
Report::merge(const Report &other)
{
    for (const Finding &finding : other.findings_)
        add(finding);
}

namespace
{

/** Minimal JSON string escaping (quotes, backslash, control bytes). */
void
appendJsonString(std::string &out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += hex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendIndex(std::string &out, std::string_view key, std::size_t value)
{
    out += ",\"";
    out += key;
    out += "\":";
    if (value == kNoIndex)
        out += "null";
    else
        out += std::to_string(value);
}

} // namespace

std::string
Report::toJsonLines(std::string_view program) const
{
    std::string out;
    for (const Finding &finding : findings_) {
        out += "{\"program\":";
        appendJsonString(out, program);
        out += ",\"severity\":\"";
        out += severityName(finding.severity);
        out += "\",\"pass\":\"";
        out += finding.pass;
        out += "\",\"code\":\"";
        out += finding.code;
        out += '"';
        appendIndex(out, "function", finding.function);
        appendIndex(out, "block", finding.block);
        appendIndex(out, "inst", finding.inst);
        out += ",\"message\":";
        appendJsonString(out, finding.message);
        out += "}\n";
    }
    return out;
}

std::string
Report::summary() const
{
    return std::to_string(errors_) +
           (errors_ == 1 ? " error, " : " errors, ") +
           std::to_string(warnings_) +
           (warnings_ == 1 ? " warning, " : " warnings, ") +
           std::to_string(notes_) + (notes_ == 1 ? " note" : " notes");
}

} // namespace rhmd::analysis
