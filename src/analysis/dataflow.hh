/**
 * @file
 * Classic dataflow analyses over the trace IR's register model.
 *
 * All analyses work on the powerset lattice of the 15-register file
 * (a RegSet bitmask) or of a function's definition sites (a bitvector
 * keyed by DefSite index), with union as join. Transfer functions are
 * monotone and the lattices have finite height, so the round-robin
 * fixpoint iterations below terminate.
 *
 *  - Liveness: backward may-analysis. live_in(b) = use(b) ∪
 *    (live_out(b) − def(b)), live_out(b) = ∪ live_in(succ). The
 *    semantic-preservation checker (preservation.hh) is built on the
 *    per-point form.
 *  - Reaching definitions: forward may-analysis over definition
 *    sites; gen/kill per block, in(b) = ∪ out(pred).
 *  - Def-use chains: derived from reaching definitions by walking
 *    each block with the running reaching set.
 */

#ifndef RHMD_ANALYSIS_DATAFLOW_HH
#define RHMD_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/program.hh"

namespace rhmd::analysis
{

/** A set of architectural registers, bit i = register id i. */
using RegSet = std::uint32_t;

/** Singleton set for one register. */
RegSet regBit(trace::RegId reg);

/** Membership test. */
bool contains(RegSet set, trace::RegId reg);

/** Diagnostic rendering: "{r1, r5, sp}". */
std::string regSetName(RegSet set);

/** Registers read by one body instruction (including sp for
 *  stack-relative addressing and stack push data). */
RegSet instUses(const trace::StaticInst &inst);

/** Registers written by one body instruction. */
RegSet instDefs(const trace::StaticInst &inst);

/**
 * Registers read by a terminator: compare-and-branch condition
 * sources, the ABI argument registers at calls (the callee may read
 * them), the return-value register at rets and exits, sp for any
 * stack-engaging transfer.
 */
RegSet termUses(const trace::Terminator &term);

/**
 * Registers written by a terminator: calls define the return value
 * and clobber the caller-saved scratch registers; call/ret adjust sp.
 */
RegSet termDefs(const trace::Terminator &term);

/** Intra-function successor block indexes of a terminator. */
std::vector<std::uint32_t> successorBlocks(const trace::Terminator &term);

/** Controls whose reads generate liveness. */
struct LivenessOptions
{
    /**
     * Count only *observable* uses: reads made by injected
     * instructions are ignored (terminator reads always count). An
     * injected instruction's consumers are themselves candidates for
     * removal, so under this option "live" means "may influence the
     * original program's behaviour" — exactly the property the
     * semantic-preservation rule needs.
     */
    bool observableUsesOnly = false;
};

/** Per-block liveness solution for one function. */
class Liveness
{
  public:
    /** Run the backward fixpoint over @p fn (kept by reference;
     *  the function must outlive the solution). */
    static Liveness compute(const trace::Function &fn,
                            const LivenessOptions &options = {});

    RegSet liveIn(std::size_t block) const;
    RegSet liveOut(std::size_t block) const;

    /** Live registers at the pre-terminator point — where the
     *  evasion rewriter appends its payload. */
    RegSet liveBeforeTerm(std::size_t block) const;

    /**
     * Per-point solution for one block: result[i] is the live set
     * immediately *before* body[i]; result[body.size()] is the live
     * set before the terminator. Recomputed on demand by a backward
     * scan seeded from liveOut.
     */
    std::vector<RegSet> livePoints(std::size_t block) const;

    /** Fixpoint rounds until stabilization (for tests). */
    std::size_t iterations() const { return iterations_; }

  private:
    const trace::Function *fn_ = nullptr;
    LivenessOptions options_;
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
    std::size_t iterations_ = 0;
};

/** Sentinel instruction index naming a block's terminator. */
constexpr std::size_t kTermIndex = static_cast<std::size_t>(-1);

/** One register definition: body[inst] (or the terminator) of a
 *  block defines reg. */
struct DefSite
{
    std::size_t block = 0;
    std::size_t inst = 0;  ///< body index, or kTermIndex
    trace::RegId reg = 0;
};

/** One register use, in the same coordinates. */
struct UseSite
{
    std::size_t block = 0;
    std::size_t inst = 0;  ///< body index, or kTermIndex
    trace::RegId reg = 0;
};

/** Reaching-definitions solution plus derived def-use chains. */
class ReachingDefs
{
  public:
    static ReachingDefs compute(const trace::Function &fn);

    /** All definition sites, in (block, inst) program order. */
    const std::vector<DefSite> &defSites() const { return defs_; }

    /** Indexes into defSites() whose definitions reach the entry of
     *  @p block. */
    std::vector<std::size_t> reachingIn(std::size_t block) const;

    /** chains()[d] = the uses reached by definition d, in program
     *  order. */
    const std::vector<std::vector<UseSite>> &chains() const
    {
        return chains_;
    }

    std::size_t iterations() const { return iterations_; }

  private:
    std::vector<DefSite> defs_;
    std::vector<std::vector<UseSite>> chains_;
    std::size_t words_ = 0;  ///< bitvector words per block
    std::vector<std::uint64_t> in_;
    std::size_t iterations_ = 0;
};

} // namespace rhmd::analysis

#endif // RHMD_ANALYSIS_DATAFLOW_HH
