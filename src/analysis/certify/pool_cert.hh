/**
 * @file
 * Pool-level certification: per-detector certified stability radii
 * aggregated through the switching policy into one provable number a
 * promotion gate can compare.
 *
 * RHMD's Theorem 1 (core/pac) bounds how well an attacker can
 * *learn* the pool; it says nothing about how far a single feature
 * vector must move to flip a decision. certifyPool() closes that gap
 * statically: for every epoch of the gate corpus it computes each
 * base detector's certified stability radius (certifier.hh) on the
 * window that detector would classify if selected, then folds the
 * radii through the switching policy:
 *
 *  - certifiedBound: mean over epochs of Σ_i p_i min(r_i, cap) —
 *    the policy-expected certified radius of the detector actually
 *    deciding an epoch. An attacker perturbing every window by less
 *    than a detector's radius provably cannot flip that detector's
 *    decision, so a larger bound means the pool is provably harder
 *    to evade on this corpus.
 *  - stableMass: mean over epochs of Σ_i p_i [r_i >= ε] — the
 *    probability (over the switch draw) that an ε-bounded
 *    perturbation provably changes nothing.
 *  - minRadius: the weakest certified window anywhere in the pool.
 *
 * Radii are measured in each detector's *standardized* feature space
 * (z-score units), which is what makes them comparable across
 * detectors with different feature vectors and periods.
 *
 * Determinism: radii come from fixed-iteration static analysis and
 * programs are merged in corpus order, so every field — and the
 * rhmd-certify output rendered from it — is bit-identical at any
 * thread count.
 */

#ifndef RHMD_ANALYSIS_CERTIFY_POOL_CERT_HH
#define RHMD_ANALYSIS_CERTIFY_POOL_CERT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/certify/certifier.hh"
#include "core/rhmd.hh"
#include "features/corpus.hh"
#include "support/parallel.hh"
#include "support/status.hh"

namespace rhmd::analysis::certify
{

/** Knobs for pool certification. */
struct CertifyOptions
{
    /** ε for the stable-mass / stable-fraction statistics. */
    double referenceEpsilon = 0.25;

    /**
     * Cap (standardized units) applied to radii before averaging so
     * one saturated detector cannot dominate the pool bound; raw
     * radii still feed minRadius.
     */
    double radiusCap = 8.0;

    /** Bisection parameters for the MLP/RF searches. */
    CertifyConfig search{};

    /** Worker pool; null means the process-global pool. */
    support::ThreadPool *pool = nullptr;
};

/** Certified-radius statistics for one base detector. */
struct DetectorCertificate
{
    std::string label;               ///< Hmd::describe()
    std::size_t windows = 0;         ///< epochs certified
    std::size_t zeroMarginWindows = 0;
    double minRadius = 0.0;          ///< raw (uncapped) minimum
    double meanRadius = 0.0;         ///< mean of cap-clamped radii
    double medianRadius = 0.0;       ///< lower median, cap-clamped
    double stableFraction = 0.0;     ///< fraction with radius >= ε
};

/** The pool-level certificate. */
struct PoolCertificate
{
    std::vector<DetectorCertificate> detectors;
    std::size_t epochs = 0;
    double certifiedBound = 0.0;
    double stableMass = 0.0;
    double minRadius = 0.0;
    double referenceEpsilon = 0.0;
    double radiusCap = 0.0;

    /**
     * Audit + certification findings (certifier.hh codes). Error
     * findings mean the pool's parameters could not be certified at
     * all; the radius statistics are then zero and a promotion gate
     * must reject.
     */
    Report report;
};

/**
 * Certify @p pool over the epochs of the given test programs (the
 * same epoch/sub-window alignment core::computePac measures on).
 * Returns InvalidArgument for an empty @p test_idx. A pool whose
 * parameter audit fails is returned with the error findings and
 * zeroed statistics rather than as an error — the caller decides
 * whether findings are fatal.
 */
support::StatusOr<PoolCertificate>
certifyPool(const core::Rhmd &pool,
            const features::FeatureCorpus &corpus,
            const std::vector<std::size_t> &test_idx,
            const CertifyOptions &options = {});

/**
 * Certified promotion criterion (composes with core::checkPacFloor
 * in serve::PoolManager): rejects (FailedPrecondition) a @p candidate
 * whose parameter audit fails or whose certifiedBound falls more
 * than @p tolerance below the @p current pool's — i.e. a pool that
 * is provably *easier* to evade must not replace the one being
 * served. An incumbent that itself fails the audit never blocks
 * promotion of a clean candidate.
 */
support::Status
checkCertifiedFloor(const core::Rhmd &candidate,
                    const core::Rhmd &current,
                    const features::FeatureCorpus &corpus,
                    const std::vector<std::size_t> &test_idx,
                    double tolerance = 0.0,
                    const CertifyOptions &options = {});

} // namespace rhmd::analysis::certify

#endif // RHMD_ANALYSIS_CERTIFY_POOL_CERT_HH
