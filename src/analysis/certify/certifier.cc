/**
 * @file
 * Per-family certified stability radii (see certifier.hh for the
 * soundness and determinism contracts).
 */

#include "analysis/certify/certifier.hh"

#include <algorithm>
#include <cmath>

#include "ml/decision_tree.hh"
#include "ml/logistic_regression.hh"
#include "ml/mlp.hh"
#include "ml/random_forest.hh"
#include "ml/svm.hh"
#include "support/logging.hh"

namespace rhmd::analysis::certify
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Sigmoid saturation bracket: sigmoid(-800) is exactly 0.0 and
 * sigmoid(800) exactly 1.0 in IEEE double, so every achievable
 * threshold preimage lies inside.
 */
constexpr double kSigmoidBracket = 800.0;

/** Bisection iterations for sigmoidPreimage (fixed: determinism). */
constexpr std::size_t kPreimageIters = 200;

/**
 * Stability radius of a thresholded decision over one CART tree's
 * leaf scores: the minimal ℓ∞ distance from @p x to any leaf region
 * whose decision differs from the decision at @p x. @p sel maps tree
 * feature indices to full feature-vector indices (identity when
 * null). Exact in real arithmetic; the caller shaves.
 */
double
treeOppositeLeafDistance(const std::vector<ml::DecisionTree::Node> &nodes,
                         double threshold,
                         const std::vector<std::size_t> *sel,
                         const std::vector<double> &x)
{
    panic_if(nodes.empty(), "certifier walked an empty tree");

    auto featureOf = [&](std::size_t f) {
        return sel != nullptr ? (*sel)[f] : f;
    };

    // The concrete decision's leaf at x.
    std::int32_t node = 0;
    while (!nodes[static_cast<std::size_t>(node)].leaf) {
        const auto &n = nodes[static_cast<std::size_t>(node)];
        node = x[featureOf(n.feature)] <= n.threshold ? n.left : n.right;
    }
    const bool d0 =
        nodes[static_cast<std::size_t>(node)].value >= threshold;

    // DFS over all leaves, carrying the path's box constraints:
    // lower[f] < x_f <= upper[f] (left edges are closed, right edges
    // open). At an opposite-decision leaf, the ℓ∞ distance from x to
    // the box is the largest per-coordinate displacement needed.
    const std::size_t dims = x.size();
    std::vector<double> lower(dims, -kInf);
    std::vector<double> upper(dims, kInf);
    double best = kInf;

    auto walk = [&](auto &&self, std::int32_t id) -> void {
        const auto &n = nodes[static_cast<std::size_t>(id)];
        if (n.leaf) {
            if ((n.value >= threshold) == d0)
                return;
            double dist = 0.0;
            for (std::size_t f = 0; f < dims; ++f) {
                double need = 0.0;
                if (x[f] <= lower[f])
                    need = lower[f] - x[f];
                else if (x[f] > upper[f])
                    need = x[f] - upper[f];
                dist = std::max(dist, need);
            }
            best = std::min(best, dist);
            return;
        }
        const std::size_t f = featureOf(n.feature);
        const double saved_upper = upper[f];
        const double saved_lower = lower[f];
        // Left: x_f <= threshold.
        upper[f] = std::min(upper[f], n.threshold);
        self(self, n.left);
        upper[f] = saved_upper;
        // Right: x_f > threshold.
        lower[f] = std::max(lower[f], n.threshold);
        self(self, n.right);
        lower[f] = saved_lower;
    };
    walk(walk, 0);
    return best;
}

/**
 * Min/max reachable leaf value of one tree over the box
 * ‖x' - x‖∞ <= r (descending both children when the box straddles a
 * split threshold).
 */
Interval
treeLeafBounds(const std::vector<ml::DecisionTree::Node> &nodes,
               const std::vector<std::size_t> *sel,
               const std::vector<double> &x, double r)
{
    Interval out{kInf, -kInf};
    auto walk = [&](auto &&self, std::int32_t id) -> void {
        const auto &n = nodes[static_cast<std::size_t>(id)];
        if (n.leaf) {
            out.lo = std::min(out.lo, n.value);
            out.hi = std::max(out.hi, n.value);
            return;
        }
        const std::size_t f =
            sel != nullptr ? (*sel)[n.feature] : n.feature;
        if (x[f] - r <= n.threshold)
            self(self, n.left);
        if (x[f] + r > n.threshold)
            self(self, n.right);
    };
    walk(walk, 0);
    return out;
}

/**
 * Largest radius for which @p stable holds, by bisection with a
 * fixed iteration count. @p stable must be monotone (true at 0,
 * and true at r implies true at every r' < r).
 */
template <typename Predicate>
double
bisectRadius(const Predicate &stable, const CertifyConfig &config)
{
    if (!stable(0.0))
        return 0.0;
    if (stable(config.maxRadius))
        return kUnboundedRadius;
    double lo = 0.0;
    double hi = config.maxRadius;
    for (std::size_t i = 0; i < config.bisectIters; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (stable(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo * kFloatSafety;
}

double
mlpStabilityRadius(const ml::Mlp &mlp, double threshold,
                   const std::vector<double> &x,
                   const CertifyConfig &config)
{
    const Interval zstar = sigmoidPreimage(threshold);
    if (std::isinf(zstar.lo) || std::isinf(zstar.hi))
        return kUnboundedRadius;

    const auto &w1 = mlp.hiddenWeights();
    const auto &b1 = mlp.hiddenBias();
    const auto &w2 = mlp.outputWeights();

    const auto stable = [&](double r) {
        Interval out = Interval::point(mlp.outputBias());
        for (std::size_t h = 0; h < w1.size(); ++h) {
            const Interval act =
                tanhImage(affineImage(w1[h], b1[h], x, r));
            // Signed rounding of the output layer: a positive output
            // weight passes the activation interval through, a
            // negative one mirrors it.
            if (w2[h] >= 0.0) {
                out.lo += w2[h] * act.lo;
                out.hi += w2[h] * act.hi;
            } else {
                out.lo += w2[h] * act.hi;
                out.hi += w2[h] * act.lo;
            }
        }
        return out.lo >= zstar.hi || out.hi < zstar.lo;
    };
    return bisectRadius(stable, config);
}

double
forestStabilityRadius(const ml::RandomForest &forest, double threshold,
                      const std::vector<double> &x,
                      const CertifyConfig &config)
{
    const auto &trees = forest.trees();
    const auto &sels = forest.featureSelections();
    panic_if(trees.empty(), "certifier walked an untrained forest");
    const double inv = 1.0 / static_cast<double>(trees.size());

    const auto stable = [&](double r) {
        double lo = 0.0;
        double hi = 0.0;
        for (std::size_t t = 0; t < trees.size(); ++t) {
            const Interval bounds =
                treeLeafBounds(trees[t].nodes(), &sels[t], x, r);
            lo += bounds.lo;
            hi += bounds.hi;
        }
        lo *= inv;
        hi *= inv;
        return lo >= threshold || hi < threshold;
    };
    return bisectRadius(stable, config);
}

} // namespace

Interval
sigmoidPreimage(double threshold)
{
    if (ml::sigmoid(-kSigmoidBracket) >= threshold)
        return {-kInf, -kInf};  // decision constantly 1
    if (ml::sigmoid(kSigmoidBracket) < threshold)
        return {kInf, kInf};  // decision constantly 0
    double lo = -kSigmoidBracket;  // sigmoid(lo) < threshold
    double hi = kSigmoidBracket;   // sigmoid(hi) >= threshold
    for (std::size_t i = 0; i < kPreimageIters; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (ml::sigmoid(mid) >= threshold)
            hi = mid;
        else
            lo = mid;
    }
    return {lo, hi};
}

double
linearStabilityRadius(const std::vector<double> &w, double bias,
                      const Interval &zstar, const std::vector<double> &x)
{
    if (std::isinf(zstar.lo) || std::isinf(zstar.hi))
        return kUnboundedRadius;
    const double norm = l1Norm(w);
    double z = bias;
    for (std::size_t j = 0; j < w.size(); ++j)
        z += w[j] * x[j];
    if (z >= zstar.hi) {
        // Decision 1: the flip region is z' < z*; z* >= zstar.lo...
        // but the certified margin must use the near edge, zstar.hi
        // is an upper bracket of z* so z - zstar.hi under-estimates
        // the true margin — sound.
        if (norm == 0.0)
            return kUnboundedRadius;
        return (z - zstar.hi) / norm * kFloatSafety;
    }
    if (z < zstar.lo) {
        // Decision 0: the flip region is z' >= z*; zstar.lo is a
        // lower bracket of z*, so zstar.lo - z under-estimates the
        // margin — sound.
        if (norm == 0.0)
            return kUnboundedRadius;
        return (zstar.lo - z) / norm * kFloatSafety;
    }
    // z lands inside the bracket: knife-edge decision, no certified
    // stability.
    return 0.0;
}

double
stabilityRadius(const ml::Classifier &clf, double threshold,
                const std::vector<double> &x, const CertifyConfig &config)
{
    if (const auto *lr =
            dynamic_cast<const ml::LogisticRegression *>(&clf)) {
        return linearStabilityRadius(lr->weights(), lr->bias(),
                                     sigmoidPreimage(threshold), x);
    }
    if (const auto *svm = dynamic_cast<const ml::LinearSvm *>(&clf)) {
        // score = sigmoid(s * (w.x + b)): divide the sigmoid bracket
        // by the sharpness to get the bracket on the raw margin.
        const double s = svm->scoreSharpness();
        panic_if(s <= 0.0, "SVM score sharpness must be positive");
        Interval zstar = sigmoidPreimage(threshold);
        zstar.lo /= s;
        zstar.hi /= s;
        return linearStabilityRadius(svm->weights(), svm->bias(), zstar,
                                     x);
    }
    if (const auto *mlp = dynamic_cast<const ml::Mlp *>(&clf))
        return mlpStabilityRadius(*mlp, threshold, x, config);
    if (const auto *tree =
            dynamic_cast<const ml::DecisionTree *>(&clf)) {
        const double dist = treeOppositeLeafDistance(
            tree->nodes(), threshold, nullptr, x);
        return std::isinf(dist) ? kUnboundedRadius
                                : dist * kFloatSafety;
    }
    if (const auto *forest =
            dynamic_cast<const ml::RandomForest *>(&clf))
        return forestStabilityRadius(*forest, threshold, x, config);
    rhmd_fatal("no certifier for classifier family '", clf.name(), "'");
}

namespace
{

/** Emit one non-finite-parameter error per offending vector. */
bool
checkFinite(const std::vector<double> &v, std::size_t detector,
            const char *what, Report &report)
{
    for (double value : v) {
        if (!std::isfinite(value)) {
            report.error("certify", "non-finite-weight", detector,
                         kNoIndex, kNoIndex,
                         std::string(what) +
                             " contains a non-finite parameter");
            return false;
        }
    }
    return true;
}

bool
checkTree(const std::vector<ml::DecisionTree::Node> &nodes,
          std::size_t detector, std::size_t tree, Report &report)
{
    if (nodes.empty()) {
        report.error("certify", "degenerate-tree", detector, tree,
                     kNoIndex, "empty (untrained) tree");
        return false;
    }
    bool ok = true;
    const auto size = static_cast<std::int32_t>(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto &n = nodes[i];
        if (n.leaf) {
            if (!std::isfinite(n.value) || n.value < 0.0 ||
                n.value > 1.0) {
                report.error("certify", "degenerate-tree", detector,
                             tree, i,
                             "leaf value outside [0, 1] or non-finite");
                ok = false;
            }
            continue;
        }
        if (!std::isfinite(n.threshold)) {
            report.error("certify", "degenerate-tree", detector, tree,
                         i, "non-finite split threshold");
            ok = false;
        }
        if (n.left < 0 || n.left >= size || n.right < 0 ||
            n.right >= size) {
            report.error("certify", "degenerate-tree", detector, tree,
                         i, "child index out of range");
            ok = false;
        }
    }
    return ok;
}

} // namespace

bool
auditModel(const ml::Classifier &clf,
           const ml::Standardizer &standardizer, std::size_t expectDim,
           std::size_t detector, Report &report)
{
    const std::size_t before = report.errorCount();

    // Standardizer: shapes agree and every parameter is usable.
    if (standardizer.mean.size() != standardizer.scale.size()) {
        report.error("certify", "standardizer-dim-mismatch", detector,
                     kNoIndex, kNoIndex,
                     "standardizer mean/scale sizes disagree");
    } else if (expectDim != 0 && standardizer.dim() != expectDim) {
        report.error("certify", "standardizer-dim-mismatch", detector,
                     kNoIndex, kNoIndex,
                     "standardizer dim " +
                         std::to_string(standardizer.dim()) +
                         " vs feature dim " + std::to_string(expectDim));
    }
    checkFinite(standardizer.mean, detector, "standardizer mean",
                report);
    for (double s : standardizer.scale) {
        if (!std::isfinite(s) || s <= 0.0) {
            report.error("certify", "non-finite-standardizer", detector,
                         kNoIndex, kNoIndex,
                         "standardizer scale entry non-finite or "
                         "non-positive");
            break;
        }
    }

    auto checkLinearDim = [&](std::size_t got) {
        if (expectDim != 0 && got != expectDim) {
            report.error("certify", "standardizer-dim-mismatch",
                         detector, kNoIndex, kNoIndex,
                         "classifier weight dim " + std::to_string(got) +
                             " vs feature dim " +
                             std::to_string(expectDim));
        }
    };

    if (const auto *lr =
            dynamic_cast<const ml::LogisticRegression *>(&clf)) {
        checkFinite(lr->weights(), detector, "LR weights", report);
        checkFinite({lr->bias()}, detector, "LR bias", report);
        checkLinearDim(lr->weights().size());
    } else if (const auto *svm =
                   dynamic_cast<const ml::LinearSvm *>(&clf)) {
        checkFinite(svm->weights(), detector, "SVM weights", report);
        checkFinite({svm->bias()}, detector, "SVM bias", report);
        checkLinearDim(svm->weights().size());
    } else if (const auto *mlp = dynamic_cast<const ml::Mlp *>(&clf)) {
        for (const auto &row : mlp->hiddenWeights()) {
            if (!checkFinite(row, detector, "MLP hidden weights",
                             report))
                break;
        }
        checkFinite(mlp->hiddenBias(), detector, "MLP hidden bias",
                    report);
        checkFinite(mlp->outputWeights(), detector, "MLP output weights",
                    report);
        checkFinite({mlp->outputBias()}, detector, "MLP output bias",
                    report);
        if (!mlp->hiddenWeights().empty())
            checkLinearDim(mlp->hiddenWeights().front().size());
    } else if (const auto *tree =
                   dynamic_cast<const ml::DecisionTree *>(&clf)) {
        checkTree(tree->nodes(), detector, kNoIndex, report);
    } else if (const auto *forest =
                   dynamic_cast<const ml::RandomForest *>(&clf)) {
        const auto &sels = forest->featureSelections();
        if (sels.size() != forest->trees().size()) {
            report.error("certify", "degenerate-tree", detector,
                         kNoIndex, kNoIndex,
                         "forest feature selections do not match tree "
                         "count");
        }
        for (std::size_t t = 0; t < forest->trees().size(); ++t) {
            checkTree(forest->trees()[t].nodes(), detector, t, report);
            if (expectDim == 0 || t >= sels.size())
                continue;
            for (std::size_t f : sels[t]) {
                if (f >= expectDim) {
                    report.error("certify", "standardizer-dim-mismatch",
                                 detector, t, kNoIndex,
                                 "forest feature selection index out of "
                                 "range");
                    break;
                }
            }
        }
    } else {
        report.error("certify", "non-finite-weight", detector, kNoIndex,
                     kNoIndex,
                     "unknown classifier family '" + clf.name() +
                         "' cannot be audited");
    }
    return report.errorCount() == before;
}

std::size_t
countFlipsUnderPerturbation(const ml::Classifier &clf, double threshold,
                            const std::vector<double> &x, double radius,
                            std::size_t samples, std::uint64_t seed)
{
    fatal_if(!std::isfinite(radius) || radius < 0.0,
             "soundness probe needs a finite non-negative radius");
    const bool d0 = clf.score(x) >= threshold;
    Rng rng(seed);
    std::vector<double> y(x.size());
    std::size_t flips = 0;
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t j = 0; j < x.size(); ++j)
            y[j] = x[j] + rng.uniform(-radius, radius);
        if ((clf.score(y) >= threshold) != d0)
            ++flips;
    }
    return flips;
}

} // namespace rhmd::analysis::certify
