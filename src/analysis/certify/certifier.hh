/**
 * @file
 * Abstract-interpretation certifier over trained classifiers.
 *
 * For a feature vector x in *standardized* feature space and a
 * decision rule `score(x) >= threshold`, the certifier computes a
 * **certified stability radius**: the largest r such that no
 * perturbation δ with ‖δ‖∞ <= r can flip the decision. The analysis
 * is static — it reasons over the model's weights and structure, not
 * over probe queries:
 *
 *  - LR / SVM: exact by weight-sign reasoning. The decision depends
 *    only on the affine margin z = w·x + b crossing the threshold's
 *    preimage z*, and the fastest ℓ∞ descent moves every coordinate
 *    by sign(w_j), so r = |z - z*| / ‖w‖₁.
 *  - MLP: interval arithmetic through the hidden layer (affine image
 *    of the box, then the monotone tanh transfer — the ReLU case
 *    split degenerates for tanh) and a signed rounding of the output
 *    layer; the largest certified r is found by bisection with a
 *    fixed iteration count so results are bit-identical everywhere.
 *  - DT: exact threshold-distance traversal. Each leaf with the
 *    opposite decision spans an axis-aligned box; the radius is the
 *    minimal ℓ∞ distance from x to any such box.
 *  - RF: per-tree reachable-leaf interval bounds on the mean leaf
 *    score (descending both children when the box straddles a
 *    threshold), bisected like the MLP.
 *
 * Soundness: a returned radius r guarantees, in real arithmetic,
 * that the decision is constant on the closed ball of radius r; all
 * radii are shaved by kFloatSafety so the guarantee survives the
 * floating-point rounding of the concrete scoring path. LR, SVM and
 * DT radii are exact up to that shave; MLP and RF radii are sound
 * lower bounds (interval analysis over-approximates).
 *
 * Determinism: every computation is a fixed-iteration closed-form or
 * bisection over the model parameters — no sampling, no data races,
 * no accumulation-order dependence — so certified radii are
 * bit-identical at any thread count.
 */

#ifndef RHMD_ANALYSIS_CERTIFY_CERTIFIER_HH
#define RHMD_ANALYSIS_CERTIFY_CERTIFIER_HH

#include <cstddef>
#include <limits>
#include <vector>

#include "analysis/certify/interval.hh"
#include "analysis/diagnostics.hh"
#include "ml/classifier.hh"
#include "ml/dataset.hh"
#include "support/rng.hh"

namespace rhmd::analysis::certify
{

/** Radius meaning "the decision is provably constant everywhere". */
inline constexpr double kUnboundedRadius =
    std::numeric_limits<double>::infinity();

/**
 * Relative shave applied to every certified radius so a guarantee
 * proved in real arithmetic survives floating-point rounding in the
 * concrete scoring path (dots accumulate left-to-right over tens of
 * features; the shave dominates the worst-case rounding by orders of
 * magnitude).
 */
inline constexpr double kFloatSafety = 1.0 - 1e-9;

/** Search parameters for the bisected families (MLP, RF). */
struct CertifyConfig
{
    /**
     * Upper bracket of the radius search in standardized units.
     * Radii certified out to this bracket are reported as
     * kUnboundedRadius (8 z-score units is already far outside any
     * real window).
     */
    double maxRadius = 64.0;

    /** Fixed bisection iteration count (determinism contract). */
    std::size_t bisectIters = 50;
};

/**
 * Preimage of `sigmoid(z) >= threshold` as a tight margin bracket:
 * an interval [lo, hi] with sigmoid(lo) < threshold <= sigmoid(hi),
 * narrowed by fixed bisection over the *actual* float sigmoid so
 * saturated thresholds are handled the way the deployed decision
 * rule computes them. Returns [-inf, -inf] when the decision is
 * constantly 1 and [+inf, +inf] when it is constantly 0.
 */
Interval sigmoidPreimage(double threshold);

/**
 * Exact stability radius of the affine decision rule
 * `w·x + b >= z*` at @p x, where @p zstar brackets z* as returned by
 * sigmoidPreimage() (kUnboundedRadius when ‖w‖₁ == 0 or the bracket
 * is infinite, 0 when w·x + b lands inside the bracket).
 */
double linearStabilityRadius(const std::vector<double> &w, double bias,
                             const Interval &zstar,
                             const std::vector<double> &x);

/**
 * Certified stability radius of `clf.score(x) >= threshold` at @p x.
 * Dispatches on the concrete classifier family (LR, SVM, NN, DT,
 * RF); fatal on an unknown family — the certifier must never
 * silently claim a radius for arithmetic it cannot analyze.
 */
double stabilityRadius(const ml::Classifier &clf, double threshold,
                       const std::vector<double> &x,
                       const CertifyConfig &config = {});

/**
 * Static audit of one detector's model parameters. Emits error
 * findings (pass "certify") with stable codes:
 *
 *  - "non-finite-weight": NaN/Inf classifier parameter
 *  - "degenerate-tree": malformed DT/RF structure (empty tree, child
 *    index out of range, non-finite threshold, leaf value outside
 *    [0, 1])
 *  - "non-finite-standardizer": NaN/Inf or non-positive standardizer
 *    mean/scale entry
 *  - "standardizer-dim-mismatch": standardizer dimensionality
 *    disagrees with @p expectDim or with the classifier's own shape
 *
 * @p detector tags the findings' function coordinate (kNoIndex when
 * auditing a lone model). Returns true when no error was added.
 */
bool auditModel(const ml::Classifier &clf,
                const ml::Standardizer &standardizer,
                std::size_t expectDim, std::size_t detector,
                Report &report);

/**
 * Randomized soundness probe for one certified radius: samples
 * @p samples perturbations δ with ‖δ‖∞ <= @p radius uniformly from
 * the seeded stream and returns the number whose decision differs
 * from the unperturbed one — zero for a sound certificate. Test and
 * tool harnesses assert on it; it is a check of the certifier, not
 * part of it.
 */
std::size_t countFlipsUnderPerturbation(const ml::Classifier &clf,
                                        double threshold,
                                        const std::vector<double> &x,
                                        double radius,
                                        std::size_t samples,
                                        std::uint64_t seed);

} // namespace rhmd::analysis::certify

#endif // RHMD_ANALYSIS_CERTIFY_CERTIFIER_HH
