/**
 * @file
 * Pool-level certification implementation.
 */

#include "analysis/certify/pool_cert.hh"

#include <algorithm>
#include <cmath>

#include "core/hmd.hh"
#include "support/logging.hh"

namespace rhmd::analysis::certify
{

namespace
{

/** Cap-clamp one radius (infinities land on the cap). */
double
clamp(double radius, double cap)
{
    return std::min(radius, cap);
}

/** Lower median of an unsorted radius list (0 when empty). */
double
lowerMedian(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return values[(values.size() - 1) / 2];
}

} // namespace

support::StatusOr<PoolCertificate>
certifyPool(const core::Rhmd &pool,
            const features::FeatureCorpus &corpus,
            const std::vector<std::size_t> &test_idx,
            const CertifyOptions &options)
{
    if (test_idx.empty())
        return support::invalidArgumentError(
            "certifyPool needs test programs");
    if (options.radiusCap <= 0.0 || options.referenceEpsilon < 0.0)
        return support::invalidArgumentError(
            "certifyPool needs radiusCap > 0 and referenceEpsilon >= 0");

    const std::size_t n = pool.poolSize();
    const std::uint32_t epoch = pool.decisionPeriod();

    PoolCertificate cert;
    cert.referenceEpsilon = options.referenceEpsilon;
    cert.radiusCap = options.radiusCap;
    cert.detectors.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        cert.detectors[i].label = pool.detectors()[i]->describe();

    // Static parameter audit first: radii over NaN weights or a
    // mis-shaped standardizer would be meaningless.
    bool audit_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
        const core::Hmd &det = *pool.detectors()[i];
        if (!det.trained()) {
            cert.report.error("certify", "non-finite-weight", i,
                              kNoIndex, kNoIndex,
                              "detector is untrained");
            audit_ok = false;
            continue;
        }
        audit_ok &= auditModel(det.classifier(), det.standardizer(),
                               det.featureDim(), i, cert.report);
    }
    if (!audit_ok)
        return cert;

    // One task per test program; results are merged in corpus order,
    // so the certificate is independent of the worker count.
    struct ProgramPartial
    {
        /** radii[i] = detector i's radius per epoch, epoch order. */
        std::vector<std::vector<double>> radii;
    };
    support::ThreadPool &workers = options.pool != nullptr
        ? *options.pool
        : support::globalPool();
    const std::vector<ProgramPartial> partials =
        support::parallelMap<ProgramPartial>(
            workers, test_idx.size(), [&](std::size_t p) {
                const features::ProgramFeatures &prog =
                    corpus.programs[test_idx[p]];
                const std::size_t n_epochs =
                    prog.windows(epoch).size();
                ProgramPartial partial;
                partial.radii.assign(n, {});
                for (std::size_t i = 0; i < n; ++i) {
                    const core::Hmd &det = *pool.detectors()[i];
                    const std::uint32_t period = det.decisionPeriod();
                    const std::size_t stride = epoch / period;
                    partial.radii[i].reserve(n_epochs);
                    for (std::size_t e = 0; e < n_epochs; ++e) {
                        // The leading sub-window this detector would
                        // classify when selected for epoch e.
                        const features::RawWindow &window =
                            prog.windows(period)[e * stride];
                        const std::vector<double> x =
                            det.featureVector(window);
                        partial.radii[i].push_back(stabilityRadius(
                            det.classifier(), det.threshold(), x,
                            options.search));
                    }
                }
                return partial;
            });

    const std::vector<double> &policy = pool.policy();
    std::vector<std::vector<double>> all_radii(n);
    double bound_sum = 0.0;
    double mass_sum = 0.0;
    double min_radius = kUnboundedRadius;
    std::size_t total_epochs = 0;

    for (std::size_t p = 0; p < partials.size(); ++p) {
        const ProgramPartial &partial = partials[p];
        const std::size_t n_epochs =
            partial.radii.empty() ? 0 : partial.radii.front().size();
        for (std::size_t e = 0; e < n_epochs; ++e) {
            double expected = 0.0;
            double mass = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double r = partial.radii[i][e];
                expected += policy[i] * clamp(r, options.radiusCap);
                if (r >= options.referenceEpsilon)
                    mass += policy[i];
                if (policy[i] > 0.0)
                    min_radius = std::min(min_radius, r);
                if (r == 0.0) {
                    cert.report.warning(
                        "certify", "zero-margin-window", i, p, e,
                        "window sits on the decision boundary of " +
                            cert.detectors[i].label + " in program " +
                            corpus.programs[test_idx[p]].name);
                }
            }
            bound_sum += expected;
            mass_sum += mass;
            ++total_epochs;
        }
        for (std::size_t i = 0; i < n; ++i) {
            all_radii[i].insert(all_radii[i].end(),
                                partial.radii[i].begin(),
                                partial.radii[i].end());
        }
    }

    if (total_epochs == 0)
        return support::invalidArgumentError(
            "certifyPool found no epochs in the test programs");

    cert.epochs = total_epochs;
    cert.certifiedBound =
        bound_sum / static_cast<double>(total_epochs);
    cert.stableMass = mass_sum / static_cast<double>(total_epochs);
    cert.minRadius = min_radius;

    for (std::size_t i = 0; i < n; ++i) {
        DetectorCertificate &det = cert.detectors[i];
        const std::vector<double> &radii = all_radii[i];
        det.windows = radii.size();
        if (radii.empty())
            continue;
        double raw_min = kUnboundedRadius;
        double capped_sum = 0.0;
        std::size_t stable = 0;
        std::size_t zero = 0;
        std::vector<double> capped;
        capped.reserve(radii.size());
        for (double r : radii) {
            raw_min = std::min(raw_min, r);
            capped.push_back(clamp(r, options.radiusCap));
            capped_sum += capped.back();
            if (r >= options.referenceEpsilon)
                ++stable;
            if (r == 0.0)
                ++zero;
        }
        det.minRadius = raw_min;
        det.meanRadius =
            capped_sum / static_cast<double>(radii.size());
        det.medianRadius = lowerMedian(std::move(capped));
        det.stableFraction = static_cast<double>(stable) /
                             static_cast<double>(radii.size());
        det.zeroMarginWindows = zero;
    }
    return cert;
}

support::Status
checkCertifiedFloor(const core::Rhmd &candidate,
                    const core::Rhmd &current,
                    const features::FeatureCorpus &corpus,
                    const std::vector<std::size_t> &test_idx,
                    double tolerance, const CertifyOptions &options)
{
    if (tolerance < 0.0)
        return support::invalidArgumentError(
            "certified floor tolerance must be >= 0");
    auto cand = certifyPool(candidate, corpus, test_idx, options);
    if (!cand.isOk())
        return cand.status();
    if (!cand->report.clean()) {
        return support::failedPreconditionError(
            "candidate pool failed the certification audit: ",
            cand->report.summary());
    }
    auto cur = certifyPool(current, corpus, test_idx, options);
    if (!cur.isOk())
        return cur.status();
    if (!cur->report.clean()) {
        // A broken incumbent must not be able to veto a certifiable
        // replacement.
        return support::Status();
    }
    if (cand->certifiedBound + tolerance < cur->certifiedBound) {
        return support::failedPreconditionError(
            "candidate pool worsens the certified evasion bound: ",
            cand->certifiedBound, " vs current ", cur->certifiedBound,
            " (tolerance ", tolerance, ")");
    }
    return support::Status();
}

} // namespace rhmd::analysis::certify
