/**
 * @file
 * Interval domain for the model certifier.
 *
 * The certify pass propagates boxes (ℓ∞ balls) through classifier
 * arithmetic. The only abstract value it needs is a closed interval
 * [lo, hi] plus the transfer functions the classifier families use:
 * affine maps (dot products against a weight row) and monotone
 * activations (tanh, sigmoid). Everything here is evaluated in real
 * arithmetic over doubles; callers shave the resulting radii by
 * kFloatSafety (certifier.hh) to absorb floating-point rounding in
 * the concrete scoring path.
 */

#ifndef RHMD_ANALYSIS_CERTIFY_INTERVAL_HH
#define RHMD_ANALYSIS_CERTIFY_INTERVAL_HH

#include <cmath>
#include <cstddef>
#include <vector>

namespace rhmd::analysis::certify
{

/** A closed interval [lo, hi]; lo <= hi by construction. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    /** The degenerate interval [v, v]. */
    static Interval point(double v) { return {v, v}; }

    /** The ball [center - radius, center + radius]. */
    static Interval ball(double center, double radius)
    {
        return {center - radius, center + radius};
    }

    double width() const { return hi - lo; }

    bool contains(double v) const { return lo <= v && v <= hi; }
};

/** ℓ1 norm of a weight row (the affine transfer's box amplification). */
inline double
l1Norm(const std::vector<double> &w)
{
    double sum = 0.0;
    for (double v : w)
        sum += std::fabs(v);
    return sum;
}

/**
 * Affine transfer: the exact image of the box {x : ‖x - c‖∞ <= r}
 * under z = w·x + b is [w·c + b - r‖w‖₁, w·c + b + r‖w‖₁]. Exact
 * (not just sound) because a box's image under a linear functional
 * is attained at a vertex.
 */
inline Interval
affineImage(const std::vector<double> &w, double bias,
            const std::vector<double> &center, double radius)
{
    double z = bias;
    for (std::size_t j = 0; j < w.size(); ++j)
        z += w[j] * center[j];
    const double amp = radius * l1Norm(w);
    return {z - amp, z + amp};
}

/**
 * Monotone-activation transfer: for a non-decreasing f, the exact
 * image of [lo, hi] is [f(lo), f(hi)] — no splitting needed (the
 * ReLU-style case split degenerates for strictly monotone tanh).
 */
inline Interval
tanhImage(const Interval &z)
{
    return {std::tanh(z.lo), std::tanh(z.hi)};
}

} // namespace rhmd::analysis::certify

#endif // RHMD_ANALYSIS_CERTIFY_INTERVAL_HH
