/**
 * @file
 * Semantic-preservation checker implementation.
 */

#include "analysis/preservation.hh"

#include "support/logging.hh"

namespace rhmd::analysis
{

using trace::OpClass;

namespace
{

constexpr std::string_view kPass = "preservation";

/**
 * Memory regions the program's *original* (non-injected) code reads
 * through region-addressed patterns. Frame accesses (StackSlot) are
 * excluded: the stride-walked red zone of region 0 is disjoint from
 * frame slots by the model's addressing convention, so only explicit
 * region reads make a region live for stores.
 */
std::vector<bool>
regionsReadByOriginal(const trace::Program &prog)
{
    std::vector<bool> read(prog.regions.size(), false);
    for (const trace::Function &fn : prog.functions) {
        for (const trace::BasicBlock &block : fn.blocks) {
            for (const trace::StaticInst &inst : block.body) {
                if (inst.injected || !trace::opInfo(inst.op).isLoad)
                    continue;
                if (inst.mem.pattern == trace::AddrPattern::StackSlot)
                    continue;
                if (inst.mem.region < read.size())
                    read[inst.mem.region] = true;
            }
        }
    }
    return read;
}

/**
 * Why an injected store would be observable, or "" when it targets
 * scratch memory. @p regions_read comes from regionsReadByOriginal().
 */
std::string
storeClobberReason(const trace::StaticInst &inst,
                   const std::vector<bool> &regions_read)
{
    if (!trace::opInfo(inst.op).isStore)
        return {};
    const trace::MemRef &mem = inst.mem;
    if (mem.pattern == trace::AddrPattern::StackSlot)
        return "stores into a live stack frame slot";
    if (mem.region >= regions_read.size())
        return "stores into memory region " + std::to_string(mem.region) +
               " which does not exist";
    if (mem.region == 0) {
        if (mem.pattern != trace::AddrPattern::Stride)
            return "stores into the stack region outside the "
                   "stride-walked red zone";
        if (regions_read[0])
            return "stores into the stack region while original code "
                   "reads it through region addressing";
        return {};
    }
    if (regions_read[mem.region])
        return "stores into region " + std::to_string(mem.region) +
               " which original code reads";
    return {};
}

/**
 * Why one injected instruction is observable at a point whose
 * live-after set is @p live_after, or "" when it is provably dead.
 */
std::string
instClobberReason(const trace::StaticInst &inst, RegSet live_after,
                  const std::vector<bool> &regions_read)
{
    if (trace::isControlFlow(inst.op))
        return std::string("injected '") +
               std::string(trace::opName(inst.op)) +
               "' escapes the fall-through path";
    if (inst.op == OpClass::Push || inst.op == OpClass::Pop)
        return std::string("injected '") +
               std::string(trace::opName(inst.op)) +
               "' unbalances the stack";
    const RegSet clobbered = instDefs(inst) & live_after;
    if (clobbered != 0)
        return "writes live register(s) " + regSetName(clobbered);
    return storeClobberReason(inst, regions_read);
}

} // namespace

bool
checkPreservation(const trace::Program &prog, Report &report)
{
    const std::size_t errors_before = report.errorCount();
    const std::vector<bool> regions_read = regionsReadByOriginal(prog);
    const LivenessOptions observable{/*observableUsesOnly=*/true};

    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        const trace::Function &fn = prog.functions[f];
        bool fn_has_injection = false;
        for (const trace::BasicBlock &block : fn.blocks) {
            for (const trace::StaticInst &inst : block.body)
                fn_has_injection |= inst.injected;
        }
        if (!fn_has_injection)
            continue;

        const Liveness live = Liveness::compute(fn, observable);
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const trace::BasicBlock &block = fn.blocks[b];
            std::vector<RegSet> points;  // computed lazily per block
            for (std::size_t i = 0; i < block.body.size(); ++i) {
                if (!block.body[i].injected)
                    continue;
                if (points.empty())
                    points = live.livePoints(b);
                const std::string reason = instClobberReason(
                    block.body[i], points[i + 1], regions_read);
                if (!reason.empty()) {
                    report.error(kPass, "clobbering-injection", f, b, i,
                                 "injected '" +
                                     std::string(trace::opName(
                                         block.body[i].op)) +
                                     "' " + reason);
                }
            }
        }
    }
    return report.errorCount() == errors_before;
}

InjectionGate::InjectionGate(const trace::Program &original)
    : prog_(&original), regionsRead_(regionsReadByOriginal(original))
{
    const LivenessOptions observable{/*observableUsesOnly=*/true};
    liveness_.reserve(original.functions.size());
    for (const trace::Function &fn : original.functions)
        liveness_.push_back(Liveness::compute(fn, observable));
}

std::string
InjectionGate::rejectReason(
    std::size_t fn, std::size_t block,
    const std::vector<trace::StaticInst> &payload) const
{
    panic_if(fn >= liveness_.size(), "function out of range");
    // The rewriter appends payloads to the end of the body, so every
    // payload slot sees the block's pre-terminator live set (payload
    // instructions' own reads are not observations).
    const RegSet live = liveness_[fn].liveBeforeTerm(block);
    for (const trace::StaticInst &inst : payload) {
        const std::string reason =
            instClobberReason(inst, live, regionsRead_);
        if (!reason.empty())
            return "payload '" + std::string(trace::opName(inst.op)) +
                   "' " + reason;
    }
    return {};
}

bool
InjectionGate::admits(std::size_t fn, std::size_t block,
                      const std::vector<trace::StaticInst> &payload) const
{
    return rejectReason(fn, block, payload).empty();
}

trace::SiteFilter
InjectionGate::filter()
{
    return [this](std::size_t fn, std::size_t block,
                  const std::vector<trace::StaticInst> &payload) {
        const bool ok = admits(fn, block, payload);
        if (ok)
            ++admitted_;
        else
            ++rejected_;
        return ok;
    };
}

} // namespace rhmd::analysis
