/**
 * @file
 * Admission control for the detection service: per-tenant quotas,
 * fair-share under pressure, and a service-level circuit breaker.
 *
 * The queue-full/deadline shedding in DetectionService protects the
 * *service*; nothing protects tenants from each other, and nothing
 * stops clients from hammering a service that is already failing.
 * This layer adds both decisions at the admission boundary:
 *
 *  - TokenBucket / AdmissionController: each tenant draws from its
 *    own token bucket (rate + burst), and once the queue is past a
 *    configurable watermark, a tenant already holding more than its
 *    fair share of the queue is shed even if it has tokens — one
 *    noisy tenant cannot starve the rest.
 *
 *  - CircuitBreaker: a burst of failures or sheds opens the breaker;
 *    while open, requests are rejected immediately (no queueing work
 *    wasted on a service that cannot answer). After a cool-down the
 *    breaker half-opens and lets a few probes through; probe success
 *    closes it, probe failure re-opens it with a longer cool-down.
 *    The cool-down schedule *is* `support::RetryPolicy` — the same
 *    exponential-backoff discipline the runtime uses for sensor
 *    retries, applied to the whole service.
 *
 * All timing is virtual (seconds as doubles, supplied by the caller):
 * the service passes wall time, tests pass scripted instants, so the
 * state machines are unit-testable without sleeps.
 */

#ifndef RHMD_SERVE_ADMISSION_HH
#define RHMD_SERVE_ADMISSION_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string_view>

#include "support/retry.hh"
#include "support/status.hh"

namespace rhmd::serve
{

/** One tenant's admission budget. */
struct TenantQuota
{
    /** Tokens refilled per (virtual) second. 0 = no refill. */
    double ratePerSecond = 64.0;

    /** Bucket capacity; buckets start full. Must be >= 1. */
    double burst = 16.0;
};

/** Classic token bucket over caller-supplied virtual time. */
class TokenBucket
{
  public:
    explicit TokenBucket(const TenantQuota &quota);

    /**
     * Refill up to @p now and take one token. False = quota
     * exhausted. @p now must be non-decreasing across calls; a
     * regression is clamped, never credited.
     */
    bool tryAcquire(double now);

    double tokens() const { return tokens_; }

  private:
    TenantQuota quota_;
    double tokens_;
    double lastRefill_ = 0.0;
    bool primed_ = false;
};

/** Admission-control knobs. */
struct AdmissionConfig
{
    /** Off by default: existing deployments admit on queue space alone. */
    bool enabled = false;

    /** Quota for tenants without an explicit entry. */
    TenantQuota defaultQuota{};

    /** Per-tenant overrides. */
    std::map<std::uint64_t, TenantQuota> tenantQuotas;

    /**
     * Queue-depth fraction above which fair-share enforcement kicks
     * in: a tenant holding >= capacity / active-tenants queued
     * requests is shed until it drains. <= 0 disables; 0.75 means
     * "the last quarter of the queue is kept fair".
     */
    double fairShareWatermark = 0.75;
};

/**
 * Per-tenant admission decisions. Thread-safe. Callers must pair
 * every admitted request with one release(tenant) when it leaves the
 * queue (served or shed downstream) so fair-share accounting tracks
 * actual queue occupancy.
 */
class AdmissionController
{
  public:
    AdmissionController(AdmissionConfig config,
                        std::size_t queue_capacity);

    /**
     * Decide one request from @p tenant at virtual time @p now with
     * the queue currently @p depth deep. Ok admits (and charges the
     * tenant); Unavailable names the reason (quota / fair share).
     */
    support::Status admit(std::uint64_t tenant, double now,
                          std::size_t depth);

    /** A previously admitted request left the queue. */
    void release(std::uint64_t tenant);

    /** Queued requests currently charged to @p tenant. */
    std::size_t outstanding(std::uint64_t tenant) const;

  private:
    struct TenantState
    {
        TokenBucket bucket;
        std::size_t outstanding = 0;

        explicit TenantState(const TenantQuota &quota) : bucket(quota)
        {
        }
    };

    TenantState &stateFor(std::uint64_t tenant);

    AdmissionConfig config_;
    std::size_t queueCapacity_;
    mutable std::mutex mutex_;
    std::map<std::uint64_t, TenantState> tenants_;
    std::size_t activeTenants_ = 0;
};

/** Circuit-breaker knobs. */
struct BreakerConfig
{
    /** Off by default. */
    bool enabled = false;

    /** Consecutive failures/sheds that open the breaker. */
    std::size_t failureThreshold = 8;

    /** Probes admitted while half-open; all must succeed to close. */
    std::size_t probeQuota = 2;

    /**
     * Cool-down schedule in virtual seconds: the Nth consecutive
     * open lasts backoffDelay(cooldown, N) — the retry layer's
     * exponential backoff applied to the whole service.
     */
    support::RetryPolicy cooldown{};
};

/**
 * Closed → (failure burst) → Open → (cool-down) → HalfOpen →
 * (probes pass) → Closed, or (probe fails) → Open with a longer
 * cool-down. Thread-safe; all transitions happen inside allow()/
 * record*() under one mutex.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(BreakerConfig config);

    /**
     * May a request enter at virtual time @p now? Performs the
     * Open→HalfOpen transition when the cool-down has elapsed; while
     * half-open, admits up to probeQuota probes.
     */
    bool allow(double now);

    /** An admitted request completed with a classification. */
    void recordSuccess(double now);

    /** An admitted request failed, or a request was shed. */
    void recordFailure(double now);

    State state() const;

    /** Times the breaker has opened over its lifetime. */
    std::size_t openCount() const;

  private:
    void open(double now);

    BreakerConfig config_;
    mutable std::mutex mutex_;
    State state_ = State::Closed;
    std::size_t consecutiveFailures_ = 0;
    std::size_t consecutiveOpens_ = 0;
    std::size_t lifetimeOpens_ = 0;
    std::size_t probesIssued_ = 0;
    std::size_t probeSuccesses_ = 0;
    double openedAt_ = 0.0;
    double cooldownSeconds_ = 0.0;
};

/** Display name ("closed", "open", "half-open"). */
std::string_view breakerStateName(CircuitBreaker::State state);

} // namespace rhmd::serve

#endif // RHMD_SERVE_ADMISSION_HH
