/**
 * @file
 * Service-level chaos injection: the PR-1 fault machinery
 * (runtime/fault_injection) lifted to the serving layer.
 *
 * The runtime injects faults into sensor reads and model bytes; a
 * *service* additionally fails in ways only a queue and a worker pool
 * can — workers stall, batches are delayed, detectors fail
 * transiently under one request but not the next, and candidate
 * pools offered for promotion are garbage. ChaosInjector models all
 * of these as seeded perturbations so `bench_serve_chaos` can assert
 * the service's contracts *under* fault pressure, reproducibly
 * (cf. Stochastic-HMDs: deployed perturbation as a first-class
 * experimental knob, here pointed at the serving layer).
 *
 * Two kinds of draw, deliberately separated:
 *
 *  - Schedule chaos (worker stalls, batch delays) perturbs only
 *    *timing*. It draws from a shared sequential stream; which worker
 *    stalls when is allowed to differ run to run.
 *
 *  - Score chaos (transient detector failures, broken detectors)
 *    perturbs *outcomes*, so it must not depend on the schedule: a
 *    transient fault fires as a pure function of (seed, request key,
 *    epoch, detector) via FaultInjector::keyedFault. Any worker, any
 *    batch composition, any swap timing — the same request sees the
 *    same faults, which is what keeps admitted decisions bit-identical
 *    per (key, pool version) while chaos is active.
 */

#ifndef RHMD_SERVE_CHAOS_HH
#define RHMD_SERVE_CHAOS_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "support/rng.hh"

namespace rhmd::serve
{

/** Service-level fault rates; all default to "no chaos". */
struct ChaosConfig
{
    /** Master switch; false = all hooks are no-ops. */
    bool enabled = false;

    /** Per-wake chance a worker stalls before draining a batch. */
    double workerStallProb = 0.0;

    /** Stall length in microseconds (real sleep; Timing only). */
    std::uint32_t workerStallMicros = 0;

    /** Per-batch chance scoring is delayed mid-flight. */
    double batchDelayProb = 0.0;

    /** Delay length in microseconds. */
    std::uint32_t batchDelayMicros = 0;

    /**
     * Per-(request key, epoch, detector) chance a score read fails
     * transiently (keyed-deterministic; the failover path redraws).
     */
    double transientScoreFaultProb = 0.0;

    /** Detectors whose scores always fail at the service boundary. */
    std::vector<std::size_t> brokenDetectors;

    /**
     * Test/observability hook: called once per planned batch with the
     * pool version the batch was planned against, after the snapshot
     * is taken and before scoring. Lets swap tests hold a batch
     * in-flight deterministically instead of racing sleeps.
     */
    std::function<void(std::uint64_t pool_version)> onBatchPlanned;

    /** Chaos stream seed (schedule draws only; score faults key off
     *  it statelessly). */
    std::uint64_t seed = 0xc4a05c4a05ULL;
};

/** The seeded service-fault source. Thread-safe. */
class ChaosInjector
{
  public:
    explicit ChaosInjector(const ChaosConfig &config);

    /** Maybe stall the calling worker (blocking sleep). */
    void maybeStallWorker();

    /** Maybe delay the current batch (blocking sleep). */
    void maybeDelayBatch();

    /**
     * Does the score of @p detector for (@p key, @p epoch) fail?
     * Pure function of the coordinates — schedule-independent.
     */
    bool scoreFault(std::uint64_t key, std::size_t epoch,
                    std::size_t detector) const;

    /** Invoke the onBatchPlanned hook, when configured. */
    void batchPlanned(std::uint64_t pool_version) const;

    const ChaosConfig &config() const { return config_; }

  private:
    bool roll(double prob);

    ChaosConfig config_;
    std::mutex mutex_;
    Rng rng_;
};

} // namespace rhmd::serve

#endif // RHMD_SERVE_CHAOS_HH
