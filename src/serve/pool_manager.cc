/**
 * @file
 * Pool manager implementation.
 */

#include "serve/pool_manager.hh"

#include "analysis/certify/pool_cert.hh"
#include "core/pac.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rhmd::serve
{

namespace
{

// Swap outcomes are driven by explicit promotion calls, not by the
// schedule, so they sit in the Deterministic domain: a bench that
// attempts N promotions sees the same attempt/accept/reject counts at
// any thread count.

struct SwapCounters
{
    support::Counter &attempts = support::metrics().counter(
        "serve.swap_attempts", "pool promotions attempted");
    support::Counter &accepted = support::metrics().counter(
        "serve.swap_accepted", "pool promotions published");
    support::Counter &rejected = support::metrics().counter(
        "serve.swap_rejected",
        "pool promotions rejected at the gate (invalid candidate or "
        "PAC floor regression)");
    support::Counter &rejectedCertify = support::metrics().counter(
        "serve.swap_rejected_certify",
        "pool promotions rejected by the certified evasion-bound "
        "floor (audit failure or bound regression)");
};

SwapCounters &
swapCounters()
{
    static SwapCounters counters;
    return counters;
}

} // namespace

PoolManager::PoolManager(std::shared_ptr<const core::Rhmd> initial,
                         const runtime::HealthConfig &health,
                         PromotionGate gate)
    : healthConfig_(health), gate_(std::move(gate))
{
    fatal_if(initial == nullptr, "PoolManager needs an initial pool");
    const support::Status valid = initial->validate();
    fatal_if(!valid.isOk(), "initial pool invalid: ", valid.toString());
    fatal_if(gate_.corpus != nullptr && gate_.testIdx.empty(),
             "PromotionGate with a corpus needs test programs");
    fatal_if(gate_.floorTolerance < 0.0,
             "PromotionGate floor tolerance must be >= 0");
    fatal_if(gate_.certifiedTolerance < 0.0,
             "PromotionGate certified tolerance must be >= 0");
    current_ = std::make_shared<PoolState>(std::move(initial), 1,
                                           healthConfig_);
}

std::shared_ptr<PoolState>
PoolManager::current() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

std::uint64_t
PoolManager::version() const
{
    return current()->version;
}

support::StatusOr<std::uint64_t>
PoolManager::swapPool(std::shared_ptr<const core::Rhmd> candidate)
{
    SwapCounters &counters = swapCounters();
    counters.attempts.add(1);

    // One promotion at a time: the gate must evaluate the candidate
    // against the version it would actually replace.
    const std::lock_guard<std::mutex> swap_lock(swapMutex_);

    if (candidate == nullptr) {
        counters.rejected.add(1);
        return support::invalidArgumentError(
            "swapPool needs a candidate pool");
    }
    const support::Status valid = candidate->validate();
    if (!valid.isOk()) {
        counters.rejected.add(1);
        return support::failedPreconditionError(
            "candidate pool rejected at promotion: ", valid.toString());
    }

    const std::shared_ptr<PoolState> predecessor = current();
    if (gate_.corpus != nullptr) {
        const support::Status floor = core::checkPacFloor(
            *candidate, *predecessor->pool, *gate_.corpus, gate_.testIdx,
            gate_.floorTolerance);
        if (!floor.isOk()) {
            counters.rejected.add(1);
            return floor;
        }
        if (gate_.certify) {
            const support::Status certified =
                analysis::certify::checkCertifiedFloor(
                    *candidate, *predecessor->pool, *gate_.corpus,
                    gate_.testIdx, gate_.certifiedTolerance);
            if (!certified.isOk()) {
                counters.rejected.add(1);
                counters.rejectedCertify.add(1);
                return certified;
            }
        }
    }

    auto next = std::make_shared<PoolState>(
        std::move(candidate), predecessor->version + 1, healthConfig_);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        current_ = next;
    }
    counters.accepted.add(1);
    // The predecessor snapshot is now unreachable for new batches;
    // in-flight batches still hold it and it reclaims when the last
    // one finishes. Nothing to free here — that is the point.
    return next->version;
}

} // namespace rhmd::serve
