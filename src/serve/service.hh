/**
 * @file
 * Batched detection service: the request-at-a-time serving front end
 * over a resilient, hot-swappable detector pool.
 *
 * Rhmd::decideBatch() assumes one caller handing it a prepared list
 * of programs; a deployment instead sees concurrent callers each
 * submitting one program and expecting an answer (or a fast
 * rejection) under load. DetectionService provides that boundary: a
 * bounded multi-producer queue admits requests, worker threads drain
 * them in batches, each batch is scored through the pool's batch APIs
 * (Hmd::scoreWindows grouped per selected detector), and invalid
 * scores feed the HealthMonitor exactly as in DetectionRuntime, with
 * failover redraws and quarantine-aware policy renormalization.
 *
 * The pool is no longer a borrowed reference pinned for the service's
 * lifetime: a serve::PoolManager publishes versioned snapshots, each
 * worker batch plans against the snapshot current at drain time, and
 * swapPool() promotes a retrained candidate under live traffic —
 * in-flight batches finish on the version they started with (the
 * snapshot shared_ptr is the RCU epoch), the version is stamped into
 * every ServeReport, and promotion is gated on the pool invariants
 * plus the PAC reverse-engineering floor (DESIGN.md §12).
 *
 * Load shedding is layered, every layer explicit and separately
 * counted: a stopped service sheds at submit (serve.shed_stopped), an
 * open circuit breaker sheds before any queueing work
 * (serve.shed_circuit_open), per-tenant token buckets and fair-share
 * admission shed abusive tenants (serve.shed_quota), a full queue
 * sheds with backpressure (serve.shed_queue_full), and a configured
 * deadline sheds expired requests at both queue boundaries: a full
 * queue first evicts requests whose wait already blew the budget so
 * dead work stops occupying capacity live requests would be rejected
 * for (serve.shed_deadline_submit), and workers shed what expired by
 * pop time before any batch is planned (serve.shed_deadline). When
 * the entire pool is quarantined the service takes the configured
 * fail-open (degraded benign pass-through) or fail-closed
 * (Unavailable) decision.
 *
 * A shadow lane supports online retraining (DESIGN.md §16): when a
 * candidate pool is installed with installShadow(), every live
 * request that produced a classification is additionally scored
 * against the candidate — same per-key switching stream, no health
 * coupling, never touching the caller's promise — and the running
 * live-vs-candidate agreement is readable through shadowStats(). The
 * pipeline promotes through swapPool() only after the shadow lane
 * has seen enough live traffic.
 *
 * Determinism (DESIGN.md §11/§12): per-request switching randomness
 * is derived from (service seed, caller-supplied request key) with
 * SplitRng, never from a shared sequential stream, so for a fixed
 * pool version a request's decisions are independent of arrival
 * order, batch composition, worker count, and swap timing. The
 * determinism domain is (request key, pool version): with a healthy
 * snapshot the answer is bit-identical to a serial replay against
 * that version — and stays so under chaos, because service-level
 * score faults are keyed off the same coordinates (serve/chaos.hh).
 */

#ifndef RHMD_SERVE_SERVICE_HH
#define RHMD_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rhmd.hh"
#include "runtime/health.hh"
#include "serve/admission.hh"
#include "serve/chaos.hh"
#include "serve/pool_manager.hh"
#include "support/bounded_queue.hh"
#include "support/rng.hh"
#include "support/status.hh"

namespace rhmd::serve
{

/** Serving deployment parameters. */
struct ServeConfig
{
    /** Worker threads draining the request queue; 0 resolves like
     *  support::resolveThreadCount. */
    std::size_t workers = 1;

    /** Maximum requests scored in one batch pass. */
    std::size_t maxBatch = 16;

    /** Bounded request-queue capacity (backpressure depth). */
    std::size_t queueCapacity = 256;

    /**
     * Queueing-delay budget in seconds; requests that waited longer
     * are shed with Unavailable before scoring. 0 disables.
     */
    double deadlineSeconds = 0.0;

    /** Degradation policy for failing detectors (per pool version). */
    runtime::HealthConfig health{};

    /** Per-tenant quotas and fair-share admission (off by default). */
    AdmissionConfig admission{};

    /** Service-level circuit breaker (off by default). */
    BreakerConfig breaker{};

    /** Seeded service-level fault injection (off by default). */
    ChaosConfig chaos{};

    /**
     * What to do when every detector of the current snapshot is
     * quarantined: false (fail closed) answers Unavailable — no
     * classification is better than a fabricated one; true (fail
     * open) answers a degraded benign pass-through report so the
     * protected workload keeps running while the pool recovers.
     */
    bool failOpen = false;

    /** PAC promotion gate for swapPool (off when corpus is null). */
    PromotionGate gate{};

    /** Root of the per-request switching streams. */
    std::uint64_t seed = 0x5e12f1ce;
};

/** What serving one request observed. */
struct ServeReport
{
    /** Decision epochs in the program's stream. */
    std::size_t epochs = 0;

    /** Epochs that produced a decision. */
    std::size_t classified = 0;

    /** Invalid detector scores failed over while serving this
     *  request. */
    std::size_t detectorFailures = 0;

    /** Per-epoch decisions (classified epochs only, in order). */
    std::vector<int> decisions;

    /** Majority program-level decision (ties count as malware). */
    int programDecision = 0;

    /**
     * Mean |score - threshold| over the classified epochs: how far
     * from the decision boundary this request's scores sat. Evasive
     * traffic pushed *just* under the threshold collapses this margin
     * while leaving programDecision benign — the drift signal the
     * retraining pipeline watches (DESIGN.md §16). Deterministic per
     * (request key, pool version), like the decisions.
     */
    double meanMargin = 0.0;

    /** Pool version this request was scored against. */
    std::uint64_t poolVersion = 0;

    /**
     * True when the report is a fail-open pass-through (the whole
     * pool was quarantined); decisions is empty and programDecision
     * is benign by policy, not by classification.
     */
    bool degraded = false;
};

/**
 * What the shadow lane observed so far for the installed candidate:
 * live requests replayed against it and how often the candidate's
 * program decision agreed with the serving pool's. The counts are
 * deterministic in the set of (key, program) pairs served while the
 * shadow was active — shadow scoring uses the same per-key switching
 * streams as the live lane, so batch composition and worker count do
 * not affect them.
 */
struct ShadowStats
{
    /** Live requests scored against the candidate. */
    std::size_t requests = 0;

    /** Requests where candidate and live program decisions matched. */
    std::size_t agreements = 0;

    /** Requests the candidate flagged malware. */
    std::size_t shadowMalware = 0;

    /** Requests the live pool flagged malware. */
    std::size_t liveMalware = 0;

    /** Sum of the candidate's per-request mean margins. */
    double marginSum = 0.0;
};

/**
 * Accepts program-feature scoring requests from any number of
 * producer threads and answers them through a versioned detector
 * pool.
 *
 * Submitted programs must outlive their futures and carry windows
 * for every base period of the pool (all versions they may be scored
 * against). Health state accumulates per pool version; epochs advance
 * per drained batch.
 */
class DetectionService
{
  public:
    /**
     * @param pool   the version-1 pool. The pool's policy steers
     *               per-request switching; its own sequential RNG is
     *               never consumed, so serving does not perturb
     *               replays through Rhmd::decide.
     * @param config queueing, batching, admission, chaos, and
     *               degradation knobs.
     *
     * Workers start immediately.
     */
    DetectionService(std::shared_ptr<const core::Rhmd> pool,
                     ServeConfig config);

    /**
     * Convenience: serve a borrowed pool that outlives the service
     * (no ownership taken). Such a service can still swapPool(); the
     * borrowed pool simply stops being served.
     */
    DetectionService(const core::Rhmd &pool, ServeConfig config);

    /** Stops and drains the service. */
    ~DetectionService();

    DetectionService(const DetectionService &) = delete;
    DetectionService &operator=(const DetectionService &) = delete;

    /**
     * Submit one program for classification. Returns a future that
     * resolves to the request's report, or to Unavailable when the
     * request was shed (stopped / breaker open / quota / queue full /
     * deadline) or the whole pool is quarantined under fail-closed.
     *
     * @param prog        feature windows; must stay alive until the
     *                    future resolves.
     * @param request_key caller-chosen identity of this request; the
     *                    switching stream is derived from it, so
     *                    resubmitting a key replays the same
     *                    decisions against the same pool version (and
     *                    distinct concurrent requests should use
     *                    distinct keys).
     * @param tenant      quota bucket this request draws from (only
     *                    meaningful with admission control enabled).
     */
    std::future<support::StatusOr<ServeReport>>
    submit(const features::ProgramFeatures &prog,
           std::uint64_t request_key, std::uint64_t tenant = 0);

    /**
     * Promote @p candidate to the next pool version under live
     * traffic (no drain, no pause): new batches plan against it as
     * soon as it is published, in-flight batches finish on the
     * version they started with. Returns the new version, or the
     * gate's rejection (invalid candidate / PAC floor regression) —
     * on rejection the current version keeps serving untouched.
     */
    support::StatusOr<std::uint64_t>
    swapPool(std::shared_ptr<const core::Rhmd> candidate);

    /**
     * Install @p candidate as the shadow pool: from the next drained
     * batch on, every live request that produced a classification is
     * also scored against it. Shadow scoring runs before the
     * request's promise is fulfilled (the submitted program is only
     * guaranteed alive until then), adding one pool's scoring cost
     * per request while a candidate is under evaluation. Replaces any
     * previous shadow and resets the stats. Rejects structurally
     * invalid candidates; shadow scoring requires submitted programs
     * to carry windows for the candidate's base periods too.
     */
    support::Status
    installShadow(std::shared_ptr<const core::Rhmd> candidate);

    /** Remove the shadow pool (stats stay readable until the next
     *  installShadow). */
    void clearShadow();

    /** True while a shadow candidate is installed. */
    bool shadowActive() const;

    /** Consistent copy of the shadow lane's running stats. */
    ShadowStats shadowStats() const;

    /**
     * Close the queue, serve the already-admitted backlog, and join
     * the workers. Idempotent; submit() after stop() sheds under
     * serve.shed_stopped.
     */
    void stop();

    /** Epoch length of the current pool version. */
    std::uint32_t epochLength() const
    {
        return pools_.current()->pool->decisionPeriod();
    }

    /** Pool size of the current pool version. */
    std::size_t poolSize() const
    {
        return pools_.current()->pool->poolSize();
    }

    /** Version currently published for new batches. */
    std::uint64_t poolVersion() const { return pools_.version(); }

    /**
     * Consistent copy of the current version's health state, taken
     * under the health mutex — safe to call while workers run (live
     * dashboards). This is the accessor to use outside tests.
     */
    runtime::HealthMonitor healthSnapshot() const;

    /**
     * Current version's live health monitor, for post-hoc
     * inspection. Only quiescent reads (after stop(), with no
     * concurrent swapPool) are meaningful — workers mutate it
     * concurrently while running; use healthSnapshot() for that.
     */
    const runtime::HealthMonitor &health() const
    {
        return pools_.current()->health;
    }

    CircuitBreaker::State breakerState() const
    {
        return breaker_.state();
    }

  private:
    struct Request
    {
        const features::ProgramFeatures *prog = nullptr;
        std::uint64_t key = 0;
        std::uint64_t tenant = 0;
        bool admitted = false; ///< charged to admission control
        std::chrono::steady_clock::time_point enqueued;
        std::promise<support::StatusOr<ServeReport>> promise;
    };

    void workerLoop();

    /**
     * Shed the requests of @p batch whose queue wait exceeded the
     * deadline (serve.shed_deadline) and erase them, so planning only
     * ever sees live work. Admission charges of shed requests are
     * returned here. No-op when no deadline is configured.
     */
    void shedExpired(std::vector<Request> &batch);

    void processBatch(std::vector<Request> &batch);

    /**
     * Score one classified live request against the shadow pool with
     * its own (seed, key) switching stream and fold the outcome into
     * shadowStats_. Plain scoring: no chaos, no health coupling, no
     * failover — the candidate is evaluated as it would serve.
     */
    void shadowScore(const features::ProgramFeatures &prog,
                     std::uint64_t key, int live_decision,
                     const core::Rhmd &candidate);

    double nowSeconds() const;

    ServeConfig config_;
    SplitRng switchRng_;
    SplitRng failoverRng_;

    PoolManager pools_;
    AdmissionController admission_;
    CircuitBreaker breaker_;
    ChaosInjector chaos_;

    /** Guards the shadow pool pointer and its running stats. */
    mutable std::mutex shadowMutex_;
    std::shared_ptr<const core::Rhmd> shadow_;
    ShadowStats shadowStats_;

    support::BoundedQueue<Request> queue_;
    std::vector<std::thread> workers_;
    std::chrono::steady_clock::time_point started_;
    std::mutex stopMutex_;
    std::atomic<bool> stopped_{false};
};

} // namespace rhmd::serve

#endif // RHMD_SERVE_SERVICE_HH
