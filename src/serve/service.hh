/**
 * @file
 * Batched detection service: the request-at-a-time serving front end
 * over a resilient detector pool.
 *
 * Rhmd::decideBatch() assumes one caller handing it a prepared list
 * of programs; a deployment instead sees concurrent callers each
 * submitting one program and expecting an answer (or a fast
 * rejection) under load. DetectionService provides that boundary: a
 * bounded multi-producer queue admits requests, worker threads drain
 * them in batches, each batch is scored through the pool's batch APIs
 * (Hmd::scoreWindows grouped per selected detector), and invalid
 * scores feed the HealthMonitor exactly as in DetectionRuntime, with
 * failover redraws and quarantine-aware policy renormalization.
 *
 * Load shedding is explicit: a full queue rejects the request at
 * submit() (Unavailable, serve.shed_queue_full), and a configured
 * deadline sheds requests that waited too long in the queue before
 * any scoring work is spent on them (serve.shed_deadline).
 *
 * Determinism (DESIGN.md §11): per-request switching randomness is
 * derived from (service seed, caller-supplied request key) with
 * SplitRng, never from a shared sequential stream, so a request's
 * decisions are independent of arrival order, batch composition, and
 * worker count. With a healthy pool the service's answer for
 * (program, key) is bit-identical to a serial replay — this is the
 * "request-keyed" determinism domain, distinct from the
 * "pool-sequential" domain of Rhmd::decide/decideBatch.
 */

#ifndef RHMD_SERVE_SERVICE_HH
#define RHMD_SERVE_SERVICE_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rhmd.hh"
#include "runtime/health.hh"
#include "support/bounded_queue.hh"
#include "support/rng.hh"
#include "support/status.hh"

namespace rhmd::serve
{

/** Serving deployment parameters. */
struct ServeConfig
{
    /** Worker threads draining the request queue; 0 resolves like
     *  support::resolveThreadCount. */
    std::size_t workers = 1;

    /** Maximum requests scored in one batch pass. */
    std::size_t maxBatch = 16;

    /** Bounded request-queue capacity (backpressure depth). */
    std::size_t queueCapacity = 256;

    /**
     * Queueing-delay budget in seconds; requests that waited longer
     * are shed with Unavailable before scoring. 0 disables.
     */
    double deadlineSeconds = 0.0;

    /** Degradation policy for failing detectors. */
    runtime::HealthConfig health{};

    /** Root of the per-request switching streams. */
    std::uint64_t seed = 0x5e12f1ce;
};

/** What serving one request observed. */
struct ServeReport
{
    /** Decision epochs in the program's stream. */
    std::size_t epochs = 0;

    /** Epochs that produced a decision. */
    std::size_t classified = 0;

    /** Invalid detector scores failed over while serving this
     *  request. */
    std::size_t detectorFailures = 0;

    /** Per-epoch decisions (classified epochs only, in order). */
    std::vector<int> decisions;

    /** Majority program-level decision (ties count as malware). */
    int programDecision = 0;
};

/**
 * Accepts program-feature scoring requests from any number of
 * producer threads and answers them through a detector pool.
 *
 * Submitted programs must outlive their futures and carry windows
 * for every base period of the pool. Health state accumulates across
 * requests (always-on semantics); epochs advance per drained batch.
 */
class DetectionService
{
  public:
    /**
     * @param pool   the deployed pool; must outlive the service. The
     *               pool's policy steers per-request switching; its
     *               own sequential RNG is never consumed, so serving
     *               does not perturb replays through Rhmd::decide.
     * @param config queueing, batching, and degradation knobs.
     *
     * Workers start immediately.
     */
    DetectionService(const core::Rhmd &pool, ServeConfig config);

    /** Stops and drains the service. */
    ~DetectionService();

    DetectionService(const DetectionService &) = delete;
    DetectionService &operator=(const DetectionService &) = delete;

    /**
     * Submit one program for classification. Returns a future that
     * resolves to the request's report, or to Unavailable when the
     * request was shed (queue full / deadline exceeded) or the whole
     * pool is quarantined.
     *
     * @param prog        feature windows; must stay alive until the
     *                    future resolves.
     * @param request_key caller-chosen identity of this request; the
     *                    switching stream is derived from it, so
     *                    resubmitting a key replays the same
     *                    decisions (and distinct concurrent requests
     *                    should use distinct keys).
     */
    std::future<support::StatusOr<ServeReport>>
    submit(const features::ProgramFeatures &prog,
           std::uint64_t request_key);

    /**
     * Close the queue, serve the already-admitted backlog, and join
     * the workers. Idempotent; submit() after stop() sheds.
     */
    void stop();

    /** Epoch length: the longest base period in the pool. */
    std::uint32_t epochLength() const { return pool_.decisionPeriod(); }

    std::size_t poolSize() const { return pool_.poolSize(); }

    /**
     * Health monitor, for post-hoc inspection. Only quiescent reads
     * (after stop(), or from tests that control submission) are
     * meaningful — workers mutate it concurrently while running.
     */
    const runtime::HealthMonitor &health() const { return health_; }

  private:
    struct Request
    {
        const features::ProgramFeatures *prog = nullptr;
        std::uint64_t key = 0;
        std::chrono::steady_clock::time_point enqueued;
        std::promise<support::StatusOr<ServeReport>> promise;
    };

    void workerLoop();
    void processBatch(std::vector<Request> &batch);

    const core::Rhmd &pool_;
    ServeConfig config_;
    SplitRng switchRng_;
    SplitRng failoverRng_;

    /** Guards health_ (workers report outcomes concurrently). */
    std::mutex healthMutex_;
    runtime::HealthMonitor health_;

    support::BoundedQueue<Request> queue_;
    std::vector<std::thread> workers_;
    std::mutex stopMutex_;
    bool stopped_ = false;
};

} // namespace rhmd::serve

#endif // RHMD_SERVE_SERVICE_HH
