/**
 * @file
 * Admission control implementation.
 */

#include "serve/admission.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rhmd::serve
{

TokenBucket::TokenBucket(const TenantQuota &quota)
    : quota_(quota), tokens_(quota.burst)
{
    fatal_if(quota_.burst < 1.0, "token-bucket burst must be >= 1");
    fatal_if(quota_.ratePerSecond < 0.0,
             "token-bucket rate must be >= 0");
}

bool
TokenBucket::tryAcquire(double now)
{
    if (!primed_) {
        primed_ = true;
        lastRefill_ = now;
    }
    if (now > lastRefill_) {
        tokens_ = std::min(quota_.burst,
                           tokens_ + (now - lastRefill_) *
                                         quota_.ratePerSecond);
        lastRefill_ = now;
    }
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         std::size_t queue_capacity)
    : config_(std::move(config)), queueCapacity_(queue_capacity)
{
    fatal_if(queueCapacity_ == 0,
             "AdmissionController needs a positive queue capacity");
}

AdmissionController::TenantState &
AdmissionController::stateFor(std::uint64_t tenant)
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        const auto quota_it = config_.tenantQuotas.find(tenant);
        const TenantQuota &quota = quota_it != config_.tenantQuotas.end()
                                       ? quota_it->second
                                       : config_.defaultQuota;
        it = tenants_.emplace(tenant, TenantState(quota)).first;
    }
    return it->second;
}

support::Status
AdmissionController::admit(std::uint64_t tenant, double now,
                           std::size_t depth)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    TenantState &state = stateFor(tenant);
    if (!state.bucket.tryAcquire(now)) {
        return support::unavailableError(
            "tenant ", tenant, " quota exhausted; retry later");
    }
    // Fair share only bites under pressure: past the watermark, a
    // tenant already holding its slice of the queue yields to the
    // others (the token is deliberately spent — a tenant flooding a
    // congested queue drains its burst instead of winning the race
    // the moment pressure drops).
    if (config_.fairShareWatermark > 0.0 &&
        static_cast<double>(depth) >=
            config_.fairShareWatermark *
                static_cast<double>(queueCapacity_)) {
        const std::size_t sharers = std::max<std::size_t>(
            1, activeTenants_ + (state.outstanding == 0 ? 1 : 0));
        const std::size_t share =
            std::max<std::size_t>(1, queueCapacity_ / sharers);
        if (state.outstanding >= share) {
            return support::unavailableError(
                "tenant ", tenant, " over fair share (",
                state.outstanding, " of ", share,
                " queued) under pressure; retry later");
        }
    }
    if (state.outstanding == 0)
        ++activeTenants_;
    ++state.outstanding;
    return support::Status();
}

void
AdmissionController::release(std::uint64_t tenant)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(tenant);
    panic_if(it == tenants_.end() || it->second.outstanding == 0,
             "release() without a matching admit for tenant ", tenant);
    if (--it->second.outstanding == 0)
        --activeTenants_;
}

std::size_t
AdmissionController::outstanding(std::uint64_t tenant) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.outstanding;
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config)
{
    fatal_if(config_.failureThreshold == 0,
             "breaker failure threshold must be positive");
    fatal_if(config_.probeQuota == 0,
             "breaker probe quota must be positive");
}

void
CircuitBreaker::open(double now)
{
    state_ = State::Open;
    openedAt_ = now;
    ++lifetimeOpens_;
    ++consecutiveOpens_;
    // The retry layer caps the delay growth; reuse its schedule so
    // a flapping service backs off service-wide exactly as a flaky
    // sensor read does.
    cooldownSeconds_ = support::backoffDelay(
        config_.cooldown,
        std::min(consecutiveOpens_, config_.cooldown.maxAttempts));
    consecutiveFailures_ = 0;
    probesIssued_ = 0;
    probeSuccesses_ = 0;
}

bool
CircuitBreaker::allow(double now)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now - openedAt_ < cooldownSeconds_)
            return false;
        state_ = State::HalfOpen;
        probesIssued_ = 0;
        probeSuccesses_ = 0;
        [[fallthrough]];
      case State::HalfOpen:
        if (probesIssued_ >= config_.probeQuota)
            return false;
        ++probesIssued_;
        return true;
    }
    rhmd_panic("bad breaker state");
}

void
CircuitBreaker::recordSuccess(double now)
{
    (void)now;
    const std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::Closed:
        consecutiveFailures_ = 0;
        return;
      case State::HalfOpen:
        if (++probeSuccesses_ >= config_.probeQuota) {
            state_ = State::Closed;
            consecutiveFailures_ = 0;
            consecutiveOpens_ = 0;
        }
        return;
      case State::Open:
        // A request admitted before the breaker opened resolved late;
        // it says nothing about the service now.
        return;
    }
    rhmd_panic("bad breaker state");
}

void
CircuitBreaker::recordFailure(double now)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::Closed:
        if (++consecutiveFailures_ >= config_.failureThreshold)
            open(now);
        return;
      case State::HalfOpen:
        // The probe failed: the service is still sick. Re-open with
        // the next (longer) cool-down.
        open(now);
        return;
      case State::Open:
        return;
    }
    rhmd_panic("bad breaker state");
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

std::size_t
CircuitBreaker::openCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return lifetimeOpens_;
}

std::string_view
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half-open";
    }
    rhmd_panic("bad breaker state");
}

} // namespace rhmd::serve
