/**
 * @file
 * Batched detection service implementation.
 */

#include "serve/service.hh"

#include <cmath>

#include "core/rhmd.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"

namespace rhmd::serve
{

namespace
{

bool
validScore(double score)
{
    return std::isfinite(score) && score >= 0.0 && score <= 1.0;
}

/**
 * Hard ceiling on failover redraws per failed slot. The nominal
 * budget is pool-size * failureThreshold (as in DetectionRuntime),
 * but deployments that disable quarantine by setting a huge threshold
 * (the chaos bench does) must not turn one poisoned slot into an
 * unbounded retry loop. Part of the replay contract: serial replays
 * of a request must apply the same ceiling.
 */
constexpr std::size_t kMaxFailoverAttempts = 64;

std::size_t
failoverBudget(std::size_t n_detectors, std::size_t failure_threshold)
{
    if (failure_threshold >= kMaxFailoverAttempts / n_detectors)
        return kMaxFailoverAttempts;
    return n_detectors * failure_threshold;
}

// Deterministic serve metrics count request outcomes, which with a
// healthy pool and no shedding depend only on (seed, keys, programs,
// pool version); everything shaped by scheduling or overload — batch
// composition, queue depth, shedding, quarantine fallout — is Timing
// and stripped before determinism diffs.

struct ServeCounters
{
    support::Counter &requests = support::metrics().counter(
        "serve.requests", "requests submitted to the detection service");
    support::Counter &responses = support::metrics().counter(
        "serve.responses", "requests answered with a classification");
    support::Counter &malwareFlagged = support::metrics().counter(
        "serve.malware_flagged",
        "served requests whose program decision was malware");
    support::Counter &detectorFailures = support::metrics().counter(
        "serve.detector_failures",
        "invalid detector scores failed over while serving");
    support::Counter &shedQueueFull = support::metrics().counter(
        "serve.shed_queue_full",
        "requests shed at submit because the queue was full",
        support::MetricDomain::Timing);
    support::Counter &shedDeadline = support::metrics().counter(
        "serve.shed_deadline",
        "requests shed at batch pop after exceeding the queueing "
        "deadline",
        support::MetricDomain::Timing);
    support::Counter &shedDeadlineSubmit = support::metrics().counter(
        "serve.shed_deadline_submit",
        "expired requests evicted from a full queue at submit to make "
        "room for live work",
        support::MetricDomain::Timing);
    support::Counter &shedStopped = support::metrics().counter(
        "serve.shed_stopped",
        "requests shed because the service was stopped",
        support::MetricDomain::Timing);
    support::Counter &shedQuota = support::metrics().counter(
        "serve.shed_quota",
        "requests shed by tenant quota or fair-share admission",
        support::MetricDomain::Timing);
    support::Counter &shedCircuitOpen = support::metrics().counter(
        "serve.shed_circuit_open",
        "requests shed while the circuit breaker was open",
        support::MetricDomain::Timing);
    support::Counter &failOpen = support::metrics().counter(
        "serve.fail_open",
        "degraded fail-open answers while the pool was quarantined",
        support::MetricDomain::Timing);
    support::Counter &failClosed = support::metrics().counter(
        "serve.fail_closed",
        "fail-closed rejections while the pool was quarantined",
        support::MetricDomain::Timing);
    support::Counter &batches = support::metrics().counter(
        "serve.batches", "batches drained from the request queue",
        support::MetricDomain::Timing);
    support::Histogram &batchSize = support::metrics().histogram(
        "serve.batch_size", "requests per drained batch",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
        support::MetricDomain::Timing);
    support::Gauge &queueDepthPeak = support::metrics().gauge(
        "serve.queue_depth_peak", "maximum observed request-queue depth",
        support::MetricDomain::Timing);
};

ServeCounters &
serveCounters()
{
    static ServeCounters counters;
    return counters;
}

} // namespace

DetectionService::DetectionService(std::shared_ptr<const core::Rhmd> pool,
                                   ServeConfig config)
    : config_(std::move(config)), switchRng_(config_.seed),
      failoverRng_(config_.seed ^ 0xfa170f32c001d00dULL),
      pools_(std::move(pool), config_.health, config_.gate),
      admission_(config_.admission,
                 config_.queueCapacity == 0 ? 1 : config_.queueCapacity),
      breaker_(config_.breaker), chaos_(config_.chaos),
      queue_(config_.queueCapacity == 0 ? 1 : config_.queueCapacity),
      started_(std::chrono::steady_clock::now())
{
    fatal_if(config_.maxBatch == 0,
             "DetectionService maxBatch must be > 0");
    fatal_if(config_.queueCapacity == 0,
             "DetectionService queueCapacity must be > 0");

    const std::size_t n_workers =
        support::resolveThreadCount(config_.workers);
    workers_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

DetectionService::DetectionService(const core::Rhmd &pool,
                                   ServeConfig config)
    : DetectionService(std::shared_ptr<const core::Rhmd>(
                           &pool, [](const core::Rhmd *) {}),
                       std::move(config))
{
}

DetectionService::~DetectionService()
{
    stop();
}

double
DetectionService::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started_)
        .count();
}

std::future<support::StatusOr<ServeReport>>
DetectionService::submit(const features::ProgramFeatures &prog,
                         std::uint64_t request_key, std::uint64_t tenant)
{
    ServeCounters &counters = serveCounters();
    counters.requests.add(1);

    Request req;
    req.prog = &prog;
    req.key = request_key;
    req.tenant = tenant;
    req.enqueued = std::chrono::steady_clock::now();
    std::future<support::StatusOr<ServeReport>> future =
        req.promise.get_future();

    // Admission layers, cheapest first: a stopped service and an open
    // breaker shed before any quota or queue work is spent.
    if (stopped_.load(std::memory_order_acquire)) {
        counters.shedStopped.add(1);
        req.promise.set_value(support::unavailableError(
            "detection service stopped; request shed"));
        return future;
    }
    const double now_s = nowSeconds();
    if (config_.breaker.enabled && !breaker_.allow(now_s)) {
        counters.shedCircuitOpen.add(1);
        req.promise.set_value(support::unavailableError(
            "detection service circuit breaker ",
            breakerStateName(breaker_.state()),
            "; retry after the cool-down"));
        return future;
    }
    if (config_.admission.enabled) {
        support::Status admitted =
            admission_.admit(tenant, now_s, queue_.size());
        if (!admitted.isOk()) {
            counters.shedQuota.add(1);
            req.promise.set_value(std::move(admitted));
            return future;
        }
        req.admitted = true;
    }

    // A full queue first reclaims dead capacity: requests whose wait
    // already blew the deadline can never be answered in budget, so
    // they are evicted (and shed under their own counter) instead of
    // letting a live request bounce off capacity they occupy.
    std::size_t depth = 0;
    bool pushed = false;
    std::vector<Request> evicted;
    if (config_.deadlineSeconds > 0.0) {
        const auto now = std::chrono::steady_clock::now();
        pushed = queue_.tryPushEvicting(
            std::move(req),
            [&](const Request &queued) {
                return std::chrono::duration<double>(now -
                                                     queued.enqueued)
                           .count() > config_.deadlineSeconds;
            },
            evicted, &depth);
        for (Request &dead : evicted) {
            if (dead.admitted)
                admission_.release(dead.tenant);
            counters.shedDeadlineSubmit.add(1);
            if (config_.breaker.enabled)
                breaker_.recordFailure(now_s);
            dead.promise.set_value(support::unavailableError(
                "request shed: queue wait exceeded the ",
                config_.deadlineSeconds, "s deadline"));
        }
    } else {
        pushed = queue_.tryPush(std::move(req), &depth);
    }
    if (!pushed) {
        // A failed push never moves from its argument, so the
        // promise is still ours to fulfill — and the admission charge
        // is ours to return.
        if (req.admitted)
            admission_.release(tenant);
        if (queue_.closed()) {
            // stop() raced ahead of the stopped_ check above: this is
            // shutdown shedding, not overload, and dashboards must be
            // able to tell them apart.
            counters.shedStopped.add(1);
            req.promise.set_value(support::unavailableError(
                "detection service stopped; request shed"));
            return future;
        }
        counters.shedQueueFull.add(1);
        if (config_.breaker.enabled)
            breaker_.recordFailure(now_s);
        req.promise.set_value(support::unavailableError(
            "detection service overloaded (queue of ",
            queue_.capacity(), " full); retry later"));
        return future;
    }
    counters.queueDepthPeak.updateMax(static_cast<double>(depth));
    return future;
}

support::StatusOr<std::uint64_t>
DetectionService::swapPool(std::shared_ptr<const core::Rhmd> candidate)
{
    return pools_.swapPool(std::move(candidate));
}

runtime::HealthMonitor
DetectionService::healthSnapshot() const
{
    const std::shared_ptr<PoolState> state = pools_.current();
    const std::lock_guard<std::mutex> lock(state->healthMutex);
    return state->health;
}

support::Status
DetectionService::installShadow(
    std::shared_ptr<const core::Rhmd> candidate)
{
    if (candidate == nullptr)
        return support::invalidArgumentError(
            "installShadow needs a candidate pool");
    const support::Status valid = candidate->validate();
    if (!valid.isOk())
        return support::failedPreconditionError(
            "shadow candidate rejected: ", valid.toString());
    const std::lock_guard<std::mutex> lock(shadowMutex_);
    shadow_ = std::move(candidate);
    shadowStats_ = ShadowStats{};
    return support::Status();
}

void
DetectionService::clearShadow()
{
    const std::lock_guard<std::mutex> lock(shadowMutex_);
    shadow_.reset();
}

bool
DetectionService::shadowActive() const
{
    const std::lock_guard<std::mutex> lock(shadowMutex_);
    return shadow_ != nullptr;
}

ShadowStats
DetectionService::shadowStats() const
{
    const std::lock_guard<std::mutex> lock(shadowMutex_);
    return shadowStats_;
}

void
DetectionService::stop()
{
    {
        const std::lock_guard<std::mutex> lock(stopMutex_);
        if (stopped_.load(std::memory_order_relaxed))
            return;
        stopped_.store(true, std::memory_order_release);
    }
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
}

void
DetectionService::workerLoop()
{
    std::vector<Request> batch;
    while (queue_.popBatch(batch, config_.maxBatch) > 0) {
        // Pop-boundary deadline shed: expired requests leave before
        // any batch is planned, so a batch of stale work costs no
        // scoring and an all-expired pop plans nothing at all.
        shedExpired(batch);
        if (batch.empty())
            continue;
        chaos_.maybeStallWorker();
        processBatch(batch);
    }
}

void
DetectionService::shedExpired(std::vector<Request> &batch)
{
    if (config_.deadlineSeconds <= 0.0)
        return;
    ServeCounters &counters = serveCounters();
    const double now_s = nowSeconds();
    const auto now = std::chrono::steady_clock::now();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Request &req = batch[i];
        const double waited =
            std::chrono::duration<double>(now - req.enqueued).count();
        if (waited > config_.deadlineSeconds) {
            if (req.admitted)
                admission_.release(req.tenant);
            counters.shedDeadline.add(1);
            if (config_.breaker.enabled)
                breaker_.recordFailure(now_s);
            req.promise.set_value(support::unavailableError(
                "request shed after queueing ", waited, "s (deadline ",
                config_.deadlineSeconds, "s)"));
            continue;
        }
        if (kept != i)
            batch[kept] = std::move(req);
        ++kept;
    }
    batch.resize(kept);
}

void
DetectionService::processBatch(std::vector<Request> &batch)
{
    ServeCounters &counters = serveCounters();
    const double now_s = nowSeconds();

    // Every admitted request has left the queue: return its admission
    // charge before anything else so fair-share accounting tracks
    // real queue occupancy. (Expired requests already returned theirs
    // in shedExpired; the batch here is live work only.)
    if (config_.admission.enabled) {
        for (const Request &req : batch) {
            if (req.admitted)
                admission_.release(req.tenant);
        }
    }

    std::vector<Request *> live;
    live.reserve(batch.size());
    for (Request &req : batch)
        live.push_back(&req);

    counters.batches.add(1);
    counters.batchSize.observe(static_cast<double>(live.size()));

    // Pool snapshot: the RCU epoch of this batch. Everything below
    // reads this version — a swapPool() landing mid-batch is invisible
    // here and the old version reclaims when the last holder drops it.
    const std::shared_ptr<PoolState> state = pools_.current();
    const core::Rhmd &pool = *state->pool;
    chaos_.batchPlanned(state->version);
    chaos_.maybeDelayBatch();

    // One health epoch per drained batch; snapshot the effective
    // policy once so every request in the batch plans against the
    // same pool view.
    support::StatusOr<std::vector<double>> effective =
        support::unavailableError("unset");
    {
        const std::lock_guard<std::mutex> lock(state->healthMutex);
        state->health.tick();
        effective = state->health.effectivePolicy(pool.policy());
    }
    if (!effective.isOk()) {
        // The whole snapshot is quarantined: the configured
        // fail-open/fail-closed decision, not an accident of which
        // worker got here first.
        for (Request *req : live) {
            if (config_.failOpen) {
                counters.failOpen.add(1);
                ServeReport report;
                report.poolVersion = state->version;
                report.degraded = true;
                report.epochs =
                    req->prog->windows(pool.decisionPeriod()).size();
                report.programDecision = 0;
                req->promise.set_value(std::move(report));
                continue;
            }
            counters.failClosed.add(1);
            if (config_.breaker.enabled)
                breaker_.recordFailure(now_s);
            req->promise.set_value(effective.status());
        }
        return;
    }
    const std::vector<double> &policy = *effective;

    // Phase 1 — plan: each request draws its switching stream from
    // (seed, key) alone, so the picks do not depend on batch
    // composition or worker interleaving. Rows are grouped per
    // selected detector for one scoreWindows() pass each.
    struct Slot
    {
        std::size_t req;    ///< index into live
        std::size_t epoch;
    };
    const std::size_t n_det = pool.poolSize();
    const std::uint32_t epoch_len = pool.decisionPeriod();
    std::vector<std::vector<Slot>> slots(n_det);
    std::vector<std::vector<const features::RawWindow *>> rows(n_det);
    // Per live request: per-epoch decision, -1 while unclassified.
    std::vector<std::vector<int>> decided(live.size());
    std::vector<std::size_t> failures(live.size(), 0);
    // Summed |score - threshold| over classified epochs (the margin
    // signal behind ServeReport::meanMargin).
    std::vector<double> marginSum(live.size(), 0.0);

    for (std::size_t r = 0; r < live.size(); ++r) {
        const features::ProgramFeatures &prog = *live[r]->prog;
        const std::size_t n_epochs = prog.windows(epoch_len).size();
        decided[r].assign(n_epochs, -1);
        Rng rng = switchRng_.at(live[r]->key);
        for (std::size_t e = 0; e < n_epochs; ++e) {
            const std::size_t pick = rng.weightedIndex(policy);
            const std::uint32_t period =
                pool.detectors()[pick]->decisionPeriod();
            const std::size_t index = e * (epoch_len / period);
            const auto &windows = prog.windows(period);
            panic_if(index >= windows.size(),
                     "window index out of range for period ", period);
            slots[pick].push_back({r, e});
            rows[pick].push_back(&windows[index]);
        }
    }

    // Phase 2 — score: one batch pass per selected detector. Invalid
    // scores — organic or chaos-injected — are reported to the health
    // monitor and their slots fall through to the serial failover
    // pass below.
    struct Failed
    {
        std::size_t req;
        std::size_t epoch;
    };
    std::vector<Failed> failed;
    for (std::size_t d = 0; d < n_det; ++d) {
        if (rows[d].empty())
            continue;
        const core::Hmd &det = *pool.detectors()[d];
        const std::vector<double> scores = det.scoreWindows(rows[d]);
        std::size_t valid = 0;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            const Slot &slot = slots[d][i];
            if (chaos_.scoreFault(live[slot.req]->key, slot.epoch, d) ||
                !validScore(scores[i])) {
                ++failures[slot.req];
                counters.detectorFailures.add(1);
                failed.push_back({slot.req, slot.epoch});
                continue;
            }
            ++valid;
            decided[slot.req][slot.epoch] =
                scores[i] >= det.threshold() ? 1 : 0;
            marginSum[slot.req] +=
                std::abs(scores[i] - det.threshold());
        }
        const std::lock_guard<std::mutex> lock(state->healthMutex);
        for (std::size_t i = 0; i < valid; ++i)
            state->health.recordSuccess(d);
        for (std::size_t i = valid; i < scores.size(); ++i)
            state->health.recordFailure(
                d, rhmd::detail::concat("invalid score at epoch ",
                                        state->health.epoch()));
    }

    // Phase 3 — failover: redraw each failed slot from its own
    // (key, epoch)-derived stream (order-independent) against the
    // current effective policy, up to the same attempt budget the
    // runtime uses (hard-capped; see failoverBudget). A slot that
    // exhausts the budget stays unclassified.
    const std::size_t max_attempts =
        failoverBudget(n_det, config_.health.failureThreshold);
    for (const Failed &f : failed) {
        const features::ProgramFeatures &prog = *live[f.req]->prog;
        const std::uint64_t key = live[f.req]->key;
        Rng rng = SplitRng(failoverRng_.seedAt(key)).at(f.epoch);
        for (std::size_t attempt = 0; attempt < max_attempts;
             ++attempt) {
            support::StatusOr<std::vector<double>> pol =
                support::unavailableError("unset");
            {
                const std::lock_guard<std::mutex> lock(
                    state->healthMutex);
                pol = state->health.effectivePolicy(pool.policy());
            }
            if (!pol.isOk())
                break;
            const std::size_t pick = rng.weightedIndex(*pol);
            const core::Hmd &det = *pool.detectors()[pick];
            const std::size_t index =
                f.epoch * (epoch_len / det.decisionPeriod());
            const double score = det.windowScore(
                prog.windows(det.decisionPeriod())[index]);
            const bool faulted =
                chaos_.scoreFault(key, f.epoch, pick) ||
                !validScore(score);
            const std::lock_guard<std::mutex> lock(state->healthMutex);
            if (faulted) {
                ++failures[f.req];
                counters.detectorFailures.add(1);
                state->health.recordFailure(
                    pick,
                    rhmd::detail::concat("invalid failover score ",
                                         score));
                continue;
            }
            state->health.recordSuccess(pick);
            decided[f.req][f.epoch] =
                score >= det.threshold() ? 1 : 0;
            marginSum[f.req] += std::abs(score - det.threshold());
            break;
        }
    }

    // Phase 4 — fulfill: compact each request's classified epochs
    // into its report, majority-vote the program decision, stamp the
    // pool version the batch was planned against. When a shadow
    // candidate is installed, each classified request is scored
    // against it first (the submitted program is only guaranteed
    // alive until its promise resolves).
    std::shared_ptr<const core::Rhmd> shadow;
    {
        const std::lock_guard<std::mutex> lock(shadowMutex_);
        shadow = shadow_;
    }
    for (std::size_t r = 0; r < live.size(); ++r) {
        ServeReport report;
        report.epochs = decided[r].size();
        report.detectorFailures = failures[r];
        report.poolVersion = state->version;
        for (int d : decided[r]) {
            if (d >= 0)
                report.decisions.push_back(d);
        }
        report.classified = report.decisions.size();
        if (report.decisions.empty()) {
            if (config_.breaker.enabled)
                breaker_.recordFailure(now_s);
            live[r]->promise.set_value(support::unavailableError(
                "no epoch of '", live[r]->prog->name,
                "' could be classified (", report.epochs, " epochs, ",
                report.detectorFailures, " detector failures)"));
            continue;
        }
        std::size_t malware_votes = 0;
        for (int d : report.decisions)
            malware_votes += d != 0 ? 1 : 0;
        report.programDecision =
            2 * malware_votes >= report.decisions.size() ? 1 : 0;
        report.meanMargin =
            marginSum[r] / static_cast<double>(report.classified);
        counters.responses.add(1);
        if (report.programDecision == 1)
            counters.malwareFlagged.add(1);
        if (config_.breaker.enabled)
            breaker_.recordSuccess(now_s);
        if (shadow != nullptr)
            shadowScore(*live[r]->prog, live[r]->key,
                        report.programDecision, *shadow);
        live[r]->promise.set_value(std::move(report));
    }
}

void
DetectionService::shadowScore(const features::ProgramFeatures &prog,
                              std::uint64_t key, int live_decision,
                              const core::Rhmd &candidate)
{
    // Same per-key stream derivation as the live plan, so the shadow
    // verdict for a key is a pure function of (service seed, key,
    // candidate) — independent of batch composition and of the live
    // pool version the request happened to be served by.
    const std::uint32_t epoch_len = candidate.decisionPeriod();
    const auto &epochs = prog.windows(epoch_len);
    Rng rng = switchRng_.at(key);
    std::size_t malware_votes = 0;
    std::size_t classified = 0;
    double margin_sum = 0.0;
    for (std::size_t e = 0; e < epochs.size(); ++e) {
        const std::size_t pick = rng.weightedIndex(candidate.policy());
        const core::Hmd &det = *candidate.detectors()[pick];
        const std::uint32_t period = det.decisionPeriod();
        const std::size_t index = e * (epoch_len / period);
        const auto &windows = prog.windows(period);
        panic_if(index >= windows.size(),
                 "shadow window index out of range for period ",
                 period);
        const double score = det.windowScore(windows[index]);
        if (!validScore(score))
            continue;
        ++classified;
        malware_votes += score >= det.threshold() ? 1 : 0;
        margin_sum += std::abs(score - det.threshold());
    }
    const int shadow_decision =
        classified > 0 && 2 * malware_votes >= classified ? 1 : 0;
    const std::lock_guard<std::mutex> lock(shadowMutex_);
    shadowStats_.requests += 1;
    shadowStats_.agreements += shadow_decision == live_decision ? 1 : 0;
    shadowStats_.shadowMalware +=
        static_cast<std::size_t>(shadow_decision);
    shadowStats_.liveMalware +=
        static_cast<std::size_t>(live_decision);
    shadowStats_.marginSum +=
        classified > 0 ? margin_sum / static_cast<double>(classified)
                       : 0.0;
}

} // namespace rhmd::serve
