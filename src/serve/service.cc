/**
 * @file
 * Batched detection service implementation.
 */

#include "serve/service.hh"

#include <cmath>

#include "core/rhmd.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"

namespace rhmd::serve
{

namespace
{

bool
validScore(double score)
{
    return std::isfinite(score) && score >= 0.0 && score <= 1.0;
}

// Deterministic serve metrics count request outcomes, which with a
// healthy pool and no shedding depend only on (seed, keys, programs);
// everything shaped by scheduling — batch composition, queue depth,
// shedding — is Timing and stripped before determinism diffs.

struct ServeCounters
{
    support::Counter &requests = support::metrics().counter(
        "serve.requests", "requests submitted to the detection service");
    support::Counter &responses = support::metrics().counter(
        "serve.responses", "requests answered with a classification");
    support::Counter &malwareFlagged = support::metrics().counter(
        "serve.malware_flagged",
        "served requests whose program decision was malware");
    support::Counter &detectorFailures = support::metrics().counter(
        "serve.detector_failures",
        "invalid detector scores failed over while serving");
    support::Counter &shedQueueFull = support::metrics().counter(
        "serve.shed_queue_full",
        "requests shed at submit because the queue was full",
        support::MetricDomain::Timing);
    support::Counter &shedDeadline = support::metrics().counter(
        "serve.shed_deadline",
        "requests shed after exceeding the queueing deadline",
        support::MetricDomain::Timing);
    support::Counter &batches = support::metrics().counter(
        "serve.batches", "batches drained from the request queue",
        support::MetricDomain::Timing);
    support::Histogram &batchSize = support::metrics().histogram(
        "serve.batch_size", "requests per drained batch",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
        support::MetricDomain::Timing);
    support::Gauge &queueDepthPeak = support::metrics().gauge(
        "serve.queue_depth_peak", "maximum observed request-queue depth",
        support::MetricDomain::Timing);
};

ServeCounters &
serveCounters()
{
    static ServeCounters counters;
    return counters;
}

} // namespace

DetectionService::DetectionService(const core::Rhmd &pool,
                                   ServeConfig config)
    : pool_(pool), config_(config), switchRng_(config.seed),
      failoverRng_(config.seed ^ 0xfa170f32c001d00dULL),
      health_(pool.poolSize(), config.health),
      queue_(config.queueCapacity == 0 ? 1 : config.queueCapacity)
{
    fatal_if(config_.maxBatch == 0,
             "DetectionService maxBatch must be > 0");
    fatal_if(config_.queueCapacity == 0,
             "DetectionService queueCapacity must be > 0");

    const std::size_t n_workers =
        support::resolveThreadCount(config_.workers);
    workers_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

DetectionService::~DetectionService()
{
    stop();
}

std::future<support::StatusOr<ServeReport>>
DetectionService::submit(const features::ProgramFeatures &prog,
                         std::uint64_t request_key)
{
    ServeCounters &counters = serveCounters();
    counters.requests.add(1);

    Request req;
    req.prog = &prog;
    req.key = request_key;
    req.enqueued = std::chrono::steady_clock::now();
    std::future<support::StatusOr<ServeReport>> future =
        req.promise.get_future();

    std::size_t depth = 0;
    if (!queue_.tryPush(std::move(req), &depth)) {
        // Shed at admission: the caller learns immediately instead
        // of queueing behind work the service cannot absorb. A
        // failed tryPush never moves from its argument, so the
        // promise is still ours to fulfill.
        counters.shedQueueFull.add(1);
        req.promise.set_value(support::unavailableError(
            "detection service overloaded (queue of ",
            queue_.capacity(), " full); retry later"));
        return future;
    }
    counters.queueDepthPeak.updateMax(static_cast<double>(depth));
    return future;
}

void
DetectionService::stop()
{
    {
        const std::lock_guard<std::mutex> lock(stopMutex_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
}

void
DetectionService::workerLoop()
{
    std::vector<Request> batch;
    while (queue_.popBatch(batch, config_.maxBatch) > 0)
        processBatch(batch);
}

void
DetectionService::processBatch(std::vector<Request> &batch)
{
    ServeCounters &counters = serveCounters();

    // Deadline shedding: requests that already waited longer than the
    // budget get Unavailable before any scoring work is spent.
    std::vector<Request *> live;
    live.reserve(batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (Request &req : batch) {
        if (config_.deadlineSeconds > 0.0) {
            const double waited =
                std::chrono::duration<double>(now - req.enqueued)
                    .count();
            if (waited > config_.deadlineSeconds) {
                counters.shedDeadline.add(1);
                req.promise.set_value(support::unavailableError(
                    "request shed after queueing ", waited,
                    "s (deadline ", config_.deadlineSeconds, "s)"));
                continue;
            }
        }
        live.push_back(&req);
    }
    if (live.empty())
        return;

    counters.batches.add(1);
    counters.batchSize.observe(static_cast<double>(live.size()));

    // One health epoch per drained batch; snapshot the effective
    // policy once so every request in the batch plans against the
    // same pool view.
    support::StatusOr<std::vector<double>> effective =
        support::unavailableError("unset");
    {
        const std::lock_guard<std::mutex> lock(healthMutex_);
        health_.tick();
        effective = health_.effectivePolicy(pool_.policy());
    }
    if (!effective.isOk()) {
        for (Request *req : live)
            req->promise.set_value(effective.status());
        return;
    }
    const std::vector<double> &policy = *effective;

    // Phase 1 — plan: each request draws its switching stream from
    // (seed, key) alone, so the picks do not depend on batch
    // composition or worker interleaving. Rows are grouped per
    // selected detector for one scoreWindows() pass each.
    struct Slot
    {
        std::size_t req;    ///< index into live
        std::size_t epoch;
    };
    const std::size_t n_det = pool_.poolSize();
    const std::uint32_t epoch_len = pool_.decisionPeriod();
    std::vector<std::vector<Slot>> slots(n_det);
    std::vector<std::vector<const features::RawWindow *>> rows(n_det);
    // Per live request: per-epoch decision, -1 while unclassified.
    std::vector<std::vector<int>> decided(live.size());
    std::vector<std::size_t> failures(live.size(), 0);

    for (std::size_t r = 0; r < live.size(); ++r) {
        const features::ProgramFeatures &prog = *live[r]->prog;
        const std::size_t n_epochs = prog.windows(epoch_len).size();
        decided[r].assign(n_epochs, -1);
        Rng rng = switchRng_.at(live[r]->key);
        for (std::size_t e = 0; e < n_epochs; ++e) {
            const std::size_t pick = rng.weightedIndex(policy);
            const std::uint32_t period =
                pool_.detectors()[pick]->decisionPeriod();
            const std::size_t index = e * (epoch_len / period);
            const auto &windows = prog.windows(period);
            panic_if(index >= windows.size(),
                     "window index out of range for period ", period);
            slots[pick].push_back({r, e});
            rows[pick].push_back(&windows[index]);
        }
    }

    // Phase 2 — score: one batch pass per selected detector. Invalid
    // scores are reported to the health monitor and their slots fall
    // through to the serial failover pass below.
    struct Failed
    {
        std::size_t req;
        std::size_t epoch;
    };
    std::vector<Failed> failed;
    for (std::size_t d = 0; d < n_det; ++d) {
        if (rows[d].empty())
            continue;
        const core::Hmd &det = *pool_.detectors()[d];
        const std::vector<double> scores = det.scoreWindows(rows[d]);
        std::size_t valid = 0;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            const Slot &slot = slots[d][i];
            if (!validScore(scores[i])) {
                ++failures[slot.req];
                counters.detectorFailures.add(1);
                failed.push_back({slot.req, slot.epoch});
                continue;
            }
            ++valid;
            decided[slot.req][slot.epoch] =
                scores[i] >= det.threshold() ? 1 : 0;
        }
        const std::lock_guard<std::mutex> lock(healthMutex_);
        for (std::size_t i = 0; i < valid; ++i)
            health_.recordSuccess(d);
        for (std::size_t i = valid; i < scores.size(); ++i)
            health_.recordFailure(
                d, rhmd::detail::concat("invalid score at epoch ",
                                        health_.epoch()));
    }

    // Phase 3 — failover: redraw each failed slot from its own
    // (key, epoch)-derived stream (order-independent) against the
    // current effective policy, up to the same attempt budget the
    // runtime uses. A slot that exhausts the budget stays
    // unclassified.
    const std::size_t max_attempts =
        n_det * config_.health.failureThreshold;
    for (const Failed &f : failed) {
        const features::ProgramFeatures &prog = *live[f.req]->prog;
        Rng rng = SplitRng(failoverRng_.seedAt(live[f.req]->key))
                      .at(f.epoch);
        for (std::size_t attempt = 0; attempt < max_attempts;
             ++attempt) {
            support::StatusOr<std::vector<double>> pol =
                support::unavailableError("unset");
            {
                const std::lock_guard<std::mutex> lock(healthMutex_);
                pol = health_.effectivePolicy(pool_.policy());
            }
            if (!pol.isOk())
                break;
            const std::size_t pick = rng.weightedIndex(*pol);
            const core::Hmd &det = *pool_.detectors()[pick];
            const std::size_t index =
                f.epoch * (epoch_len / det.decisionPeriod());
            const double score = det.windowScore(
                prog.windows(det.decisionPeriod())[index]);
            const std::lock_guard<std::mutex> lock(healthMutex_);
            if (!validScore(score)) {
                ++failures[f.req];
                counters.detectorFailures.add(1);
                health_.recordFailure(
                    pick,
                    rhmd::detail::concat("invalid failover score ",
                                         score));
                continue;
            }
            health_.recordSuccess(pick);
            decided[f.req][f.epoch] =
                score >= det.threshold() ? 1 : 0;
            break;
        }
    }

    // Phase 4 — fulfill: compact each request's classified epochs
    // into its report, majority-vote the program decision.
    for (std::size_t r = 0; r < live.size(); ++r) {
        ServeReport report;
        report.epochs = decided[r].size();
        report.detectorFailures = failures[r];
        for (int d : decided[r]) {
            if (d >= 0)
                report.decisions.push_back(d);
        }
        report.classified = report.decisions.size();
        if (report.decisions.empty()) {
            live[r]->promise.set_value(support::unavailableError(
                "no epoch of '", live[r]->prog->name,
                "' could be classified (", report.epochs, " epochs, ",
                report.detectorFailures, " detector failures)"));
            continue;
        }
        std::size_t malware_votes = 0;
        for (int d : report.decisions)
            malware_votes += d != 0 ? 1 : 0;
        report.programDecision =
            2 * malware_votes >= report.decisions.size() ? 1 : 0;
        counters.responses.add(1);
        if (report.programDecision == 1)
            counters.malwareFlagged.add(1);
        live[r]->promise.set_value(std::move(report));
    }
}

} // namespace rhmd::serve
