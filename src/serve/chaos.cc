/**
 * @file
 * Service-level chaos injector implementation.
 */

#include "serve/chaos.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/fault_injection.hh"
#include "support/logging.hh"

namespace rhmd::serve
{

ChaosInjector::ChaosInjector(const ChaosConfig &config)
    : config_(config), rng_(config.seed)
{
    for (double p :
         {config_.workerStallProb, config_.batchDelayProb,
          config_.transientScoreFaultProb}) {
        fatal_if(p < 0.0 || p > 1.0,
                 "chaos probabilities must be in [0, 1]");
    }
}

bool
ChaosInjector::roll(double prob)
{
    if (!config_.enabled || prob <= 0.0)
        return false;
    const std::lock_guard<std::mutex> lock(mutex_);
    return rng_.chance(prob);
}

void
ChaosInjector::maybeStallWorker()
{
    if (roll(config_.workerStallProb) &&
        config_.workerStallMicros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.workerStallMicros));
    }
}

void
ChaosInjector::maybeDelayBatch()
{
    if (roll(config_.batchDelayProb) && config_.batchDelayMicros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.batchDelayMicros));
    }
}

bool
ChaosInjector::scoreFault(std::uint64_t key, std::size_t epoch,
                          std::size_t detector) const
{
    if (!config_.enabled)
        return false;
    if (std::find(config_.brokenDetectors.begin(),
                  config_.brokenDetectors.end(),
                  detector) != config_.brokenDetectors.end())
        return true;
    return runtime::FaultInjector::keyedFault(
        config_.seed, key, epoch, detector,
        config_.transientScoreFaultProb);
}

void
ChaosInjector::batchPlanned(std::uint64_t pool_version) const
{
    if (config_.enabled && config_.onBatchPlanned)
        config_.onBatchPlanned(pool_version);
}

} // namespace rhmd::serve
