/**
 * @file
 * Versioned detector-pool snapshots with zero-downtime promotion.
 *
 * The paper's evade→retrain game (Sec. 6) only matters in deployment
 * if a retrained pool can replace the live one without draining the
 * service. PoolManager holds the published pool as an epoch/RCU-style
 * snapshot: readers (worker batches) grab a `shared_ptr<PoolState>`
 * once per batch and keep serving that version to completion even if
 * a swap lands mid-batch; the shared_ptr *is* the epoch — the old
 * version is reclaimed exactly when the last in-flight batch drops
 * its reference, never under a reader's feet.
 *
 * Promotion is gated, not trusted: `swapPool()` re-runs the pool and
 * policy invariants (`core::Rhmd::validate`) and, when a
 * PromotionGate is configured, the paper's Theorem-1 criterion
 * (`core::checkPacFloor`) — a candidate whose provable
 * reverse-engineering floor is worse than the serving pool's is
 * rejected and the current version keeps serving. Grounded in
 * "Certifiably robust malware detectors by design" (PAPERS.md): only
 * deploy what you can still prove something about.
 *
 * Health state is scoped to a version. Each PoolState carries its own
 * HealthMonitor (sized for its pool) plus the mutex guarding it, so a
 * promotion starts from a clean health slate and an in-flight batch
 * keeps reporting into the monitor that matches the pool it is
 * actually scoring with.
 */

#ifndef RHMD_SERVE_POOL_MANAGER_HH
#define RHMD_SERVE_POOL_MANAGER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rhmd.hh"
#include "features/corpus.hh"
#include "runtime/health.hh"
#include "support/status.hh"

namespace rhmd::serve
{

/**
 * The PAC promotion gate. When @p corpus is null the gate is off and
 * swaps are admitted on structural validity alone (tests, benches
 * that rebuild identical pools). When set, @p testIdx names the
 * held-out programs the Theorem-1 bounds are measured on.
 */
struct PromotionGate
{
    const features::FeatureCorpus *corpus = nullptr;
    std::vector<std::size_t> testIdx;

    /**
     * Slack on the floor comparison: a candidate may undercut the
     * current lower bound by at most this before it is rejected.
     */
    double floorTolerance = 0.0;

    /**
     * When true (and the gate is on), promotion additionally runs the
     * abstract-interpretation certifier
     * (analysis::certify::checkCertifiedFloor): a candidate whose
     * certified evasion bound regresses by more than
     * certifiedTolerance — or whose parameters fail the static audit —
     * is rejected. Composes with the PAC floor: Theorem 1 bounds what
     * an attacker can *learn*, the certified bound what a bounded
     * perturbation can *flip*.
     */
    bool certify = false;

    /** Slack on the certified-bound comparison (standardized units). */
    double certifiedTolerance = 0.0;
};

/**
 * One published pool version and the mutable serving state scoped to
 * it. Immutable after construction except for the health monitor,
 * which workers mutate under healthMutex.
 */
struct PoolState
{
    std::shared_ptr<const core::Rhmd> pool;
    std::uint64_t version = 0;

    /** Guards health (workers report outcomes concurrently). */
    mutable std::mutex healthMutex;
    runtime::HealthMonitor health;

    PoolState(std::shared_ptr<const core::Rhmd> pool_in,
              std::uint64_t version_in,
              const runtime::HealthConfig &health_config)
        : pool(std::move(pool_in)), version(version_in),
          health(pool->poolSize(), health_config)
    {
    }
};

/**
 * Owns the published snapshot and the promotion path. current() is
 * the read side (one mutex-guarded shared_ptr copy per batch);
 * swapPool() is the write side, serialized so two concurrent
 * promotions cannot both gate against the same predecessor.
 */
class PoolManager
{
  public:
    /**
     * @param initial the version-1 pool; must be valid (fatal on a
     *                pool that fails its own invariants — there is no
     *                graceful answer to deploying garbage at boot).
     * @param health  per-version degradation policy.
     * @param gate    PAC promotion gate; off when corpus is null.
     */
    PoolManager(std::shared_ptr<const core::Rhmd> initial,
                const runtime::HealthConfig &health,
                PromotionGate gate = {});

    PoolManager(const PoolManager &) = delete;
    PoolManager &operator=(const PoolManager &) = delete;

    /** The snapshot new work should plan against. Never null. */
    std::shared_ptr<PoolState> current() const;

    /** Version of the currently published snapshot. */
    std::uint64_t version() const;

    /**
     * Gate and publish @p candidate as the next pool version without
     * disturbing in-flight work. On success returns the new version;
     * on rejection (null/invalid candidate, PAC floor regression) the
     * published snapshot is unchanged and keeps serving. Thread-safe;
     * concurrent swaps are applied one at a time.
     */
    support::StatusOr<std::uint64_t>
    swapPool(std::shared_ptr<const core::Rhmd> candidate);

    const PromotionGate &gate() const { return gate_; }

  private:
    runtime::HealthConfig healthConfig_;
    PromotionGate gate_;

    /** Serializes swapPool (gate evaluation happens outside mutex_). */
    std::mutex swapMutex_;

    /** Guards the published pointer only. */
    mutable std::mutex mutex_;
    std::shared_ptr<PoolState> current_;
};

} // namespace rhmd::serve

#endif // RHMD_SERVE_POOL_MANAGER_HH
