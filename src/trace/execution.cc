/**
 * @file
 * CFG interpreter implementation.
 */

#include "trace/execution.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace rhmd::trace
{

Executor::Executor(const Program &program, std::uint64_t seed,
                   bool phase_modulation)
    : program_(program), rng_(seed),
      phaseModulation_(phase_modulation),
      cursors_(program.regions.size(), 0),
      stackPtr_(0)
{
    program_.validate();
    const MemRegion &stack = program_.regions[0];
    stackPtr_ = stack.base + stack.size - 64;
    if (phaseModulation_) {
        phaseLen_ = 6000 + rng_.below(18000);
        phaseCountdown_ = phaseLen_;
    }
}

void
Executor::tickPhase()
{
    if (!phaseModulation_)
        return;
    if (--phaseCountdown_ == 0) {
        phaseCountdown_ = phaseLen_;
        // Lognormal bias exponent around 1: gamma < 1 deepens loops
        // (taken probabilities rise), gamma > 1 flattens them.
        phaseGamma_ = std::exp(rng_.gaussian() * 0.55);
        // A new phase usually means the program moved on to another
        // task: re-dispatch control to a fresh function at the next
        // block boundary.
        phaseJumpPending_ = true;
    }
}

double
Executor::biasedTakenProb(double p) const
{
    if (!phaseModulation_ || phaseGamma_ == 1.0)
        return p;
    if (p <= 0.0 || p >= 1.0)
        return p;
    return std::pow(p, phaseGamma_);
}

std::uint64_t
Executor::effectiveAddr(const MemRef &mem)
{
    std::uint64_t addr = 0;
    switch (mem.pattern) {
      case AddrPattern::Stride: {
        const MemRegion &region = program_.regions[mem.region];
        const std::uint64_t offset = cursors_[mem.region] % region.size;
        cursors_[mem.region] += static_cast<std::uint64_t>(
            static_cast<std::int64_t>(mem.stride));
        addr = region.base + offset;
        break;
      }
      case AddrPattern::RandomInRegion: {
        const MemRegion &region = program_.regions[mem.region];
        const std::uint64_t window =
            std::min<std::uint64_t>(mem.span, region.size);
        addr = region.base + rng_.below(window);
        break;
      }
      case AddrPattern::StackSlot: {
        addr = stackPtr_ + static_cast<std::uint64_t>(
            static_cast<std::int64_t>(mem.stride));
        // Keep frame-local references inside the stack region.
        const MemRegion &stack = program_.regions[0];
        if (addr < stack.base || addr >= stack.base + stack.size - 16) {
            addr = stack.base +
                   (addr - stack.base) % (stack.size - 16);
        }
        break;
      }
    }
    // Align to the access size, then apply the (intentional)
    // misalignment offset, so the unaligned-access rate is a profile
    // property rather than an artefact of stride/size interactions.
    const std::uint64_t align = std::max<std::uint8_t>(mem.accessSize, 1);
    addr &= ~(align - 1);
    return addr + mem.alignOffset;
}

void
Executor::run(std::uint64_t max_insts, TraceSink &sink)
{
    std::uint32_t fn = 0;
    std::uint32_t block = 0;
    std::uint64_t emitted = 0;

    const MemRegion &stack_region = program_.regions[0];
    const std::uint64_t stack_top = stack_region.base +
                                    stack_region.size - 64;
    const std::uint64_t stack_limit = stack_region.base + 4096;

    auto restart = [&] {
        fn = 0;
        block = 0;
        callStack_.clear();
        stackPtr_ = stack_top;
    };

    while (emitted < max_insts) {
        const BasicBlock &bb = program_.functions[fn].blocks[block];
        std::uint64_t pc = bb.address;

        for (const StaticInst &sinst : bb.body) {
            const OpInfo &info = opInfo(sinst.op);
            DynInst dyn;
            dyn.pc = pc;
            dyn.op = sinst.op;
            dyn.size = info.bytes;
            dyn.injected = sinst.injected;
            pc += info.bytes;

            if (info.isLoad || info.isStore) {
                dyn.isLoad = info.isLoad;
                dyn.isStore = info.isStore;
                if (sinst.op == OpClass::Push) {
                    stackPtr_ -= 8;
                    if (stackPtr_ < stack_limit)
                        stackPtr_ = stack_top;
                    dyn.addr = stackPtr_;
                    dyn.accessSize = 8;
                } else if (sinst.op == OpClass::Pop) {
                    dyn.addr = stackPtr_;
                    dyn.accessSize = 8;
                    stackPtr_ += 8;
                    if (stackPtr_ > stack_top)
                        stackPtr_ = stack_top;
                } else {
                    dyn.addr = effectiveAddr(sinst.mem);
                    dyn.accessSize = sinst.mem.accessSize;
                }
            }

            sink.consume(dyn);
            tickPhase();
            if (++emitted >= max_insts)
                return;
        }

        // Terminator.
        const Terminator &term = bb.term;
        const OpClass top = bb.terminatorOp();
        const OpInfo &tinfo = opInfo(top);
        DynInst dyn;
        dyn.pc = pc;
        dyn.op = top;
        dyn.size = tinfo.bytes;

        const Function &cur_fn = program_.functions[fn];
        std::uint32_t next_fn = fn;
        std::uint32_t next_block = block;
        bool do_restart = false;

        switch (term.kind) {
          case TermKind::CondBranch: {
            dyn.isBranch = true;
            dyn.isCondBranch = true;
            dyn.taken = rng_.chance(biasedTakenProb(term.takenProb));
            const std::uint32_t dest =
                dyn.taken ? term.takenTarget : term.fallTarget;
            dyn.target = cur_fn.blocks[dest].address;
            next_block = dest;
            break;
          }
          case TermKind::Jump: {
            dyn.isBranch = true;
            dyn.taken = true;
            dyn.target = cur_fn.blocks[term.takenTarget].address;
            next_block = term.takenTarget;
            break;
          }
          case TermKind::Call: {
            dyn.isBranch = true;
            dyn.taken = true;
            // The call pushes the return address.
            stackPtr_ -= 8;
            if (stackPtr_ < stack_limit)
                stackPtr_ = stack_top;
            dyn.isStore = true;
            dyn.addr = stackPtr_;
            dyn.accessSize = 8;
            if (callStack_.size() < kMaxCallDepth) {
                callStack_.push_back({fn, term.fallTarget});
                next_fn = term.callee;
                next_block = 0;
                dyn.target =
                    program_.functions[next_fn].blocks[0].address;
            } else {
                // Depth cap: treat as an immediately-returning call.
                stackPtr_ += 8;
                next_block = term.fallTarget;
                dyn.target = cur_fn.blocks[next_block].address;
            }
            break;
          }
          case TermKind::Ret: {
            dyn.isBranch = true;
            dyn.taken = true;
            dyn.isLoad = true;
            dyn.addr = stackPtr_;
            dyn.accessSize = 8;
            stackPtr_ += 8;
            if (stackPtr_ > stack_top)
                stackPtr_ = stack_top;
            if (callStack_.empty()) {
                do_restart = true;
                dyn.target = program_.functions[0].blocks[0].address;
            } else {
                const Frame frame = callStack_.back();
                callStack_.pop_back();
                next_fn = frame.function;
                next_block = frame.resumeBlock;
                dyn.target = program_.functions[next_fn]
                                 .blocks[next_block].address;
            }
            break;
          }
          case TermKind::Exit: {
            // Modelled as a syscall; control restarts at the entry.
            do_restart = true;
            dyn.isBranch = true;
            dyn.taken = true;
            dyn.target = program_.functions[0].blocks[0].address;
            break;
          }
        }

        sink.consume(dyn);
        tickPhase();
        ++emitted;

        if (do_restart) {
            restart();
        } else {
            fn = next_fn;
            block = next_block;
        }

        if (phaseJumpPending_) {
            // Task switch: unwind and enter a random function.
            phaseJumpPending_ = false;
            callStack_.clear();
            stackPtr_ = stack_top;
            fn = static_cast<std::uint32_t>(
                rng_.below(program_.functions.size()));
            block = 0;
        }
    }
}

} // namespace rhmd::trace
