/**
 * @file
 * Basic-block helpers.
 */

#include "trace/basic_block.hh"

#include "support/logging.hh"

namespace rhmd::trace
{

OpClass
terminatorOpClass(TermKind kind)
{
    switch (kind) {
      case TermKind::CondBranch:
        return OpClass::BranchCond;
      case TermKind::Jump:
        return OpClass::BranchUncond;
      case TermKind::Call:
        return OpClass::Call;
      case TermKind::Ret:
        return OpClass::Ret;
      case TermKind::Exit:
        return OpClass::SystemOp;
    }
    rhmd_panic("unreachable terminator kind");
}

OpClass
BasicBlock::terminatorOp() const
{
    return terminatorOpClass(term.kind);
}

std::uint64_t
BasicBlock::byteSize() const
{
    std::uint64_t bytes = opInfo(terminatorOp()).bytes;
    for (const StaticInst &inst : body)
        bytes += opInfo(inst.op).bytes;
    return bytes;
}

} // namespace rhmd::trace
