/**
 * @file
 * Opcode class attribute table.
 */

#include "trace/isa.hh"

#include <array>

#include "support/logging.hh"

namespace rhmd::trace
{

namespace
{

//                              name       ld     st     cbr    uctl   bytes lat src dst
constexpr std::array<OpInfo, kNumOpClasses> opTable{{
    /* IntAdd */       {"add",       false, false, false, false, 3, 1,  2, true},
    /* IntSub */       {"sub",       false, false, false, false, 3, 1,  2, true},
    /* IntMul */       {"imul",      false, false, false, false, 4, 3,  2, true},
    /* IntDiv */       {"idiv",      false, false, false, false, 3, 20, 2, true},
    /* IntCmp */       {"cmp",       false, false, false, false, 3, 1,  2, false},
    /* IntTest */      {"test",      false, false, false, false, 3, 1,  2, false},
    /* LogicAnd */     {"and",       false, false, false, false, 3, 1,  2, true},
    /* LogicOr */      {"or",        false, false, false, false, 3, 1,  2, true},
    /* LogicXor */     {"xor",       false, false, false, false, 3, 1,  2, true},
    /* ShiftLeft */    {"shl",       false, false, false, false, 3, 1,  2, true},
    /* ShiftRight */   {"shr",       false, false, false, false, 3, 1,  2, true},
    /* Rotate */       {"rol",       false, false, false, false, 3, 1,  2, true},
    /* MovRegReg */    {"mov_rr",    false, false, false, false, 2, 1,  1, true},
    /* MovImm */       {"mov_imm",   false, false, false, false, 5, 1,  0, true},
    /* Lea */          {"lea",       false, false, false, false, 4, 1,  1, true},
    // Load/Store read their address base through src1; Store's data
    // operand is src2.
    /* Load */         {"load",      true,  false, false, false, 4, 4,  1, true},
    /* Store */        {"store",     false, true,  false, false, 4, 1,  2, false},
    /* Push */         {"push",      false, true,  false, false, 1, 1,  1, false},
    /* Pop */          {"pop",       true,  false, false, false, 1, 1,  0, true},
    /* BranchCond */   {"jcc",       false, false, true,  false, 2, 1,  2, false},
    /* BranchUncond */ {"jmp",       false, false, false, true,  2, 1,  0, false},
    /* Call */         {"call",      false, true,  false, true,  5, 2,  0, false},
    /* Ret */          {"ret",       true,  false, false, true,  1, 2,  1, false},
    /* Nop */          {"nop",       false, false, false, false, 1, 1,  0, false},
    /* FpAdd */        {"fadd",      false, false, false, false, 4, 3,  2, true},
    /* FpMul */        {"fmul",      false, false, false, false, 4, 5,  2, true},
    /* FpDiv */        {"fdiv",      false, false, false, false, 4, 15, 2, true},
    /* SseVec */       {"sse_vec",   false, false, false, false, 5, 2,  2, true},
    /* StringOp */     {"rep_movs",  true,  true,  false, false, 2, 4,  2, true},
    /* AesRound */     {"aesenc",    false, false, false, false, 5, 4,  2, true},
    /* Xchg */         {"xchg",      true,  true,  false, false, 3, 8,  2, true},
    // SystemOp is not control flow for CFG purposes: syscalls resume
    // at the next instruction. The Exit terminator tags its dynamic
    // instance as a branch instead. It reads the syscall number and
    // writes the kernel's return value.
    /* SystemOp */     {"syscall",   false, false, false, false, 2, 30, 1, true},
}};

constexpr std::array<std::string_view, kNumRegs> regTable{
    "r0", "r1", "r2",  "r3",  "r4", "r5", "r6", "r7",
    "r8", "r9", "r10", "r11", "t0", "t1", "sp",
};

} // namespace

std::string_view
regName(RegId reg)
{
    panic_if(reg >= kNumRegs, "bad register id ", unsigned{reg});
    return regTable[reg];
}

bool
isScratchReg(RegId reg)
{
    return reg == kRegScratch0 || reg == kRegScratch1;
}

const OpInfo &
opInfo(OpClass op)
{
    const auto index = static_cast<std::size_t>(op);
    panic_if(index >= kNumOpClasses, "bad OpClass index ", index);
    return opTable[index];
}

std::string_view
opName(OpClass op)
{
    return opInfo(op).name;
}

bool
isControlFlow(OpClass op)
{
    const OpInfo &info = opInfo(op);
    return info.isCondBranch || info.isUncondCtrl;
}

bool
accessesMemory(OpClass op)
{
    const OpInfo &info = opInfo(op);
    return info.isLoad || info.isStore;
}

OpClass
opFromIndex(std::size_t index)
{
    panic_if(index >= kNumOpClasses, "bad OpClass index ", index);
    return static_cast<OpClass>(index);
}

} // namespace rhmd::trace
