/**
 * @file
 * Opcode class attribute table.
 */

#include "trace/isa.hh"

#include <array>

#include "support/logging.hh"

namespace rhmd::trace
{

namespace
{

//                              name       ld     st     cbr    uctl   bytes lat
constexpr std::array<OpInfo, kNumOpClasses> opTable{{
    /* IntAdd */       {"add",       false, false, false, false, 3, 1},
    /* IntSub */       {"sub",       false, false, false, false, 3, 1},
    /* IntMul */       {"imul",      false, false, false, false, 4, 3},
    /* IntDiv */       {"idiv",      false, false, false, false, 3, 20},
    /* IntCmp */       {"cmp",       false, false, false, false, 3, 1},
    /* IntTest */      {"test",      false, false, false, false, 3, 1},
    /* LogicAnd */     {"and",       false, false, false, false, 3, 1},
    /* LogicOr */      {"or",        false, false, false, false, 3, 1},
    /* LogicXor */     {"xor",       false, false, false, false, 3, 1},
    /* ShiftLeft */    {"shl",       false, false, false, false, 3, 1},
    /* ShiftRight */   {"shr",       false, false, false, false, 3, 1},
    /* Rotate */       {"rol",       false, false, false, false, 3, 1},
    /* MovRegReg */    {"mov_rr",    false, false, false, false, 2, 1},
    /* MovImm */       {"mov_imm",   false, false, false, false, 5, 1},
    /* Lea */          {"lea",       false, false, false, false, 4, 1},
    /* Load */         {"load",      true,  false, false, false, 4, 4},
    /* Store */        {"store",     false, true,  false, false, 4, 1},
    /* Push */         {"push",      false, true,  false, false, 1, 1},
    /* Pop */          {"pop",       true,  false, false, false, 1, 1},
    /* BranchCond */   {"jcc",       false, false, true,  false, 2, 1},
    /* BranchUncond */ {"jmp",       false, false, false, true,  2, 1},
    /* Call */         {"call",      false, true,  false, true,  5, 2},
    /* Ret */          {"ret",       true,  false, false, true,  1, 2},
    /* Nop */          {"nop",       false, false, false, false, 1, 1},
    /* FpAdd */        {"fadd",      false, false, false, false, 4, 3},
    /* FpMul */        {"fmul",      false, false, false, false, 4, 5},
    /* FpDiv */        {"fdiv",      false, false, false, false, 4, 15},
    /* SseVec */       {"sse_vec",   false, false, false, false, 5, 2},
    /* StringOp */     {"rep_movs",  true,  true,  false, false, 2, 4},
    /* AesRound */     {"aesenc",    false, false, false, false, 5, 4},
    /* Xchg */         {"xchg",      true,  true,  false, false, 3, 8},
    // SystemOp is not control flow for CFG purposes: syscalls resume
    // at the next instruction. The Exit terminator tags its dynamic
    // instance as a branch instead.
    /* SystemOp */     {"syscall",   false, false, false, false, 2, 30},
}};

} // namespace

const OpInfo &
opInfo(OpClass op)
{
    const auto index = static_cast<std::size_t>(op);
    panic_if(index >= kNumOpClasses, "bad OpClass index ", index);
    return opTable[index];
}

std::string_view
opName(OpClass op)
{
    return opInfo(op).name;
}

bool
isControlFlow(OpClass op)
{
    const OpInfo &info = opInfo(op);
    return info.isCondBranch || info.isUncondCtrl;
}

bool
accessesMemory(OpClass op)
{
    const OpInfo &info = opInfo(op);
    return info.isLoad || info.isStore;
}

OpClass
opFromIndex(std::size_t index)
{
    panic_if(index >= kNumOpClasses, "bad OpClass index ", index);
    return static_cast<OpClass>(index);
}

} // namespace rhmd::trace
