/**
 * @file
 * Synthetic program generator: instantiates Programs from behaviour
 * family profiles.
 */

#ifndef RHMD_TRACE_GENERATOR_HH
#define RHMD_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"
#include "trace/profiles.hh"
#include "trace/program.hh"

namespace rhmd::trace
{

/** Corpus-level generation parameters. */
struct GeneratorConfig
{
    std::uint64_t seed = 1;
    std::size_t benignCount = 60;
    std::size_t malwareCount = 120;

    /**
     * Blend factor pulling a program's opcode mix towards the global
     * mean mix. 0 keeps family mixes pure (easy separation); values
     * near 1 make all programs identical.
     *
     * Hardness is bimodal, as in real corpora: most programs are
     * clearly of their class (commonBlend), while a fraction
     * (hardFrac) mimic the population mean (hardBlend) — evasive-ish
     * packers among malware, busy system-ish apps among benign.
     * The defaults place detector AUC in the paper's 0.85-0.95 band
     * with the bulk of each class far from the decision boundary.
     */
    double commonBlend = 0.05;
    double hardBlend = 0.55;
    double hardFrac = 0.22;

    /** Scale on every profile's per-program mix jitter. */
    double jitterScale = 1.0;

    /**
     * Fraction of each block body filled by quota (deficit-greedy)
     * sampling instead of i.i.d. draws. Quota sampling keeps every
     * block — hot loops included — representative of the program's
     * opcode mix, so a program's *dynamic* instruction mix tracks
     * its family profile the way real applications' hot code
     * reflects their overall character. 0 = pure i.i.d. (noisy),
     * 1 = fully deterministic block composition.
     */
    double quotaFrac = 0.70;
};

/**
 * Assign register operands to every instruction and terminator of a
 * program, honouring the ABI in trace/isa.hh: bodies allocate from
 * r0..r11 (never the injector-reserved scratch registers), sources
 * are biased towards recently defined registers so def-use chains
 * look like compiled code, and compare-and-branch terminators read
 * two allocatable registers.
 *
 * This runs as a post-pass over an already-built CFG — deliberately
 * fed by its own Rng stream — so register allocation perturbs neither
 * program structure nor any dynamic statistic.
 */
void assignRegisters(Program &program, std::uint64_t seed);

/**
 * Generates programs deterministically: program i of a given corpus
 * config always has the same structure.
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(GeneratorConfig config);

    /**
     * Generate one program from an explicit profile. @p family is
     * recorded in the program for bookkeeping; @p seed fully
     * determines the result.
     */
    Program generate(const FamilyProfile &profile, std::uint32_t family,
                     std::uint64_t seed) const;

    /**
     * Generate the full corpus: benignCount benign then malwareCount
     * malware programs, families round-robin so every family is
     * represented proportionally (matching the paper's stratified
     * splits).
     */
    std::vector<Program> generateCorpus() const;

    const GeneratorConfig &config() const { return config_; }

  private:
    /** Build one function's CFG. */
    Function makeFunction(const FamilyProfile &profile, Rng &rng,
                          std::size_t fn_index, std::size_t fn_count,
                          const std::vector<double> &mix,
                          double mean_block_len,
                          std::size_t n_regions) const;

    /** Assign memory behaviour to a freshly chosen opcode. */
    StaticInst makeInst(const FamilyProfile &profile, Rng &rng,
                        OpClass op, std::size_t n_regions) const;

    GeneratorConfig config_;
    std::vector<double> commonMix_;
};

} // namespace rhmd::trace

#endif // RHMD_TRACE_GENERATOR_HH
