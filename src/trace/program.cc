/**
 * @file
 * Program structural helpers and invariant checks.
 */

#include "trace/program.hh"

#include "support/logging.hh"

namespace rhmd::trace
{

std::size_t
Program::staticInstCount() const
{
    std::size_t count = 0;
    for (const Function &fn : functions) {
        for (const BasicBlock &block : fn.blocks)
            count += block.instCount();
    }
    return count;
}

std::uint64_t
Program::textBytes() const
{
    std::uint64_t bytes = 0;
    for (const Function &fn : functions) {
        for (const BasicBlock &block : fn.blocks)
            bytes += block.byteSize();
    }
    return bytes;
}

std::size_t
Program::blockCount() const
{
    std::size_t count = 0;
    for (const Function &fn : functions)
        count += fn.blocks.size();
    return count;
}

std::size_t
Program::retBlockCount() const
{
    std::size_t count = 0;
    for (const Function &fn : functions) {
        for (const BasicBlock &block : fn.blocks) {
            if (block.term.kind == TermKind::Ret)
                ++count;
        }
    }
    return count;
}

void
Program::layoutCode(std::uint64_t text_base)
{
    std::uint64_t pc = text_base;
    for (Function &fn : functions) {
        for (BasicBlock &block : fn.blocks) {
            block.address = pc;
            pc += block.byteSize();
        }
        // Pad between functions so icache behaviour resembles real
        // linkers' function alignment.
        pc = (pc + 15) & ~std::uint64_t{15};
    }
}

void
Program::validate() const
{
    panic_if(functions.empty(), "program '", name, "' has no functions");
    panic_if(regions.empty(), "program '", name, "' has no regions");
    for (const MemRegion &region : regions)
        panic_if(region.size == 0, "program '", name, "' empty region");

    for (std::size_t f = 0; f < functions.size(); ++f) {
        const Function &fn = functions[f];
        panic_if(fn.blocks.empty(),
                 "program '", name, "' function ", f, " has no blocks");
        const auto n_blocks = static_cast<std::uint32_t>(fn.blocks.size());
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const Terminator &term = fn.blocks[b].term;
            switch (term.kind) {
              case TermKind::CondBranch:
                panic_if(term.takenTarget >= n_blocks ||
                         term.fallTarget >= n_blocks,
                         "branch target out of range in '", name, "'");
                panic_if(term.takenProb < 0.0 || term.takenProb > 1.0,
                         "bad taken probability in '", name, "'");
                break;
              case TermKind::Jump:
                panic_if(term.takenTarget >= n_blocks,
                         "jump target out of range in '", name, "'");
                break;
              case TermKind::Call:
                panic_if(term.callee >= functions.size(),
                         "callee out of range in '", name, "'");
                panic_if(term.fallTarget >= n_blocks,
                         "call continuation out of range in '", name, "'");
                break;
              case TermKind::Ret:
              case TermKind::Exit:
                break;
            }
            panic_if(term.condSrc1 >= kNumRegs || term.condSrc2 >= kNumRegs,
                     "terminator register out of range in '", name, "'");
            for (const StaticInst &inst : fn.blocks[b].body) {
                panic_if(isControlFlow(inst.op),
                         "control-flow op in block body of '", name, "'");
                panic_if(inst.dst >= kNumRegs || inst.src1 >= kNumRegs ||
                         inst.src2 >= kNumRegs,
                         "register operand out of range in '", name, "'");
                if (accessesMemory(inst.op) &&
                    inst.mem.pattern != AddrPattern::StackSlot) {
                    panic_if(inst.mem.region >= regions.size(),
                             "mem region out of range in '", name, "'");
                }
            }
        }
    }
}

} // namespace rhmd::trace
