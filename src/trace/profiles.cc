/**
 * @file
 * Built-in behaviour families.
 *
 * Tuning notes: the discriminative weight between families lives in
 * mid-frequency opcodes (several percent of dynamic instructions),
 * because that is where a 10K-instruction collection window has a
 * stable estimate — mirroring real corpora, where behaviour
 * signatures (unpacking loops, string handling, media kernels,
 * polling loops) occupy a substantial fraction of hot code. Several
 * family pairs intentionally overlap (Archiver vs PackedDropper,
 * SpecCompute vs RansomCrypto, Browser vs SpamBot/ClickFraud) so
 * classification lands in the paper's ~0.85-0.95 AUC regime rather
 * than being trivially separable.
 */

#include "trace/profiles.hh"

#include "support/logging.hh"

namespace rhmd::trace
{

std::vector<double>
baselineBodyMix()
{
    std::vector<double> mix(kNumOpClasses, 0.0);
    auto set = [&](OpClass op, double w) {
        mix[static_cast<std::size_t>(op)] = w;
    };
    set(OpClass::IntAdd, 8.0);
    set(OpClass::IntSub, 3.0);
    set(OpClass::IntMul, 0.8);
    set(OpClass::IntDiv, 0.15);
    set(OpClass::IntCmp, 7.0);
    set(OpClass::IntTest, 3.0);
    set(OpClass::LogicAnd, 2.0);
    set(OpClass::LogicOr, 1.5);
    set(OpClass::LogicXor, 2.5);
    set(OpClass::ShiftLeft, 1.5);
    set(OpClass::ShiftRight, 1.5);
    set(OpClass::Rotate, 0.3);
    set(OpClass::MovRegReg, 12.0);
    set(OpClass::MovImm, 5.0);
    set(OpClass::Lea, 4.0);
    set(OpClass::Load, 18.0);
    set(OpClass::Store, 9.0);
    set(OpClass::Push, 3.5);
    set(OpClass::Pop, 3.5);
    set(OpClass::Nop, 1.2);
    set(OpClass::FpAdd, 1.0);
    set(OpClass::FpMul, 0.8);
    set(OpClass::FpDiv, 0.15);
    set(OpClass::SseVec, 1.5);
    set(OpClass::StringOp, 0.8);
    set(OpClass::AesRound, 0.05);
    set(OpClass::Xchg, 0.25);
    set(OpClass::SystemOp, 0.4);
    return mix;
}

namespace
{

std::vector<double>
applyOverrides(const std::vector<MixOverride> &overrides, bool absolute)
{
    std::vector<double> mix = baselineBodyMix();
    for (const MixOverride &entry : overrides) {
        const auto index = static_cast<std::size_t>(entry.op);
        panic_if(index >= kNumOpClasses, "bad override opcode");
        panic_if(isControlFlow(entry.op),
                 "body mix cannot weight control-flow opcodes");
        if (absolute)
            mix[index] = entry.scale;
        else
            mix[index] *= entry.scale;
    }
    return mix;
}

} // namespace

std::vector<double>
mixWith(const std::vector<MixOverride> &overrides)
{
    return applyOverrides(overrides, false);
}

std::vector<double>
mixSet(const std::vector<MixOverride> &overrides)
{
    return applyOverrides(overrides, true);
}

namespace
{

std::vector<FamilyProfile>
makeBenign()
{
    std::vector<FamilyProfile> out;

    {
        FamilyProfile p;
        p.name = "browser";
        // DOM/string handling, JIT-ed mixed code, some media.
        p.bodyMix = mixSet({{OpClass::StringOp, 4.0},
                            {OpClass::SseVec, 4.0},
                            {OpClass::FpAdd, 3.0},
                            {OpClass::Load, 22.0},
                            {OpClass::Store, 11.5},
                            {OpClass::IntCmp, 9.0},
                            {OpClass::SystemOp, 0.8}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 6.5;
        p.condFrac = 0.58;
        p.callFrac = 0.22;
        p.strideFrac = 0.40;
        p.unalignedProb = 0.05;
        p.minFunctions = 10;
        p.maxFunctions = 18;
        p.minRegions = 4;
        p.maxRegions = 7;
        p.minRegionBytes = 1ULL << 16;
        p.maxRegionBytes = 1ULL << 23;
        p.spanLog2Min = 13;
        p.spanLog2Max = 18;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "text_editor";
        // Buffer scans and copies: string ops, compares, short strides.
        p.bodyMix = mixSet({{OpClass::StringOp, 7.0},
                            {OpClass::IntCmp, 11.0},
                            {OpClass::LogicAnd, 4.0},
                            {OpClass::Load, 20.0},
                            {OpClass::MovRegReg, 15.0}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 7.0;
        p.condFrac = 0.60;
        p.strideFrac = 0.70;
        p.strideChoices = {1, 2, 8, 16};
        p.minRegions = 2;
        p.maxRegions = 4;
        p.minRegionBytes = 1ULL << 13;
        p.maxRegionBytes = 1ULL << 19;
        p.spanLog2Min = 11;
        p.spanLog2Max = 15;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "spec_compute";
        // Numeric kernels: fp/vector heavy, long blocks, strided.
        p.bodyMix = mixSet({{OpClass::FpAdd, 9.0},
                            {OpClass::FpMul, 8.0},
                            {OpClass::FpDiv, 1.5},
                            {OpClass::SseVec, 7.0},
                            {OpClass::IntMul, 2.5},
                            {OpClass::Lea, 6.0},
                            {OpClass::Load, 22.0},
                            {OpClass::SystemOp, 0.1},
                            {OpClass::StringOp, 0.25}});
        p.mixSpread = 0.25;
        p.meanBlockLen = 13.0;
        p.condFrac = 0.50;
        p.callFrac = 0.12;
        p.backEdgeFrac = 0.65;
        p.loopTakenProb = 0.80;
        p.strideFrac = 0.85;
        p.strideChoices = {8, 8, 16, 64};
        p.unalignedProb = 0.01;
        p.minFunctions = 4;
        p.maxFunctions = 9;
        p.minRegionBytes = 1ULL << 18;
        p.maxRegionBytes = 1ULL << 24;
        p.spanLog2Min = 14;
        p.spanLog2Max = 18;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "system_tool";
        // API-call heavy utilities: stack traffic, immediates, tests.
        p.bodyMix = mixSet({{OpClass::SystemOp, 2.5},
                            {OpClass::Push, 7.0},
                            {OpClass::Pop, 7.0},
                            {OpClass::MovImm, 8.0},
                            {OpClass::IntTest, 5.5}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 5.5;
        p.condFrac = 0.56;
        p.callFrac = 0.26;
        p.minFunctions = 8;
        p.maxFunctions = 16;
        p.minRegions = 2;
        p.maxRegions = 4;
        p.minRegionBytes = 1ULL << 12;
        p.maxRegionBytes = 1ULL << 17;
        p.spanLog2Min = 11;
        p.spanLog2Max = 14;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "archiver";
        // Compression: bit twiddling over byte streams.
        p.bodyMix = mixSet({{OpClass::LogicXor, 7.0},
                            {OpClass::LogicAnd, 5.0},
                            {OpClass::LogicOr, 3.5},
                            {OpClass::ShiftLeft, 5.0},
                            {OpClass::ShiftRight, 5.0},
                            {OpClass::Rotate, 2.5},
                            {OpClass::Load, 21.0},
                            {OpClass::Store, 12.0},
                            {OpClass::StringOp, 3.0},
                            {OpClass::SystemOp, 0.2}});
        p.mixSpread = 0.25;
        p.meanBlockLen = 10.0;
        p.condFrac = 0.52;
        p.backEdgeFrac = 0.60;
        p.loopTakenProb = 0.80;
        p.strideFrac = 0.80;
        p.strideChoices = {1, 1, 2, 4};
        p.minRegionBytes = 1ULL << 16;
        p.maxRegionBytes = 1ULL << 23;
        p.spanLog2Min = 13;
        p.spanLog2Max = 17;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "media_player";
        // Codec kernels: packed vector math on long strides.
        p.bodyMix = mixSet({{OpClass::SseVec, 14.0},
                            {OpClass::FpAdd, 5.5},
                            {OpClass::FpMul, 5.0},
                            {OpClass::IntAdd, 9.5},
                            {OpClass::Load, 23.0},
                            {OpClass::Store, 11.0},
                            {OpClass::SystemOp, 0.25}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 11.5;
        p.condFrac = 0.48;
        p.backEdgeFrac = 0.62;
        p.loopTakenProb = 0.82;
        p.strideFrac = 0.88;
        p.strideChoices = {16, 16, 64, 256};
        p.unalignedProb = 0.02;
        p.minRegionBytes = 1ULL << 18;
        p.maxRegionBytes = 1ULL << 24;
        p.spanLog2Min = 14;
        p.spanLog2Max = 18;
        out.push_back(std::move(p));
    }

    return out;
}

std::vector<FamilyProfile>
makeMalware()
{
    std::vector<FamilyProfile> out;

    {
        FamilyProfile p;
        p.name = "spam_bot";
        p.malware = true;
        // Template stuffing + network send loops; like a browser's
        // string side without its media/fp side.
        p.bodyMix = mixSet({{OpClass::StringOp, 5.0},
                            {OpClass::MovImm, 11.0},
                            {OpClass::SystemOp, 2.8},
                            {OpClass::IntCmp, 9.5},
                            {OpClass::Store, 11.0},
                            {OpClass::SseVec, 0.3},
                            {OpClass::FpAdd, 0.2},
                            {OpClass::FpMul, 0.15}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 5.5;
        p.condFrac = 0.60;
        p.callFrac = 0.24;
        p.strideFrac = 0.45;
        p.minRegions = 2;
        p.maxRegions = 4;
        p.minRegionBytes = 1ULL << 13;
        p.maxRegionBytes = 1ULL << 18;
        p.spanLog2Min = 10;
        p.spanLog2Max = 13;
        p.minFunctions = 4;
        p.maxFunctions = 9;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "click_fraud_bot";
        p.malware = true;
        // Replay loops: immediates, idle padding, API churn.
        p.bodyMix = mixSet({{OpClass::MovImm, 9.0},
                            {OpClass::Nop, 5.0},
                            {OpClass::SystemOp, 2.2},
                            {OpClass::IntCmp, 9.5},
                            {OpClass::StringOp, 2.0},
                            {OpClass::SseVec, 0.4},
                            {OpClass::FpAdd, 0.3}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 6.0;
        p.condFrac = 0.62;
        p.backEdgeFrac = 0.55;
        p.loopTakenProb = 0.80;
        p.strideFrac = 0.40;
        p.unalignedProb = 0.05;
        p.minRegions = 3;
        p.maxRegions = 5;
        p.minRegionBytes = 1ULL << 14;
        p.maxRegionBytes = 1ULL << 20;
        p.spanLog2Min = 11;
        p.spanLog2Max = 14;
        p.minFunctions = 5;
        p.maxFunctions = 10;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "network_scanner";
        p.malware = true;
        // Probe loops: syscalls, compares, very short blocks.
        p.bodyMix = mixSet({{OpClass::SystemOp, 4.5},
                            {OpClass::MovImm, 10.0},
                            {OpClass::IntCmp, 11.0},
                            {OpClass::IntTest, 6.0},
                            {OpClass::Nop, 3.0},
                            {OpClass::SseVec, 0.2},
                            {OpClass::FpAdd, 0.15},
                            {OpClass::StringOp, 0.5}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 4.5;
        p.condFrac = 0.64;
        p.backEdgeFrac = 0.58;
        p.loopTakenProb = 0.82;
        p.strideFrac = 0.55;
        p.strideChoices = {4, 8};
        p.minRegions = 1;
        p.maxRegions = 3;
        p.minRegionBytes = 1ULL << 12;
        p.maxRegionBytes = 1ULL << 15;
        p.spanLog2Min = 10;
        p.spanLog2Max = 12;
        p.minFunctions = 3;
        p.maxFunctions = 7;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "keylogger";
        p.malware = true;
        // Poll-and-test idle loops with tiny footprint.
        p.bodyMix = mixSet({{OpClass::SystemOp, 3.8},
                            {OpClass::IntTest, 7.0},
                            {OpClass::Nop, 7.0},
                            {OpClass::MovImm, 8.0},
                            {OpClass::Load, 15.0},
                            {OpClass::SseVec, 0.2},
                            {OpClass::FpAdd, 0.15},
                            {OpClass::FpMul, 0.1}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 4.0;
        p.condFrac = 0.66;
        p.backEdgeFrac = 0.62;
        p.loopTakenProb = 0.84;
        p.callFrac = 0.16;
        p.strideFrac = 0.50;
        p.minRegions = 1;
        p.maxRegions = 2;
        p.minRegionBytes = 1ULL << 12;
        p.maxRegionBytes = 1ULL << 14;
        p.spanLog2Min = 10;
        p.spanLog2Max = 12;
        p.minFunctions = 3;
        p.maxFunctions = 6;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "packed_dropper";
        p.malware = true;
        // Unpacking stub: xor/rotate decode loops writing randomly,
        // misaligned accesses; the malicious cousin of the archiver.
        p.bodyMix = mixSet({{OpClass::LogicXor, 9.0},
                            {OpClass::Rotate, 3.5},
                            {OpClass::ShiftLeft, 5.5},
                            {OpClass::ShiftRight, 5.5},
                            {OpClass::Xchg, 1.8},
                            {OpClass::Store, 13.5},
                            {OpClass::MovImm, 7.0},
                            {OpClass::SystemOp, 1.2},
                            {OpClass::StringOp, 0.4}});
        p.mixSpread = 0.25;
        p.meanBlockLen = 8.5;
        p.condFrac = 0.54;
        p.backEdgeFrac = 0.58;
        p.loopTakenProb = 0.80;
        p.strideFrac = 0.55;
        p.strideChoices = {1, 2, 4};
        p.unalignedProb = 0.12;
        p.minRegionBytes = 1ULL << 15;
        p.maxRegionBytes = 1ULL << 21;
        p.spanLog2Min = 11;
        p.spanLog2Max = 15;
        p.minFunctions = 4;
        p.maxFunctions = 9;
        out.push_back(std::move(p));
    }
    {
        FamilyProfile p;
        p.name = "ransom_crypto";
        p.malware = true;
        // Bulk encryption sweeps; the malicious cousin of
        // spec_compute/media with crypto in place of fp.
        p.bodyMix = mixSet({{OpClass::AesRound, 4.5},
                            {OpClass::LogicXor, 7.0},
                            {OpClass::SseVec, 4.0},
                            {OpClass::Load, 23.0},
                            {OpClass::Store, 13.0},
                            {OpClass::SystemOp, 0.8},
                            {OpClass::FpAdd, 0.2},
                            {OpClass::FpMul, 0.15}});
        p.mixSpread = 0.22;
        p.meanBlockLen = 11.0;
        p.condFrac = 0.50;
        p.backEdgeFrac = 0.64;
        p.loopTakenProb = 0.82;
        p.strideFrac = 0.82;
        p.strideChoices = {16, 16, 64};
        p.minRegionBytes = 1ULL << 17;
        p.maxRegionBytes = 1ULL << 23;
        p.spanLog2Min = 13;
        p.spanLog2Max = 16;
        p.minFunctions = 4;
        p.maxFunctions = 8;
        out.push_back(std::move(p));
    }

    return out;
}

} // namespace

const std::vector<FamilyProfile> &
benignProfiles()
{
    static const std::vector<FamilyProfile> profiles = makeBenign();
    return profiles;
}

const std::vector<FamilyProfile> &
malwareProfiles()
{
    static const std::vector<FamilyProfile> profiles = makeMalware();
    return profiles;
}

const std::vector<FamilyProfile> &
allProfiles()
{
    static const std::vector<FamilyProfile> profiles = [] {
        std::vector<FamilyProfile> all = benignProfiles();
        const auto &mal = malwareProfiles();
        all.insert(all.end(), mal.begin(), mal.end());
        return all;
    }();
    return profiles;
}

} // namespace rhmd::trace
