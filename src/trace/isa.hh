/**
 * @file
 * Abstract instruction-set model.
 *
 * The RHMD feature families do not need a real decoder — they need a
 * stable set of opcode *classes* whose per-window frequencies are the
 * Instructions feature, plus enough attributes (memory access,
 * control flow, size, latency) to drive the memory feature, the
 * microarchitectural event counters, and the CPI model. The classes
 * below are modelled on the x86 instruction groups that prior HMD
 * work (Demme et al., Ozsoy et al.) tracked.
 */

#ifndef RHMD_TRACE_ISA_HH
#define RHMD_TRACE_ISA_HH

#include <cstdint>
#include <string_view>

namespace rhmd::trace
{

/**
 * Abstract architectural register identifiers.
 *
 * The register file exists for the static-analysis layer: liveness
 * and the semantic-preservation checker reason about which values an
 * injected instruction could clobber. The dynamic side (executor,
 * feature extraction, uarch models) never reads register operands, so
 * the file is deliberately small and unified (no separate FP bank).
 *
 * Convention (an ABI the generator and the evasion rewriter share):
 *  - r0            return value / exit code
 *  - r1..r3        argument registers (conservatively live at calls)
 *  - r0..r11       allocatable by generated program code
 *  - t0, t1        injector-reserved scratch; generated code never
 *                  names them, so they are dead at every program
 *                  point of an original program
 *  - sp            stack pointer (implicit in push/pop/call/ret and
 *                  stack-slot addressing)
 */
using RegId = std::uint8_t;

constexpr RegId kRegRet = 0;        ///< r0: ABI return value
constexpr RegId kRegArg0 = 1;       ///< r1: first argument register
constexpr RegId kRegArg1 = 2;       ///< r2
constexpr RegId kRegArg2 = 3;       ///< r3
constexpr std::size_t kNumGpRegs = 12;  ///< r0..r11 allocatable
constexpr RegId kRegScratch0 = 12;  ///< t0: injector-reserved
constexpr RegId kRegScratch1 = 13;  ///< t1: injector-reserved
constexpr RegId kRegSp = 14;        ///< sp
constexpr std::size_t kNumRegs = 15;

/** Register name for diagnostics ("r0".."r11", "t0", "t1", "sp"). */
std::string_view regName(RegId reg);

/** True for the injector-reserved scratch registers. */
bool isScratchReg(RegId reg);

/**
 * Opcode classes. Order is part of the library ABI: feature vectors
 * index histograms by the numeric value, and serialized models
 * reference these indices.
 */
enum class OpClass : std::uint8_t
{
    IntAdd,      ///< add/inc/adc
    IntSub,      ///< sub/dec/sbb/neg
    IntMul,      ///< imul/mul
    IntDiv,      ///< idiv/div
    IntCmp,      ///< cmp
    IntTest,     ///< test
    LogicAnd,    ///< and
    LogicOr,     ///< or
    LogicXor,    ///< xor
    ShiftLeft,   ///< shl/sal
    ShiftRight,  ///< shr/sar
    Rotate,      ///< rol/ror
    MovRegReg,   ///< register-to-register mov
    MovImm,      ///< immediate mov
    Lea,         ///< lea
    Load,        ///< memory read (mov r, [m] and friends)
    Store,       ///< memory write (mov [m], r)
    Push,        ///< push (stack store)
    Pop,         ///< pop (stack load)
    BranchCond,  ///< jcc
    BranchUncond,///< jmp
    Call,        ///< call
    Ret,         ///< ret
    Nop,         ///< nop / multi-byte nop
    FpAdd,       ///< x87/scalar SSE fp add/sub
    FpMul,       ///< fp multiply
    FpDiv,       ///< fp divide/sqrt
    SseVec,      ///< packed SSE/AVX integer or fp op
    StringOp,    ///< rep movs/stos/scas
    AesRound,    ///< AES-NI / crypto round primitives
    Xchg,        ///< xchg/lock-prefixed RMW (atomic)
    SystemOp,    ///< int/syscall/cpuid/rdtsc
    NumOpClasses ///< count sentinel, not a real class
};

/** Number of real opcode classes. */
constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/**
 * Static attributes of an opcode class.
 *
 * The operand signature (numSrc/hasDst) drives the dataflow analyses:
 * an instruction reads its first numSrc source registers and, when
 * hasDst, writes its destination register. There is no hidden flags
 * register — conditional branches in this IR are compare-and-branch
 * (RISC-style) and read their two condition registers directly, so
 * straight-line arithmetic never carries an implicit dependence into
 * a terminator.
 */
struct OpInfo
{
    std::string_view name;  ///< mnemonic-like label
    bool isLoad;            ///< reads memory
    bool isStore;           ///< writes memory
    bool isCondBranch;      ///< conditional control flow
    bool isUncondCtrl;      ///< jmp/call/ret
    std::uint8_t bytes;     ///< typical encoded size in bytes
    std::uint8_t latency;   ///< typical execute latency in cycles
    std::uint8_t numSrc;    ///< register sources read (0-2)
    bool hasDst;            ///< writes a destination register
};

/** Attribute lookup for an opcode class. */
const OpInfo &opInfo(OpClass op);

/** Mnemonic-like name of an opcode class. */
std::string_view opName(OpClass op);

/** True for any instruction that may redirect control flow. */
bool isControlFlow(OpClass op);

/** True for any instruction that touches memory. */
bool accessesMemory(OpClass op);

/** OpClass from its numeric histogram index (panics if out of range). */
OpClass opFromIndex(std::size_t index);

} // namespace rhmd::trace

#endif // RHMD_TRACE_ISA_HH
