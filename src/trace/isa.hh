/**
 * @file
 * Abstract instruction-set model.
 *
 * The RHMD feature families do not need a real decoder — they need a
 * stable set of opcode *classes* whose per-window frequencies are the
 * Instructions feature, plus enough attributes (memory access,
 * control flow, size, latency) to drive the memory feature, the
 * microarchitectural event counters, and the CPI model. The classes
 * below are modelled on the x86 instruction groups that prior HMD
 * work (Demme et al., Ozsoy et al.) tracked.
 */

#ifndef RHMD_TRACE_ISA_HH
#define RHMD_TRACE_ISA_HH

#include <cstdint>
#include <string_view>

namespace rhmd::trace
{

/**
 * Opcode classes. Order is part of the library ABI: feature vectors
 * index histograms by the numeric value, and serialized models
 * reference these indices.
 */
enum class OpClass : std::uint8_t
{
    IntAdd,      ///< add/inc/adc
    IntSub,      ///< sub/dec/sbb/neg
    IntMul,      ///< imul/mul
    IntDiv,      ///< idiv/div
    IntCmp,      ///< cmp
    IntTest,     ///< test
    LogicAnd,    ///< and
    LogicOr,     ///< or
    LogicXor,    ///< xor
    ShiftLeft,   ///< shl/sal
    ShiftRight,  ///< shr/sar
    Rotate,      ///< rol/ror
    MovRegReg,   ///< register-to-register mov
    MovImm,      ///< immediate mov
    Lea,         ///< lea
    Load,        ///< memory read (mov r, [m] and friends)
    Store,       ///< memory write (mov [m], r)
    Push,        ///< push (stack store)
    Pop,         ///< pop (stack load)
    BranchCond,  ///< jcc
    BranchUncond,///< jmp
    Call,        ///< call
    Ret,         ///< ret
    Nop,         ///< nop / multi-byte nop
    FpAdd,       ///< x87/scalar SSE fp add/sub
    FpMul,       ///< fp multiply
    FpDiv,       ///< fp divide/sqrt
    SseVec,      ///< packed SSE/AVX integer or fp op
    StringOp,    ///< rep movs/stos/scas
    AesRound,    ///< AES-NI / crypto round primitives
    Xchg,        ///< xchg/lock-prefixed RMW (atomic)
    SystemOp,    ///< int/syscall/cpuid/rdtsc
    NumOpClasses ///< count sentinel, not a real class
};

/** Number of real opcode classes. */
constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** Static attributes of an opcode class. */
struct OpInfo
{
    std::string_view name;  ///< mnemonic-like label
    bool isLoad;            ///< reads memory
    bool isStore;           ///< writes memory
    bool isCondBranch;      ///< conditional control flow
    bool isUncondCtrl;      ///< jmp/call/ret
    std::uint8_t bytes;     ///< typical encoded size in bytes
    std::uint8_t latency;   ///< typical execute latency in cycles
};

/** Attribute lookup for an opcode class. */
const OpInfo &opInfo(OpClass op);

/** Mnemonic-like name of an opcode class. */
std::string_view opName(OpClass op);

/** True for any instruction that may redirect control flow. */
bool isControlFlow(OpClass op);

/** True for any instruction that touches memory. */
bool accessesMemory(OpClass op);

/** OpClass from its numeric histogram index (panics if out of range). */
OpClass opFromIndex(std::size_t index);

} // namespace rhmd::trace

#endif // RHMD_TRACE_ISA_HH
