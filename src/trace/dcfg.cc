/**
 * @file
 * DCFG recovery implementation.
 */

#include "trace/dcfg.hh"

namespace rhmd::trace
{

void
DcfgBuilder::consume(const DynInst &inst)
{
    ++instCount_;
    if (!inBlock_) {
        pendingStart_ = inst.pc;
        pendingOps_.clear();
        inBlock_ = true;
    }
    pendingOps_.push_back(inst.op);

    if (!inst.isBranch)
        return;

    // Block complete: merge into (or create) its node.
    Node &node = nodes_[pendingStart_];
    if (node.execCount == 0) {
        node.startPc = pendingStart_;
        node.ops = pendingOps_;
        node.endsInRet = inst.op == OpClass::Ret;
    }
    ++node.execCount;

    // Successor: where control actually went. For a not-taken
    // conditional branch that is the fall-through pc.
    const std::uint64_t next_pc =
        (inst.isBranch && inst.taken) || !inst.isCondBranch
            ? inst.target
            : inst.pc + inst.size;
    if (next_pc != 0)
        ++node.successors[next_pc];
    inBlock_ = false;
}

std::size_t
DcfgBuilder::edgeCount() const
{
    std::size_t edges = 0;
    for (const auto &[pc, node] : nodes_)
        edges += node.successors.size();
    return edges;
}

std::size_t
DcfgBuilder::retBlockCount() const
{
    std::size_t count = 0;
    for (const auto &[pc, node] : nodes_) {
        if (node.endsInRet)
            ++count;
    }
    return count;
}

} // namespace rhmd::trace
