/**
 * @file
 * Behaviour-family profiles for the synthetic program generator.
 *
 * The paper's corpus is 554 benign Windows programs (browsers,
 * editors, SPEC 2006, system tools, ...) and 3000 MalwareDB samples.
 * We substitute parameterized behaviour families whose dynamic
 * feature distributions overlap the way real corpora do: clear
 * aggregate differences (so detectors reach the paper's ~0.85-0.95
 * AUC) but no trivially separating dimension. Each generated program
 * individually perturbs its family profile, so programs within a
 * family differ as real applications do.
 */

#ifndef RHMD_TRACE_PROFILES_HH
#define RHMD_TRACE_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/isa.hh"

namespace rhmd::trace
{

/** Parameter set describing one behaviour family. */
struct FamilyProfile
{
    std::string name;
    bool malware = false;

    /**
     * Unnormalized opcode weights for block bodies (size
     * kNumOpClasses; control-flow entries must be zero — those
     * frequencies emerge from CFG shape).
     */
    std::vector<double> bodyMix;
    /** Per-program log-normal jitter applied to bodyMix. */
    double mixSpread = 0.35;

    /**
     * Per-function jitter applied on top of the program mix. Real
     * programs are mixtures of tasks (parsing, rendering, I/O, ...)
     * whose hot code differs; this is what makes collection windows
     * of one program vary over time as execution moves between
     * functions.
     */
    double functionMixSpread = 0.35;

    /** Mean body instructions per block, and per-program jitter. */
    double meanBlockLen = 8.0;
    double blockLenSpread = 0.25;

    /// @name CFG shape
    /// @{
    double condFrac = 0.55;    ///< blocks ending in a cond branch
    double jumpFrac = 0.15;    ///< blocks ending in a jump
    double callFrac = 0.20;    ///< blocks ending in a call
    double backEdgeFrac = 0.45;///< cond branches that loop backwards
    double loopTakenProb = 0.80; ///< P(taken) on back edges
    double fwdTakenProb = 0.40;  ///< P(taken) on forward branches
    std::uint32_t minFunctions = 6;
    std::uint32_t maxFunctions = 14;
    std::uint32_t minBlocks = 6;   ///< per function
    std::uint32_t maxBlocks = 20;  ///< per function
    double recursionProb = 0.02;   ///< calls allowed to go backwards
    /// @}

    /// @name Data-memory behaviour
    /// @{
    double strideFrac = 0.6;       ///< strided (vs random) references
    std::vector<std::int32_t> strideChoices{8, 16, 64};
    /** Random-access window size: 2^[min,max] bytes. */
    std::uint32_t spanLog2Min = 11;
    std::uint32_t spanLog2Max = 17;
    double unalignedProb = 0.04;
    std::uint32_t minRegions = 2;
    std::uint32_t maxRegions = 5;
    std::uint64_t minRegionBytes = 1ULL << 14;
    std::uint64_t maxRegionBytes = 1ULL << 22;
    double hotRegionBias = 1.6;    ///< geometric skew of region choice
    /// @}
};

/**
 * A weight override applied on top of the common baseline mix:
 * multiplies the baseline weight of @p op by @p scale.
 */
struct MixOverride
{
    OpClass op;
    double scale;
};

/** The shared baseline opcode mix typical integer code exhibits. */
std::vector<double> baselineBodyMix();

/** Baseline scaled by the given per-opcode overrides. */
std::vector<double> mixWith(const std::vector<MixOverride> &overrides);

/**
 * Baseline with the given opcodes' weights *replaced* by absolute
 * values (same unit as baselineBodyMix weights, which sum to ~96).
 */
std::vector<double> mixSet(const std::vector<MixOverride> &overrides);

/** The six built-in benign behaviour families. */
const std::vector<FamilyProfile> &benignProfiles();

/** The six built-in malware behaviour families. */
const std::vector<FamilyProfile> &malwareProfiles();

/** Benign followed by malware profiles (family index space). */
const std::vector<FamilyProfile> &allProfiles();

} // namespace rhmd::trace

#endif // RHMD_TRACE_PROFILES_HH
