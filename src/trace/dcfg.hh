/**
 * @file
 * Dynamic control-flow-graph recovery.
 *
 * The paper's evasion methodology (Sec. 5, Fig. 5) builds the DCFG of
 * a malware binary through Pin, because malware sources are not
 * available. This module plays the same role on the attacker's side
 * of our substrate: it watches a committed instruction stream and
 * reconstructs the executed basic blocks and their edges, which is
 * where the rewriter's injection sites come from.
 */

#ifndef RHMD_TRACE_DCFG_HH
#define RHMD_TRACE_DCFG_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "trace/execution.hh"

namespace rhmd::trace
{

/**
 * Observes a trace and recovers the dynamic CFG. Blocks end at
 * control-flow instructions; the recovered nodes correspond to the
 * executed static basic blocks of the traced program.
 */
class DcfgBuilder : public TraceSink
{
  public:
    /** A recovered basic block. */
    struct Node
    {
        std::uint64_t startPc = 0;
        std::vector<OpClass> ops;       ///< body + terminator
        std::uint64_t execCount = 0;
        /** successor start pc -> traversal count */
        std::map<std::uint64_t, std::uint64_t> successors;
        bool endsInRet = false;
    };

    void consume(const DynInst &inst) override;

    /** Recovered nodes keyed by block start pc. */
    const std::unordered_map<std::uint64_t, Node> &nodes() const
    {
        return nodes_;
    }

    /** Total number of distinct recovered edges. */
    std::size_t edgeCount() const;

    /** Total dynamic instructions observed. */
    std::uint64_t instCount() const { return instCount_; }

    /** Number of recovered blocks ending in a return. */
    std::size_t retBlockCount() const;

  private:
    std::unordered_map<std::uint64_t, Node> nodes_;
    std::vector<OpClass> pendingOps_;
    std::uint64_t pendingStart_ = 0;
    bool inBlock_ = false;
    std::uint64_t instCount_ = 0;
};

} // namespace rhmd::trace

#endif // RHMD_TRACE_DCFG_HH
