/**
 * @file
 * Program generator implementation.
 */

#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/stats.hh"

namespace rhmd::trace
{

ProgramGenerator::ProgramGenerator(GeneratorConfig config)
    : config_(config)
{
    fatal_if(config_.commonBlend < 0.0 || config_.commonBlend > 1.0,
             "commonBlend must be in [0, 1]");
    // Global mean mix over all families, used for the overlap blend.
    commonMix_.assign(kNumOpClasses, 0.0);
    const auto &profiles = allProfiles();
    for (const FamilyProfile &profile : profiles) {
        panic_if(profile.bodyMix.size() != kNumOpClasses,
                 "profile '", profile.name, "' has a bad mix size");
        std::vector<double> normalized = profile.bodyMix;
        normalizeInPlace(normalized);
        axpy(commonMix_, 1.0 / static_cast<double>(profiles.size()),
             normalized);
    }
}

StaticInst
ProgramGenerator::makeInst(const FamilyProfile &profile, Rng &rng,
                           OpClass op, std::size_t n_regions) const
{
    StaticInst inst;
    inst.op = op;

    if (accessesMemory(inst.op)) {
        MemRef &mem = inst.mem;
        if (inst.op == OpClass::Push || inst.op == OpClass::Pop ||
            rng.chance(0.15)) {
            // Stack traffic: spills, locals, push/pop.
            mem.pattern = AddrPattern::StackSlot;
            mem.stride = static_cast<std::int32_t>(rng.below(32)) * 8;
            mem.accessSize = 8;
        } else {
            // Heap/data traffic. Hot-region bias: lower-index
            // regions are geometrically more likely.
            std::vector<double> weights(n_regions > 1 ? n_regions - 1
                                                      : 1);
            double w = 1.0;
            for (double &entry : weights) {
                entry = w;
                w /= profile.hotRegionBias;
            }
            // Region 0 is the stack; data regions start at 1.
            mem.region = static_cast<std::uint8_t>(
                n_regions > 1 ? 1 + rng.weightedIndex(weights) : 0);
            if (rng.chance(profile.strideFrac)) {
                mem.pattern = AddrPattern::Stride;
                const auto &choices = profile.strideChoices;
                mem.stride = choices[rng.below(choices.size())];
            } else {
                mem.pattern = AddrPattern::RandomInRegion;
                mem.span = static_cast<std::uint32_t>(
                    1ULL << rng.range(profile.spanLog2Min,
                                      profile.spanLog2Max));
            }
            const std::uint32_t sizes[] = {1, 2, 4, 8, 8, 8, 16};
            mem.accessSize = static_cast<std::uint8_t>(
                sizes[rng.below(std::size(sizes))]);
            mem.alignOffset = rng.chance(profile.unalignedProb)
                ? static_cast<std::uint8_t>(1 + rng.below(3)) : 0;
        }
    }
    return inst;
}

void
assignRegisters(Program &program, std::uint64_t seed)
{
    Rng rng(seed);
    const auto gp = [&rng] {
        return static_cast<RegId>(rng.below(kNumGpRegs));
    };
    for (Function &fn : program.functions) {
        for (BasicBlock &block : fn.blocks) {
            // Rolling window of recent definitions: sources prefer
            // them, so liveness and def-use chains resemble the
            // short-range dependences of compiled straight-line code.
            std::vector<RegId> recent;
            const auto src = [&] {
                if (!recent.empty() && rng.chance(0.6))
                    return recent[recent.size() - 1 -
                                  rng.below(recent.size())];
                return gp();
            };
            for (StaticInst &inst : block.body) {
                const OpInfo &info = opInfo(inst.op);
                if (info.numSrc >= 1)
                    inst.src1 = src();
                if (info.numSrc >= 2)
                    inst.src2 = src();
                if (info.hasDst) {
                    inst.dst = gp();
                    recent.push_back(inst.dst);
                    if (recent.size() > 4)
                        recent.erase(recent.begin());
                }
            }
            if (block.term.kind == TermKind::CondBranch) {
                block.term.condSrc1 =
                    !recent.empty() && rng.chance(0.75) ? recent.back()
                                                        : gp();
                block.term.condSrc2 = gp();
            }
        }
    }
}

Function
ProgramGenerator::makeFunction(const FamilyProfile &profile, Rng &rng,
                               std::size_t fn_index, std::size_t fn_count,
                               const std::vector<double> &mix,
                               double mean_block_len,
                               std::size_t n_regions) const
{
    Function fn;
    const std::uint32_t n_blocks = static_cast<std::uint32_t>(
        rng.range(profile.minBlocks, profile.maxBlocks));
    fn.blocks.resize(n_blocks);

    for (std::uint32_t b = 0; b < n_blocks; ++b) {
        BasicBlock &block = fn.blocks[b];

        // Body length: moderate spread around the profile mean.
        const double target = std::max(
            1.0, rng.gaussian(mean_block_len, mean_block_len * 0.30));
        const auto body_len = static_cast<std::size_t>(target);
        block.body.reserve(body_len);

        // Quota (deficit-greedy) + i.i.d. mixture sampling of the
        // body opcodes; see GeneratorConfig::quotaFrac.
        std::vector<double> deficit(mix.size());
        for (std::size_t i = 0; i < mix.size(); ++i)
            deficit[i] = mix[i] * static_cast<double>(body_len);
        for (std::size_t i = 0; i < body_len; ++i) {
            std::size_t pick;
            if (rng.chance(config_.quotaFrac)) {
                pick = 0;
                for (std::size_t j = 1; j < deficit.size(); ++j) {
                    if (deficit[j] > deficit[pick])
                        pick = j;
                }
            } else {
                pick = rng.weightedIndex(mix);
            }
            deficit[pick] -= 1.0;
            block.body.push_back(
                makeInst(profile, rng, opFromIndex(pick), n_regions));
        }

        // Terminator. The last block returns (or exits in main).
        Terminator &term = block.term;
        if (b + 1 == n_blocks) {
            term.kind = fn_index == 0 ? TermKind::Exit : TermKind::Ret;
            continue;
        }
        const double roll = rng.uniform();
        if (roll < profile.condFrac) {
            term.kind = TermKind::CondBranch;
            term.fallTarget = b + 1;
            const bool backward =
                b > 0 && rng.chance(profile.backEdgeFrac);
            if (backward) {
                term.takenTarget =
                    static_cast<std::uint32_t>(rng.below(b));
                term.takenProb = std::clamp(
                    rng.gaussian(profile.loopTakenProb, 0.04), 0.5, 0.80);
            } else {
                term.takenTarget = static_cast<std::uint32_t>(
                    rng.range(b + 1, n_blocks - 1));
                term.takenProb = std::clamp(
                    rng.gaussian(profile.fwdTakenProb, 0.15), 0.02, 0.95);
            }
        } else if (roll < profile.condFrac + profile.jumpFrac) {
            term.kind = TermKind::Jump;
            term.takenTarget = static_cast<std::uint32_t>(
                rng.range(b + 1, n_blocks - 1));
        } else if (roll <
                   profile.condFrac + profile.jumpFrac + profile.callFrac &&
                   fn_count > 1) {
            term.kind = TermKind::Call;
            term.fallTarget = b + 1;
            // Mostly call "later" functions; occasional recursion-ish
            // backward call (bounded by the interpreter's depth cap).
            if (fn_index + 1 < fn_count &&
                !rng.chance(profile.recursionProb)) {
                term.callee = static_cast<std::uint32_t>(
                    rng.range(static_cast<std::int64_t>(fn_index) + 1,
                              static_cast<std::int64_t>(fn_count) - 1));
            } else {
                term.callee = static_cast<std::uint32_t>(
                    rng.below(fn_count));
            }
        } else {
            // Plain fall-through, modelled as an always-not-taken
            // conditional branch (real compilers emit these too).
            term.kind = TermKind::CondBranch;
            term.takenTarget = b;
            term.fallTarget = b + 1;
            term.takenProb = 0.0;
        }
    }
    return fn;
}

Program
ProgramGenerator::generate(const FamilyProfile &profile,
                           std::uint32_t family, std::uint64_t seed) const
{
    Rng rng(seed);
    Program prog;
    prog.name = profile.name + "_" + std::to_string(seed & 0xffff);
    prog.malware = profile.malware;
    prog.family = family;
    prog.seed = seed;

    // Individualize the opcode mix: normalize, jitter, blend toward
    // the global mean to create cross-family overlap. A fraction of
    // programs are "hard" (heavily blended), the rest clearly typed.
    std::vector<double> mix = profile.bodyMix;
    normalizeInPlace(mix);
    mix = rng.perturbedSimplex(
        mix, profile.mixSpread * config_.jitterScale);
    const double blend = rng.chance(config_.hardFrac)
        ? config_.hardBlend
        : config_.commonBlend;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        mix[i] = (1.0 - blend) * mix[i] + blend * commonMix_[i];
    }

    const double mean_block_len = std::max(
        2.0, profile.meanBlockLen *
                 std::exp(rng.gaussian() * profile.blockLenSpread));

    // Memory regions: region 0 is the stack.
    const std::uint32_t n_data_regions = static_cast<std::uint32_t>(
        rng.range(profile.minRegions, profile.maxRegions));
    prog.regions.push_back({0x7fff00000000ULL, 1ULL << 20});
    std::uint64_t base = 0x10000000ULL;
    for (std::uint32_t r = 0; r < n_data_regions; ++r) {
        const double log_lo =
            std::log2(static_cast<double>(profile.minRegionBytes));
        const double log_hi =
            std::log2(static_cast<double>(profile.maxRegionBytes));
        const auto size = static_cast<std::uint64_t>(
            std::exp2(rng.uniform(log_lo, log_hi)));
        prog.regions.push_back({base, size});
        base += (size + 0xffffULL) & ~0xffffULL;
    }

    const std::size_t fn_count = static_cast<std::size_t>(
        rng.range(profile.minFunctions, profile.maxFunctions));
    prog.functions.reserve(fn_count);
    for (std::size_t f = 0; f < fn_count; ++f) {
        // Each function is its own "task": jitter the program mix so
        // execution phases that favour different functions produce
        // visibly different collection windows.
        const std::vector<double> fn_mix =
            rng.perturbedSimplex(mix, profile.functionMixSpread);
        prog.functions.push_back(
            makeFunction(profile, rng, f, fn_count, fn_mix,
                         mean_block_len, prog.regions.size()));
    }

    // Registers come from a forked stream so the allocation pass can
    // evolve without disturbing the structural draws above (corpus
    // shapes — and every figure derived from them — stay identical).
    assignRegisters(prog, seed ^ 0x5ee0c0de5eedULL);

    prog.layoutCode();
    prog.validate();
    return prog;
}

std::vector<Program>
ProgramGenerator::generateCorpus() const
{
    Rng seeder(config_.seed);
    std::vector<Program> corpus;
    corpus.reserve(config_.benignCount + config_.malwareCount);

    const auto &benign = benignProfiles();
    for (std::size_t i = 0; i < config_.benignCount; ++i) {
        const std::size_t family = i % benign.size();
        corpus.push_back(generate(benign[family],
                                  static_cast<std::uint32_t>(family),
                                  seeder.next()));
    }
    const auto &malware = malwareProfiles();
    for (std::size_t i = 0; i < config_.malwareCount; ++i) {
        const std::size_t family = i % malware.size();
        corpus.push_back(generate(
            malware[family],
            static_cast<std::uint32_t>(benign.size() + family),
            seeder.next()));
    }
    return corpus;
}

} // namespace rhmd::trace
