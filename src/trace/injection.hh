/**
 * @file
 * The evasion rewriter: controlled instruction insertion into a
 * program, mirroring the paper's Pin-based dynamic injection
 * framework (Sec. 5, Fig. 5).
 *
 * Two insertion disciplines are supported, exactly as in the paper:
 *  - Block level: the payload is inserted before every control-flow
 *    altering instruction, i.e. at the end of every basic block body.
 *  - Function level: the payload is inserted before every return
 *    instruction.
 *
 * Insertion never alters program semantics in our model: injected
 * instructions are appended to block bodies and never change control
 * flow or the address streams of original instructions.
 */

#ifndef RHMD_TRACE_INJECTION_HH
#define RHMD_TRACE_INJECTION_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "trace/program.hh"

namespace rhmd::trace
{

/** Where the payload is inserted. */
enum class InjectLevel : std::uint8_t
{
    Block,     ///< before every control-flow instruction
    Function,  ///< before every return instruction
};

/** Human-readable name of an injection level. */
const char *injectLevelName(InjectLevel level);

/**
 * True when an opcode can be injected without altering program
 * semantics: control-flow opcodes would redirect execution, and
 * unbalanced stack operations (push/pop) would corrupt the stack.
 */
bool isInjectable(OpClass op);

/**
 * Build a payload instruction for an opcode class. Memory-accessing
 * opcodes get a cache-friendly stack-region reference (the cheapest
 * semantics-free choice an attacker would make); @p stride lets
 * memory-feature attacks control the reference distance instead.
 * Fatal for non-injectable opcodes.
 */
StaticInst makePayloadInst(OpClass op, std::int32_t stride = 0);

/**
 * Per-site admission predicate for the rewriter: called with the
 * function index, block index, and the payload about to be appended
 * to that block. Returning false skips the site (the program keeps
 * its original body there). The static-analysis layer supplies
 * liveness-based filters (analysis::InjectionGate); the rewriter
 * itself stays analysis-agnostic.
 */
using SiteFilter = std::function<bool(
    std::size_t fn, std::size_t block,
    const std::vector<StaticInst> &payload)>;

/**
 * Instruction-injection rewriter. All methods return a modified
 * *copy* of the program with code addresses re-laid-out, leaving the
 * original untouched. An empty @p filter admits every site.
 */
class Injector
{
  public:
    /**
     * Insert the same payload at every site of the given level.
     * This is the paper's deterministic strategy (least-weight
     * injection uses a payload of N copies of one opcode).
     */
    static Program apply(const Program &original, InjectLevel level,
                         const std::vector<StaticInst> &payload,
                         const SiteFilter &filter = {});

    /**
     * Weighted strategy: at each site, each of the @p count payload
     * slots is an opcode drawn with probability proportional to its
     * weight. The draw happens once per site (static rewriting), so
     * repeated executions of a site execute identical code, matching
     * the paper's framework.
     */
    static Program applyWeighted(
        const Program &original, InjectLevel level, std::size_t count,
        const std::vector<std::pair<OpClass, double>> &weighted_ops,
        std::uint64_t seed, const SiteFilter &filter = {});

    /**
     * Random strategy (the paper's control experiment): each site
     * receives @p count opcodes sampled uniformly from the
     * non-control-flow classes.
     */
    static Program applyRandom(const Program &original, InjectLevel level,
                               std::size_t count, std::uint64_t seed,
                               const SiteFilter &filter = {});

    /** Number of injection sites the level has in the program. */
    static std::size_t siteCount(const Program &program,
                                 InjectLevel level);
};

/** Static (text-size) overhead of a rewritten program vs original. */
double staticOverhead(const Program &original, const Program &modified);

/**
 * Dynamic overhead in *executed instructions*: run the modified
 * program until @p original_insts non-injected instructions commit
 * and report extra executed instructions as a fraction. This is the
 * execution-time proxy the paper's Fig. 9 'dynamic overhead' tracks
 * (the attacker cares that the malware still makes progress).
 */
double dynamicOverhead(const Program &modified,
                       std::uint64_t original_insts,
                       std::uint64_t exec_seed);

} // namespace rhmd::trace

#endif // RHMD_TRACE_INJECTION_HH
