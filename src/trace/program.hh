/**
 * @file
 * Whole-program representation: functions of basic blocks plus the
 * memory regions the program's data accesses fall into.
 */

#ifndef RHMD_TRACE_PROGRAM_HH
#define RHMD_TRACE_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/basic_block.hh"

namespace rhmd::trace
{

/** A contiguous data region (heap arena, mapped file, etc.). */
struct MemRegion
{
    std::uint64_t base = 0;
    std::uint64_t size = 0;
};

/** A function: an entry block (index 0) plus its block list. */
struct Function
{
    std::vector<BasicBlock> blocks;
};

/**
 * A complete synthetic program.
 *
 * The ground-truth label (malware or benign) lives here; detectors
 * never read it, only the evaluation harness does.
 */
struct Program
{
    std::string name;
    bool malware = false;
    std::uint32_t family = 0;  ///< index into the profile list
    std::uint64_t seed = 0;    ///< per-program generation seed

    std::vector<Function> functions;  ///< entry is functions[0]
    std::vector<MemRegion> regions;   ///< data regions; [0] is stack

    /** Total static instruction count over all blocks. */
    std::size_t staticInstCount() const;

    /** Total code bytes ("text segment" size). */
    std::uint64_t textBytes() const;

    /** Total number of basic blocks. */
    std::size_t blockCount() const;

    /** Number of blocks whose terminator is a return. */
    std::size_t retBlockCount() const;

    /**
     * Assign code addresses to every block: functions are laid out
     * sequentially from @p text_base, blocks within a function
     * back-to-back. Must be called after any structural change
     * (e.g. instruction injection) so PCs stay consistent.
     */
    void layoutCode(std::uint64_t text_base = 0x400000);

    /**
     * Validate structural invariants (branch targets in range,
     * callees in range, entry function exists, regions non-empty).
     * Panics on violation; used by tests and the generator.
     */
    void validate() const;
};

} // namespace rhmd::trace

#endif // RHMD_TRACE_PROGRAM_HH
