/**
 * @file
 * Evasion rewriter implementation.
 */

#include "trace/injection.hh"

#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/execution.hh"

namespace rhmd::trace
{

const char *
injectLevelName(InjectLevel level)
{
    return level == InjectLevel::Block ? "basic_block" : "function";
}

bool
isInjectable(OpClass op)
{
    return !isControlFlow(op) && op != OpClass::Push &&
           op != OpClass::Pop;
}

StaticInst
makePayloadInst(OpClass op, std::int32_t stride)
{
    fatal_if(!isInjectable(op),
             "cannot inject opcode '", opName(op),
             "' without changing program semantics");
    StaticInst inst;
    inst.op = op;
    inst.injected = true;
    // Operands stay on the injector-reserved scratch registers (the
    // StaticInst defaults): the payload may only read and write t0/t1,
    // which generated program code never names, so the liveness-based
    // preservation checker can prove the payload observationally dead.
    inst.dst = kRegScratch1;
    inst.src1 = kRegScratch0;
    inst.src2 = kRegScratch1;
    if (accessesMemory(inst.op)) {
        if (stride == 0) {
            // Default: walk the stack region with an ordinary local-
            // variable stride. A constant-address payload would
            // flood the delta histogram's zero bin — a degenerate
            // signature no real program produces — so injected
            // memory traffic mimics plain frame accesses instead.
            inst.mem.pattern = AddrPattern::Stride;
            inst.mem.region = 0;
            inst.mem.stride = 64;
            inst.mem.accessSize = 8;
        } else {
            // Memory-feature attacks: controlled reference distance
            // walking the stack-adjacent region.
            inst.mem.pattern = AddrPattern::Stride;
            inst.mem.region = 0;
            inst.mem.stride = stride;
            inst.mem.accessSize = 8;
        }
    }
    return inst;
}

namespace
{

/** True when the level injects at this block. */
bool
isSite(const BasicBlock &block, InjectLevel level)
{
    if (level == InjectLevel::Block)
        return true;
    return block.term.kind == TermKind::Ret;
}

/** Core rewriting loop: payload chosen per site by a callback. */
template <typename PayloadFn>
Program
rewrite(const Program &original, InjectLevel level, PayloadFn &&payload_fn,
        const SiteFilter &filter)
{
    Program modified = original;
    for (std::size_t f = 0; f < modified.functions.size(); ++f) {
        Function &fn = modified.functions[f];
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            BasicBlock &block = fn.blocks[b];
            if (!isSite(block, level))
                continue;
            const std::vector<StaticInst> payload = payload_fn();
            if (filter && !filter(f, b, payload))
                continue;
            block.body.insert(block.body.end(), payload.begin(),
                              payload.end());
        }
    }
    modified.layoutCode();
    modified.validate();
    return modified;
}

} // namespace

Program
Injector::apply(const Program &original, InjectLevel level,
                const std::vector<StaticInst> &payload,
                const SiteFilter &filter)
{
    return rewrite(original, level, [&] { return payload; }, filter);
}

Program
Injector::applyWeighted(
    const Program &original, InjectLevel level, std::size_t count,
    const std::vector<std::pair<OpClass, double>> &weighted_ops,
    std::uint64_t seed, const SiteFilter &filter)
{
    fatal_if(weighted_ops.empty(),
             "weighted injection requires at least one opcode");
    Rng rng(seed);
    std::vector<double> weights;
    weights.reserve(weighted_ops.size());
    for (const auto &[op, weight] : weighted_ops) {
        fatal_if(weight < 0.0, "weighted injection weights must be >= 0");
        weights.push_back(weight);
    }
    return rewrite(original, level, [&] {
        std::vector<StaticInst> payload;
        payload.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t pick = rng.weightedIndex(weights);
            payload.push_back(makePayloadInst(weighted_ops[pick].first));
        }
        return payload;
    }, filter);
}

Program
Injector::applyRandom(const Program &original, InjectLevel level,
                      std::size_t count, std::uint64_t seed,
                      const SiteFilter &filter)
{
    Rng rng(seed);
    // Candidate pool: every semantics-free opcode class.
    std::vector<OpClass> pool;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        const OpClass op = opFromIndex(i);
        if (isInjectable(op))
            pool.push_back(op);
    }
    return rewrite(original, level, [&] {
        std::vector<StaticInst> payload;
        payload.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            payload.push_back(
                makePayloadInst(pool[rng.below(pool.size())]));
        return payload;
    }, filter);
}

std::size_t
Injector::siteCount(const Program &program, InjectLevel level)
{
    if (level == InjectLevel::Block)
        return program.blockCount();
    return program.retBlockCount();
}

double
staticOverhead(const Program &original, const Program &modified)
{
    const double base = static_cast<double>(original.textBytes());
    panic_if(base <= 0.0, "original program has no code");
    return (static_cast<double>(modified.textBytes()) - base) / base;
}

namespace
{

/** Counts injected vs original committed instructions. */
class OverheadSink : public TraceSink
{
  public:
    void
    consume(const DynInst &inst) override
    {
        ++total_;
        if (!inst.injected)
            ++original_;
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t original() const { return original_; }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t original_ = 0;
};

} // namespace

double
dynamicOverhead(const Program &modified, std::uint64_t original_insts,
                std::uint64_t exec_seed)
{
    fatal_if(original_insts == 0, "need a positive instruction budget");
    OverheadSink sink;
    Executor executor(modified, exec_seed);
    // Run a budget large enough that the injected/original ratio is
    // a steady-state measurement, then report extra work per original
    // instruction.
    executor.run(original_insts, sink);
    panic_if(sink.original() == 0,
             "execution committed no original instructions");
    return static_cast<double>(sink.total()) /
               static_cast<double>(sink.original()) - 1.0;
}

} // namespace rhmd::trace
