/**
 * @file
 * Static program building blocks: instructions with memory-access
 * behaviour, block terminators, and basic blocks.
 *
 * A program in this library is a statically-known CFG whose dynamic
 * behaviour (branch outcomes, loop trip counts, memory addresses) is
 * sampled during execution. This mirrors what an HMD sees: it never
 * inspects code, only the dynamic instruction/memory/event stream.
 */

#ifndef RHMD_TRACE_BASIC_BLOCK_HH
#define RHMD_TRACE_BASIC_BLOCK_HH

#include <cstdint>
#include <vector>

#include "trace/isa.hh"

namespace rhmd::trace
{

/** How a memory-accessing instruction generates addresses. */
enum class AddrPattern : std::uint8_t
{
    Stride,          ///< walk a region with a fixed byte stride
    RandomInRegion,  ///< uniform within a window of a region
    StackSlot,       ///< fixed offset from the current stack pointer
};

/** Address-generation behaviour of one static memory instruction. */
struct MemRef
{
    AddrPattern pattern = AddrPattern::StackSlot;
    std::uint8_t region = 0;      ///< index into Program::regions
    std::int32_t stride = 8;      ///< Stride: bytes per access;
                                  ///< StackSlot: offset from sp
    std::uint32_t span = 4096;    ///< RandomInRegion: window bytes
    std::uint8_t accessSize = 8;  ///< access width in bytes
    std::uint8_t alignOffset = 0; ///< forces misalignment when != 0
};

/**
 * One static (non-terminator) instruction.
 *
 * Register operands follow the opcode's signature (OpInfo::numSrc /
 * hasDst); positions beyond the signature are ignored. The defaults
 * name the injector-reserved scratch registers, so a
 * default-constructed instruction can never clobber program state —
 * handcrafted test programs and payload builders start safe and opt
 * *into* touching allocatable registers.
 */
struct StaticInst
{
    OpClass op = OpClass::Nop;
    MemRef mem;  ///< meaningful only when accessesMemory(op)
    bool injected = false;  ///< inserted by the evasion rewriter

    RegId dst = kRegScratch1;   ///< written when opInfo(op).hasDst
    RegId src1 = kRegScratch0;  ///< read when numSrc >= 1
    RegId src2 = kRegScratch0;  ///< read when numSrc == 2
};

/** Control-flow kind ending a basic block. */
enum class TermKind : std::uint8_t
{
    CondBranch,  ///< conditional: taken target or fall-through
    Jump,        ///< unconditional intra-function jump
    Call,        ///< call a function, then continue at fallTarget
    Ret,         ///< return to caller (or exit if stack is empty)
    Exit,        ///< program exit (modelled as a syscall)
};

/**
 * Terminator of a basic block.
 *
 * Conditional branches are compare-and-branch: the condition is the
 * comparison of condSrc1 and condSrc2, read by the terminator itself
 * (there is no flags register in this IR; see OpInfo).
 */
struct Terminator
{
    TermKind kind = TermKind::Exit;
    std::uint32_t takenTarget = 0; ///< CondBranch taken / Jump target
    std::uint32_t fallTarget = 0;  ///< CondBranch fall-through,
                                   ///< Call continuation block
    double takenProb = 0.5;        ///< CondBranch taken probability
    std::uint32_t callee = 0;      ///< Call: target function index

    RegId condSrc1 = kRegScratch0; ///< CondBranch: compared registers
    RegId condSrc2 = kRegScratch0;
};

/**
 * A basic block: a straight-line body plus one terminator. The
 * terminator itself corresponds to an executed instruction
 * (jcc/jmp/call/ret/syscall) that the interpreter emits after the
 * body.
 */
struct BasicBlock
{
    std::vector<StaticInst> body;
    Terminator term;
    std::uint64_t address = 0;  ///< code address of the first byte

    /** The opcode class the terminator executes as. */
    OpClass terminatorOp() const;

    /** Number of instructions this block emits per execution. */
    std::size_t instCount() const { return body.size() + 1; }

    /** Encoded size in bytes (body + terminator). */
    std::uint64_t byteSize() const;
};

/** Opcode class corresponding to a terminator kind. */
OpClass terminatorOpClass(TermKind kind);

} // namespace rhmd::trace

#endif // RHMD_TRACE_BASIC_BLOCK_HH
