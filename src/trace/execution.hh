/**
 * @file
 * The CFG interpreter: turns a static Program into a dynamic
 * instruction stream, the same role Pin's dynamic trace collection
 * plays in the paper.
 */

#ifndef RHMD_TRACE_EXECUTION_HH
#define RHMD_TRACE_EXECUTION_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"
#include "trace/program.hh"

namespace rhmd::trace
{

/** One executed (committed) instruction. */
struct DynInst
{
    std::uint64_t pc = 0;
    OpClass op = OpClass::Nop;
    std::uint8_t size = 0;        ///< encoded bytes

    bool isLoad = false;
    bool isStore = false;
    std::uint64_t addr = 0;       ///< effective address when mem op
    std::uint8_t accessSize = 0;

    bool isBranch = false;        ///< any control transfer
    bool isCondBranch = false;
    bool taken = false;
    std::uint64_t target = 0;     ///< transfer destination pc

    bool injected = false;        ///< came from the evasion rewriter
};

/** Receives the committed instruction stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per committed instruction, in program order. */
    virtual void consume(const DynInst &inst) = 0;
};

/**
 * Interprets a Program, sampling branch outcomes, loop trips, and
 * memory addresses; emits the committed stream to a TraceSink.
 *
 * Execution restarts from the entry point when the program exits
 * before the requested instruction budget is reached, modelling a
 * long-running process re-entering its main loop.
 */
class Executor
{
  public:
    /**
     * @param program The program to execute (must outlive the
     *                executor).
     * @param seed    Execution-level randomness (branch outcomes,
     *                address draws). Different seeds give different
     *                dynamic behaviour of the same binary.
     * @param phase_modulation
     *                Model program phases: every 6-24K instructions
     *                the effective conditional-branch probabilities
     *                are re-biased (p -> p^gamma with a freshly drawn
     *                gamma), shifting which loops are hot. Real
     *                workloads exhibit exactly this input-dependent
     *                phase behaviour; it is what makes collection
     *                windows differ over time. Disable for
     *                micro-tests that need exact branch statistics.
     */
    Executor(const Program &program, std::uint64_t seed,
             bool phase_modulation = true);

    /** Emit exactly @p max_insts committed instructions. */
    void run(std::uint64_t max_insts, TraceSink &sink);

    /** Maximum call-stack depth before calls flatten to fall-through. */
    static constexpr std::size_t kMaxCallDepth = 48;

  private:
    struct Frame
    {
        std::uint32_t function;
        std::uint32_t resumeBlock;
    };

    /** Compute the effective address of one memory instruction. */
    std::uint64_t effectiveAddr(const MemRef &mem);

    /** Advance the phase clock; re-roll the branch bias when due. */
    void tickPhase();

    /** Phase-biased taken probability. */
    double biasedTakenProb(double p) const;

    const Program &program_;
    Rng rng_;

    bool phaseModulation_;
    std::uint64_t phaseLen_ = 0;      ///< instructions per phase
    std::uint64_t phaseCountdown_ = 0;
    double phaseGamma_ = 1.0;         ///< current probability bias
    bool phaseJumpPending_ = false;   ///< re-dispatch at next block

    /** Per-region stride cursors (persist across restarts). */
    std::vector<std::uint64_t> cursors_;
    std::uint64_t stackPtr_;
    std::vector<Frame> callStack_;
};

} // namespace rhmd::trace

#endif // RHMD_TRACE_EXECUTION_HH
