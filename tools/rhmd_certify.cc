/**
 * @file
 * rhmd-certify: abstract-interpretation certifier driver.
 *
 * Builds the seeded experiment corpus, trains one base detector per
 * requested algorithm (cycling feature families and periods so the
 * pool is heterogeneous, as the paper's RHMD is), and runs the
 * certification pass (analysis/certify) over the held-out test
 * programs: per-detector certified stability radii, the pool-level
 * certified evasion bound, and the audit/zero-margin findings as text
 * or machine-readable JSON lines. With --evade the malware test
 * programs are first rewritten by one of the paper's evasion
 * strategies, so the certificate describes the corpus an attacker
 * actually submits. With --check N every reported radius is probed
 * with N seeded random perturbations — a flip means the certifier is
 * unsound and the run fails.
 *
 * Output is bit-identical at any --threads value: radii come from
 * fixed-iteration static analysis and programs merge in corpus order.
 * The static-analysis CI job diffs 1-thread vs N-thread runs.
 *
 * Exit status: 0 when the pool certifies (no error findings; with
 * --strict, no warnings either; with --check, no flips), 1 otherwise,
 * 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/certify/pool_cert.hh"
#include "core/experiment.hh"
#include "core/rhmd.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/tracing.hh"

namespace
{

using namespace rhmd;

struct Options
{
    std::uint64_t seed = 20171014;
    std::size_t benign = 60;
    std::size_t malware = 120;
    std::string algorithms = "LR,NN,DT,SVM,RF";
    std::string evade = "none";  // none|random|least_weight|weighted
    double epsilon = 0.25;
    double cap = 8.0;
    std::size_t check = 0;  // perturbation samples per window; 0 = off
    bool json = false;
    bool strict = false;
    std::size_t maxPrint = 25;
    std::size_t threads = 0;  // 0 = RHMD_THREADS env, then hardware
    std::string metricsDir;   // empty disables the snapshot
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --seed N        corpus seed (default 20171014)\n"
        "  --benign N      benign programs to generate (default 60)\n"
        "  --malware N     malware programs to generate (default 120)\n"
        "  --algorithms A  comma-separated pool algorithms\n"
        "                  (default LR,NN,DT,SVM,RF)\n"
        "  --evade MODE    none|random|least_weight|weighted "
        "(default none)\n"
        "  --epsilon E     reference radius for the stable-mass "
        "statistic\n"
        "                  (default 0.25 standardized units)\n"
        "  --cap C         radius cap before averaging (default 8)\n"
        "  --check N       probe every radius with N seeded random\n"
        "                  perturbations; any flip fails the run "
        "(default off)\n"
        "  --json          emit findings as JSON lines\n"
        "  --strict        warnings also fail the run\n"
        "  --max-print N   findings printed in text mode (default 25)\n"
        "  --threads N     worker threads (default: RHMD_THREADS env, "
        "then hardware)\n"
        "  --metrics DIR   write METRICS_rhmd_certify.{json,prom} "
        "snapshots\n"
        "                  (with the run manifest) into DIR\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i) { return i + 1 < argc; };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--seed" && need_value(i)) {
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--benign" && need_value(i)) {
            opt.benign = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--malware" && need_value(i)) {
            opt.malware = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--algorithms" && need_value(i)) {
            opt.algorithms = argv[++i];
        } else if (arg == "--epsilon" && need_value(i)) {
            opt.epsilon = std::strtod(argv[++i], nullptr);
        } else if (arg == "--cap" && need_value(i)) {
            opt.cap = std::strtod(argv[++i], nullptr);
        } else if (arg == "--check" && need_value(i)) {
            opt.check = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--max-print" && need_value(i)) {
            opt.maxPrint = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--threads" && need_value(i)) {
            opt.threads = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--metrics" && need_value(i)) {
            opt.metricsDir = argv[++i];
        } else if (arg == "--evade" && need_value(i)) {
            opt.evade = argv[++i];
            if (opt.evade != "none" && opt.evade != "random" &&
                opt.evade != "least_weight" && opt.evade != "weighted")
                return false;
        } else {
            return false;
        }
    }
    return opt.epsilon >= 0.0 && opt.cap > 0.0;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

/** Print one finding in the text format (rhmd-verify's layout). */
void
printFinding(const analysis::Finding &finding)
{
    std::string where;
    if (finding.function != analysis::kNoIndex)
        where += " det " + std::to_string(finding.function);
    if (finding.block != analysis::kNoIndex)
        where += " prog " + std::to_string(finding.block);
    if (finding.inst != analysis::kNoIndex)
        where += " epoch " + std::to_string(finding.inst);
    std::printf("pool: %s [%.*s/%.*s]%s: %s\n",
                std::string(analysis::severityName(finding.severity))
                    .c_str(),
                static_cast<int>(finding.pass.size()),
                finding.pass.data(),
                static_cast<int>(finding.code.size()),
                finding.code.data(), where.c_str(),
                finding.message.c_str());
}

/** Render a radius: finite values fixed-precision, inf as "inf". */
std::string
fmtRadius(double r)
{
    if (r == analysis::certify::kUnboundedRadius)
        return "inf";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", r);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }
    support::setGlobalThreads(opt.threads);

    const std::vector<std::string> algorithms =
        splitCsv(opt.algorithms);
    if (algorithms.empty()) {
        usage(argv[0]);
        return 2;
    }

    core::ExperimentConfig config;
    config.seed = opt.seed;
    config.benignCount = opt.benign;
    config.malwareCount = opt.malware;
    const core::Experiment experiment = core::Experiment::build(config);

    // One heterogeneous detector per algorithm: cycle the three
    // feature families and the two periods so no two detectors share
    // a configuration (the pool diversity RHMD's guarantees ride on).
    constexpr features::FeatureKind kKinds[] = {
        features::FeatureKind::Instructions,
        features::FeatureKind::Memory,
        features::FeatureKind::Architectural,
    };
    constexpr std::uint32_t kPeriods[] = {10000, 5000};
    std::vector<std::unique_ptr<core::Hmd>> detectors;
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
        detectors.push_back(experiment.trainVictim(
            algorithms[i], kKinds[i % 3], kPeriods[i % 2],
            opt.seed ^ (0xce271fULL + i)));
    }
    const std::vector<double> policy(
        detectors.size(), 1.0 / static_cast<double>(detectors.size()));
    auto pool = core::tryMakeRhmd(std::move(detectors), policy,
                                  opt.seed ^ 0x9001ULL);
    if (!pool.isOk()) {
        std::fprintf(stderr, "rhmd-certify: %s\n",
                     pool.status().toString().c_str());
        return 2;
    }

    // The certification corpus: the attacker-side test split, with
    // the malware programs optionally replaced by their evasion
    // rewrites (same execution salt; only the injected code differs).
    features::FeatureCorpus corpus = experiment.corpus();
    const std::vector<std::size_t> &test_idx =
        experiment.split().attackerTest;
    if (opt.evade != "none") {
        core::EvasionPlan plan;
        plan.seed = opt.seed ^ 0xe5a510ULL;
        if (opt.evade == "random")
            plan.strategy = core::EvasionStrategy::Random;
        else if (opt.evade == "least_weight")
            plan.strategy = core::EvasionStrategy::LeastWeight;
        else
            plan.strategy = core::EvasionStrategy::Weighted;
        const std::unique_ptr<core::Hmd> victim =
            experiment.trainVictim(
                "LR", features::FeatureKind::Instructions, 10000);
        const std::vector<std::size_t> evaders =
            experiment.malwareOf(test_idx);
        const std::vector<features::ProgramFeatures> rewritten =
            experiment.extractEvasive(evaders, plan, victim.get());
        for (std::size_t i = 0; i < evaders.size(); ++i)
            corpus.programs[evaders[i]] = rewritten[i];
    }

    analysis::certify::CertifyOptions options;
    options.referenceEpsilon = opt.epsilon;
    options.radiusCap = opt.cap;
    auto cert = analysis::certify::certifyPool(**pool, corpus,
                                               test_idx, options);
    if (!cert.isOk()) {
        std::fprintf(stderr, "rhmd-certify: %s\n",
                     cert.status().toString().c_str());
        return 2;
    }

    // Optional soundness probe: every certified radius must survive
    // N random perturbations of that magnitude. This checks the
    // certifier itself, so it recomputes radii rather than trusting
    // the aggregate statistics.
    std::size_t flips = 0;
    if (opt.check > 0 && cert->report.clean()) {
        const std::uint32_t epoch = (*pool)->decisionPeriod();
        const std::vector<std::size_t> flip_counts =
            support::parallelMap<std::size_t>(
                test_idx.size(), [&](std::size_t p) {
                    const features::ProgramFeatures &prog =
                        corpus.programs[test_idx[p]];
                    std::size_t local = 0;
                    for (std::size_t i = 0; i < (*pool)->poolSize();
                         ++i) {
                        const core::Hmd &det = *(*pool)->detectors()[i];
                        const std::uint32_t period =
                            det.decisionPeriod();
                        const std::size_t stride = epoch / period;
                        const std::size_t n_epochs =
                            prog.windows(epoch).size();
                        for (std::size_t e = 0; e < n_epochs; ++e) {
                            const std::vector<double> x =
                                det.featureVector(
                                    prog.windows(period)[e * stride]);
                            const double radius =
                                analysis::certify::stabilityRadius(
                                    det.classifier(), det.threshold(),
                                    x, options.search);
                            if (radius <= 0.0)
                                continue;
                            const double probe =
                                radius ==
                                        analysis::certify::
                                            kUnboundedRadius
                                    ? opt.cap
                                    : radius;
                            local += analysis::certify::
                                countFlipsUnderPerturbation(
                                    det.classifier(), det.threshold(),
                                    x, probe, opt.check,
                                    opt.seed ^ (p * 7919 + i * 131 +
                                                e));
                        }
                    }
                    return local;
                });
        for (std::size_t count : flip_counts)
            flips += count;
    }

    if (opt.json) {
        if (!cert->report.findings().empty())
            std::fputs(cert->report.toJsonLines("pool").c_str(),
                       stdout);
    } else {
        std::size_t printed = 0;
        for (const analysis::Finding &finding :
             cert->report.findings()) {
            if (printed >= opt.maxPrint)
                break;
            printFinding(finding);
            ++printed;
        }
        std::printf("detector                          windows "
                    "zero      min     mean   median   stable\n");
        for (const analysis::certify::DetectorCertificate &det :
             cert->detectors) {
            std::printf("%-33s %7zu %4zu %8s %8s %8s %8.4f\n",
                        det.label.c_str(), det.windows,
                        det.zeroMarginWindows,
                        fmtRadius(det.minRadius).c_str(),
                        fmtRadius(det.meanRadius).c_str(),
                        fmtRadius(det.medianRadius).c_str(),
                        det.stableFraction);
        }
        std::printf("rhmd-certify: %zu detectors, %zu epochs "
                    "(evade=%s), certified bound %s, stable mass "
                    "%.4f @ eps=%.3f, min radius %s\n",
                    cert->detectors.size(), cert->epochs,
                    opt.evade.c_str(),
                    fmtRadius(cert->certifiedBound).c_str(),
                    cert->stableMass, cert->referenceEpsilon,
                    fmtRadius(cert->minRadius).c_str());
        if (opt.check > 0) {
            std::printf("soundness probe: %zu samples/window, "
                        "%zu flips\n",
                        opt.check, flips);
        }
    }

    const bool failed =
        !cert->report.clean() ||
        (opt.strict && cert->report.warningCount() > 0) || flips > 0;
    if (!opt.json)
        std::printf("%s\n", failed ? "FAILED" : "OK");

    if (!opt.metricsDir.empty()) {
        support::RunManifest manifest;
        manifest.tool = "rhmd_certify";
        manifest.seed = opt.seed;
        manifest.threads = support::globalThreads();
        manifest.addConfig("evade", opt.evade);
        manifest.addConfig("algorithms", opt.algorithms);
        if (!support::writeObservabilitySnapshot(
                opt.metricsDir, "rhmd_certify", manifest))
            return 2;
    }
    return failed ? 1 : 0;
}
