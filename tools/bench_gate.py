#!/usr/bin/env python3
"""CI gate over BENCH_*.json and METRICS_*.json files emitted by the
bench harness (bench/bench_common.hh).

Three modes:

  compare SERIAL_DIR PARALLEL_DIR
      Assert that every bench present in SERIAL_DIR is present in
      PARALLEL_DIR and that their "tables" payloads are *identical* —
      the determinism contract (DESIGN.md section 9): an N-thread run
      must produce bit-identical metric values to a 1-thread run.
      When both runs replayed a corpus file (manifest config carries
      "corpus_hash", see DESIGN.md section 15), the hashes must match
      — comparing tables produced from two different corpora would
      "pass" vacuously or fail confusingly, so a hash mismatch is its
      own clear error. Also prints the measured speedup (serial wall /
      parallel wall) per bench.

  regress DIR BASELINE_JSON [--tolerance FRAC] [--allow-missing]
          [--fresh-dir DIR2]
      Fail if any bench's wall_seconds exceeds its checked-in serial
      baseline by more than FRAC (default 0.25, i.e. +25%). A bench
      without a baseline entry FAILS the gate with instructions for
      adding one, so new benches cannot silently dodge the gate; pass
      --allow-missing to downgrade that to a SKIP (e.g. while a new
      bench's baseline is still being calibrated).
      With --fresh-dir, DIR must hold corpus-replay runs and DIR2 the
      same benches run fresh; every bench that actually replayed
      (manifest has corpus_hash) must be at least
      baseline["corpus_replay_min_speedup"] times faster than its
      fresh counterpart — the floor that keeps the zero-copy replay
      path from silently regressing into re-extraction.

  metrics SERIAL_DIR PARALLEL_DIR
      Assert that every METRICS_*.json snapshot in SERIAL_DIR has a
      counterpart in PARALLEL_DIR whose *Deterministic-domain* metrics
      are identical (DESIGN.md section 10). Timing-domain metrics
      (pool task counts, latencies, span trees) and the manifest's
      thread count legitimately differ and are stripped before the
      comparison.

To add a baseline entry: run the bench once with --threads 1 under
RHMD_SMOKE=1 and RHMD_BENCH_JSON_DIR set, read "wall_seconds" from the
emitted BENCH_<name>.json, and add '"<name>": <seconds>' to
bench/baseline.json (see the "comment" key there).

Exit code 0 on success, 1 on any violation, 2 on malformed input.
Stdlib only.
"""

import argparse
import glob
import json
import os
import sys


def load_json(path):
    """Parse one JSON file, exiting with a clear message (no
    traceback) when it is unreadable or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as err:
        sys.exit(f"bench_gate: cannot read {path}: {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_gate: malformed JSON in {path}: {err}")


def load_dir(path, pattern="BENCH_*.json", key="bench"):
    out = {}
    for name in sorted(glob.glob(os.path.join(path, pattern))):
        doc = load_json(name)
        if key == "bench":
            ident = doc.get("bench")
        else:
            # METRICS_<name>.json carries its identity in the file
            # name; the manifest's "tool" may repeat across snapshots.
            ident = os.path.basename(name)
        if not isinstance(ident, str):
            sys.exit(f"bench_gate: {name} has no \"{key}\" field")
        out[ident] = doc
    if not out:
        sys.exit(f"bench_gate: no {pattern} files in {path}")
    return out


def corpus_hash_of(doc):
    """The corpus content hash a bench run was replayed from, or None
    for a fresh (in-memory extraction) run."""
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        return None
    config = manifest.get("config")
    if not isinstance(config, dict):
        return None
    return config.get("corpus_hash")


def cmd_compare(args):
    serial = load_dir(args.serial_dir)
    parallel = load_dir(args.parallel_dir)
    failed = False
    for bench, sdoc in serial.items():
        pdoc = parallel.get(bench)
        if pdoc is None:
            print(f"FAIL {bench}: missing from {args.parallel_dir}")
            failed = True
            continue
        shash = corpus_hash_of(sdoc)
        phash = corpus_hash_of(pdoc)
        if shash is not None and phash is not None and shash != phash:
            print(f"FAIL {bench}: runs replayed different corpora "
                  f"(corpus_hash {shash} vs {phash}); regenerate the "
                  "cached corpus or point both runs at the same file "
                  "before comparing tables")
            failed = True
            continue
        if sdoc["tables"] != pdoc["tables"]:
            print(f"FAIL {bench}: tables differ between "
                  f"{sdoc['threads']}-thread and "
                  f"{pdoc['threads']}-thread runs")
            print("  serial:   ", json.dumps(sdoc["tables"]))
            print("  parallel: ", json.dumps(pdoc["tables"]))
            failed = True
            continue
        swall = sdoc["wall_seconds"]
        pwall = pdoc["wall_seconds"]
        speedup = swall / pwall if pwall > 0 else float("inf")
        print(f"OK   {bench}: tables identical at {sdoc['threads']} vs "
              f"{pdoc['threads']} threads; wall {swall:.2f}s -> "
              f"{pwall:.2f}s (speedup {speedup:.2f}x)")
    return 1 if failed else 0


def cmd_regress(args):
    docs = load_dir(args.dir)
    baseline = load_json(args.baseline)
    if not isinstance(baseline, dict):
        sys.exit(f"bench_gate: {args.baseline} must hold one "
                 "{\"<bench>\": seconds} object")
    failed = False
    for bench, doc in docs.items():
        base = baseline.get(bench)
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            if args.allow_missing:
                print(f"SKIP {bench}: no baseline entry "
                      f"(--allow-missing)")
                continue
            print(f"FAIL {bench}: no baseline entry in "
                  f"{args.baseline}. Run the bench with --threads 1 "
                  f"(smoke mode) and add '\"{bench}\": "
                  f"<wall_seconds>' to it, or pass --allow-missing.")
            failed = True
            continue
        wall = doc["wall_seconds"]
        limit = base * (1.0 + args.tolerance)
        if wall > limit:
            print(f"FAIL {bench}: wall {wall:.2f}s exceeds baseline "
                  f"{base:.2f}s + {args.tolerance:.0%} ({limit:.2f}s)")
            failed = True
        else:
            print(f"OK   {bench}: wall {wall:.2f}s within baseline "
                  f"{base:.2f}s + {args.tolerance:.0%}")
    if args.fresh_dir:
        failed |= check_replay_speedup(docs, baseline, args)
    return 1 if failed else 0


def check_replay_speedup(replay_docs, baseline, args):
    """regress --fresh-dir: replayed benches must beat their fresh
    counterparts by the checked-in corpus_replay_min_speedup floor."""
    floor = baseline.get("corpus_replay_min_speedup")
    if not isinstance(floor, (int, float)) or isinstance(floor, bool):
        sys.exit(f"bench_gate: {args.baseline} has no "
                 "\"corpus_replay_min_speedup\" entry (required with "
                 "--fresh-dir)")
    fresh = load_dir(args.fresh_dir)
    failed = False
    checked = 0
    for bench, rdoc in replay_docs.items():
        if corpus_hash_of(rdoc) is None:
            print(f"FAIL {bench}: run in {args.dir} did not replay a "
                  "corpus (manifest has no corpus_hash) — the replay "
                  "leg fell back to fresh extraction")
            failed = True
            continue
        fdoc = fresh.get(bench)
        if fdoc is None:
            print(f"FAIL {bench}: missing from {args.fresh_dir}")
            failed = True
            continue
        rwall = rdoc["wall_seconds"]
        fwall = fdoc["wall_seconds"]
        speedup = fwall / rwall if rwall > 0 else float("inf")
        checked += 1
        if speedup < floor:
            print(f"FAIL {bench}: corpus replay speedup {speedup:.2f}x "
                  f"below the {floor:.2f}x floor (fresh {fwall:.2f}s, "
                  f"replay {rwall:.2f}s)")
            failed = True
        else:
            print(f"OK   {bench}: corpus replay speedup {speedup:.2f}x "
                  f">= {floor:.2f}x floor")
    if checked == 0 and not failed:
        sys.exit("bench_gate: --fresh-dir produced no replay/fresh "
                 "pairs to check")
    return failed


def deterministic_view(doc, path):
    """The determinism-relevant subset of one METRICS_*.json snapshot:
    Deterministic-domain metrics plus the manifest minus its thread
    count (spans and Timing metrics are wall-clock shaped)."""
    metrics = doc.get("metrics")
    manifest = doc.get("manifest")
    if not isinstance(metrics, list) or not isinstance(manifest, dict):
        sys.exit(f"bench_gate: {path} is not a metrics snapshot "
                 "(needs \"metrics\" and \"manifest\")")
    view = {k: v for k, v in manifest.items() if k != "threads"}
    return {
        "manifest": view,
        "metrics": [m for m in metrics
                    if m.get("domain") == "deterministic"],
    }


def cmd_metrics(args):
    serial = load_dir(args.serial_dir, "METRICS_*.json", key="file")
    parallel = load_dir(args.parallel_dir, "METRICS_*.json", key="file")
    failed = False
    for name, sdoc in serial.items():
        pdoc = parallel.get(name)
        if pdoc is None:
            print(f"FAIL {name}: missing from {args.parallel_dir}")
            failed = True
            continue
        sview = deterministic_view(sdoc, name)
        pview = deterministic_view(pdoc, name)
        if sview != pview:
            print(f"FAIL {name}: deterministic metrics differ between "
                  "thread counts")
            smet = {m["name"]: m for m in sview["metrics"]}
            pmet = {m["name"]: m for m in pview["metrics"]}
            for metric in sorted(set(smet) | set(pmet)):
                if smet.get(metric) != pmet.get(metric):
                    print(f"  {metric}:")
                    print("    serial:   ", json.dumps(smet.get(metric)))
                    print("    parallel: ", json.dumps(pmet.get(metric)))
            if sview["manifest"] != pview["manifest"]:
                print("  manifest:")
                print("    serial:   ", json.dumps(sview["manifest"]))
                print("    parallel: ", json.dumps(pview["manifest"]))
            failed = True
            continue
        n = len(sview["metrics"])
        print(f"OK   {name}: {n} deterministic metrics identical")
    return 1 if failed else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    compare = sub.add_parser("compare")
    compare.add_argument("serial_dir")
    compare.add_argument("parallel_dir")
    compare.set_defaults(func=cmd_compare)
    regress = sub.add_parser("regress")
    regress.add_argument("dir")
    regress.add_argument("baseline")
    regress.add_argument("--tolerance", type=float, default=0.25)
    regress.add_argument("--allow-missing", action="store_true")
    regress.add_argument("--fresh-dir", default=None)
    regress.set_defaults(func=cmd_regress)
    metrics = sub.add_parser("metrics")
    metrics.add_argument("serial_dir")
    metrics.add_argument("parallel_dir")
    metrics.set_defaults(func=cmd_metrics)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
