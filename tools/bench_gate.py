#!/usr/bin/env python3
"""CI gate over BENCH_*.json files emitted by the bench harness.

Two modes:

  compare SERIAL_DIR PARALLEL_DIR
      Assert that every bench present in SERIAL_DIR is present in
      PARALLEL_DIR and that their "tables" payloads are *identical* —
      the determinism contract (DESIGN.md section 9): an N-thread run
      must produce bit-identical metric values to a 1-thread run.
      Also prints the measured speedup (serial wall / parallel wall)
      per bench.

  regress DIR BASELINE_JSON [--tolerance FRAC]
      Fail if any bench's wall_seconds exceeds its checked-in serial
      baseline by more than FRAC (default 0.25, i.e. +25%). Benches
      without a baseline entry are reported but do not fail the gate.

Exit code 0 on success, 1 on any violation. Stdlib only.
"""

import argparse
import glob
import json
import os
import sys


def load_dir(path):
    out = {}
    for name in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        with open(name) as f:
            doc = json.load(f)
        out[doc["bench"]] = doc
    if not out:
        sys.exit(f"bench_gate: no BENCH_*.json files in {path}")
    return out


def cmd_compare(args):
    serial = load_dir(args.serial_dir)
    parallel = load_dir(args.parallel_dir)
    failed = False
    for bench, sdoc in serial.items():
        pdoc = parallel.get(bench)
        if pdoc is None:
            print(f"FAIL {bench}: missing from {args.parallel_dir}")
            failed = True
            continue
        if sdoc["tables"] != pdoc["tables"]:
            print(f"FAIL {bench}: tables differ between "
                  f"{sdoc['threads']}-thread and "
                  f"{pdoc['threads']}-thread runs")
            print("  serial:   ", json.dumps(sdoc["tables"]))
            print("  parallel: ", json.dumps(pdoc["tables"]))
            failed = True
            continue
        swall = sdoc["wall_seconds"]
        pwall = pdoc["wall_seconds"]
        speedup = swall / pwall if pwall > 0 else float("inf")
        print(f"OK   {bench}: tables identical at {sdoc['threads']} vs "
              f"{pdoc['threads']} threads; wall {swall:.2f}s -> "
              f"{pwall:.2f}s (speedup {speedup:.2f}x)")
    return 1 if failed else 0


def cmd_regress(args):
    docs = load_dir(args.dir)
    with open(args.baseline) as f:
        baseline = json.load(f)
    failed = False
    for bench, doc in docs.items():
        base = baseline.get(bench)
        if not isinstance(base, (int, float)):
            print(f"SKIP {bench}: no baseline entry")
            continue
        wall = doc["wall_seconds"]
        limit = base * (1.0 + args.tolerance)
        if wall > limit:
            print(f"FAIL {bench}: wall {wall:.2f}s exceeds baseline "
                  f"{base:.2f}s + {args.tolerance:.0%} ({limit:.2f}s)")
            failed = True
        else:
            print(f"OK   {bench}: wall {wall:.2f}s within baseline "
                  f"{base:.2f}s + {args.tolerance:.0%}")
    return 1 if failed else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    compare = sub.add_parser("compare")
    compare.add_argument("serial_dir")
    compare.add_argument("parallel_dir")
    compare.set_defaults(func=cmd_compare)
    regress = sub.add_parser("regress")
    regress.add_argument("dir")
    regress.add_argument("baseline")
    regress.add_argument("--tolerance", type=float, default=0.25)
    regress.set_defaults(func=cmd_regress)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
