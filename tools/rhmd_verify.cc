/**
 * @file
 * rhmd-verify: lint driver for the static verification layer.
 *
 * Generates the seeded program corpus, optionally applies one of the
 * paper's evasion rewrites, and runs every program through the
 * analysis pipeline (CFG verification + semantic preservation),
 * printing findings as text or machine-readable JSON lines. With
 * --dcfg it also executes each program and cross-checks the
 * dynamically recovered CFG.
 *
 * Exit status: 0 when every program verifies (no error findings; with
 * --strict, no warnings either), 1 on findings, 2 on usage errors.
 * This is what the static-analysis CI job runs over the corpus.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/verifier.hh"
#include "core/evasion.hh"
#include "core/experiment.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/tracing.hh"
#include "trace/dcfg.hh"
#include "trace/execution.hh"
#include "trace/generator.hh"

namespace
{

using namespace rhmd;

struct Options
{
    std::uint64_t seed = 20171014;
    std::size_t benign = 60;
    std::size_t malware = 120;
    std::string evade = "none";   // none|random|least_weight|weighted
    trace::InjectLevel level = trace::InjectLevel::Block;
    std::size_t count = 2;
    std::uint64_t dcfgInsts = 0;  // 0 disables the dynamic check
    bool json = false;
    bool strict = false;
    bool pedantic = false;
    std::size_t maxPrint = 25;
    std::size_t threads = 0;  // 0 = RHMD_THREADS env, then hardware
    std::string metricsDir;   // empty disables the snapshot
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --seed N        corpus seed (default 20171014)\n"
        "  --benign N      benign programs to generate (default 60)\n"
        "  --malware N     malware programs to generate (default 120)\n"
        "  --evade MODE    none|random|least_weight|weighted "
        "(default none)\n"
        "  --level L       injection level: block|function "
        "(default block)\n"
        "  --count N       payload instructions per site (default 2)\n"
        "  --dcfg N        also execute N instructions per program and\n"
        "                  check the recovered dynamic CFG (default off)\n"
        "  --json          emit findings as JSON lines\n"
        "  --strict        warnings also fail the run\n"
        "  --pedantic      enable noisy lints (unreachable blocks)\n"
        "  --max-print N   findings printed in text mode (default 25)\n"
        "  --threads N     worker threads for generation, rewriting "
        "and\n"
        "                  verification (default: RHMD_THREADS env, "
        "then hardware)\n"
        "  --metrics DIR   write METRICS_rhmd_verify.{json,prom} "
        "snapshots\n"
        "                  (with the run manifest) into DIR\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i) { return i + 1 < argc; };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--pedantic") {
            opt.pedantic = true;
        } else if (arg == "--seed" && need_value(i)) {
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--benign" && need_value(i)) {
            opt.benign = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--malware" && need_value(i)) {
            opt.malware = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--count" && need_value(i)) {
            opt.count = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--dcfg" && need_value(i)) {
            opt.dcfgInsts = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--max-print" && need_value(i)) {
            opt.maxPrint = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--threads" && need_value(i)) {
            opt.threads = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--metrics" && need_value(i)) {
            opt.metricsDir = argv[++i];
        } else if (arg == "--evade" && need_value(i)) {
            opt.evade = argv[++i];
            if (opt.evade != "none" && opt.evade != "random" &&
                opt.evade != "least_weight" && opt.evade != "weighted")
                return false;
        } else if (arg == "--level" && need_value(i)) {
            const std::string level = argv[++i];
            if (level == "block")
                opt.level = trace::InjectLevel::Block;
            else if (level == "function")
                opt.level = trace::InjectLevel::Function;
            else
                return false;
        } else {
            return false;
        }
    }
    return true;
}

/** Print one finding in the text format. */
void
printFinding(const std::string &program,
             const analysis::Finding &finding)
{
    std::string where;
    if (finding.function != analysis::kNoIndex)
        where += " fn " + std::to_string(finding.function);
    if (finding.block != analysis::kNoIndex)
        where += " blk " + std::to_string(finding.block);
    if (finding.inst != analysis::kNoIndex)
        where += " inst " + std::to_string(finding.inst);
    std::printf("%s: %s [%.*s/%.*s]%s: %s\n", program.c_str(),
                std::string(analysis::severityName(finding.severity))
                    .c_str(),
                static_cast<int>(finding.pass.size()),
                finding.pass.data(),
                static_cast<int>(finding.code.size()),
                finding.code.data(), where.c_str(),
                finding.message.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }
    support::setGlobalThreads(opt.threads);

    // Model-guided evasion needs the full experiment pipeline (victim
    // training); the plain corpus walk only needs the generator.
    std::vector<trace::Program> programs;
    std::unique_ptr<core::Hmd> victim;
    std::optional<core::Experiment> experiment;
    if (opt.evade == "least_weight" || opt.evade == "weighted") {
        core::ExperimentConfig config;
        config.seed = opt.seed;
        config.benignCount = opt.benign;
        config.malwareCount = opt.malware;
        experiment = core::Experiment::build(config);
        victim = experiment->trainVictim(
            "LR", features::FeatureKind::Instructions, 10000);
        programs = experiment->programs();
    } else {
        trace::GeneratorConfig config;
        config.seed = opt.seed;
        config.benignCount = opt.benign;
        config.malwareCount = opt.malware;
        programs = trace::ProgramGenerator(config).generateCorpus();
    }

    core::EvasionPlan plan;
    plan.level = opt.level;
    plan.count = opt.count;
    plan.seed = opt.seed ^ 0xe5a510ULL;
    if (opt.evade == "random")
        plan.strategy = core::EvasionStrategy::Random;
    else if (opt.evade == "least_weight")
        plan.strategy = core::EvasionStrategy::LeastWeight;
    else if (opt.evade == "weighted")
        plan.strategy = core::EvasionStrategy::Weighted;

    analysis::CfgOptions cfg_options;
    cfg_options.flagUnreachableBlocks = opt.pedantic;
    const analysis::Verifier verifier(cfg_options);
    core::EvasionAudit audit;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    std::size_t failed_programs = 0;
    std::size_t printed = 0;

    // Rewrite + verify every program on the pool; reports come back
    // in program order, so printed findings and the audit counters
    // are identical at any thread count.
    struct ProgramResult
    {
        std::string name;
        analysis::Report report;
        core::EvasionAudit audit;
    };
    std::vector<ProgramResult> results =
        support::parallelMap<ProgramResult>(
            programs.size(), [&](std::size_t p) {
                const trace::Program &original = programs[p];
                ProgramResult result;
                trace::Program modified;
                const trace::Program *subject = &original;
                if (opt.evade != "none" && original.malware) {
                    modified = core::evadeRewrite(
                        original, plan, victim.get(), &result.audit);
                    subject = &modified;
                }
                result.name = subject->name;
                result.report = verifier.run(*subject);
                if (opt.dcfgInsts > 0) {
                    trace::DcfgBuilder dcfg;
                    trace::Executor(*subject, opt.seed ^ subject->seed)
                        .run(opt.dcfgInsts, dcfg);
                    analysis::checkDcfg(dcfg, result.report);
                }
                return result;
            });

    for (const ProgramResult &result : results) {
        const analysis::Report &report = result.report;
        audit.admittedSites += result.audit.admittedSites;
        audit.rejectedSites += result.audit.rejectedSites;
        audit.verifiedPrograms += result.audit.verifiedPrograms;

        errors += report.errorCount();
        warnings += report.warningCount();
        notes += report.noteCount();
        const bool failed =
            !report.clean() ||
            (opt.strict && report.warningCount() > 0);
        failed_programs += failed ? 1U : 0U;

        if (opt.json) {
            if (!report.findings().empty())
                std::fputs(report.toJsonLines(result.name).c_str(),
                           stdout);
        } else {
            for (const analysis::Finding &finding : report.findings()) {
                if (printed >= opt.maxPrint) {
                    break;
                }
                printFinding(result.name, finding);
                ++printed;
            }
        }
    }

    if (!opt.json) {
        std::printf("rhmd-verify: %zu programs (evade=%s), "
                    "%zu errors, %zu warnings, %zu notes\n",
                    programs.size(), opt.evade.c_str(), errors, warnings,
                    notes);
        if (opt.evade != "none") {
            std::printf("injection gate: %zu sites admitted, "
                        "%zu rejected\n",
                        audit.admittedSites, audit.rejectedSites);
        }
        if (failed_programs > 0) {
            std::printf("FAILED: %zu of %zu programs\n", failed_programs,
                        programs.size());
        } else {
            std::printf("OK\n");
        }
    }

    if (!opt.metricsDir.empty()) {
        support::RunManifest manifest;
        manifest.tool = "rhmd_verify";
        manifest.seed = opt.seed;
        manifest.threads = support::globalThreads();
        manifest.addConfig("evade", opt.evade);
        manifest.addConfig("count", std::to_string(opt.count));
        if (!support::writeObservabilitySnapshot(
                opt.metricsDir, "rhmd_verify", manifest))
            return 2;
    }
    return failed_programs > 0 ? 1 : 0;
}
