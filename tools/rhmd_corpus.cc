/**
 * @file
 * rhmd-corpus: build and inspect RHMD-CORPUS window archives.
 *
 * Subcommands:
 *
 *   generate  stream one preset's extracted windows into a cache
 *             directory under its canonical config-key file name
 *             (corpus-<16-hex>.rhmdc), so later bench/experiment runs
 *             with RHMD_CORPUS_DIR pointed there replay it
 *             bit-identically instead of re-executing the programs
 *   info      print a file's header, sizes, and per-period window
 *             counts
 *   verify    open + checksum + stream-walk files; non-zero exit on
 *             the first corrupt one (the CI cache-validation pass)
 *   cat       dump decoded window records as JSON lines
 *
 * Exit status: 0 on success, 1 on corrupt/mismatched files, 2 on
 * usage errors.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/cache.hh"
#include "corpus/format.hh"
#include "corpus/reader.hh"
#include "core/experiment.hh"
#include "support/metrics.hh"
#include "support/parallel.hh"
#include "support/tracing.hh"

namespace
{

using namespace rhmd;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  generate --preset NAME [options]\n"
        "      --preset NAME   standard|fig13|serve|all\n"
        "      --out DIR       output directory (default: $RHMD_CORPUS_DIR,\n"
        "                      then the current directory)\n"
        "      --smoke         use the smoke-sized variant of the preset\n"
        "      --threads N     extraction threads (default: RHMD_THREADS\n"
        "                      env, then hardware)\n"
        "      --json          print a JSON summary per file\n"
        "      --metrics DIR   write METRICS_rhmd_corpus.{json,prom} and\n"
        "                      the run manifest into DIR\n"
        "  info FILE [--json]\n"
        "  verify FILE [FILE...]\n"
        "  cat FILE [--program N] [--period P] [--limit N]\n",
        argv0);
}

int
cmdGenerate(int argc, char **argv)
{
    std::string preset;
    std::string out_dir;
    std::string metrics_dir;
    bool smoke = false;
    bool json = false;
    std::size_t threads = 0;
    auto need_value = [&](int i) { return i + 1 < argc; };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--preset" && need_value(i))
            preset = argv[++i];
        else if (arg == "--out" && need_value(i))
            out_dir = argv[++i];
        else if (arg == "--metrics" && need_value(i))
            metrics_dir = argv[++i];
        else if (arg == "--smoke")
            smoke = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--threads" && need_value(i))
            threads = std::strtoull(argv[++i], nullptr, 0);
        else
            return 2;
    }
    if (preset.empty())
        return 2;
    if (out_dir.empty()) {
        const char *env = std::getenv("RHMD_CORPUS_DIR");
        out_dir = (env != nullptr && *env != '\0') ? env : ".";
    }
    support::setGlobalThreads(threads);

    std::vector<std::string> presets;
    if (preset == "all")
        presets = corpus::presetNames();
    else
        presets.push_back(preset);

    support::RunManifest manifest;
    manifest.tool = "rhmd_corpus";
    manifest.threads = support::globalThreads();
    manifest.addConfig("smoke", smoke ? "1" : "0");

    for (const std::string &name : presets) {
        const core::ExperimentConfig config =
            corpus::presetConfig(name, smoke);
        manifest.seed = config.seed;
        const std::string path =
            out_dir + "/" +
            corpus::cacheFileName(corpus::configKey(config));
        const auto summary =
            corpus::writeExperimentCorpus(config, path);
        if (!summary.isOk()) {
            std::fprintf(stderr, "rhmd-corpus: generate %s: %s\n",
                         name.c_str(),
                         summary.status().message().c_str());
            return 1;
        }
        manifest.addConfig("preset_" + name, summary->path);
        if (json) {
            std::printf(
                "{\"preset\": \"%s\", \"path\": \"%s\", "
                "\"config_key\": \"%016" PRIx64 "\", "
                "\"content_hash\": \"%016" PRIx64 "\", "
                "\"format_version\": %u, \"programs\": %zu, "
                "\"windows\": %" PRIu64 ", \"bytes\": %" PRIu64 "}\n",
                name.c_str(), summary->path.c_str(),
                summary->configKey, summary->contentHash,
                corpus::kCorpusFormatVersion, summary->programs,
                summary->windows, summary->bytes);
        } else {
            std::printf("%s: %s (%zu programs, %" PRIu64
                        " windows, %" PRIu64 " bytes)\n",
                        name.c_str(), summary->path.c_str(),
                        summary->programs, summary->windows,
                        summary->bytes);
        }
    }
    if (!metrics_dir.empty() &&
        !support::writeObservabilitySnapshot(metrics_dir, "rhmd_corpus",
                                             manifest))
        return 2;
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    std::string path;
    bool json = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (path.empty())
            path = arg;
        else
            return 2;
    }
    if (path.empty())
        return 2;
    const auto reader = corpus::CorpusReader::open(path);
    if (!reader.isOk()) {
        std::fprintf(stderr, "rhmd-corpus: %s: %s\n", path.c_str(),
                     reader.status().message().c_str());
        return 1;
    }
    std::size_t malware = 0;
    for (std::size_t p = 0; p < reader->programCount(); ++p)
        malware += reader->meta(p).malware ? 1U : 0U;
    if (json) {
        std::printf("{\"path\": \"%s\", \"format_version\": %u, "
                    "\"config_key\": \"%016" PRIx64 "\", "
                    "\"content_hash\": \"%016" PRIx64 "\", "
                    "\"bytes\": %" PRIu64 ", \"mapped\": %s, "
                    "\"programs\": %zu, \"malware\": %zu, "
                    "\"windows\": %" PRIu64 ", \"periods\": [",
                    path.c_str(), reader->formatVersion(),
                    reader->configKey(), reader->contentHash(),
                    reader->fileBytes(),
                    reader->mapped() ? "true" : "false",
                    reader->programCount(), malware,
                    reader->windowTotal());
        for (std::size_t i = 0; i < reader->periods().size(); ++i)
            std::printf("%s%u", i == 0 ? "" : ", ",
                        reader->periods()[i]);
        std::printf("]}\n");
        return 0;
    }
    std::printf("%s:\n  format version %u, config key %016" PRIx64
                ", content hash %016" PRIx64 "\n"
                "  %" PRIu64 " bytes (%s), %zu programs (%zu malware), "
                "%" PRIu64 " windows\n",
                path.c_str(), reader->formatVersion(),
                reader->configKey(), reader->contentHash(),
                reader->fileBytes(),
                reader->mapped() ? "mmap" : "arena",
                reader->programCount(), malware, reader->windowTotal());
    for (std::uint32_t period : reader->periods()) {
        std::uint64_t windows = 0;
        for (std::size_t p = 0; p < reader->programCount(); ++p)
            windows += reader->windowCount(p, period);
        std::printf("  period %u: %" PRIu64 " windows\n", period,
                    windows);
    }
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i)
        paths.emplace_back(argv[i]);
    if (paths.empty())
        return 2;
    for (const std::string &path : paths) {
        const auto reader = corpus::CorpusReader::open(path);
        if (!reader.isOk()) {
            std::fprintf(stderr, "rhmd-corpus: %s: %s\n", path.c_str(),
                         reader.status().message().c_str());
            return 1;
        }
        const support::Status st = reader->verify();
        if (!st.isOk()) {
            std::fprintf(stderr, "rhmd-corpus: %s: %s\n", path.c_str(),
                         st.message().c_str());
            return 1;
        }
        std::printf("%s: OK (%zu programs, %" PRIu64 " windows)\n",
                    path.c_str(), reader->programCount(),
                    reader->windowTotal());
    }
    return 0;
}

int
cmdCat(int argc, char **argv)
{
    std::string path;
    std::size_t program = static_cast<std::size_t>(-1);
    std::uint32_t period = 0;
    std::size_t limit = static_cast<std::size_t>(-1);
    auto need_value = [&](int i) { return i + 1 < argc; };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--program" && need_value(i))
            program = std::strtoull(argv[++i], nullptr, 0);
        else if (arg == "--period" && need_value(i))
            period = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        else if (arg == "--limit" && need_value(i))
            limit = std::strtoull(argv[++i], nullptr, 0);
        else if (path.empty())
            path = arg;
        else
            return 2;
    }
    if (path.empty())
        return 2;
    const auto reader = corpus::CorpusReader::open(path);
    if (!reader.isOk()) {
        std::fprintf(stderr, "rhmd-corpus: %s: %s\n", path.c_str(),
                     reader.status().message().c_str());
        return 1;
    }
    std::size_t printed = 0;
    features::RawWindow window;
    for (std::size_t p = 0; p < reader->programCount(); ++p) {
        if (program != static_cast<std::size_t>(-1) && p != program)
            continue;
        const auto &meta = reader->meta(p);
        for (std::uint32_t file_period : reader->periods()) {
            if (period != 0 && file_period != period)
                continue;
            corpus::WindowStream stream =
                reader->stream(p, file_period);
            std::size_t w = 0;
            while (printed < limit && stream.next(window)) {
                std::printf(
                    "{\"program\": \"%s\", \"malware\": %s, "
                    "\"period\": %u, \"window\": %zu, "
                    "\"inst_count\": %" PRIu64 ", \"cycles\": %.17g, "
                    "\"injected_frac\": %.17g, \"truncated\": %s}\n",
                    meta.name.c_str(), meta.malware ? "true" : "false",
                    file_period, w, window.instCount, window.cycles,
                    window.injectedFrac,
                    window.truncated ? "true" : "false");
                ++printed;
                ++w;
            }
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    int rc = 2;
    if (command == "generate")
        rc = cmdGenerate(argc, argv);
    else if (command == "info")
        rc = cmdInfo(argc, argv);
    else if (command == "verify")
        rc = cmdVerify(argc, argv);
    else if (command == "cat")
        rc = cmdCat(argc, argv);
    if (rc == 2)
        usage(argv[0]);
    return rc;
}
