/**
 * @file
 * Tests of corpus extraction and the 60/20/20 split.
 */

#include <gtest/gtest.h>

#include <set>

#include "features/corpus.hh"
#include "trace/generator.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::features;

FeatureCorpus
smallCorpus(std::uint64_t seed = 33)
{
    trace::GeneratorConfig gen;
    gen.benignCount = 12;
    gen.malwareCount = 24;
    gen.seed = seed;
    const auto programs =
        trace::ProgramGenerator(gen).generateCorpus();

    ExtractConfig extract;
    extract.periods = {5000, 10000};
    extract.traceInsts = 30000;
    return extractCorpus(programs, extract);
}

TEST(Corpus, ProgramsCarryLabelsAndWindows)
{
    const FeatureCorpus corpus = smallCorpus();
    EXPECT_EQ(corpus.programs.size(), 36u);
    EXPECT_EQ(corpus.benignCount(), 12u);
    EXPECT_EQ(corpus.malwareCount(), 24u);
    for (const ProgramFeatures &prog : corpus.programs) {
        EXPECT_EQ(prog.windows(5000).size(), 6u);
        EXPECT_EQ(prog.windows(10000).size(), 3u);
    }
}

TEST(Corpus, ExtractionIsDeterministic)
{
    const FeatureCorpus a = smallCorpus(44);
    const FeatureCorpus b = smallCorpus(44);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (std::size_t i = 0; i < a.programs.size(); ++i) {
        const auto &wa = a.programs[i].windows(10000);
        const auto &wb = b.programs[i].windows(10000);
        ASSERT_EQ(wa.size(), wb.size());
        for (std::size_t w = 0; w < wa.size(); ++w) {
            EXPECT_EQ(wa[w].opcodeCounts, wb[w].opcodeCounts);
            EXPECT_EQ(wa[w].memDeltaBins, wb[w].memDeltaBins);
            EXPECT_EQ(wa[w].events, wb[w].events);
        }
    }
}

TEST(Corpus, MissingPeriodPanics)
{
    const FeatureCorpus corpus = smallCorpus();
    EXPECT_DEATH(corpus.programs[0].windows(1234), "no windows");
}

TEST(Split, PartitionsAllPrograms)
{
    const FeatureCorpus corpus = smallCorpus();
    const SplitIndices split = stratifiedSplit(corpus, 7);

    std::set<std::size_t> all;
    for (std::size_t i : split.victimTrain)
        EXPECT_TRUE(all.insert(i).second);
    for (std::size_t i : split.attackerTrain)
        EXPECT_TRUE(all.insert(i).second);
    for (std::size_t i : split.attackerTest)
        EXPECT_TRUE(all.insert(i).second);
    EXPECT_EQ(all.size(), corpus.programs.size());
}

TEST(Split, ProportionsRoughly602020)
{
    const FeatureCorpus corpus = smallCorpus();
    const SplitIndices split = stratifiedSplit(corpus, 8);
    const double n = static_cast<double>(corpus.programs.size());
    EXPECT_NEAR(split.victimTrain.size() / n, 0.6, 0.1);
    EXPECT_NEAR(split.attackerTrain.size() / n, 0.2, 0.1);
    EXPECT_NEAR(split.attackerTest.size() / n, 0.2, 0.1);
}

TEST(Split, EverySubsetHasBothClasses)
{
    const FeatureCorpus corpus = smallCorpus();
    const SplitIndices split = stratifiedSplit(corpus, 9);
    auto has_both = [&](const std::vector<std::size_t> &idx) {
        bool mal = false;
        bool ben = false;
        for (std::size_t i : idx) {
            (corpus.programs[i].malware ? mal : ben) = true;
        }
        return mal && ben;
    };
    EXPECT_TRUE(has_both(split.victimTrain));
    EXPECT_TRUE(has_both(split.attackerTrain));
    EXPECT_TRUE(has_both(split.attackerTest));
}

TEST(Split, StratifiedByFamily)
{
    const FeatureCorpus corpus = smallCorpus();
    const SplitIndices split = stratifiedSplit(corpus, 10);
    // Every malware family (4 members each) must appear in the
    // victim training set.
    std::set<std::uint32_t> victim_families;
    for (std::size_t i : split.victimTrain) {
        if (corpus.programs[i].malware)
            victim_families.insert(corpus.programs[i].family);
    }
    EXPECT_EQ(victim_families.size(), 6u);
}

TEST(Split, DeterministicPerSeed)
{
    const FeatureCorpus corpus = smallCorpus();
    const SplitIndices a = stratifiedSplit(corpus, 11);
    const SplitIndices b = stratifiedSplit(corpus, 11);
    EXPECT_EQ(a.victimTrain, b.victimTrain);
    EXPECT_EQ(a.attackerTrain, b.attackerTrain);
    EXPECT_EQ(a.attackerTest, b.attackerTest);

    const SplitIndices c = stratifiedSplit(corpus, 12);
    EXPECT_NE(a.victimTrain, c.victimTrain);
}

TEST(Corpus, EmitPartialWindowsKeepsTheTail)
{
    trace::GeneratorConfig gen;
    gen.benignCount = 2;
    gen.malwareCount = 2;
    gen.seed = 55;
    const auto programs =
        trace::ProgramGenerator(gen).generateCorpus();

    // 32000 instructions: 6 full 5K windows + a 2K tail, 3 full 10K
    // windows + the same 2K tail.
    ExtractConfig extract;
    extract.periods = {5000, 10000};
    extract.traceInsts = 32000;

    const FeatureCorpus strict = extractCorpus(programs, extract);
    extract.emitPartialWindows = true;
    const FeatureCorpus flushed = extractCorpus(programs, extract);

    for (std::size_t i = 0; i < programs.size(); ++i) {
        const ProgramFeatures &s = strict.programs[i];
        const ProgramFeatures &f = flushed.programs[i];
        EXPECT_EQ(s.windows(5000).size(), 6u);
        EXPECT_EQ(s.windows(10000).size(), 3u);
        ASSERT_EQ(f.windows(5000).size(), 7u);
        ASSERT_EQ(f.windows(10000).size(), 4u);
        // The full windows are identical to the strict extraction;
        // only the flagged tail is new.
        for (std::size_t w = 0; w < 6; ++w) {
            EXPECT_FALSE(f.windows(5000)[w].truncated);
            EXPECT_EQ(f.windows(5000)[w].opcodeCounts,
                      s.windows(5000)[w].opcodeCounts);
        }
        EXPECT_TRUE(f.windows(5000).back().truncated);
        EXPECT_EQ(f.windows(5000).back().instCount, 2000u);
        EXPECT_TRUE(f.windows(10000).back().truncated);
        EXPECT_EQ(f.windows(10000).back().instCount, 2000u);
    }
}

TEST(Corpus, InjectedFracZeroForCleanPrograms)
{
    const FeatureCorpus corpus = smallCorpus();
    for (const ProgramFeatures &prog : corpus.programs) {
        for (const RawWindow &w : prog.windows(10000))
            EXPECT_EQ(w.injectedFrac, 0.0);
    }
}

} // namespace
