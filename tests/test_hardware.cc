/**
 * @file
 * Tests of the analytic hardware cost model.
 */

#include <gtest/gtest.h>

#include "core/hardware_model.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::core;
using features::FeatureKind;
using features::FeatureSpec;

FeatureSpec
spec(FeatureKind kind, std::uint32_t period)
{
    FeatureSpec s;
    s.kind = kind;
    s.period = period;
    return s;
}

std::vector<FeatureSpec>
threeFeatureOnePeriod()
{
    return {spec(FeatureKind::Instructions, 10000),
            spec(FeatureKind::Memory, 10000),
            spec(FeatureKind::Architectural, 10000)};
}

TEST(Hardware, MatchesPaperCalibrationPoint)
{
    // The paper's FPGA prototype: three features, one period, on an
    // AO486 core -> +1.72% area, +0.78% power. The model must land
    // in that neighbourhood.
    const HwEstimate est =
        estimateHardware(threeFeatureOnePeriod(), "LR");
    EXPECT_NEAR(est.areaOverheadPct, 1.72, 0.35);
    EXPECT_NEAR(est.powerOverheadPct, 0.78, 0.35);
}

TEST(Hardware, ExtraPeriodsAreNearlyFree)
{
    // The paper: "having detectors operating on the same features
    // with different period does not substantially increase the
    // hardware complexity".
    auto six = threeFeatureOnePeriod();
    six.push_back(spec(FeatureKind::Instructions, 5000));
    six.push_back(spec(FeatureKind::Memory, 5000));
    six.push_back(spec(FeatureKind::Architectural, 5000));

    const HwEstimate three =
        estimateHardware(threeFeatureOnePeriod(), "LR");
    const HwEstimate doubled = estimateHardware(six, "LR");
    EXPECT_GT(doubled.logicElements, three.logicElements);
    // Less than 15% more logic for twice the detectors.
    EXPECT_LT(doubled.logicElements, three.logicElements * 1.15);
    // But the weight storage doubles.
    EXPECT_NEAR(doubled.sramBits, 2.0 * three.sramBits, 1.0);
}

TEST(Hardware, MoreFeaturesCostMore)
{
    const HwEstimate one = estimateHardware(
        {spec(FeatureKind::Instructions, 10000)}, "LR");
    const HwEstimate three =
        estimateHardware(threeFeatureOnePeriod(), "LR");
    EXPECT_GT(three.logicElements, one.logicElements);
    EXPECT_GT(three.sramBits, one.sramBits);
}

TEST(Hardware, NnCostsMoreThanLr)
{
    const HwEstimate lr =
        estimateHardware(threeFeatureOnePeriod(), "LR");
    const HwEstimate nn =
        estimateHardware(threeFeatureOnePeriod(), "NN");
    EXPECT_GT(nn.logicElements, lr.logicElements);
    // NN weight storage is quadratic in the feature dimension.
    EXPECT_GT(nn.sramBits, 5.0 * lr.sramBits);
}

TEST(Hardware, PowerScalesWithLogicAndSram)
{
    const CoreBaseline baseline;
    const HwEstimate est =
        estimateHardware(threeFeatureOnePeriod(), "LR", baseline);
    const double expected =
        est.logicElements * baseline.powerPerLeMw +
        est.sramBits / 1024.0 * baseline.powerPerSramKbitMw;
    EXPECT_NEAR(est.powerMw, expected, 1e-9);
}

TEST(Hardware, OverheadsRelativeToBaseline)
{
    CoreBaseline big;
    big.coreLogicElements = 300000.0;  // a 10x bigger host core
    const HwEstimate small_core =
        estimateHardware(threeFeatureOnePeriod(), "LR");
    const HwEstimate big_core =
        estimateHardware(threeFeatureOnePeriod(), "LR", big);
    EXPECT_NEAR(big_core.areaOverheadPct,
                small_core.areaOverheadPct / 10.0, 0.01);
}

TEST(Hardware, RejectsBadInput)
{
    EXPECT_EXIT(estimateHardware({}, "LR"),
                ::testing::ExitedWithCode(1), "at least one spec");
    EXPECT_EXIT(estimateHardware(threeFeatureOnePeriod(), "DT"),
                ::testing::ExitedWithCode(1), "LR and NN");
}

TEST(Hardware, InstructionsSelectionWidthUsedWhenPinned)
{
    auto pinned = spec(FeatureKind::Instructions, 10000);
    pinned.opcodeSel = {1, 2, 3, 4, 5, 6, 7, 8};  // dim 8
    const HwEstimate small = estimateHardware({pinned}, "LR");
    const HwEstimate dflt = estimateHardware(
        {spec(FeatureKind::Instructions, 10000)}, "LR");
    EXPECT_LT(small.sramBits, dflt.sramBits);
}

} // namespace
