/**
 * @file
 * Tests of the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hh"

namespace
{

using rhmd::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.5);
    }
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(3);
    for (int i = 0; i < 5000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    constexpr std::size_t buckets = 10;
    std::vector<std::size_t> counts(buckets, 0);
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(buckets)];
    for (std::size_t c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 10.0,
                    5.0 * std::sqrt(n / 10.0));
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, RangeSingleton)
{
    Rng rng(12);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.range(7, 7), 7);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(14);
    int hits = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(15);
    double sum = 0.0;
    double sumsq = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(16);
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, GeometricMean)
{
    Rng rng(17);
    const double p = 0.25;
    double sum = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricOneIsZero)
{
    Rng rng(18);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(19);
    const std::vector<double> weights{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, WeightedIndexSingleEntry)
{
    Rng rng(20);
    const std::vector<double> weights{2.5};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.weightedIndex(weights), 0u);
}

TEST(Rng, PerturbedSimplexIsNormalized)
{
    Rng rng(21);
    const std::vector<double> base{0.2, 0.3, 0.5};
    for (int i = 0; i < 100; ++i) {
        const auto v = rng.perturbedSimplex(base, 0.4);
        double total = 0.0;
        for (double x : v) {
            ASSERT_GE(x, 0.0);
            total += x;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Rng, PerturbedSimplexZeroSpreadIsIdentity)
{
    Rng rng(22);
    const std::vector<double> base{0.1, 0.9};
    const auto v = rng.perturbedSimplex(base, 0.0);
    EXPECT_NEAR(v[0], 0.1, 1e-12);
    EXPECT_NEAR(v[1], 0.9, 1e-12);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(23);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(perm.size(), 100u);
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmpty)
{
    Rng rng(24);
    EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(25);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

/** Uniformity across many seeds (property sweep). */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds)
{
    Rng rng(GetParam());
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.015);
}

TEST_P(RngSeedSweep, BitsLookBalanced)
{
    Rng rng(GetParam());
    int ones = 0;
    constexpr int n = 2000;
    for (int i = 0; i < n; ++i)
        ones += __builtin_popcountll(rng.next());
    EXPECT_NEAR(ones / (64.0 * n), 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL,
                                           0xdeadbeefULL,
                                           0xffffffffffffffffULL));

} // namespace
