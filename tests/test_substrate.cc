/**
 * @file
 * Property tests of the substrate mechanisms DESIGN.md's calibration
 * section documents: quota sampling, phase behaviour, per-function
 * mixes, and bimodal hardness. These are the properties the paper's
 * figures depend on, so they are pinned here.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/extractor.hh"
#include "support/stats.hh"
#include "trace/generator.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::trace;

/** Dynamic opcode frequencies of one program execution. */
std::vector<double>
dynamicMix(const Program &prog, std::uint64_t insts,
           bool phases = true, std::uint64_t seed = 1)
{
    class CountSink : public TraceSink
    {
      public:
        void
        consume(const DynInst &inst) override
        {
            ++counts[static_cast<std::size_t>(inst.op)];
            ++total;
        }
        std::array<std::uint64_t, kNumOpClasses> counts{};
        std::uint64_t total = 0;
    };
    CountSink sink;
    Executor(prog, seed, phases).run(insts, sink);
    std::vector<double> mix(kNumOpClasses);
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        mix[i] = static_cast<double>(sink.counts[i]) /
                 static_cast<double>(sink.total);
    return mix;
}

/** Cosine similarity between two non-negative vectors. */
double
cosine(const std::vector<double> &a, const std::vector<double> &b)
{
    return dot(a, b) / (norm(a) * norm(b) + 1e-12);
}

GeneratorConfig
config(double quota, double hard_frac = 0.0)
{
    GeneratorConfig cfg;
    cfg.benignCount = 8;
    cfg.malwareCount = 8;
    cfg.seed = 99;
    cfg.quotaFrac = quota;
    cfg.hardFrac = hard_frac;
    return cfg;
}

TEST(Substrate, DynamicMixTracksProfileMix)
{
    // Quota sampling is there so the executed instruction mix of a
    // program resembles its family's body mix (restricted to
    // non-control opcodes).
    const auto &profiles = allProfiles();
    const ProgramGenerator gen(config(0.7));
    for (std::size_t f = 0; f < profiles.size(); ++f) {
        const Program prog = gen.generate(
            profiles[f], static_cast<std::uint32_t>(f), 1234 + f);
        const std::vector<double> executed =
            dynamicMix(prog, 60000);
        // Project the executed mix onto the non-control classes.
        std::vector<double> body_part(kNumOpClasses, 0.0);
        for (std::size_t i = 0; i < kNumOpClasses; ++i) {
            if (!isControlFlow(opFromIndex(i)))
                body_part[i] = executed[i];
        }
        std::vector<double> profile_mix = profiles[f].bodyMix;
        normalizeInPlace(profile_mix);
        // Short-block families dilute more into control flow and
        // carry more per-function jitter, hence the modest floor.
        EXPECT_GT(cosine(body_part, profile_mix), 0.7)
            << profiles[f].name;
    }
}

TEST(Substrate, QuotaSamplingReducesCrossProgramVariance)
{
    // Without quota sampling, two programs of the same family have
    // far more divergent dynamic mixes.
    auto spread_for = [](double quota) {
        const ProgramGenerator gen(config(quota));
        const auto &profile = benignProfiles()[0];
        std::vector<std::vector<double>> mixes;
        for (std::uint64_t s = 0; s < 6; ++s) {
            const Program prog = gen.generate(profile, 0, 500 + s);
            mixes.push_back(dynamicMix(prog, 40000));
        }
        double total = 0.0;
        int pairs = 0;
        for (std::size_t a = 0; a < mixes.size(); ++a) {
            for (std::size_t b = a + 1; b < mixes.size(); ++b) {
                total += cosine(mixes[a], mixes[b]);
                ++pairs;
            }
        }
        return total / pairs;
    };
    EXPECT_GT(spread_for(0.7), spread_for(0.0) + 0.01);
}

TEST(Substrate, PhaseBiasVariesBranchBehaviourAcrossWindows)
{
    // A single self-loop with p = 0.7: without phases the per-window
    // taken fraction only carries binomial noise; the phase bias
    // (p -> p^gamma) makes it swing window to window.
    Program prog;
    prog.name = "loop";
    prog.regions.push_back({0x7fff00000000ULL, 1ULL << 20});
    Function fn;
    BasicBlock b0;
    b0.body.push_back({OpClass::IntAdd, {}, false});
    b0.term.kind = TermKind::CondBranch;
    b0.term.takenTarget = 0;
    b0.term.fallTarget = 1;
    b0.term.takenProb = 0.7;
    fn.blocks.push_back(b0);
    BasicBlock b1;
    b1.term.kind = TermKind::Exit;
    fn.blocks.push_back(b1);
    prog.functions.push_back(fn);
    prog.layoutCode();

    // The loop body (IntAdd) executes once per taken branch, the
    // exit path (SystemOp) once per not-taken one, so the per-window
    // IntAdd fraction tracks the effective taken probability.
    auto loop_spread = [&](bool phases) {
        features::FeatureSession session({10000});
        Executor(prog, 5, phases).run(300000, session);
        RunningStats stats;
        for (const auto &w : session.windows(10000)) {
            stats.add(static_cast<double>(
                          w.opcodeCounts[static_cast<std::size_t>(
                              OpClass::IntAdd)]) /
                      static_cast<double>(w.instCount));
        }
        return stats.stddev();
    };
    EXPECT_GT(loop_spread(true), loop_spread(false) * 2.0);
}

TEST(Substrate, HardProgramsSitNearTheGlobalMean)
{
    // hardFrac = 1: every program heavily blended -> dynamic mixes of
    // malware and benign programs are much more alike.
    auto class_gap = [](double hard_frac) {
        GeneratorConfig cfg = config(0.7, hard_frac);
        cfg.benignCount = 10;
        cfg.malwareCount = 10;
        const auto corpus = ProgramGenerator(cfg).generateCorpus();
        std::vector<double> mal(kNumOpClasses, 0.0);
        std::vector<double> ben(kNumOpClasses, 0.0);
        for (const Program &prog : corpus) {
            const auto mix = dynamicMix(prog, 30000);
            axpy(prog.malware ? mal : ben, 0.1, mix);
        }
        // Only the body-mix dimensions: CFG structure (branch/call
        // rates) is not what the blend controls.
        std::vector<double> diff(kNumOpClasses, 0.0);
        for (std::size_t i = 0; i < kNumOpClasses; ++i) {
            if (!isControlFlow(opFromIndex(i)))
                diff[i] = mal[i] - ben[i];
        }
        return norm(diff);
    };
    EXPECT_GT(class_gap(0.0), class_gap(1.0) * 1.3);
}

TEST(Substrate, FunctionsHaveDistinctMixes)
{
    // functionMixSpread gives each function its own jittered mix; a
    // program's functions should therefore differ in composition.
    const ProgramGenerator gen(config(0.9));
    const Program prog =
        gen.generate(benignProfiles()[2], 2, 4242);
    ASSERT_GE(prog.functions.size(), 2u);

    auto static_mix = [](const Function &fn) {
        std::vector<double> mix(kNumOpClasses, 0.0);
        double total = 0.0;
        for (const auto &block : fn.blocks) {
            for (const auto &inst : block.body) {
                mix[static_cast<std::size_t>(inst.op)] += 1.0;
                total += 1.0;
            }
        }
        for (double &v : mix)
            v /= std::max(total, 1.0);
        return mix;
    };
    const auto a = static_mix(prog.functions[0]);
    const auto b = static_mix(prog.functions[1]);
    // Similar overall (same program) but not identical.
    EXPECT_GT(cosine(a, b), 0.5);
    EXPECT_LT(cosine(a, b), 0.999);
}

TEST(Substrate, UnalignedRateTracksProfile)
{
    // packed_dropper declares 12% intentional misalignment; browser
    // 5%. The executed unaligned-access rates must order the same.
    const ProgramGenerator gen(config(0.7));
    auto unaligned_rate = [&](const FamilyProfile &profile,
                              std::uint32_t family) {
        const Program prog = gen.generate(profile, family, 31337);
        features::FeatureSession session({10000});
        Executor(prog, 3).run(100000, session);
        std::uint64_t unaligned = 0;
        std::uint64_t mem = 0;
        for (const auto &w : session.windows(10000)) {
            unaligned += w.events[static_cast<std::size_t>(
                uarch::Event::Unaligned)];
            mem += w.events[static_cast<std::size_t>(
                       uarch::Event::Loads)] +
                   w.events[static_cast<std::size_t>(
                       uarch::Event::Stores)];
        }
        return static_cast<double>(unaligned) /
               static_cast<double>(mem);
    };
    const double dropper = unaligned_rate(malwareProfiles()[4], 10);
    const double compute = unaligned_rate(benignProfiles()[2], 2);
    EXPECT_GT(dropper, compute * 2.0);
}

TEST(Substrate, PhaseJumpKeepsBudgetAndValidity)
{
    // Phase jumps re-dispatch control; execution must still emit the
    // exact budget with valid pcs.
    const ProgramGenerator gen(config(0.7));
    const Program prog =
        gen.generate(malwareProfiles()[0], 6, 90210);
    class PcSink : public TraceSink
    {
      public:
        void
        consume(const DynInst &inst) override
        {
            ++count;
            min_pc = std::min(min_pc, inst.pc);
            max_pc = std::max(max_pc, inst.pc);
        }
        std::uint64_t count = 0;
        std::uint64_t min_pc = ~0ULL;
        std::uint64_t max_pc = 0;
    };
    PcSink sink;
    Executor(prog, 11).run(123456, sink);
    EXPECT_EQ(sink.count, 123456u);
    EXPECT_GE(sink.min_pc, 0x400000u);
    EXPECT_LE(sink.max_pc, 0x400000u + prog.textBytes() + 4096);
}

} // namespace
