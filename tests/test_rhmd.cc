/**
 * @file
 * Tests of the resilient (randomized) detector pool.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/rhmd.hh"
#include "support/stats.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::core;

const Experiment &
sharedExperiment()
{
    static const Experiment exp = [] {
        ExperimentConfig config;
        config.benignCount = 60;
        config.malwareCount = 120;
        config.periods = {5000, 10000};
        config.traceInsts = 100000;
        config.seed = 91;
        return Experiment::build(config);
    }();
    return exp;
}

std::vector<features::FeatureSpec>
twoFeatureSpecs()
{
    features::FeatureSpec inst;
    inst.kind = features::FeatureKind::Instructions;
    inst.period = 10000;
    features::FeatureSpec mem;
    mem.kind = features::FeatureKind::Memory;
    mem.period = 10000;
    return {inst, mem};
}

std::unique_ptr<Rhmd>
twoDetectorPool(std::uint64_t seed = 3)
{
    const Experiment &exp = sharedExperiment();
    return buildRhmd("LR", twoFeatureSpecs(), exp.corpus(),
                     exp.split().victimTrain, 16, seed);
}

TEST(Rhmd, PoolBasics)
{
    const auto pool = twoDetectorPool();
    EXPECT_EQ(pool->poolSize(), 2u);
    EXPECT_EQ(pool->decisionPeriod(), 10000u);
    EXPECT_NEAR(pool->policy()[0], 0.5, 1e-12);
    EXPECT_NEAR(pool->policy()[1], 0.5, 1e-12);
}

TEST(Rhmd, MixedPeriodEpochIsMaxPeriod)
{
    const Experiment &exp = sharedExperiment();
    features::FeatureSpec inst5;
    inst5.kind = features::FeatureKind::Instructions;
    inst5.period = 5000;
    features::FeatureSpec mem10;
    mem10.kind = features::FeatureKind::Memory;
    mem10.period = 10000;
    const auto pool = buildRhmd("LR", {inst5, mem10}, exp.corpus(),
                                exp.split().victimTrain, 16, 4);
    EXPECT_EQ(pool->decisionPeriod(), 10000u);
    // Decisions per program = number of 10K epochs.
    const auto &prog = exp.corpus().programs[0];
    EXPECT_EQ(pool->decide(prog).size(), prog.windows(10000).size());
}

TEST(Rhmd, SelectionIsUniformChiSquared)
{
    const Experiment &exp = sharedExperiment();
    auto pool = twoDetectorPool(7);
    for (std::size_t i = 0; i < exp.corpus().programs.size(); ++i)
        pool->decide(exp.corpus().programs[i]);
    const auto &counts = pool->selectionCounts();
    const std::size_t total = counts[0] + counts[1];
    ASSERT_GT(total, 200u);
    // Chi-squared with 1 dof: 10.8 is the 0.1% critical value.
    EXPECT_LT(chiSquared(counts, pool->policy()), 10.8);
}

TEST(Rhmd, NonUniformPolicyRespected)
{
    const Experiment &exp = sharedExperiment();
    auto detectors = [&] {
        std::vector<std::unique_ptr<Hmd>> pool;
        for (const auto &spec : twoFeatureSpecs()) {
            HmdConfig config;
            config.algorithm = "LR";
            config.specs = {spec};
            auto det = std::make_unique<Hmd>(config);
            det->trainOnPrograms(exp.corpus(), exp.split().victimTrain);
            pool.push_back(std::move(det));
        }
        return pool;
    }();
    Rhmd pool(std::move(detectors), {0.9, 0.1}, 11);
    for (const auto &prog : exp.corpus().programs)
        pool.decide(prog);
    const auto &counts = pool.selectionCounts();
    const double frac = static_cast<double>(counts[0]) /
                        static_cast<double>(counts[0] + counts[1]);
    EXPECT_NEAR(frac, 0.9, 0.05);
}

TEST(Rhmd, DecisionsComeFromPoolMembers)
{
    // With a single-detector "pool", decisions must exactly match
    // that detector's own decisions.
    const Experiment &exp = sharedExperiment();
    features::FeatureSpec inst;
    inst.kind = features::FeatureKind::Instructions;
    inst.period = 10000;
    auto pool = buildRhmd("LR", {inst}, exp.corpus(),
                          exp.split().victimTrain, 16, 5);
    ASSERT_EQ(pool->poolSize(), 1u);
    Hmd &only = *pool->detectors()[0];
    for (std::size_t i = 0; i < 5; ++i) {
        const auto &prog = exp.corpus().programs[i];
        EXPECT_EQ(pool->decide(prog), only.decide(prog));
    }
}

TEST(Rhmd, ReseedReproducesDecisionSequence)
{
    const Experiment &exp = sharedExperiment();
    auto pool = twoDetectorPool(13);
    const auto &prog = exp.corpus().programs[1];
    pool->reseed(42);
    const auto a = pool->decide(prog);
    pool->reseed(42);
    const auto b = pool->decide(prog);
    EXPECT_EQ(a, b);
}

TEST(Rhmd, PoolDetectsMalware)
{
    const Experiment &exp = sharedExperiment();
    auto pool = twoDetectorPool(17);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const auto test_ben = exp.benignOf(exp.split().attackerTest);
    const double sens = exp.detectionRateOn(*pool, test_mal);
    const double fpr = exp.detectionRateOn(*pool, test_ben);
    EXPECT_GT(sens, fpr + 0.2);
}

TEST(Rhmd, PolicyToleratesFloatRoundoff)
{
    // A user-computed policy that is off by less than 1e-6 (e.g.
    // accumulated 1/N round-off) is accepted and renormalized
    // instead of aborting.
    const Experiment &exp = sharedExperiment();
    std::vector<std::unique_ptr<Hmd>> dets;
    for (const auto &spec : twoFeatureSpecs()) {
        HmdConfig config;
        config.algorithm = "LR";
        config.specs = {spec};
        auto det = std::make_unique<Hmd>(config);
        det->trainOnPrograms(exp.corpus(), exp.split().victimTrain);
        dets.push_back(std::move(det));
    }
    Rhmd pool(std::move(dets), {0.5 + 5e-7, 0.5}, 23);
    const double total = pool.policy()[0] + pool.policy()[1];
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_GT(pool.policy()[0], pool.policy()[1]);
}

TEST(Rhmd, ValidatesConstruction)
{
    EXPECT_EXIT(Rhmd({}, {}, 1), ::testing::ExitedWithCode(1),
                "at least one detector");

    const Experiment &exp = sharedExperiment();
    auto make_trained = [&] {
        HmdConfig config;
        config.algorithm = "LR";
        config.specs = twoFeatureSpecs();
        config.specs.resize(1);
        auto det = std::make_unique<Hmd>(config);
        det->trainOnPrograms(exp.corpus(), exp.split().victimTrain);
        return det;
    };

    {
        std::vector<std::unique_ptr<Hmd>> dets;
        dets.push_back(make_trained());
        EXPECT_EXIT(Rhmd(std::move(dets), {0.5, 0.5}, 1),
                    ::testing::ExitedWithCode(1), "policy size");
    }
    {
        std::vector<std::unique_ptr<Hmd>> dets;
        dets.push_back(make_trained());
        EXPECT_EXIT(Rhmd(std::move(dets), {0.7}, 1),
                    ::testing::ExitedWithCode(1), "sum to 1");
    }
    {
        // Untrained detector is rejected.
        HmdConfig config;
        config.algorithm = "LR";
        config.specs = twoFeatureSpecs();
        config.specs.resize(1);
        std::vector<std::unique_ptr<Hmd>> dets;
        dets.push_back(std::make_unique<Hmd>(config));
        EXPECT_EXIT(Rhmd(std::move(dets), {}, 1),
                    ::testing::ExitedWithCode(1), "trained");
    }
}

TEST(Rhmd, RejectsNonDividingPeriods)
{
    // 5000 and 10000 are fine; fabricate 5000+10000 pool where epoch
    // check passes, then check a bad combination via a tiny corpus
    // with period 3000... simpler: directly build detectors at 5000
    // and 10000 (ok), then at 5000-only pool (ok). A failing case
    // needs periods {4000, 10000}: 10000 % 4000 != 0.
    ExperimentConfig config;
    config.benignCount = 6;
    config.malwareCount = 6;
    config.periods = {4000, 10000};
    config.traceInsts = 40000;
    config.seed = 17;
    const Experiment small = Experiment::build(config);

    features::FeatureSpec a;
    a.kind = features::FeatureKind::Instructions;
    a.period = 4000;
    features::FeatureSpec b;
    b.kind = features::FeatureKind::Memory;
    b.period = 10000;
    EXPECT_EXIT(buildRhmd("LR", {a, b}, small.corpus(),
                          small.split().victimTrain, 16, 3),
                ::testing::ExitedWithCode(1), "does not divide");
}

} // namespace
