/**
 * @file
 * Tests of the recoverable-error layer: Status, StatusOr, and
 * retry-with-backoff.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/retry.hh"
#include "support/status.hh"

namespace
{

using namespace rhmd::support;

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::Ok);
    EXPECT_EQ(status.toString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status status = dataLossError("lost ", 3, " windows");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::DataLoss);
    EXPECT_EQ(status.message(), "lost 3 windows");
    EXPECT_EQ(status.toString(), "DATA_LOSS: lost 3 windows");
}

TEST(Status, EveryCodeHasAName)
{
    for (StatusCode code :
         {StatusCode::Ok, StatusCode::InvalidArgument,
          StatusCode::DataLoss, StatusCode::FailedPrecondition,
          StatusCode::Unavailable, StatusCode::OutOfRange,
          StatusCode::Internal}) {
        EXPECT_FALSE(statusCodeName(code).empty());
    }
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> result(42);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError)
{
    StatusOr<int> result = unavailableError("sensor glitch");
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::Unavailable);
}

TEST(StatusOr, MovesValueOut)
{
    StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
    const std::vector<int> moved = std::move(result).value();
    EXPECT_EQ(moved.size(), 3u);
}

TEST(Retry, BackoffGrowsExponentiallyAndCaps)
{
    RetryPolicy policy;
    policy.initialBackoff = 1.0;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoff = 8.0;
    EXPECT_DOUBLE_EQ(backoffDelay(policy, 1), 1.0);
    EXPECT_DOUBLE_EQ(backoffDelay(policy, 2), 2.0);
    EXPECT_DOUBLE_EQ(backoffDelay(policy, 3), 4.0);
    EXPECT_DOUBLE_EQ(backoffDelay(policy, 4), 8.0);
    EXPECT_DOUBLE_EQ(backoffDelay(policy, 5), 8.0);
}

TEST(Retry, SucceedsAfterTransientFailures)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    int calls = 0;
    RetryStats stats;
    auto result = retryWithBackoff(
        policy,
        [&]() -> StatusOr<int> {
            if (++calls < 3)
                return unavailableError("transient");
            return 7;
        },
        &stats);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(*result, 7);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_DOUBLE_EQ(stats.backoffSpent, 1.0 + 2.0);
}

TEST(Retry, ExhaustsAttemptBudget)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    int calls = 0;
    auto result = retryWithBackoff(policy, [&]() -> StatusOr<int> {
        ++calls;
        return unavailableError("still down");
    });
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::Unavailable);
    EXPECT_EQ(calls, 3);
}

TEST(Retry, NonTransientErrorsAreNotRetried)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    int calls = 0;
    auto result = retryWithBackoff(policy, [&]() -> StatusOr<int> {
        ++calls;
        return dataLossError("corrupt");
    });
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::DataLoss);
    EXPECT_EQ(calls, 1);
}

TEST(Retry, WorksWithPlainStatus)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    int calls = 0;
    const Status status = retryWithBackoff(policy, [&]() -> Status {
        if (++calls < 2)
            return unavailableError("transient");
        return {};
    });
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(calls, 2);
}

TEST(Retry, NonTransientErrorNeverSleepsOrCountsRetries)
{
    // The short-circuit must happen before any backoff bookkeeping:
    // a permanent error costs one attempt, zero waiting.
    RetryPolicy policy;
    policy.maxAttempts = 5;
    int calls = 0;
    RetryStats stats;
    std::vector<double> waits;
    auto result = retryWithBackoff(
        policy,
        [&]() -> StatusOr<int> {
            ++calls;
            return invalidArgumentError("bad request");
        },
        &stats, [&](double delay) { waits.push_back(delay); });
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(waits.empty());
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_DOUBLE_EQ(stats.backoffSpent, 0.0);
}

TEST(Retry, BackoffCapBoundsEveryWait)
{
    // With a fast multiplier the cap dominates the schedule:
    // 1, 4, then 8 forever.
    RetryPolicy policy;
    policy.maxAttempts = 6;
    policy.initialBackoff = 1.0;
    policy.backoffMultiplier = 4.0;
    policy.maxBackoff = 8.0;
    RetryStats stats;
    std::vector<double> waits;
    retryWithBackoff(
        policy, [&]() -> Status { return unavailableError("down"); },
        &stats, [&](double delay) { waits.push_back(delay); });
    const std::vector<double> expected{1.0, 4.0, 8.0, 8.0, 8.0};
    EXPECT_EQ(waits, expected);
    EXPECT_DOUBLE_EQ(stats.backoffSpent, 1.0 + 4.0 + 8.0 * 3);
}

TEST(Retry, StatsAccumulateAcrossCalls)
{
    // One RetryStats threads through a whole deployment run; each
    // retried call adds to it instead of resetting it.
    RetryPolicy policy;
    policy.maxAttempts = 3;
    RetryStats stats;
    for (int round = 0; round < 2; ++round) {
        int calls = 0;
        retryWithBackoff(
            policy,
            [&]() -> Status {
                if (++calls < 3)
                    return unavailableError("transient");
                return {};
            },
            &stats);
    }
    EXPECT_EQ(stats.retries, 4u);
    EXPECT_DOUBLE_EQ(stats.backoffSpent, 2 * (1.0 + 2.0));
}

TEST(Retry, SleeperSeesTheBackoffSchedule)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    std::vector<double> waits;
    retryWithBackoff(
        policy, [&]() -> Status { return unavailableError("down"); },
        nullptr, [&](double delay) { waits.push_back(delay); });
    ASSERT_EQ(waits.size(), 3u);
    EXPECT_DOUBLE_EQ(waits[0], 1.0);
    EXPECT_DOUBLE_EQ(waits[1], 2.0);
    EXPECT_DOUBLE_EQ(waits[2], 4.0);
}

} // namespace
