/**
 * @file
 * Tests of black-box reverse-engineering.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/reverse_engineer.hh"
#include "core/rhmd.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::core;

const Experiment &
sharedExperiment()
{
    static const Experiment exp = [] {
        ExperimentConfig config;
        config.benignCount = 72;
        config.malwareCount = 144;
        config.periods = {5000, 10000};
        config.traceInsts = 100000;
        config.seed = 2024;
        return Experiment::build(config);
    }();
    return exp;
}

ProxyConfig
proxyConfig(const std::string &algorithm,
            features::FeatureKind kind = features::FeatureKind::Instructions,
            std::uint32_t period = 10000)
{
    ProxyConfig config;
    config.algorithm = algorithm;
    features::FeatureSpec spec;
    spec.kind = kind;
    spec.period = period;
    config.specs = {spec};
    return config;
}

TEST(Reverse, MatchedHypothesisAgreesWell)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto proxy = buildProxy(*victim, exp.corpus(),
                                  exp.split().attackerTrain,
                                  proxyConfig("NN"));
    const double agree = proxyAgreement(*victim, *proxy, exp.corpus(),
                                        exp.split().attackerTest);
    EXPECT_GT(agree, 0.85);
}

TEST(Reverse, MatchedPeriodBeatsMismatchedPeriod)
{
    // The period-mismatch penalty grows with the trace length (the
    // index-wise pairing drifts further), so this check uses longer
    // traces than the shared experiment.
    ExperimentConfig config;
    config.benignCount = 60;
    config.malwareCount = 120;
    config.periods = {5000, 10000};
    config.traceInsts = 300000;
    config.seed = 606;
    const Experiment exp = Experiment::build(config);

    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto matched = buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain,
        proxyConfig("LR", features::FeatureKind::Instructions, 10000));
    const auto mismatched = buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain,
        proxyConfig("LR", features::FeatureKind::Instructions, 5000));
    const double a_matched = proxyAgreement(
        *victim, *matched, exp.corpus(), exp.split().attackerTest);
    const double a_mismatched = proxyAgreement(
        *victim, *mismatched, exp.corpus(), exp.split().attackerTest);
    EXPECT_GT(a_matched, a_mismatched)
        << "matched " << a_matched << " vs " << a_mismatched;
}

TEST(Reverse, MatchedFeatureBeatsMismatchedFeature)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto matched = buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain,
        proxyConfig("LR", features::FeatureKind::Instructions));
    const auto mismatched = buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain,
        proxyConfig("LR", features::FeatureKind::Architectural));
    const double a_matched = proxyAgreement(
        *victim, *matched, exp.corpus(), exp.split().attackerTest);
    const double a_mismatched = proxyAgreement(
        *victim, *mismatched, exp.corpus(), exp.split().attackerTest);
    EXPECT_GT(a_matched, a_mismatched);
}

TEST(Reverse, RandomizedVictimHarderThanDeterministic)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto det_proxy = buildProxy(*victim, exp.corpus(),
                                      exp.split().attackerTrain,
                                      proxyConfig("NN"));
    const double det_agree = proxyAgreement(
        *victim, *det_proxy, exp.corpus(), exp.split().attackerTest);

    features::FeatureSpec inst;
    inst.kind = features::FeatureKind::Instructions;
    inst.period = 10000;
    features::FeatureSpec mem;
    mem.kind = features::FeatureKind::Memory;
    mem.period = 10000;
    features::FeatureSpec arch;
    arch.kind = features::FeatureKind::Architectural;
    arch.period = 10000;
    auto pool = buildRhmd("LR", {inst, mem, arch}, exp.corpus(),
                          exp.split().victimTrain, 16, 7);
    const auto rand_proxy = buildProxy(*pool, exp.corpus(),
                                       exp.split().attackerTrain,
                                       proxyConfig("NN"));
    const double rand_agree = proxyAgreement(
        *pool, *rand_proxy, exp.corpus(), exp.split().attackerTest);

    EXPECT_GT(det_agree, rand_agree + 0.05)
        << "deterministic " << det_agree << " randomized "
        << rand_agree;
}

TEST(Reverse, AgreementIsAFraction)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "NN", features::FeatureKind::Memory, 10000);
    const auto proxy = buildProxy(
        *victim, exp.corpus(), exp.split().attackerTrain,
        proxyConfig("DT", features::FeatureKind::Memory));
    const double agree = proxyAgreement(*victim, *proxy, exp.corpus(),
                                        exp.split().attackerTest);
    EXPECT_GE(agree, 0.0);
    EXPECT_LE(agree, 1.0);
}

TEST(Reverse, ProxyLearnsVictimNotGroundTruth)
{
    // Train a victim with an inverted threshold (flags everything):
    // the proxy must mimic the victim's behaviour, not the labels.
    const Experiment &exp = sharedExperiment();
    auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);

    // Degenerate victim: decide() comes from an always-malware
    // threshold. Model this via a wrapper detector.
    class AlwaysFlag : public Detector
    {
      public:
        std::uint32_t decisionPeriod() const override { return 10000; }
        std::vector<int>
        decide(const features::ProgramFeatures &prog) override
        {
            return std::vector<int>(prog.windows(10000).size(), 1);
        }
    };

    AlwaysFlag degenerate;
    const auto proxy = buildProxy(degenerate, exp.corpus(),
                                  exp.split().attackerTrain,
                                  proxyConfig("LR"));
    const double agree = proxyAgreement(
        degenerate, *proxy, exp.corpus(), exp.split().attackerTest);
    EXPECT_GT(agree, 0.95);
}

TEST(Reverse, NeedsSpecs)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    ProxyConfig bad;
    bad.algorithm = "LR";
    EXPECT_EXIT(buildProxy(*victim, exp.corpus(),
                           exp.split().attackerTrain, bad),
                ::testing::ExitedWithCode(1), "at least one spec");
}

/** Every attacker algorithm can reverse-engineer an LR victim. */
class ReverseAlgorithmSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReverseAlgorithmSweep, AgreesAboveBaseRate)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto proxy = buildProxy(*victim, exp.corpus(),
                                  exp.split().attackerTrain,
                                  proxyConfig(GetParam()));
    const double agree = proxyAgreement(*victim, *proxy, exp.corpus(),
                                        exp.split().attackerTest);
    // DT is the weakest attacker here, as in the paper's Fig. 4
    // where it also trails LR and NN.
    const double floor = std::string(GetParam()) == "DT" ? 0.65 : 0.75;
    EXPECT_GT(agree, floor) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Attackers, ReverseAlgorithmSweep,
                         ::testing::Values("LR", "DT", "NN", "SVM"));

} // namespace
