/**
 * @file
 * Tests of the classification metrics.
 */

#include <gtest/gtest.h>

#include "ml/metrics.hh"
#include "support/rng.hh"

namespace
{

using namespace rhmd::ml;

TEST(Confusion, RatesFromCounts)
{
    Confusion c;
    c.tp = 8;
    c.fn = 2;
    c.tn = 15;
    c.fp = 5;
    EXPECT_NEAR(c.accuracy(), 23.0 / 30.0, 1e-12);
    EXPECT_NEAR(c.sensitivity(), 0.8, 1e-12);
    EXPECT_NEAR(c.specificity(), 0.75, 1e-12);
}

TEST(Confusion, EmptyIsZero)
{
    Confusion c;
    EXPECT_EQ(c.accuracy(), 0.0);
    EXPECT_EQ(c.sensitivity(), 0.0);
    EXPECT_EQ(c.specificity(), 0.0);
}

TEST(ConfusionAt, ThresholdSplitsScores)
{
    const std::vector<double> scores{0.1, 0.4, 0.6, 0.9};
    const std::vector<int> labels{0, 1, 0, 1};
    const Confusion c = confusionAt(scores, labels, 0.5);
    EXPECT_EQ(c.tp, 1u);  // 0.9
    EXPECT_EQ(c.fn, 1u);  // 0.4
    EXPECT_EQ(c.fp, 1u);  // 0.6
    EXPECT_EQ(c.tn, 1u);  // 0.1
}

TEST(Roc, PerfectClassifierHasAucOne)
{
    const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
    const std::vector<int> labels{1, 1, 0, 0};
    const RocCurve roc = rocCurve(scores, labels);
    EXPECT_NEAR(roc.auc, 1.0, 1e-12);
    EXPECT_NEAR(roc.bestAccuracy, 1.0, 1e-12);
}

TEST(Roc, InvertedClassifierHasAucZero)
{
    const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
    const std::vector<int> labels{1, 1, 0, 0};
    EXPECT_NEAR(auc(scores, labels), 0.0, 1e-12);
}

TEST(Roc, RandomScoresNearHalf)
{
    rhmd::Rng rng(6);
    std::vector<double> scores;
    std::vector<int> labels;
    for (int i = 0; i < 4000; ++i) {
        scores.push_back(rng.uniform());
        labels.push_back(rng.chance(0.5) ? 1 : 0);
    }
    EXPECT_NEAR(auc(scores, labels), 0.5, 0.03);
}

TEST(Roc, HandComputedCase)
{
    // Scores: P:0.8, N:0.6, P:0.4, N:0.2. Of the four (P, N) pairs
    // exactly three rank the positive higher, so AUC = 3/4.
    const std::vector<double> scores{0.8, 0.6, 0.4, 0.2};
    const std::vector<int> labels{1, 0, 1, 0};
    EXPECT_NEAR(auc(scores, labels), 0.75, 1e-12);
}

TEST(Roc, TiedScoresHandledAsOnePoint)
{
    const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
    const std::vector<int> labels{1, 0, 1, 0};
    const RocCurve roc = rocCurve(scores, labels);
    // All tied: the diagonal, AUC 1/2.
    EXPECT_NEAR(roc.auc, 0.5, 1e-12);
}

TEST(Roc, AucEqualsMannWhitney)
{
    rhmd::Rng rng(7);
    std::vector<double> scores;
    std::vector<int> labels;
    for (int i = 0; i < 300; ++i) {
        const bool positive = rng.chance(0.4);
        scores.push_back(positive ? rng.gaussian(1.0, 1.0)
                                  : rng.gaussian(0.0, 1.0));
        labels.push_back(positive ? 1 : 0);
    }
    // Brute-force Mann-Whitney U statistic.
    double wins = 0.0;
    double pairs = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        for (std::size_t j = 0; j < scores.size(); ++j) {
            if (labels[i] == 1 && labels[j] == 0) {
                pairs += 1.0;
                if (scores[i] > scores[j])
                    wins += 1.0;
                else if (scores[i] == scores[j])
                    wins += 0.5;
            }
        }
    }
    EXPECT_NEAR(auc(scores, labels), wins / pairs, 1e-9);
}

TEST(Roc, BestThresholdMaximizesAccuracy)
{
    const std::vector<double> scores{0.9, 0.7, 0.6, 0.3, 0.2, 0.1};
    const std::vector<int> labels{1, 1, 0, 1, 0, 0};
    const RocCurve roc = rocCurve(scores, labels);
    const Confusion at_best =
        confusionAt(scores, labels, roc.bestThreshold);
    EXPECT_NEAR(at_best.accuracy(), roc.bestAccuracy, 1e-12);
    // Check optimality against a dense threshold sweep.
    for (double t = 0.0; t <= 1.0; t += 0.01) {
        EXPECT_LE(confusionAt(scores, labels, t).accuracy(),
                  roc.bestAccuracy + 1e-12);
    }
}

TEST(Roc, RequiresBothClasses)
{
    EXPECT_EXIT(rocCurve({0.5, 0.6}, {1, 1}),
                ::testing::ExitedWithCode(1), "both classes");
}

TEST(Agreement, CountsMatches)
{
    EXPECT_NEAR(agreement({1, 0, 1, 1}, {1, 1, 1, 0}), 0.5, 1e-12);
    EXPECT_NEAR(agreement({1, 1}, {1, 1}), 1.0, 1e-12);
    EXPECT_NEAR(agreement({0}, {1}), 0.0, 1e-12);
}

} // namespace
