/**
 * @file
 * Tests of the classifier factory and model serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/decision_tree.hh"
#include "ml/logistic_regression.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/serialize.hh"
#include "ml/svm.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::ml;

TEST(Factory, MakesEveryAlgorithm)
{
    EXPECT_EQ(makeClassifier("LR")->name(), "LR");
    EXPECT_EQ(makeClassifier("NN")->name(), "NN");
    EXPECT_EQ(makeClassifier("DT")->name(), "DT");
    EXPECT_EQ(makeClassifier("SVM")->name(), "SVM");
    EXPECT_EQ(makeClassifier("RF")->name(), "RF");
}

TEST(Factory, RejectsUnknownName)
{
    EXPECT_EXIT(makeClassifier("GBM"), ::testing::ExitedWithCode(1),
                "unknown classifier");
}

TEST(Serialize, LrRoundTrip)
{
    LogisticRegression lr;
    lr.setParams({0.5, -1.25, 3.0}, 0.75);
    std::stringstream stream;
    saveModel(lr, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "LR");
    for (const auto &x : {std::vector<double>{1.0, 2.0, 3.0},
                          std::vector<double>{-1.0, 0.5, 0.0}}) {
        EXPECT_DOUBLE_EQ(loaded->score(x), lr.score(x));
    }
}

TEST(Serialize, SvmRoundTrip)
{
    LinearSvm svm;
    svm.setParams({1.5, -0.5}, -0.25);
    std::stringstream stream;
    saveModel(svm, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "SVM");
    EXPECT_DOUBLE_EQ(loaded->score({2.0, 1.0}), svm.score({2.0, 1.0}));
}

TEST(Serialize, MlpRoundTrip)
{
    Mlp nn;
    nn.setParams({{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}},
                 {0.01, 0.02, 0.03}, {1.0, -1.0, 0.5}, -0.1);
    std::stringstream stream;
    saveModel(nn, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "NN");
    for (double x = -1.0; x <= 1.0; x += 0.4) {
        EXPECT_NEAR(loaded->score({x, -x}), nn.score({x, -x}), 1e-9);
    }
}

TEST(Serialize, TrainedModelRoundTripPreservesAuc)
{
    Rng gen(50);
    Dataset data;
    for (int i = 0; i < 300; ++i) {
        const bool pos = i % 2 == 0;
        data.add({gen.gaussian(pos ? 1.0 : -1.0, 1.0)}, pos ? 1 : 0);
    }
    LogisticRegression lr;
    Rng rng(1);
    lr.train(data, rng);

    std::stringstream stream;
    saveModel(lr, stream);
    const auto loaded = loadModel(stream);

    std::vector<double> orig;
    std::vector<double> round;
    for (const auto &x : data.x) {
        orig.push_back(lr.score(x));
        round.push_back(loaded->score(x));
    }
    EXPECT_DOUBLE_EQ(auc(orig, data.y), auc(round, data.y));
}

TEST(Serialize, DtIsNotSerializable)
{
    DecisionTree tree;
    std::stringstream stream;
    EXPECT_EXIT(saveModel(tree, stream), ::testing::ExitedWithCode(1),
                "does not support");
}

TEST(Serialize, CorruptStreamIsFatal)
{
    std::stringstream stream("GARBAGE 1 2 3");
    EXPECT_EXIT(loadModel(stream), ::testing::ExitedWithCode(1),
                "unknown model kind");
    std::stringstream truncated("LR\n3 0.5 0.25");
    EXPECT_EXIT(loadModel(truncated), ::testing::ExitedWithCode(1),
                "short vector");
}

} // namespace
