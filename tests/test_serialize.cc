/**
 * @file
 * Tests of the classifier factory and model serialization, including
 * the robustness contract: corrupt, truncated, or wrong-version
 * streams must surface recoverable errors, never crash or abort.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/decision_tree.hh"
#include "ml/logistic_regression.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/serialize.hh"
#include "ml/svm.hh"
#include "runtime/fault_injection.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::ml;

TEST(Factory, MakesEveryAlgorithm)
{
    EXPECT_EQ(makeClassifier("LR")->name(), "LR");
    EXPECT_EQ(makeClassifier("NN")->name(), "NN");
    EXPECT_EQ(makeClassifier("DT")->name(), "DT");
    EXPECT_EQ(makeClassifier("SVM")->name(), "SVM");
    EXPECT_EQ(makeClassifier("RF")->name(), "RF");
}

TEST(Factory, RejectsUnknownName)
{
    EXPECT_EXIT(makeClassifier("GBM"), ::testing::ExitedWithCode(1),
                "unknown classifier");
}

TEST(Serialize, StreamStartsWithMagicAndVersion)
{
    LogisticRegression lr;
    lr.setParams({1.0}, 0.0);
    std::stringstream stream;
    saveModel(lr, stream);
    std::string magic;
    int version = 0;
    stream >> magic >> version;
    EXPECT_EQ(magic, std::string(kModelMagic));
    EXPECT_EQ(version, kModelFormatVersion);
}

TEST(Serialize, LrRoundTrip)
{
    LogisticRegression lr;
    lr.setParams({0.5, -1.25, 3.0}, 0.75);
    std::stringstream stream;
    saveModel(lr, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "LR");
    for (const auto &x : {std::vector<double>{1.0, 2.0, 3.0},
                          std::vector<double>{-1.0, 0.5, 0.0}}) {
        EXPECT_DOUBLE_EQ(loaded->score(x), lr.score(x));
    }
}

TEST(Serialize, SvmRoundTrip)
{
    LinearSvm svm;
    svm.setParams({1.5, -0.5}, -0.25);
    std::stringstream stream;
    saveModel(svm, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "SVM");
    EXPECT_DOUBLE_EQ(loaded->score({2.0, 1.0}), svm.score({2.0, 1.0}));
}

TEST(Serialize, MlpRoundTrip)
{
    Mlp nn;
    nn.setParams({{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}},
                 {0.01, 0.02, 0.03}, {1.0, -1.0, 0.5}, -0.1);
    std::stringstream stream;
    saveModel(nn, stream);
    const auto loaded = loadModel(stream);
    EXPECT_EQ(loaded->name(), "NN");
    for (double x = -1.0; x <= 1.0; x += 0.4) {
        EXPECT_NEAR(loaded->score({x, -x}), nn.score({x, -x}), 1e-9);
    }
}

TEST(Serialize, EveryParametricModelRoundTripsAfterTraining)
{
    // Round-trip all serializable models on the same trained task
    // and check score equivalence point-by-point.
    Rng gen(50);
    Dataset data;
    for (int i = 0; i < 300; ++i) {
        const bool pos = i % 2 == 0;
        data.add({gen.gaussian(pos ? 1.0 : -1.0, 1.0),
                  gen.gaussian(pos ? -0.5 : 0.5, 1.0)},
                 pos ? 1 : 0);
    }
    for (const char *name : {"LR", "SVM", "NN"}) {
        auto model = makeClassifier(name);
        Rng rng(1);
        model->train(data, rng);
        std::stringstream stream;
        ASSERT_TRUE(trySaveModel(*model, stream).isOk()) << name;
        auto loaded = tryLoadModel(stream);
        ASSERT_TRUE(loaded.isOk()) << name;
        for (const auto &x : data.x) {
            ASSERT_NEAR((*loaded)->score(x), model->score(x), 1e-12)
                << name;
        }
    }
}

TEST(Serialize, TrainedModelRoundTripPreservesAuc)
{
    Rng gen(50);
    Dataset data;
    for (int i = 0; i < 300; ++i) {
        const bool pos = i % 2 == 0;
        data.add({gen.gaussian(pos ? 1.0 : -1.0, 1.0)}, pos ? 1 : 0);
    }
    LogisticRegression lr;
    Rng rng(1);
    lr.train(data, rng);

    std::stringstream stream;
    saveModel(lr, stream);
    const auto loaded = loadModel(stream);

    std::vector<double> orig;
    std::vector<double> round;
    for (const auto &x : data.x) {
        orig.push_back(lr.score(x));
        round.push_back(loaded->score(x));
    }
    EXPECT_DOUBLE_EQ(auc(orig, data.y), auc(round, data.y));
}

TEST(Serialize, DtIsNotSerializable)
{
    DecisionTree tree;
    std::stringstream stream;
    const auto status = trySaveModel(tree, stream);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), support::StatusCode::InvalidArgument);
    EXPECT_NE(status.message().find("does not support"),
              std::string::npos);
    // The fatal wrapper still exits for config-time callers.
    std::stringstream other;
    EXPECT_EXIT(saveModel(tree, other), ::testing::ExitedWithCode(1),
                "does not support");
}

TEST(Serialize, BadMagicIsRecoverable)
{
    std::stringstream stream("GARBAGE 1 2 3");
    const auto model = tryLoadModel(stream);
    ASSERT_FALSE(model.isOk());
    EXPECT_EQ(model.status().code(),
              support::StatusCode::InvalidArgument);
    EXPECT_NE(model.status().message().find("bad magic"),
              std::string::npos);
}

TEST(Serialize, WrongVersionIsRecoverable)
{
    std::stringstream stream("RHMD-MODEL 99\nLR\n1 0.5\n0.0\n");
    const auto model = tryLoadModel(stream);
    ASSERT_FALSE(model.isOk());
    EXPECT_EQ(model.status().code(),
              support::StatusCode::FailedPrecondition);
    EXPECT_NE(model.status().message().find("version"),
              std::string::npos);
}

TEST(Serialize, UnknownKindIsRecoverable)
{
    std::stringstream stream("RHMD-MODEL 2\nGBM\n1 0.5\n");
    const auto model = tryLoadModel(stream);
    ASSERT_FALSE(model.isOk());
    EXPECT_EQ(model.status().code(),
              support::StatusCode::InvalidArgument);
    EXPECT_NE(model.status().message().find("unknown model kind"),
              std::string::npos);
}

TEST(Serialize, TruncatedStreamsAreRecoverable)
{
    // Cut a valid stream at every byte offset: each prefix must
    // produce an error (or, for a lucky prefix, a valid model), and
    // never crash or abort.
    Mlp nn;
    nn.setParams({{0.1, 0.2}, {0.3, -0.4}}, {0.01, 0.02}, {1.0, -1.0},
                 -0.1);
    std::stringstream full;
    saveModel(nn, full);
    const std::string text = full.str();
    std::size_t errors = 0;
    for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
        std::stringstream prefix(text.substr(0, cut));
        errors += tryLoadModel(prefix).isOk() ? 0 : 1;
    }
    // Almost every strict prefix must error; the only survivors are
    // cuts inside the digits of the trailing output bias (a full-
    // precision double, up to ~25 bytes), which still leave a
    // syntactically complete stream.
    EXPECT_GE(errors + 30, text.size() - 1);
    EXPECT_GE(errors, (text.size() - 1) / 2);
    std::stringstream empty("");
    EXPECT_FALSE(tryLoadModel(empty).isOk());
}

TEST(Serialize, AbsurdVectorSizeIsRecoverable)
{
    std::stringstream stream("RHMD-MODEL 2\nLR\n99999999999 0.5\n");
    const auto model = tryLoadModel(stream);
    ASSERT_FALSE(model.isOk());
    EXPECT_EQ(model.status().code(), support::StatusCode::DataLoss);
}

TEST(Serialize, NonFiniteParametersAreRecoverable)
{
    // "nan" is rejected by the stream parse itself; an overflowing
    // literal is rejected either way. Both must surface DataLoss.
    for (const char *text : {"RHMD-MODEL 2\nLR\n2 nan 0.5\n0.0\n",
                             "RHMD-MODEL 2\nLR\n2 1e999999 0.5\n0.0\n"}) {
        std::stringstream stream(text);
        const auto model = tryLoadModel(stream);
        ASSERT_FALSE(model.isOk()) << text;
        EXPECT_EQ(model.status().code(), support::StatusCode::DataLoss);
    }
}

TEST(Serialize, FatalWrapperStillExitsOnCorruptStream)
{
    std::stringstream truncated("RHMD-MODEL 2\nLR\n3 0.5 0.25");
    EXPECT_EXIT(loadModel(truncated), ::testing::ExitedWithCode(1),
                "short vector");
}

TEST(Serialize, FuzzedStreamsNeverAbort)
{
    // Deterministically corrupt a valid model stream at increasing
    // byte-flip rates; every variant must parse or error cleanly.
    LogisticRegression lr;
    lr.setParams({0.5, -1.25, 3.0}, 0.75);
    std::stringstream stream;
    saveModel(lr, stream);
    const std::string text = stream.str();

    std::size_t errors = 0;
    std::size_t trials = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        runtime::FaultConfig config;
        config.byteFlipRate = 0.02 * static_cast<double>(seed % 8 + 1);
        config.seed = seed;
        runtime::FaultInjector injector(config);
        std::stringstream corrupt(injector.corruptText(text));
        errors += tryLoadModel(corrupt).isOk() ? 0 : 1;
        ++trials;
    }
    // Most corruptions must be caught (magic, sizes, parse errors);
    // a flip inside a digit can legitimately still parse.
    EXPECT_GT(errors, trials / 2);
}

TEST(Standardizer, RoundTripsExactly)
{
    Standardizer original;
    original.mean = {1.5, -2.25, 0.0};
    original.scale = {0.5, 3.0, 1.0};
    std::stringstream stream;
    ASSERT_TRUE(trySaveStandardizer(original, stream).isOk());
    auto loaded = tryLoadStandardizer(stream);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded->mean, original.mean);
    EXPECT_EQ(loaded->scale, original.scale);
}

TEST(Standardizer, SaveRejectsMismatchedLengths)
{
    Standardizer bad;
    bad.mean = {0.0, 0.0};
    bad.scale = {1.0};
    std::stringstream stream;
    const support::Status status = trySaveStandardizer(bad, stream);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), support::StatusCode::InvalidArgument);
}

TEST(Standardizer, LoadRejectsNonFiniteParams)
{
    std::stringstream stream("RHMD-STD 1\n2 0 nan\n2 1 1\n");
    const auto loaded = tryLoadStandardizer(stream);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), support::StatusCode::DataLoss);
}

TEST(Standardizer, LoadRejectsNonPositiveScale)
{
    for (const char *text : {"RHMD-STD 1\n1 0\n1 0\n",
                             "RHMD-STD 1\n1 0\n1 -2.5\n"}) {
        std::stringstream stream(text);
        const auto loaded = tryLoadStandardizer(stream);
        ASSERT_FALSE(loaded.isOk()) << text;
        EXPECT_EQ(loaded.status().code(), support::StatusCode::DataLoss)
            << text;
    }
}

TEST(Standardizer, LoadRejectsWrongMagicAndVersion)
{
    std::stringstream magic("RHMD-MODEL 2\nLR\n1 1\n0\n");
    EXPECT_EQ(tryLoadStandardizer(magic).status().code(),
              support::StatusCode::InvalidArgument);
    std::stringstream version("RHMD-STD 9\n1 0\n1 1\n");
    EXPECT_EQ(tryLoadStandardizer(version).status().code(),
              support::StatusCode::FailedPrecondition);
    std::stringstream ragged("RHMD-STD 1\n2 0 0\n1 1\n");
    EXPECT_EQ(tryLoadStandardizer(ragged).status().code(),
              support::StatusCode::DataLoss);
}

} // namespace
