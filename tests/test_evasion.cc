/**
 * @file
 * Tests of model-driven evasion.
 */

#include <gtest/gtest.h>

#include "core/evasion.hh"
#include "core/experiment.hh"
#include "core/reverse_engineer.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::core;

const Experiment &
sharedExperiment()
{
    static const Experiment exp = [] {
        ExperimentConfig config;
        config.benignCount = 72;
        config.malwareCount = 144;
        config.periods = {10000};
        config.traceInsts = 100000;
        config.seed = 314;
        return Experiment::build(config);
    }();
    return exp;
}

TEST(Evasion, StrategyNames)
{
    EXPECT_STREQ(evasionStrategyName(EvasionStrategy::Random), "random");
    EXPECT_STREQ(evasionStrategyName(EvasionStrategy::LeastWeight),
                 "least_weight");
    EXPECT_STREQ(evasionStrategyName(EvasionStrategy::Weighted),
                 "weighted");
}

TEST(Evasion, ZeroCountIsIdentity)
{
    const Experiment &exp = sharedExperiment();
    const auto &prog = exp.programs().back();
    EvasionPlan plan;
    plan.count = 0;
    const auto rewritten = evadeRewrite(prog, plan, nullptr);
    EXPECT_EQ(rewritten.textBytes(), prog.textBytes());
}

TEST(Evasion, LeastWeightNeedsModel)
{
    const Experiment &exp = sharedExperiment();
    EvasionPlan plan;
    plan.strategy = EvasionStrategy::LeastWeight;
    EXPECT_EXIT(evadeRewrite(exp.programs().back(), plan, nullptr),
                ::testing::ExitedWithCode(1), "model");
}

TEST(Evasion, LeastWeightLowersVictimScores)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);

    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    EvasionPlan plan;
    plan.strategy = EvasionStrategy::LeastWeight;
    plan.count = 2;
    const auto evasive =
        exp.extractEvasive(test_mal, plan, victim.get());

    double orig_mean = 0.0;
    double evade_mean = 0.0;
    for (std::size_t i = 0; i < test_mal.size(); ++i) {
        orig_mean +=
            victim->programScore(exp.corpus().programs[test_mal[i]]);
        evade_mean += victim->programScore(evasive[i]);
    }
    orig_mean /= static_cast<double>(test_mal.size());
    evade_mean /= static_cast<double>(test_mal.size());
    EXPECT_LT(evade_mean, orig_mean - 0.1);
}

TEST(Evasion, LeastWeightEvadesDetection)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const double baseline = exp.detectionRateOn(*victim, test_mal);

    EvasionPlan plan;
    plan.strategy = EvasionStrategy::LeastWeight;
    plan.count = 3;
    const auto evasive =
        exp.extractEvasive(test_mal, plan, victim.get());
    const double after = Experiment::detectionRate(*victim, evasive);
    EXPECT_GT(baseline, 0.6);
    EXPECT_LT(after, baseline - 0.4);
}

TEST(Evasion, RandomInjectionFarWeakerThanTargeted)
{
    // The paper's Fig. 6 control: random injection is not an evasion
    // strategy. Our substrate's class margins are tighter than the
    // paper's corpus, so random dilution costs a little detection,
    // but the targeted strategy at the same budget must be in a
    // different league.
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const double baseline = exp.detectionRateOn(*victim, test_mal);

    EvasionPlan random_plan;
    random_plan.strategy = EvasionStrategy::Random;
    random_plan.count = 2;
    const auto randomized =
        exp.extractEvasive(test_mal, random_plan, nullptr);
    const double after_random =
        Experiment::detectionRate(*victim, randomized);

    EvasionPlan targeted_plan;
    targeted_plan.strategy = EvasionStrategy::LeastWeight;
    targeted_plan.count = 2;
    const auto targeted =
        exp.extractEvasive(test_mal, targeted_plan, victim.get());
    const double after_targeted =
        Experiment::detectionRate(*victim, targeted);

    EXPECT_GT(after_random, baseline - 0.35);
    EXPECT_GT(after_random, after_targeted + 0.25);
}

TEST(Evasion, ReversedModelWorksAlmostAsWellAsWhiteBox)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);

    ProxyConfig pc;
    pc.algorithm = "LR";
    features::FeatureSpec spec;
    spec.kind = features::FeatureKind::Instructions;
    spec.period = 10000;
    pc.specs = {spec};
    const auto proxy = buildProxy(*victim, exp.corpus(),
                                  exp.split().attackerTrain, pc);

    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    EvasionPlan plan;
    plan.strategy = EvasionStrategy::LeastWeight;
    plan.count = 3;

    const auto white = exp.extractEvasive(test_mal, plan, victim.get());
    const auto black = exp.extractEvasive(test_mal, plan, proxy.get());
    const double white_rate = Experiment::detectionRate(*victim, white);
    const double black_rate = Experiment::detectionRate(*victim, black);
    EXPECT_NEAR(black_rate, white_rate, 0.3);
    EXPECT_LT(black_rate, 0.5);
}

TEST(Evasion, WeightedStrategyEvades)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const double baseline = exp.detectionRateOn(*victim, test_mal);

    EvasionPlan plan;
    plan.strategy = EvasionStrategy::Weighted;
    plan.count = 5;
    const auto evasive =
        exp.extractEvasive(test_mal, plan, victim.get());
    const double after = Experiment::detectionRate(*victim, evasive);
    EXPECT_LT(after, baseline - 0.3);
}

TEST(Evasion, NnVictimCanBeEvadedViaCollapse)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "NN", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    const double baseline = exp.detectionRateOn(*victim, test_mal);

    EvasionPlan plan;
    plan.strategy = EvasionStrategy::LeastWeight;
    plan.count = 5;
    const auto evasive =
        exp.extractEvasive(test_mal, plan, victim.get());
    const double after = Experiment::detectionRate(*victim, evasive);
    EXPECT_LT(after, baseline - 0.25);
}

TEST(Evasion, FunctionLevelWeakerThanBlockLevel)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);

    EvasionPlan block_plan;
    block_plan.count = 1;
    block_plan.level = trace::InjectLevel::Block;
    EvasionPlan fn_plan = block_plan;
    fn_plan.level = trace::InjectLevel::Function;

    const auto block_mod =
        exp.extractEvasive(test_mal, block_plan, victim.get());
    const auto fn_mod =
        exp.extractEvasive(test_mal, fn_plan, victim.get());
    EXPECT_LE(Experiment::detectionRate(*victim, block_mod),
              Experiment::detectionRate(*victim, fn_mod) + 0.05);
}

TEST(Evasion, InjectedFracVisibleInWindows)
{
    const Experiment &exp = sharedExperiment();
    const auto victim = exp.trainVictim(
        "LR", features::FeatureKind::Instructions, 10000);
    const auto test_mal = exp.malwareOf(exp.split().attackerTest);
    EvasionPlan plan;
    plan.count = 2;
    const auto evasive = exp.extractEvasive(
        {test_mal.front()}, plan, victim.get());
    for (const auto &w : evasive[0].windows(10000)) {
        EXPECT_GT(w.injectedFrac, 0.02);
        EXPECT_LT(w.injectedFrac, 0.6);
    }
}

} // namespace
