/**
 * @file
 * Tests of the batched detection service: the bounded request queue,
 * request-keyed determinism, load shedding, and the batch scoring
 * APIs the service rides on (Classifier::scoreBatch,
 * Hmd::scoreWindows, Rhmd::decideBatch).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/rhmd.hh"
#include "ml/serialize.hh"
#include "serve/service.hh"
#include "support/bounded_queue.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::serve;

const core::Experiment &
sharedExperiment()
{
    static const core::Experiment exp = [] {
        core::ExperimentConfig config;
        config.benignCount = 12;
        config.malwareCount = 24;
        config.periods = {5000, 10000};
        config.traceInsts = 60000;
        config.seed = 77;
        return core::Experiment::build(config);
    }();
    return exp;
}

std::unique_ptr<core::Rhmd>
threeDetectorPool(std::uint64_t seed = 5)
{
    const core::Experiment &exp = sharedExperiment();
    std::vector<features::FeatureSpec> specs(3);
    specs[0].kind = features::FeatureKind::Instructions;
    specs[0].period = 10000;
    specs[1].kind = features::FeatureKind::Memory;
    specs[1].period = 10000;
    specs[2].kind = features::FeatureKind::Architectural;
    specs[2].period = 5000;
    return core::buildRhmd("LR", specs, exp.corpus(),
                           exp.split().victimTrain, 16, seed);
}

/**
 * The decisions the service must produce for (program, key): replay
 * its per-request switching stream serially against the pool. This is
 * the request-keyed determinism contract of DESIGN.md section 11.
 */
std::vector<int>
replayDecisions(const core::Rhmd &pool, std::uint64_t seed,
                const features::ProgramFeatures &prog, std::uint64_t key)
{
    const std::uint32_t epoch_len = pool.decisionPeriod();
    const std::size_t n_epochs = prog.windows(epoch_len).size();
    Rng rng = SplitRng(seed).at(key);
    std::vector<int> out;
    for (std::size_t e = 0; e < n_epochs; ++e) {
        const std::size_t pick = rng.weightedIndex(pool.policy());
        const core::Hmd &det = *pool.detectors()[pick];
        const std::size_t index =
            e * (epoch_len / det.decisionPeriod());
        const double score =
            det.windowScore(prog.windows(det.decisionPeriod())[index]);
        out.push_back(score >= det.threshold() ? 1 : 0);
    }
    return out;
}

// --- BoundedQueue --------------------------------------------------

TEST(BoundedQueue, TryPushShedsWhenFullAndReportsDepth)
{
    support::BoundedQueue<int> queue(2);
    std::size_t depth = 0;
    EXPECT_TRUE(queue.tryPush(1, &depth));
    EXPECT_EQ(depth, 1u);
    EXPECT_TRUE(queue.tryPush(2, &depth));
    EXPECT_EQ(depth, 2u);
    // Full: the shed path; the queue is unchanged.
    EXPECT_FALSE(queue.tryPush(3));
    EXPECT_EQ(queue.size(), 2u);

    std::vector<int> out;
    EXPECT_EQ(queue.popBatch(out, 8), 2u);
    EXPECT_EQ(out, (std::vector<int>{1, 2}));
    // Space again: admission resumes.
    EXPECT_TRUE(queue.tryPush(4));
}

TEST(BoundedQueue, PopBatchRespectsMaxBatch)
{
    support::BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.tryPush(std::move(i)));
    std::vector<int> out;
    EXPECT_EQ(queue.popBatch(out, 3), 3u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(queue.popBatch(out, 3), 2u);
    EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, CloseDrainsPendingThenSignalsExit)
{
    support::BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(7));
    ASSERT_TRUE(queue.tryPush(8));
    queue.close();
    EXPECT_TRUE(queue.closed());
    // No admission after close, on either path.
    EXPECT_FALSE(queue.tryPush(9));
    EXPECT_FALSE(queue.push(10));
    // Pending elements still drain; then 0 = consumer exit signal.
    std::vector<int> out;
    EXPECT_EQ(queue.popBatch(out, 8), 2u);
    EXPECT_EQ(out, (std::vector<int>{7, 8}));
    EXPECT_EQ(queue.popBatch(out, 8), 0u);
}

TEST(BoundedQueue, ConsumerBlocksUntilWorkArrives)
{
    support::BoundedQueue<int> queue(4);
    std::vector<int> out;
    std::thread consumer(
        [&] { EXPECT_EQ(queue.popBatch(out, 4), 1u); });
    ASSERT_TRUE(queue.push(42));
    consumer.join();
    EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(BoundedQueue, MovesElementsWithoutCopying)
{
    // Move-only elements compile and round-trip: the queue never
    // copies, which is what lets promise-bearing requests flow
    // through it.
    support::BoundedQueue<std::unique_ptr<int>> queue(2);
    ASSERT_TRUE(queue.tryPush(std::make_unique<int>(5)));
    std::vector<std::unique_ptr<int>> out;
    ASSERT_EQ(queue.popBatch(out, 2), 1u);
    ASSERT_NE(out[0], nullptr);
    EXPECT_EQ(*out[0], 5);
}

// --- DetectionService ----------------------------------------------

TEST(Serve, MatchesSerialReplay)
{
    const core::Experiment &exp = sharedExperiment();
    auto pool = threeDetectorPool();
    ServeConfig sc;
    sc.workers = 1;
    sc.maxBatch = 16;
    DetectionService service(*pool, sc);

    const auto &programs = exp.corpus().programs;
    std::vector<std::future<support::StatusOr<ServeReport>>> futures;
    futures.reserve(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i)
        futures.push_back(service.submit(programs[i], i));

    for (std::size_t i = 0; i < programs.size(); ++i) {
        auto report = futures[i].get();
        ASSERT_TRUE(report.isOk()) << report.status().toString();
        const std::vector<int> expected =
            replayDecisions(*pool, sc.seed, programs[i], i);
        EXPECT_EQ(report->decisions, expected);
        EXPECT_EQ(report->epochs, expected.size());
        EXPECT_EQ(report->classified, expected.size());
        EXPECT_EQ(report->detectorFailures, 0u);
        // Majority vote, ties flagged as malware.
        std::size_t votes = 0;
        for (int d : expected)
            votes += d != 0 ? 1 : 0;
        EXPECT_EQ(report->programDecision,
                  2 * votes >= expected.size() ? 1 : 0);
    }
    service.stop();
    for (std::size_t d = 0; d < pool->poolSize(); ++d)
        EXPECT_EQ(service.health().health(d),
                  runtime::DetectorHealth::Healthy);
}

TEST(Serve, DecisionsIndependentOfOrderBatchAndWorkers)
{
    const core::Experiment &exp = sharedExperiment();
    auto pool = threeDetectorPool();
    const auto &programs = exp.corpus().programs;

    // Same seed, maximally different schedules: single requests on
    // one worker versus big batches on four workers with reversed
    // submission order. Answers are keyed, so they must agree.
    const auto collect = [&](ServeConfig sc, bool reversed) {
        DetectionService service(*pool, sc);
        std::vector<std::future<support::StatusOr<ServeReport>>>
            futures(programs.size());
        for (std::size_t n = 0; n < programs.size(); ++n) {
            const std::size_t i =
                reversed ? programs.size() - 1 - n : n;
            futures[i] = service.submit(programs[i], i);
        }
        std::vector<std::vector<int>> decisions(programs.size());
        for (std::size_t i = 0; i < programs.size(); ++i) {
            auto report = futures[i].get();
            EXPECT_TRUE(report.isOk()) << report.status().toString();
            if (report.isOk())
                decisions[i] = std::move(report->decisions);
        }
        return decisions;
    };

    ServeConfig serial;
    serial.workers = 1;
    serial.maxBatch = 1;
    ServeConfig batched;
    batched.workers = 4;
    batched.maxBatch = 64;
    EXPECT_EQ(collect(serial, false), collect(batched, true));
}

TEST(Serve, ResubmittedKeyReplaysTheSameDecisions)
{
    auto pool = threeDetectorPool();
    DetectionService service(*pool, ServeConfig{});
    const auto &prog = sharedExperiment().corpus().programs[3];

    auto first = service.submit(prog, 1234).get();
    auto again = service.submit(prog, 1234).get();
    auto other = service.submit(prog, 1235).get();
    ASSERT_TRUE(first.isOk());
    ASSERT_TRUE(again.isOk());
    ASSERT_TRUE(other.isOk());
    // The switching stream is a pure function of (seed, key): the
    // same key replays, and the service holds no per-key state that
    // a different key could perturb.
    EXPECT_EQ(first->decisions, again->decisions);
}

TEST(Serve, DistinctSeedsSteerDistinctStreams)
{
    auto pool = threeDetectorPool();
    const auto &programs = sharedExperiment().corpus().programs;

    // Over all programs at least one switching pick must differ
    // between two seeds (each program has several epochs with three
    // detectors to choose from).
    bool differs = false;
    for (std::size_t i = 0; i < programs.size() && !differs; ++i)
        differs = replayDecisions(*pool, 1, programs[i], i) !=
                  replayDecisions(*pool, 2, programs[i], i);
    EXPECT_TRUE(differs);
}

TEST(Serve, SubmitAfterStopSheds)
{
    auto pool = threeDetectorPool();
    DetectionService service(*pool, ServeConfig{});
    service.stop();
    auto report =
        service.submit(sharedExperiment().corpus().programs[0], 0)
            .get();
    ASSERT_FALSE(report.isOk());
    EXPECT_EQ(report.status().code(),
              support::StatusCode::Unavailable);
    // Shutdown shedding is reported as such, not as overload
    // (serve.shed_stopped, not serve.shed_queue_full).
    EXPECT_NE(report.status().message().find("stopped"),
              std::string::npos);
}

TEST(Serve, DeadlineShedsStaleRequests)
{
    auto pool = threeDetectorPool();
    ServeConfig sc;
    sc.workers = 1;
    // Any measurable queueing delay exceeds this budget, so every
    // request is shed at the batch head instead of scored.
    sc.deadlineSeconds = 1e-12;
    DetectionService service(*pool, sc);
    auto report =
        service.submit(sharedExperiment().corpus().programs[0], 0)
            .get();
    ASSERT_FALSE(report.isOk());
    EXPECT_EQ(report.status().code(),
              support::StatusCode::Unavailable);
    EXPECT_NE(report.status().message().find("shed after queueing"),
              std::string::npos);
}

TEST(Serve, StopIsIdempotentAndDrainsBacklog)
{
    auto pool = threeDetectorPool();
    ServeConfig sc;
    sc.workers = 2;
    DetectionService service(*pool, sc);
    const auto &programs = sharedExperiment().corpus().programs;
    std::vector<std::future<support::StatusOr<ServeReport>>> futures;
    for (std::size_t i = 0; i < 8; ++i)
        futures.push_back(service.submit(programs[i], i));
    service.stop();
    service.stop();
    // stop() drains admitted requests; none may be abandoned.
    for (auto &future : futures)
        EXPECT_TRUE(future.get().isOk());
}

// --- Batch scoring APIs --------------------------------------------

TEST(ScoreBatch, BitIdenticalToSerialForEveryAlgorithm)
{
    // Train each algorithm on separable blobs, then compare
    // scoreBatch() against row-by-row score() on fresh points. The
    // contract is bit-identical, not approximately equal: the batch
    // path must keep the serial accumulation order exactly.
    Rng data_rng(41);
    ml::Dataset data;
    for (std::size_t i = 0; i < 240; ++i) {
        const bool positive = i % 2 == 0;
        const double c = positive ? 1.5 : -1.5;
        std::vector<double> x;
        for (std::size_t f = 0; f < 6; ++f)
            x.push_back(data_rng.gaussian(c, 1.0));
        data.add(std::move(x), positive ? 1 : 0);
    }

    for (const char *algorithm : {"LR", "NN", "DT", "SVM", "RF"}) {
        auto clf = ml::makeClassifier(algorithm);
        Rng train_rng(7);
        clf->train(data, train_rng);

        features::FeatureMatrix x(40, 6);
        Rng point_rng(43);
        for (std::size_t r = 0; r < x.rows(); ++r)
            for (std::size_t f = 0; f < x.cols(); ++f)
                x.row(r)[f] = point_rng.gaussian(0.0, 2.0);

        const std::vector<double> batch = clf->scoreBatch(x);
        ASSERT_EQ(batch.size(), x.rows()) << algorithm;
        for (std::size_t r = 0; r < x.rows(); ++r)
            EXPECT_EQ(batch[r], clf->score(x.rowVector(r)))
                << algorithm << " row " << r;
    }
}

TEST(ScoreBatch, HmdScoreWindowsMatchesWindowScore)
{
    const core::Experiment &exp = sharedExperiment();
    auto pool = threeDetectorPool();
    const auto &prog = exp.corpus().programs[0];
    for (const auto &det : pool->detectors()) {
        std::vector<const features::RawWindow *> rows;
        for (const auto &window : prog.windows(det->decisionPeriod()))
            rows.push_back(&window);
        const std::vector<double> batch = det->scoreWindows(rows);
        ASSERT_EQ(batch.size(), rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r)
            EXPECT_EQ(batch[r], det->windowScore(*rows[r]))
                << det->describe() << " window " << r;
    }
}

TEST(DecideBatch, BitIdenticalToSerialDecide)
{
    const core::Experiment &exp = sharedExperiment();
    // Two identically-built pools: decideBatch() must consume the
    // switching stream exactly as back-to-back decide() calls do.
    auto serial = threeDetectorPool(9);
    auto batched = threeDetectorPool(9);

    std::vector<const features::ProgramFeatures *> progs;
    for (const auto &prog : exp.corpus().programs)
        progs.push_back(&prog);

    std::vector<std::vector<int>> expected;
    for (const auto *prog : progs)
        expected.push_back(serial->decide(*prog));
    const std::vector<std::vector<int>> got =
        batched->decideBatch(progs);

    EXPECT_EQ(got, expected);
    EXPECT_EQ(batched->selectionCounts(), serial->selectionCounts());
}

} // namespace
