/**
 * @file
 * Tests of the static verification layer: diagnostics, dataflow
 * (liveness, reaching definitions, def-use chains) on handcrafted
 * CFGs with known solutions, the CFG verifier's accept and reject
 * paths, the semantic-preservation checker (paper-mode payloads pass,
 * a clobbering mutation is rejected), the injection gate, and the
 * runtime admission check.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "analysis/preservation.hh"
#include "analysis/verifier.hh"
#include "core/evasion.hh"
#include "core/experiment.hh"
#include "core/rhmd.hh"
#include "runtime/runtime.hh"
#include "trace/dcfg.hh"
#include "trace/execution.hh"
#include "trace/generator.hh"
#include "trace/injection.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::analysis;
using trace::OpClass;
using trace::RegId;
using trace::TermKind;

constexpr RegId kR0 = 0;
constexpr RegId kR1 = 1;
constexpr RegId kR2 = 2;
constexpr RegId kR3 = 3;

trace::StaticInst
alu(OpClass op, RegId dst, RegId src1, RegId src2)
{
    trace::StaticInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

trace::StaticInst
movImm(RegId dst)
{
    trace::StaticInst inst;
    inst.op = OpClass::MovImm;
    inst.dst = dst;
    return inst;
}

trace::Terminator
condBranch(std::uint32_t taken, std::uint32_t fall, RegId c1, RegId c2,
           double prob = 0.5)
{
    trace::Terminator term;
    term.kind = TermKind::CondBranch;
    term.takenTarget = taken;
    term.fallTarget = fall;
    term.takenProb = prob;
    term.condSrc1 = c1;
    term.condSrc2 = c2;
    return term;
}

trace::Terminator
jump(std::uint32_t target)
{
    trace::Terminator term;
    term.kind = TermKind::Jump;
    term.takenTarget = target;
    return term;
}

trace::Terminator
exitTerm()
{
    trace::Terminator term;
    term.kind = TermKind::Exit;
    return term;
}

/**
 * The classic diamond:
 *   b0: r1 = imm; r2 = imm;          if (r1 ? r2) b1 else b2
 *   b1: r3 = r1 + r2;                goto b3
 *   b2: r3 = r2;                     goto b3
 *   b3: r0 = r3 + r3;                exit        (exit reads r0)
 */
trace::Program
diamondProgram()
{
    trace::Program prog;
    prog.name = "diamond";
    prog.regions = {{0x1000, 4096}, {0x100000, 4096}};

    trace::Function fn;
    fn.blocks.resize(4);
    fn.blocks[0].body = {movImm(kR1), movImm(kR2)};
    fn.blocks[0].term = condBranch(1, 2, kR1, kR2);
    fn.blocks[1].body = {alu(OpClass::IntAdd, kR3, kR1, kR2)};
    fn.blocks[1].term = jump(3);
    fn.blocks[2].body = {alu(OpClass::MovRegReg, kR3, kR2, kR2)};
    fn.blocks[2].term = jump(3);
    fn.blocks[3].body = {alu(OpClass::IntAdd, kR0, kR3, kR3)};
    fn.blocks[3].term = exitTerm();
    prog.functions.push_back(std::move(fn));
    return prog;
}

/** One generated program, with the full register post-pass applied. */
trace::Program
generated(std::uint64_t seed = 55)
{
    trace::GeneratorConfig config;
    config.benignCount = 1;
    config.malwareCount = 1;
    config.seed = seed;
    return trace::ProgramGenerator(config).generateCorpus().back();
}

// --- diagnostics ----------------------------------------------------

TEST(Diagnostics, CountsAndSummary)
{
    Report report;
    EXPECT_TRUE(report.clean());
    report.error("cfg", "x", 0, 1, 2, "boom");
    report.warning("cfg", "y", 0, kNoIndex, kNoIndex, "meh");
    report.note("dcfg", "z", kNoIndex, kNoIndex, kNoIndex, "fyi");
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_EQ(report.noteCount(), 1u);
    EXPECT_EQ(report.summary(), "1 error, 1 warning, 1 note");

    Report other;
    other.merge(report);
    EXPECT_EQ(other.errorCount(), 1u);
    EXPECT_EQ(other.findings().size(), 3u);
}

TEST(Diagnostics, JsonLinesShape)
{
    Report report;
    report.error("cfg", "branch-target-range", 2, 3, kNoIndex,
                 "say \"hi\"");
    const std::string json = report.toJsonLines("prog_1");
    EXPECT_NE(json.find("\"program\":\"prog_1\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"branch-target-range\""),
              std::string::npos);
    EXPECT_NE(json.find("\"function\":2"), std::string::npos);
    EXPECT_NE(json.find("\"inst\":null"), std::string::npos);
    // Quotes in messages are escaped.
    EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

// --- dataflow: liveness --------------------------------------------

TEST(Liveness, DiamondHasKnownSolution)
{
    const trace::Program prog = diamondProgram();
    const Liveness live = Liveness::compute(prog.functions[0]);

    EXPECT_EQ(live.liveIn(0), 0u);
    EXPECT_EQ(live.liveOut(0), regBit(kR1) | regBit(kR2));
    EXPECT_EQ(live.liveIn(1), regBit(kR1) | regBit(kR2));
    EXPECT_EQ(live.liveIn(2), regBit(kR2));
    EXPECT_EQ(live.liveOut(1), regBit(kR3));
    EXPECT_EQ(live.liveOut(2), regBit(kR3));
    EXPECT_EQ(live.liveIn(3), regBit(kR3));
    EXPECT_EQ(live.liveOut(3), 0u);
    // The exit observes the program's return value.
    EXPECT_EQ(live.liveBeforeTerm(3), regBit(kR0));
}

TEST(Liveness, PerPointSolution)
{
    const trace::Program prog = diamondProgram();
    const Liveness live = Liveness::compute(prog.functions[0]);
    const std::vector<RegSet> points = live.livePoints(0);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0], 0u);                       // before r1 = imm
    EXPECT_EQ(points[1], regBit(kR1));              // before r2 = imm
    EXPECT_EQ(points[2], regBit(kR1) | regBit(kR2)); // before branch
}

TEST(Liveness, LoopFixpointConverges)
{
    // b0: r1 = imm; goto b1
    // b1: r1 = r1 + r1; if (r1 ? r1) b1 else b2
    // b2: r0 = r1; exit
    trace::Program prog;
    prog.name = "loop";
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(3);
    fn.blocks[0].body = {movImm(kR1)};
    fn.blocks[0].term = jump(1);
    fn.blocks[1].body = {alu(OpClass::IntAdd, kR1, kR1, kR1)};
    fn.blocks[1].term = condBranch(1, 2, kR1, kR1, 0.7);
    fn.blocks[2].body = {alu(OpClass::MovRegReg, kR0, kR1, kR1)};
    fn.blocks[2].term = exitTerm();
    prog.functions.push_back(std::move(fn));

    const Liveness live = Liveness::compute(prog.functions[0]);
    // r1 is loop-carried: live around the back edge.
    EXPECT_EQ(live.liveIn(1), regBit(kR1));
    EXPECT_EQ(live.liveOut(1), regBit(kR1));
    EXPECT_GE(live.iterations(), 2u);
}

TEST(Liveness, CallsUseArgsAndClobberScratch)
{
    // b0: r1 = imm; r4 = imm; call f1 -> b1
    // b1: r0 = r4; ret
    trace::Program prog;
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(2);
    fn.blocks[0].body = {movImm(kR1), movImm(4)};
    fn.blocks[0].term.kind = TermKind::Call;
    fn.blocks[0].term.callee = 0;
    fn.blocks[0].term.fallTarget = 1;
    fn.blocks[1].body = {alu(OpClass::MovRegReg, kR0, 4, 4)};
    fn.blocks[1].term.kind = TermKind::Ret;
    prog.functions.push_back(std::move(fn));

    const Liveness live = Liveness::compute(prog.functions[0]);
    // The call reads the argument registers, so r1 is live before it;
    // r4 is preserved across the call and live into b1.
    EXPECT_TRUE(contains(live.liveBeforeTerm(0), kR1));
    EXPECT_TRUE(contains(live.liveBeforeTerm(0), 4));
    // The call defines r0, so r0 is not live across it even though
    // the ret observes it.
    EXPECT_FALSE(contains(live.liveIn(0), kR0));
    // Scratch registers are clobbered at calls, never live into them.
    EXPECT_FALSE(contains(live.liveBeforeTerm(0), trace::kRegScratch0));
}

TEST(Liveness, ObservableUsesIgnoreInjectedReaders)
{
    // An injected chain t0 = r1 + r1 does not make r1 live when only
    // observable uses count — the whole chain is removable.
    trace::Program prog;
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(1);
    trace::StaticInst reader =
        alu(OpClass::IntAdd, trace::kRegScratch0, kR1, kR1);
    reader.injected = true;
    fn.blocks[0].body = {movImm(kR0), reader};
    fn.blocks[0].term = exitTerm();
    prog.functions.push_back(std::move(fn));

    const Liveness plain = Liveness::compute(prog.functions[0]);
    EXPECT_TRUE(contains(plain.liveIn(0), kR1));

    const Liveness observable =
        Liveness::compute(prog.functions[0], {true});
    EXPECT_FALSE(contains(observable.liveIn(0), kR1));
}

// --- dataflow: reaching definitions and def-use chains -------------

TEST(ReachingDefs, DiamondChains)
{
    const trace::Program prog = diamondProgram();
    const ReachingDefs rd = ReachingDefs::compute(prog.functions[0]);

    // Five definition sites in program order: r1, r2 (b0), r3 (b1),
    // r3 (b2), r0 (b3); none of the terminators define registers.
    ASSERT_EQ(rd.defSites().size(), 5u);
    EXPECT_EQ(rd.defSites()[0].reg, kR1);
    EXPECT_EQ(rd.defSites()[2].block, 1u);
    EXPECT_EQ(rd.defSites()[3].block, 2u);

    // Both r3 definitions (but not the killed-nothing r0) reach b3.
    const std::vector<std::size_t> in3 = rd.reachingIn(3);
    EXPECT_EQ(in3, (std::vector<std::size_t>{0, 1, 2, 3}));

    // d0 (r1) is used by the branch and by b1's add.
    const auto &uses_r1 = rd.chains()[0];
    ASSERT_EQ(uses_r1.size(), 2u);
    EXPECT_EQ(uses_r1[0].block, 0u);
    EXPECT_EQ(uses_r1[0].inst, kTermIndex);
    EXPECT_EQ(uses_r1[1].block, 1u);
    EXPECT_EQ(uses_r1[1].inst, 0u);

    // d1 (r2) feeds the branch and both arms.
    EXPECT_EQ(rd.chains()[1].size(), 3u);

    // Each r3 definition reaches the single merged use in b3.
    ASSERT_EQ(rd.chains()[2].size(), 1u);
    EXPECT_EQ(rd.chains()[2][0].block, 3u);
    EXPECT_EQ(rd.chains()[3].size(), 1u);

    // d4 (r0) is observed by the exit terminator.
    ASSERT_EQ(rd.chains()[4].size(), 1u);
    EXPECT_EQ(rd.chains()[4][0].inst, kTermIndex);
    EXPECT_EQ(rd.chains()[4][0].reg, kR0);
}

TEST(ReachingDefs, RedefinitionKillsEarlierDef)
{
    // b0: r1 = imm; r1 = imm; r0 = r1; exit
    trace::Program prog;
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(1);
    fn.blocks[0].body = {movImm(kR1), movImm(kR1),
                         alu(OpClass::MovRegReg, kR0, kR1, kR1)};
    fn.blocks[0].term = exitTerm();
    prog.functions.push_back(std::move(fn));

    const ReachingDefs rd = ReachingDefs::compute(prog.functions[0]);
    ASSERT_EQ(rd.defSites().size(), 3u);
    // The first r1 definition is dead; only the second has a use.
    EXPECT_TRUE(rd.chains()[0].empty());
    ASSERT_EQ(rd.chains()[1].size(), 1u);
    EXPECT_EQ(rd.chains()[1][0].inst, 2u);
}

// --- CFG verifier ---------------------------------------------------

TEST(CfgVerifier, AcceptsHandcraftedAndGeneratedPrograms)
{
    Report report;
    EXPECT_TRUE(checkProgramCfg(diamondProgram(), report));
    EXPECT_TRUE(report.clean());

    Report gen_report;
    EXPECT_TRUE(checkProgramCfg(generated(), gen_report));
    EXPECT_TRUE(gen_report.clean());
}

TEST(CfgVerifier, RejectsOutOfRangeBranchTarget)
{
    trace::Program prog = diamondProgram();
    prog.functions[0].blocks[0].term.takenTarget = 40;
    Report report;
    EXPECT_FALSE(checkProgramCfg(prog, report));
    ASSERT_GE(report.findings().size(), 1u);
    EXPECT_EQ(report.findings()[0].code, "branch-target-range");
    EXPECT_EQ(report.findings()[0].block, 0u);
}

TEST(CfgVerifier, RejectsControlFlowInBody)
{
    trace::Program prog = diamondProgram();
    trace::StaticInst rogue;
    rogue.op = OpClass::Call;
    prog.functions[0].blocks[1].body.push_back(rogue);
    Report report;
    EXPECT_FALSE(checkProgramCfg(prog, report));
    EXPECT_EQ(report.findings()[0].code, "control-flow-in-body");
    EXPECT_EQ(report.findings()[0].inst, 1u);
}

TEST(CfgVerifier, RejectsStructuralDamage)
{
    {   // No function may lack a return/exit terminator.
        trace::Program prog = diamondProgram();
        prog.functions[0].blocks[3].term = jump(0);
        Report report;
        EXPECT_FALSE(checkProgramCfg(prog, report));
        EXPECT_EQ(report.findings()[0].code, "no-exit");
    }
    {   // Memory regions must be disjoint.
        trace::Program prog = diamondProgram();
        prog.regions[1].base = prog.regions[0].base + 8;
        Report report;
        EXPECT_FALSE(checkProgramCfg(prog, report));
        EXPECT_EQ(report.findings()[0].code, "region-overlap");
    }
    {   // Register operands must name real registers.
        trace::Program prog = diamondProgram();
        prog.functions[0].blocks[1].body[0].src1 = 99;
        Report report;
        EXPECT_FALSE(checkProgramCfg(prog, report));
        EXPECT_EQ(report.findings()[0].code, "register-range");
    }
    {   // Probabilities are probabilities.
        trace::Program prog = diamondProgram();
        prog.functions[0].blocks[0].term.takenProb = 1.5;
        Report report;
        EXPECT_FALSE(checkProgramCfg(prog, report));
        EXPECT_EQ(report.findings()[0].code, "taken-prob-range");
    }
    {   // Empty programs are malformed.
        trace::Program prog;
        Report report;
        EXPECT_FALSE(checkProgramCfg(prog, report));
        EXPECT_EQ(report.errorCount(), 2u);  // no functions, no regions
    }
}

TEST(CfgVerifier, WarnsWithoutFailing)
{
    // b0 always branches to b2, so the fall-through edge to b1 is
    // dead (b1 stays structurally reachable through it); b3 has no
    // predecessors at all.
    trace::Program prog;
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(4);
    fn.blocks[0].body = {movImm(kR0)};
    fn.blocks[0].term = condBranch(2, 1, kR0, kR0, 1.0);
    fn.blocks[1].body = {movImm(kR1)};
    fn.blocks[1].term = jump(2);
    fn.blocks[2].term = exitTerm();
    fn.blocks[3].term = jump(2);
    prog.functions.push_back(std::move(fn));

    Report report;
    EXPECT_TRUE(checkProgramCfg(prog, report));  // warnings don't fail
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_EQ(report.findings()[0].code, "dead-fallthrough");

    // The unreachable-block lint is opt-in (generated corpora contain
    // legitimate skip-jump dead blocks).
    CfgOptions pedantic;
    pedantic.flagUnreachableBlocks = true;
    Report pedantic_report;
    EXPECT_TRUE(checkProgramCfg(prog, pedantic_report, pedantic));
    EXPECT_EQ(pedantic_report.warningCount(), 2u);
}

TEST(CfgVerifier, DcfgOfExecutedProgramIsConsistent)
{
    const trace::Program prog = generated(7);
    trace::DcfgBuilder dcfg;
    trace::Executor(prog, 1234).run(30000, dcfg);
    ASSERT_FALSE(dcfg.nodes().empty());

    Report report;
    EXPECT_TRUE(checkDcfg(dcfg, report));
    EXPECT_EQ(report.errorCount(), 0u);
}

// --- semantic preservation -----------------------------------------

TEST(Preservation, PaperModePayloadsVerify)
{
    const trace::Program prog = generated(21);
    // Every injectable opcode family the paper's strategies draw
    // from: ALU, FP, loads with controlled stride, dilution nops,
    // syscall/atomic drivers for the architectural detectors.
    for (const OpClass op :
         {OpClass::IntAdd, OpClass::FpMul, OpClass::Load, OpClass::Store,
          OpClass::Nop, OpClass::SystemOp, OpClass::Xchg}) {
        const trace::Program modified = trace::Injector::apply(
            prog, trace::InjectLevel::Block,
            {trace::makePayloadInst(op)});
        const Report report = verifyProgram(modified);
        EXPECT_TRUE(report.clean())
            << trace::opName(op) << ": " << report.summary();
    }
}

TEST(Preservation, RejectsClobberingInjection)
{
    // b0: r1 = imm; if (r1 ? r1) b1 else b1 — r1 is live at the end
    // of b0, so an injected write to r1 is a clobber.
    trace::Program prog;
    prog.name = "clobber";
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(2);
    fn.blocks[0].body = {movImm(kR1)};
    fn.blocks[0].term = condBranch(1, 1, kR1, kR1);
    fn.blocks[1].body = {alu(OpClass::MovRegReg, kR0, kR1, kR1)};
    fn.blocks[1].term = exitTerm();
    prog.functions.push_back(std::move(fn));

    trace::Program mutated = prog;
    trace::StaticInst payload = trace::makePayloadInst(OpClass::IntAdd);
    payload.dst = kR1;  // the mutation: write a live register
    mutated.functions[0].blocks[0].body.push_back(payload);

    Report report;
    EXPECT_FALSE(checkPreservation(mutated, report));
    ASSERT_EQ(report.errorCount(), 1u);
    const Finding &finding = report.findings()[0];
    EXPECT_EQ(finding.code, "clobbering-injection");
    EXPECT_EQ(finding.block, 0u);
    EXPECT_NE(finding.message.find("live register"), std::string::npos);
    EXPECT_NE(finding.message.find("r1"), std::string::npos);

    // The same payload at the end of b1 is dead (only r0 is live) and
    // passes.
    trace::Program ok = prog;
    ok.functions[0].blocks[1].body.push_back(payload);
    Report ok_report;
    EXPECT_TRUE(checkPreservation(ok, ok_report));
}

TEST(Preservation, RejectsEscapingAndStackPayloads)
{
    trace::Program prog = diamondProgram();
    trace::StaticInst branch;
    branch.op = OpClass::BranchUncond;
    branch.injected = true;
    prog.functions[0].blocks[1].body.push_back(branch);

    trace::StaticInst push;
    push.op = OpClass::Push;
    push.injected = true;
    prog.functions[0].blocks[2].body.push_back(push);

    Report report;
    EXPECT_FALSE(checkPreservation(prog, report));
    EXPECT_EQ(report.errorCount(), 2u);
    EXPECT_NE(report.findings()[0].message.find("escapes"),
              std::string::npos);
    EXPECT_NE(report.findings()[1].message.find("stack"),
              std::string::npos);
}

TEST(Preservation, StoreRules)
{
    // Original program reads region 1; region 2 is write-safe scratch.
    trace::Program prog = diamondProgram();
    prog.regions.push_back({0x200000, 4096});
    trace::StaticInst load;
    load.op = OpClass::Load;
    load.dst = kR2;
    load.src1 = kR1;
    load.mem.pattern = trace::AddrPattern::Stride;
    load.mem.region = 1;
    prog.functions[0].blocks[0].body.insert(
        prog.functions[0].blocks[0].body.begin(), load);

    trace::StaticInst store = trace::makePayloadInst(OpClass::Store);
    store.mem.pattern = trace::AddrPattern::RandomInRegion;

    {   // Store into a region the program reads: clobber.
        trace::Program mutated = prog;
        store.mem.region = 1;
        mutated.functions[0].blocks[3].body.push_back(store);
        Report report;
        EXPECT_FALSE(checkPreservation(mutated, report));
        EXPECT_NE(report.findings()[0].message.find("reads"),
                  std::string::npos);
    }
    {   // Store into a never-read region: dead.
        trace::Program mutated = prog;
        store.mem.region = 2;
        mutated.functions[0].blocks[3].body.push_back(store);
        Report report;
        EXPECT_TRUE(checkPreservation(mutated, report));
    }
    {   // Store into a live stack frame slot: clobber.
        trace::Program mutated = prog;
        store.mem.pattern = trace::AddrPattern::StackSlot;
        mutated.functions[0].blocks[3].body.push_back(store);
        Report report;
        EXPECT_FALSE(checkPreservation(mutated, report));
        EXPECT_NE(report.findings()[0].message.find("stack frame"),
                  std::string::npos);
    }
}

// --- injection gate -------------------------------------------------

TEST(InjectionGate, FiltersClobberingSitesAndCounts)
{
    // Same shape as RejectsClobberingInjection: the payload writes r1,
    // which is live at the end of b0 but dead at the end of b1.
    trace::Program prog;
    prog.name = "gated";
    prog.regions = {{0x1000, 4096}};
    trace::Function fn;
    fn.blocks.resize(2);
    fn.blocks[0].body = {movImm(kR1)};
    fn.blocks[0].term = condBranch(1, 1, kR1, kR1);
    fn.blocks[1].body = {alu(OpClass::MovRegReg, kR0, kR1, kR1)};
    fn.blocks[1].term = exitTerm();
    prog.functions.push_back(std::move(fn));

    trace::StaticInst payload = trace::makePayloadInst(OpClass::IntAdd);
    payload.dst = kR1;

    InjectionGate gate(prog);
    EXPECT_FALSE(gate.admits(0, 0, {payload}));
    EXPECT_TRUE(gate.admits(0, 1, {payload}));
    EXPECT_NE(gate.rejectReason(0, 0, {payload}).find("live"),
              std::string::npos);
    EXPECT_EQ(gate.rejectReason(0, 1, {payload}), "");

    const trace::Program modified = trace::Injector::apply(
        prog, trace::InjectLevel::Block, {payload}, gate.filter());
    EXPECT_EQ(gate.admitted(), 1u);
    EXPECT_EQ(gate.rejected(), 1u);
    EXPECT_TRUE(modified.functions[0].blocks[0].body.back().injected ==
                false);
    EXPECT_TRUE(modified.functions[0].blocks[1].body.back().injected);
    // What the gate admitted verifies.
    EXPECT_TRUE(verifyProgram(modified).clean());
}

TEST(InjectionGate, ScratchPayloadsAdmittedEverywhere)
{
    const trace::Program prog = generated(33);
    InjectionGate gate(prog);
    const std::vector<trace::StaticInst> payload{
        trace::makePayloadInst(OpClass::IntMul),
        trace::makePayloadInst(OpClass::Load)};
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        for (std::size_t b = 0; b < prog.functions[f].blocks.size(); ++b)
            EXPECT_TRUE(gate.admits(f, b, payload));
    }
}

// --- generator register discipline ---------------------------------

TEST(RegisterAssignment, GeneratedCodeNeverNamesScratch)
{
    const trace::Program prog = generated(91);
    for (const trace::Function &fn : prog.functions) {
        for (const trace::BasicBlock &block : fn.blocks) {
            for (const trace::StaticInst &inst : block.body) {
                const auto &info = trace::opInfo(inst.op);
                if (info.hasDst) {
                    EXPECT_FALSE(trace::isScratchReg(inst.dst));
                }
                if (info.numSrc >= 1) {
                    EXPECT_FALSE(trace::isScratchReg(inst.src1));
                }
                if (info.numSrc >= 2) {
                    EXPECT_FALSE(trace::isScratchReg(inst.src2));
                }
            }
            if (block.term.kind == TermKind::CondBranch) {
                EXPECT_FALSE(trace::isScratchReg(block.term.condSrc1));
                EXPECT_FALSE(trace::isScratchReg(block.term.condSrc2));
            }
        }
    }
}

// --- verifier pass manager -----------------------------------------

TEST(Verifier, DefaultPipelineAndShortCircuit)
{
    const Verifier verifier;
    EXPECT_EQ(verifier.passCount(), 2u);
    EXPECT_EQ(Verifier::empty().passCount(), 0u);

    EXPECT_TRUE(verifier.run(generated(3)).clean());

    // A structurally broken program stops at the CFG pass even though
    // it also carries a clobbering injection — dataflow never runs on
    // unresolvable indices.
    trace::Program broken = diamondProgram();
    broken.functions[0].blocks[0].term.takenTarget = 40;
    trace::StaticInst payload = trace::makePayloadInst(OpClass::IntAdd);
    payload.dst = kR1;
    broken.functions[0].blocks[1].body.push_back(payload);
    const Report report = verifier.run(broken);
    EXPECT_FALSE(report.clean());
    for (const Finding &finding : report.findings())
        EXPECT_EQ(finding.pass, "cfg");
}

// --- evasion wiring -------------------------------------------------

TEST(EvasionAudit, GateCountersSurfaceThroughEvadeRewrite)
{
    const trace::Program prog = generated(13);
    core::EvasionPlan plan;
    plan.strategy = core::EvasionStrategy::Random;
    plan.count = 2;
    core::EvasionAudit audit;
    const trace::Program modified =
        core::evadeRewrite(prog, plan, nullptr, &audit);
    EXPECT_EQ(audit.rejectedSites, 0u);
    EXPECT_EQ(audit.admittedSites,
              trace::Injector::siteCount(prog, plan.level));
    EXPECT_EQ(audit.verifiedPrograms, 1u);
    EXPECT_TRUE(verifyProgram(modified).clean());
}

// --- runtime admission ---------------------------------------------

TEST(RuntimeAdmission, AcceptsVerifiedRejectsClobbered)
{
    core::ExperimentConfig config;
    config.benignCount = 8;
    config.malwareCount = 16;
    config.periods = {10000};
    config.traceInsts = 30000;
    config.seed = 5;
    const core::Experiment exp = core::Experiment::build(config);
    std::vector<features::FeatureSpec> specs(1);
    specs[0].kind = features::FeatureKind::Instructions;
    specs[0].period = 10000;
    const auto pool = core::buildRhmd("LR", specs, exp.corpus(),
                                      exp.split().victimTrain, 16, 5);
    runtime::DetectionRuntime rt(*pool, {});

    EXPECT_TRUE(rt.admitProgram(exp.programs().front()).isOk());

    trace::Program clobbered = exp.programs().front();
    trace::StaticInst payload = trace::makePayloadInst(OpClass::IntSub);
    // The exit code is observable: r0 is live right before the exit
    // terminator, so writing it there is a clobber.
    payload.dst = trace::kRegRet;
    clobbered.functions[0].blocks.back().body.push_back(payload);
    const support::Status status = rt.admitProgram(clobbered);
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), support::StatusCode::InvalidArgument);
    EXPECT_NE(status.message().find("preservation"), std::string::npos);

    EXPECT_EQ(rt.admittedPrograms(), 1u);
    EXPECT_EQ(rt.rejectedPrograms(), 1u);
}

} // namespace
