/**
 * @file
 * Tests of the performance-monitoring unit model.
 */

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "uarch/perf_counters.hh"

namespace
{

using namespace rhmd::uarch;
using rhmd::trace::DynInst;
using rhmd::trace::OpClass;

DynInst
makeInst(OpClass op, std::uint64_t pc = 0x400000)
{
    DynInst inst;
    inst.op = op;
    inst.pc = pc;
    inst.size = 4;
    return inst;
}

DynInst
makeLoad(std::uint64_t addr, std::uint8_t size = 8)
{
    DynInst inst = makeInst(OpClass::Load);
    inst.isLoad = true;
    inst.addr = addr;
    inst.accessSize = size;
    return inst;
}

std::uint64_t
count(const PerfMonitor &pmu, Event event)
{
    return pmu.counts()[static_cast<std::size_t>(event)];
}

TEST(PerfMonitor, CountsLoadsAndStores)
{
    PerfMonitor pmu;
    pmu.step(makeLoad(0x1000));
    DynInst store = makeInst(OpClass::Store);
    store.isStore = true;
    store.addr = 0x2000;
    store.accessSize = 8;
    pmu.step(store);
    pmu.step(makeInst(OpClass::IntAdd));
    EXPECT_EQ(count(pmu, Event::Loads), 1u);
    EXPECT_EQ(count(pmu, Event::Stores), 1u);
}

TEST(PerfMonitor, CountsUnalignedOnlyWhenMisaligned)
{
    PerfMonitor pmu;
    pmu.step(makeLoad(0x1000, 8));  // aligned
    EXPECT_EQ(count(pmu, Event::Unaligned), 0u);
    pmu.step(makeLoad(0x1003, 8));  // misaligned
    EXPECT_EQ(count(pmu, Event::Unaligned), 1u);
    pmu.step(makeLoad(0x1001, 1));  // byte access: always aligned
    EXPECT_EQ(count(pmu, Event::Unaligned), 1u);
}

TEST(PerfMonitor, CountsCondBranchesAndTaken)
{
    PerfMonitor pmu;
    DynInst branch = makeInst(OpClass::BranchCond);
    branch.isBranch = true;
    branch.isCondBranch = true;
    branch.taken = true;
    pmu.step(branch);
    branch.taken = false;
    pmu.step(branch);
    DynInst jump = makeInst(OpClass::BranchUncond);
    jump.isBranch = true;
    jump.taken = true;
    pmu.step(jump);
    EXPECT_EQ(count(pmu, Event::CondBranches), 2u);
    EXPECT_EQ(count(pmu, Event::TakenBranches), 2u);  // 1 cond + jump
}

TEST(PerfMonitor, MispredictsTrackPredictorLearning)
{
    PerfMonitor pmu;
    DynInst branch = makeInst(OpClass::BranchCond, 0x400800);
    branch.isBranch = true;
    branch.isCondBranch = true;
    branch.taken = true;
    for (int i = 0; i < 100; ++i)
        pmu.step(branch);
    // After warmup the predictor must have learned always-taken.
    const std::uint64_t early = count(pmu, Event::Mispredicts);
    for (int i = 0; i < 100; ++i)
        pmu.step(branch);
    EXPECT_EQ(count(pmu, Event::Mispredicts), early);
    // Gshare warms up one history pattern at a time, so allow up to
    // ~history-length initial mispredictions.
    EXPECT_LT(early, 20u);
}

TEST(PerfMonitor, CountsOpcodeCategories)
{
    PerfMonitor pmu;
    DynInst call = makeInst(OpClass::Call);
    call.isBranch = true;
    call.taken = true;
    call.isStore = true;
    call.addr = 0x7fff0000;
    call.accessSize = 8;
    pmu.step(call);
    DynInst ret = makeInst(OpClass::Ret);
    ret.isBranch = true;
    ret.taken = true;
    ret.isLoad = true;
    ret.addr = 0x7fff0000;
    ret.accessSize = 8;
    pmu.step(ret);
    pmu.step(makeInst(OpClass::SystemOp));
    DynInst xchg = makeInst(OpClass::Xchg);
    xchg.isLoad = true;
    xchg.isStore = true;
    xchg.addr = 0x3000;
    xchg.accessSize = 8;
    pmu.step(xchg);

    EXPECT_EQ(count(pmu, Event::Calls), 1u);
    EXPECT_EQ(count(pmu, Event::Returns), 1u);
    EXPECT_EQ(count(pmu, Event::Syscalls), 1u);
    EXPECT_EQ(count(pmu, Event::Atomics), 1u);
}

TEST(PerfMonitor, ICacheMissesOnNewCode)
{
    PerfMonitor pmu;
    // Touch many distinct code lines.
    for (std::uint64_t pc = 0x400000; pc < 0x410000; pc += 64)
        pmu.step(makeInst(OpClass::IntAdd, pc));
    EXPECT_GT(count(pmu, Event::ICacheMisses), 0u);
    const std::uint64_t cold = count(pmu, Event::ICacheMisses);
    // A tight loop over one line misses no more.
    for (int i = 0; i < 1000; ++i)
        pmu.step(makeInst(OpClass::IntAdd, 0x500000));
    EXPECT_LE(count(pmu, Event::ICacheMisses), cold + 1);
}

TEST(PerfMonitor, DCacheMissesOnScatteredData)
{
    PerfMonitor pmu;
    for (std::uint64_t addr = 0; addr < 64 * 4096; addr += 4096)
        pmu.step(makeLoad(0x10000000 + addr));
    EXPECT_EQ(count(pmu, Event::DCacheMisses), 64u);
    // Re-touch a recent line: no new miss.
    pmu.step(makeLoad(0x10000000 + 63 * 4096));
    EXPECT_EQ(count(pmu, Event::DCacheMisses), 64u);
}

TEST(PerfMonitor, ClearCountsKeepsStructuralState)
{
    PerfMonitor pmu;
    pmu.step(makeLoad(0x9000));
    pmu.clearCounts();
    EXPECT_EQ(count(pmu, Event::Loads), 0u);
    // Structural state persists: the same line now hits, so the miss
    // counter stays zero after the clear.
    StepOutcome outcome = pmu.step(makeLoad(0x9000));
    EXPECT_EQ(outcome.dcacheMisses, 0u);
}

TEST(PerfMonitor, ResetClearsEverything)
{
    PerfMonitor pmu;
    pmu.step(makeLoad(0xa000));
    pmu.reset();
    EXPECT_EQ(count(pmu, Event::Loads), 0u);
    const StepOutcome outcome = pmu.step(makeLoad(0xa000));
    EXPECT_EQ(outcome.dcacheMisses, 1u);  // cold again
}

TEST(PerfMonitor, EventNamesDistinct)
{
    std::set<std::string_view> names;
    for (std::size_t e = 0; e < kNumEvents; ++e)
        EXPECT_TRUE(names.insert(eventName(static_cast<Event>(e))).second);
}

TEST(PerfMonitor, BimodalConfigSelectable)
{
    PmuConfig config;
    config.useGshare = false;
    PerfMonitor pmu(config);
    DynInst branch = makeInst(OpClass::BranchCond, 0x400900);
    branch.isBranch = true;
    branch.isCondBranch = true;
    branch.taken = true;
    for (int i = 0; i < 50; ++i)
        pmu.step(branch);
    const std::uint64_t mis = count(pmu, Event::Mispredicts);
    EXPECT_LT(mis, 5u);
}

} // namespace
