/**
 * @file
 * Tests of the deterministic parallel execution layer: the thread
 * pool, ordered reduction, error short-circuiting, SplitRng stream
 * independence, and the end-to-end N-thread == 1-thread contract on
 * a full (small) experiment.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/evasion.hh"
#include "core/experiment.hh"
#include "core/rhmd.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

namespace
{

using namespace rhmd;
using support::Status;
using support::StatusCode;
using support::ThreadPool;

TEST(ThreadPool, SerialFallbackRunsInline)
{
    ThreadPool pool(1);
    EXPECT_TRUE(pool.serial());
    EXPECT_EQ(pool.threads(), 1u);
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, ResolveRespectsEnvironment)
{
    setenv("RHMD_THREADS", "3", 1);
    EXPECT_EQ(support::resolveThreadCount(0), 3u);
    // Explicit requests win over the environment.
    EXPECT_EQ(support::resolveThreadCount(7), 7u);
    setenv("RHMD_THREADS", "0", 1);
    EXPECT_GE(support::resolveThreadCount(0), 1u);
    unsetenv("RHMD_THREADS");
}

TEST(ThreadPool, ForkedChildExitsWithoutJoiningPhantomWorkers)
{
    // fork() keeps only the calling thread; the global pool's workers
    // do not exist in the child, yet their std::thread handles do. The
    // atfork handler must abandon the pool or the child's exit()-time
    // destructor joins threads that will never finish (this is every
    // gtest death test in the suite once the pool is warm).
    support::setGlobalThreads(4);
    (void)support::parallelMap<int>(
        8, [](std::size_t i) { return static_cast<int>(i); });
    EXPECT_EXIT(std::exit(7), ::testing::ExitedWithCode(7), "");
    support::setGlobalThreads(1);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

/**
 * Ordered reduction under a shuffling stress schedule: task i sleeps
 * an index-derived pseudo-random time, so completion order is
 * scrambled relative to index order, yet out[i] must be f(i) and the
 * result must equal the serial run's bit for bit.
 */
TEST(Parallel, OrderedReductionUnderShuffledCompletion)
{
    const std::size_t n = 200;
    auto body = [](std::size_t i) {
        const std::uint64_t jitter =
            SplitRng(1234).seedAt(i) % 400;
        std::this_thread::sleep_for(std::chrono::microseconds(jitter));
        return static_cast<double>(i) * 1.5 + 1.0;
    };

    ThreadPool serial(1);
    ThreadPool wide(8);
    const std::vector<double> expect =
        support::parallelMap<double>(serial, n, body);
    for (int repeat = 0; repeat < 3; ++repeat) {
        const std::vector<double> got =
            support::parallelMap<double>(wide, n, body);
        ASSERT_EQ(got.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], expect[i]) << "index " << i;
    }
}

TEST(Parallel, NonAssociativeFoldMatchesSerialOrder)
{
    // Floating-point sum of wildly different magnitudes: only an
    // index-ordered fold reproduces the serial value exactly.
    const std::size_t n = 64;
    auto body = [](std::size_t i) {
        return i % 2 == 0 ? 1e16 : 1.0;
    };
    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto fold = [](double acc, const double &v) {
        return acc + v;
    };
    const double expect = support::parallelReduce<double>(
        serial, n, 0.0, body, fold);
    const double got = support::parallelReduce<double>(
        wide, n, 0.0, body, fold);
    EXPECT_EQ(got, expect);
}

TEST(Parallel, ErrorShortCircuitReportsLowestIndex)
{
    ThreadPool pool(4);
    for (int repeat = 0; repeat < 5; ++repeat) {
        const Status status = support::parallelForStatus(
            pool, 100, [&](std::size_t i) -> Status {
                if (i == 17 || i == 63)
                    return support::unavailableError("task ", i,
                                                     " failed");
                return {};
            });
        ASSERT_FALSE(status.isOk());
        EXPECT_EQ(status.code(), StatusCode::Unavailable);
        EXPECT_EQ(status.message(), "task 17 failed");
    }
}

TEST(Parallel, ErrorCancelsNotYetStartedWork)
{
    // Index 0 fails immediately; most later indices must be skipped.
    // The schedule is nondeterministic, so only an upper bound is
    // asserted: without cancellation all 10000 bodies would run.
    ThreadPool pool(2);
    std::atomic<std::size_t> ran{0};
    const Status status = support::parallelForStatus(
        pool, 10000, [&](std::size_t i) -> Status {
            ran.fetch_add(1);
            if (i == 0)
                return support::internalError("boom");
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            return {};
        });
    EXPECT_FALSE(status.isOk());
    EXPECT_LT(ran.load(), 10000u);
}

TEST(Parallel, StatusLoopOkWhenAllSucceed)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    const Status status = support::parallelForStatus(
        pool, 256, [&](std::size_t) -> Status {
            ran.fetch_add(1);
            return {};
        });
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(ran.load(), 256u);
}

TEST(Parallel, NestedLoopsRunInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    const std::vector<double> out = support::parallelMap<double>(
        pool, 16, [&](std::size_t i) {
            // A nested loop from inside a body must not wait on the
            // pool that is running the body.
            const std::vector<double> inner =
                support::parallelMap<double>(
                    pool, 8, [&](std::size_t j) {
                        return static_cast<double>(i * 8 + j);
                    });
            double sum = 0.0;
            for (double v : inner)
                sum += v;
            return sum;
        });
    double expect_total = 0.0;
    for (std::size_t k = 0; k < 16 * 8; ++k)
        expect_total += static_cast<double>(k);
    double total = 0.0;
    for (double v : out)
        total += v;
    EXPECT_EQ(total, expect_total);
}

TEST(SplitRng, StreamsAreOrderIndependent)
{
    const SplitRng split(999);
    // Materializing stream 5 first or last must not matter.
    Rng a = split.at(5);
    Rng ignored = split.at(77);
    (void)ignored.next();
    Rng b = split.at(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitRng, DistinctIndicesDistinctSeeds)
{
    const SplitRng split(2017);
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seeds.push_back(split.seedAt(i));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

/**
 * Chi-square independence check on overlapping streams: draws from
 * streams i and i+1 are binned into a 4x4 contingency table; under
 * independence the statistic follows chi^2 with 9 degrees of
 * freedom (99.9th percentile ~27.9). Adjacent indices are the worst
 * case for a weak mixer.
 */
TEST(SplitRng, AdjacentStreamsPassChiSquare)
{
    const SplitRng split(4242);
    const std::size_t kBins = 4;
    const std::size_t kDraws = 40000;
    for (std::uint64_t stream = 0; stream < 4; ++stream) {
        Rng a = split.at(stream);
        Rng b = split.at(stream + 1);
        std::vector<std::size_t> table(kBins * kBins, 0);
        for (std::size_t d = 0; d < kDraws; ++d) {
            const std::size_t ia =
                static_cast<std::size_t>(a.uniform() * kBins);
            const std::size_t ib =
                static_cast<std::size_t>(b.uniform() * kBins);
            ++table[ia * kBins + ib];
        }
        // Marginals.
        std::vector<double> row(kBins, 0.0);
        std::vector<double> col(kBins, 0.0);
        for (std::size_t r = 0; r < kBins; ++r) {
            for (std::size_t c = 0; c < kBins; ++c) {
                row[r] += static_cast<double>(table[r * kBins + c]);
                col[c] += static_cast<double>(table[r * kBins + c]);
            }
        }
        double chi2 = 0.0;
        for (std::size_t r = 0; r < kBins; ++r) {
            for (std::size_t c = 0; c < kBins; ++c) {
                const double expect =
                    row[r] * col[c] / static_cast<double>(kDraws);
                const double diff =
                    static_cast<double>(table[r * kBins + c]) - expect;
                chi2 += diff * diff / expect;
            }
        }
        EXPECT_LT(chi2, 27.9) << "streams " << stream << " and "
                              << stream + 1;
    }
}

/** Field-wise equality of two raw windows. */
bool
windowsEqual(const features::RawWindow &a, const features::RawWindow &b)
{
    return a.opcodeCounts == b.opcodeCounts &&
           a.memDeltaBins == b.memDeltaBins &&
           a.events == b.events && a.instCount == b.instCount &&
           a.cycles == b.cycles && a.injectedFrac == b.injectedFrac;
}

bool
programsEqual(const features::ProgramFeatures &a,
              const features::ProgramFeatures &b)
{
    if (a.name != b.name || a.malware != b.malware ||
        a.family != b.family)
        return false;
    if (a.byPeriod.size() != b.byPeriod.size())
        return false;
    for (const auto &[period, windows] : a.byPeriod) {
        const auto &other = b.windows(period);
        if (windows.size() != other.size())
            return false;
        for (std::size_t w = 0; w < windows.size(); ++w) {
            if (!windowsEqual(windows[w], other[w]))
                return false;
        }
    }
    return true;
}

/**
 * The end-to-end determinism contract: a full (small) experiment —
 * corpus generation + execution + extraction, pool training, evasive
 * rewriting, detection — is bit-identical at 1 and 4 threads.
 */
TEST(Parallel, SerialVsFourThreadExperimentGolden)
{
    core::ExperimentConfig config;
    config.seed = 77;
    config.benignCount = 24;
    config.malwareCount = 48;
    config.traceInsts = 40000;

    auto run = [&](std::size_t threads) {
        support::setGlobalThreads(threads);
        const core::Experiment exp = core::Experiment::build(config);
        features::FeatureSpec inst;
        inst.kind = features::FeatureKind::Instructions;
        features::FeatureSpec mem;
        mem.kind = features::FeatureKind::Memory;
        auto pool = core::buildRhmd("LR", {inst, mem}, exp.corpus(),
                                    exp.split().victimTrain, 16, 5);
        const auto victim = exp.trainVictim(
            "LR", features::FeatureKind::Instructions, 10000);

        core::EvasionPlan plan;
        plan.strategy = core::EvasionStrategy::Weighted;
        plan.count = 2;
        core::EvasionAudit audit;
        const auto test_mal = exp.malwareOf(exp.split().attackerTest);
        const auto evasive = exp.extractEvasive(
            test_mal, plan, victim.get(), &audit);

        struct Result
        {
            std::vector<features::ProgramFeatures> corpus;
            std::vector<features::ProgramFeatures> evasive;
            std::vector<double> weights;
            std::size_t admitted;
            std::size_t rejected;
            double rate;
        };
        Result result;
        result.corpus = exp.corpus().programs;
        result.evasive = evasive;
        result.weights = victim->effectiveRawWeights();
        result.admitted = audit.admittedSites;
        result.rejected = audit.rejectedSites;
        result.rate = core::Experiment::detectionRate(*pool, evasive);
        return result;
    };

    const auto serial = run(1);
    const auto parallel = run(4);
    support::setGlobalThreads(1);

    ASSERT_EQ(serial.corpus.size(), parallel.corpus.size());
    for (std::size_t p = 0; p < serial.corpus.size(); ++p)
        ASSERT_TRUE(programsEqual(serial.corpus[p], parallel.corpus[p]))
            << "corpus program " << p;
    ASSERT_EQ(serial.evasive.size(), parallel.evasive.size());
    for (std::size_t p = 0; p < serial.evasive.size(); ++p)
        ASSERT_TRUE(
            programsEqual(serial.evasive[p], parallel.evasive[p]))
            << "evasive program " << p;
    ASSERT_EQ(serial.weights.size(), parallel.weights.size());
    for (std::size_t w = 0; w < serial.weights.size(); ++w)
        ASSERT_EQ(serial.weights[w], parallel.weights[w]);
    EXPECT_EQ(serial.admitted, parallel.admitted);
    EXPECT_EQ(serial.rejected, parallel.rejected);
    EXPECT_EQ(serial.rate, parallel.rate);
}

} // namespace
