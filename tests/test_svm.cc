/**
 * @file
 * Tests of the linear SVM (Pegasos).
 */

#include <gtest/gtest.h>

#include "ml/metrics.hh"
#include "ml/svm.hh"

namespace
{

using namespace rhmd;
using namespace rhmd::ml;

Dataset
blobs(std::size_t n, double gap, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        const bool positive = i % 2 == 0;
        const double cx = positive ? gap : -gap;
        data.add({rng.gaussian(cx, 1.0), rng.gaussian(-cx, 1.0)},
                 positive ? 1 : 0);
    }
    return data;
}

TEST(Svm, LearnsSeparableBlobs)
{
    const Dataset data = blobs(400, 2.5, 40);
    LinearSvm svm;
    Rng rng(1);
    svm.train(data, rng);
    std::vector<double> scores;
    for (const auto &x : data.x)
        scores.push_back(svm.score(x));
    EXPECT_GT(auc(scores, data.y), 0.96);
}

TEST(Svm, MarginSignSeparatesClasses)
{
    const Dataset data = blobs(400, 2.5, 41);
    LinearSvm svm;
    Rng rng(2);
    svm.train(data, rng);
    EXPECT_GT(svm.margin({3.0, -3.0}), 0.0);
    EXPECT_LT(svm.margin({-3.0, 3.0}), 0.0);
}

TEST(Svm, ScoreIsMonotoneInMargin)
{
    LinearSvm svm;
    svm.setParams({1.0, 0.0}, 0.0);
    double last = 0.0;
    for (double x = -2.0; x <= 2.0; x += 0.5) {
        const double s = svm.score({x, 0.0});
        EXPECT_GT(s, last);
        last = s;
    }
}

TEST(Svm, ScoreIsHalfAtZeroMargin)
{
    LinearSvm svm;
    svm.setParams({1.0}, -1.0);
    EXPECT_NEAR(svm.score({1.0}), 0.5, 1e-12);
}

TEST(Svm, DeterministicGivenSeed)
{
    const Dataset data = blobs(200, 1.0, 42);
    LinearSvm a;
    LinearSvm b;
    Rng ra(3);
    Rng rb(3);
    a.train(data, ra);
    b.train(data, rb);
    for (std::size_t j = 0; j < a.weights().size(); ++j)
        EXPECT_DOUBLE_EQ(a.weights()[j], b.weights()[j]);
}

TEST(Svm, StrongerRegularizationShrinksWeights)
{
    const Dataset data = blobs(300, 3.0, 43);
    SvmConfig strong;
    strong.lambda = 1e-1;
    SvmConfig weak;
    weak.lambda = 1e-5;
    LinearSvm svm_strong(strong);
    LinearSvm svm_weak(weak);
    Rng ra(4);
    Rng rb(4);
    svm_strong.train(data, ra);
    svm_weak.train(data, rb);
    const double norm_strong =
        svm_strong.weights()[0] * svm_strong.weights()[0] +
        svm_strong.weights()[1] * svm_strong.weights()[1];
    const double norm_weak =
        svm_weak.weights()[0] * svm_weak.weights()[0] +
        svm_weak.weights()[1] * svm_weak.weights()[1];
    EXPECT_LT(norm_strong, norm_weak);
}

TEST(Svm, CloneScoresIdentically)
{
    const Dataset data = blobs(200, 2.0, 44);
    LinearSvm svm;
    Rng rng(5);
    svm.train(data, rng);
    const auto copy = svm.clone();
    for (double x = -1.0; x <= 1.0; x += 0.25)
        EXPECT_DOUBLE_EQ(svm.score({x, -x}), copy->score({x, -x}));
}

TEST(Svm, RefusesEmptyData)
{
    LinearSvm svm;
    Rng rng(1);
    EXPECT_EXIT(svm.train(Dataset{}, rng), ::testing::ExitedWithCode(1),
                "empty");
}

} // namespace
